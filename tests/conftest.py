"""Shared fixtures.

Closed-loop runs cost ~1 s each, so integration tests share
session-scoped traces instead of re-running scenarios per test.
"""

from __future__ import annotations

import pytest

from repro import build_scenario
from repro.core.parameters import ZhuyiParams
from repro.dynamics.state import VehicleSpec
from repro.road.track import three_lane_straight_road


@pytest.fixture(scope="session")
def params() -> ZhuyiParams:
    """The paper's model constants."""
    return ZhuyiParams()


@pytest.fixture(scope="session")
def straight_road():
    """A 2 km straight 3-lane highway."""
    return three_lane_straight_road(length=2000.0)


@pytest.fixture(scope="session")
def car_spec() -> VehicleSpec:
    """Default mid-size car."""
    return VehicleSpec()


@pytest.fixture(scope="session")
def cut_in_trace_30():
    """Cut-in scenario at 30 FPR (shared across integration tests)."""
    return build_scenario("cut_in", seed=0).run(fpr=30.0)


@pytest.fixture(scope="session")
def cut_out_trace_30():
    """Cut-out scenario at 30 FPR."""
    return build_scenario("cut_out", seed=0).run(fpr=30.0)


@pytest.fixture(scope="session")
def vehicle_following_trace_30():
    """Vehicle-following scenario at 30 FPR."""
    return build_scenario("vehicle_following", seed=0).run(fpr=30.0)
