"""Property-based tests: Equation 4 aggregation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.aggregation import (
    MaxAggregator,
    MeanAggregator,
    PercentileAggregator,
)

latency_sets = st.lists(
    st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=20
)
percentiles = st.floats(min_value=0.0, max_value=100.0)


class TestAggregatorBounds:
    @given(latency_sets)
    def test_max_is_minimum(self, latencies):
        assert MaxAggregator().aggregate(latencies) == min(latencies)

    @given(latency_sets)
    def test_mean_within_bounds(self, latencies):
        value = MeanAggregator().aggregate(latencies)
        assert min(latencies) - 1e-12 <= value <= max(latencies) + 1e-12

    @given(latency_sets, percentiles)
    def test_percentile_within_bounds(self, latencies, n):
        value = PercentileAggregator(n).aggregate(latencies)
        assert min(latencies) <= value <= max(latencies)

    @given(latency_sets, percentiles, percentiles)
    def test_percentile_monotone_in_n(self, latencies, n1, n2):
        lo, hi = sorted((n1, n2))
        # A higher percentile of demand is a lower (or equal) latency.
        v_lo = PercentileAggregator(lo).aggregate(latencies)
        v_hi = PercentileAggregator(hi).aggregate(latencies)
        assert v_hi <= v_lo + 1e-12

    @given(latency_sets)
    def test_percentile_100_equals_max_aggregator(self, latencies):
        assert PercentileAggregator(100.0).aggregate(latencies) == (
            MaxAggregator().aggregate(latencies)
        )

    @given(st.floats(min_value=0.0, max_value=1.0), percentiles)
    def test_singleton_returns_itself(self, latency, n):
        assert PercentileAggregator(n).aggregate([latency]) == latency

    @given(latency_sets)
    def test_permutation_invariant(self, latencies):
        aggregator = PercentileAggregator(99.0)
        assert aggregator.aggregate(latencies) == aggregator.aggregate(
            list(reversed(latencies))
        )
