"""Property-based tests: order-independence of the counter-based RNG.

The contract pinned here (see ``repro/core/rng.py`` and
``repro/perception/noise.py``): every stochastic-perception draw is a
pure function of ``(root seed, stream tag, timestamp bits, actor key)``
— no generator state anywhere. Concretely:

* permutation invariance — drawing ticks or actors in any order,
  batched or one at a time, produces the same value for the same key;
* shard invariance — any partition of a time grid draws exactly the
  partition of the whole grid's values, so shards, resume points and
  supercell blocks cannot disagree;
* replay-from-anywhere — a draw sequence restarted at an arbitrary
  tick continues bit-identically, with no warm-up or state to rebuild;
* stream independence — the miss / noise-x / noise-y channels and
  distinct root seeds decorrelate (equal keys never leak equal draws
  across streams);
* distribution smoke — uniforms land in ``[0, 1)`` and pass a crude
  KS-style check; normals match first and second moments.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rng import (
    STREAM_MISS,
    STREAM_NOISE_X,
    STREAM_NOISE_Y,
    counter_normal,
    counter_uniform,
    derive_seed,
    stable_key,
    time_key,
)
from repro.perception.noise import PerceptionNoise

#: Hypothesis-heavy module: deselect locally with ``-m "not slow"``.
pytestmark = pytest.mark.slow

relaxed = settings(max_examples=80, deadline=None)

seeds = st.integers(min_value=0, max_value=2**32 - 1)
actor_ids = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12
)
grid_sizes = st.integers(min_value=1, max_value=64)


def _time_grid(n, start=0.0, stride=0.05):
    """A closed-form timestamp grid, like the replay engines build."""
    return start + stride * np.arange(n)


class TestPermutationInvariance:
    @relaxed
    @given(seed=seeds, n=grid_sizes, order_seed=seeds)
    def test_tick_order_free(self, seed, n, order_seed):
        times = _time_grid(n)
        words = time_key(times)
        forward = counter_uniform(seed, STREAM_MISS, words)
        perm = np.random.default_rng(order_seed).permutation(n)
        shuffled = counter_uniform(seed, STREAM_MISS, words[perm])
        assert forward[perm].tolist() == shuffled.tolist()

    @relaxed
    @given(seed=seeds, ids=st.lists(actor_ids, min_size=1, max_size=6, unique=True))
    def test_actor_order_free(self, seed, ids):
        noise = PerceptionNoise(miss_rate=0.3, position_noise=0.4, seed=seed)
        times = _time_grid(20)
        forward = {a: noise.sample_actor(a, times) for a in ids}
        backward = {a: noise.sample_actor(a, times) for a in reversed(ids)}
        for actor in ids:
            for lhs, rhs in zip(forward[actor], backward[actor]):
                assert lhs.tolist() == rhs.tolist()

    @relaxed
    @given(seed=seeds, n=grid_sizes)
    def test_batched_equals_one_at_a_time(self, seed, n):
        times = _time_grid(n)
        batch = counter_normal(seed, STREAM_NOISE_X, time_key(times), stable_key("a"))
        singles = [
            float(
                counter_normal(
                    seed, STREAM_NOISE_X, time_key(float(t)), stable_key("a")
                )
            )
            for t in times
        ]
        assert batch.tolist() == singles


class TestShardInvariance:
    @relaxed
    @given(
        seed=seeds,
        n=st.integers(min_value=2, max_value=64),
        cut_seed=seeds,
    )
    def test_arbitrary_partition(self, seed, n, cut_seed):
        noise = PerceptionNoise(miss_rate=0.25, position_noise=0.3, seed=seed)
        times = _time_grid(n)
        whole = noise.sample_actor("lead", times)
        rng = np.random.default_rng(cut_seed)
        cuts = np.sort(rng.choice(np.arange(1, n), size=min(3, n - 1), replace=False))
        pieces = [
            noise.sample_actor("lead", part) for part in np.split(times, cuts)
        ]
        for channel in range(3):
            stitched = np.concatenate([p[channel] for p in pieces])
            assert whole[channel].tolist() == stitched.tolist()

    @relaxed
    @given(seed=seeds, n=st.integers(min_value=4, max_value=64), start=grid_sizes)
    def test_replay_from_arbitrary_tick(self, seed, n, start):
        # Killing a run at tick k and replaying from there continues the
        # exact stream: the suffix draws need no prefix to be replayed.
        k = start % n
        times = _time_grid(n, start=1.25)
        whole = counter_uniform(seed, STREAM_MISS, time_key(times), stable_key("x"))
        resumed = counter_uniform(
            seed, STREAM_MISS, time_key(times[k:]), stable_key("x")
        )
        assert whole[k:].tolist() == resumed.tolist()


class TestStreamIndependence:
    @relaxed
    @given(seed=seeds, n=grid_sizes)
    def test_channels_decorrelate(self, seed, n):
        words = time_key(_time_grid(n))
        key = stable_key("a")
        miss = counter_uniform(seed, STREAM_MISS, words, key)
        nx = counter_uniform(seed, STREAM_NOISE_X, words, key)
        ny = counter_uniform(seed, STREAM_NOISE_Y, words, key)
        # Equal keys never leak equal draws across streams.
        assert not np.any(miss == nx)
        assert not np.any(miss == ny)
        assert not np.any(nx == ny)

    @relaxed
    @given(seed=seeds, other=seeds, n=grid_sizes)
    def test_root_seeds_decorrelate(self, seed, other, n):
        if seed == other:
            other += 1
        words = time_key(_time_grid(n))
        assert not np.any(
            counter_uniform(seed, STREAM_MISS, words)
            == counter_uniform(other, STREAM_MISS, words)
        )

    @relaxed
    @given(seed=seeds)
    def test_derived_seeds_decorrelate(self, seed):
        children = {
            derive_seed(seed, stable_key(s), i, time_key(f))
            for s in ("cut_in", "cut_out")
            for i in range(3)
            for f in (10.0, 30.0)
        }
        assert len(children) == 12
        assert seed not in children


class TestDistributionSmoke:
    @relaxed
    @given(seed=seeds)
    def test_uniform_ks(self, seed):
        # Crude one-sample KS against U[0,1): with n = 4096 the 99.9%
        # critical value is ~1.95 / sqrt(n) ≈ 0.0305. A counter stream
        # failing this would bias miss sampling campaign-wide.
        n = 4096
        draws = np.sort(counter_uniform(seed, STREAM_MISS, time_key(_time_grid(n))))
        assert draws[0] >= 0.0 and draws[-1] < 1.0
        ecdf_hi = (1.0 + np.arange(n)) / n
        ecdf_lo = np.arange(n) / n
        ks = max(np.max(ecdf_hi - draws), np.max(draws - ecdf_lo))
        assert ks < 0.0305

    @relaxed
    @given(seed=seeds)
    def test_normal_moments(self, seed):
        draws = counter_normal(
            seed, STREAM_NOISE_X, time_key(_time_grid(8192))
        )
        assert np.isfinite(draws).all()
        assert abs(float(draws.mean())) < 0.05
        assert abs(float(draws.std()) - 1.0) < 0.05

    @relaxed
    @given(seed=seeds, rate=st.floats(min_value=0.05, max_value=0.95))
    def test_miss_rate_is_calibrated(self, seed, rate):
        noise = PerceptionNoise(miss_rate=rate, seed=seed)
        detected, _, _ = noise.sample_actor("lead", _time_grid(4096))
        observed = 1.0 - float(detected.mean())
        assert abs(observed - rate) < 0.05
