"""Property-based tests: background-actor placement stays on the road.

The fuzz search drives ``queue_offset`` as low as -40 m and the ego
station toward the road start, so ``_background_actors`` must clamp
*both* the stopped queue (even slots) and the cruising platoon (odd
slots) to a station of at least 4 m — a vehicle spawned before the road
origin has an undefined pose. The strategy ranges mirror the fuzz gene
bounds in ``repro/scenarios/fuzzed.py``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios.catalog import _background_actors, _straight_road

ROAD = _straight_road()


@st.composite
def placements(draw):
    return dict(
        rng_seed=draw(st.integers(min_value=0, max_value=2**32 - 1)),
        count=draw(st.integers(min_value=1, max_value=8)),
        ego_speed=draw(st.floats(min_value=5.0, max_value=35.0)),
        ego_lane=draw(st.integers(min_value=0, max_value=2)),
        ego_station=draw(st.floats(min_value=4.0, max_value=120.0)),
        queue_offset=draw(st.floats(min_value=-40.0, max_value=150.0)),
    )


class TestBackgroundPlacement:
    @settings(max_examples=200, deadline=None)
    @given(placements())
    def test_every_station_is_clamped_on_road(self, params):
        rng = np.random.default_rng(params.pop("rng_seed"))
        count = params.pop("count")
        actors = _background_actors(ROAD, rng, count, **params)
        assert len(actors) == count
        for actor in actors:
            assert actor.station >= 4.0

    @settings(max_examples=50, deadline=None)
    @given(placements())
    def test_queue_is_stopped_and_platoon_moves(self, params):
        rng = np.random.default_rng(params.pop("rng_seed"))
        count = params.pop("count")
        actors = _background_actors(ROAD, rng, count, **params)
        for i, actor in enumerate(actors):
            if i % 2 == 0:
                assert actor.speed == 0.0
            else:
                assert actor.speed > 0.0
                assert actor.lane != params["ego_lane"]
