"""Property-based tests: the exact batched Frenet kernel.

The contract pinned here (see the ``repro/road/lane.py`` module
docstring): for every centerline shape — straight, arc, and composites
chained through joints — ``to_frenet_batch`` is *bit-identical* per
element to the scalar ``to_frenet``, round-trips with ``to_world``, and
behaves as a pure elementwise map (permutation/slice invariant). A
final suite documents the numeric assumptions the kernels stand on:
numpy and ``math`` agreeing to the last bit on the shared operations.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.geometry.vec import Vec2
from repro.road.lane import (
    ArcCenterline,
    CompositeCenterline,
    FrenetPoint,
    StraightCenterline,
)

#: Hypothesis-heavy module: deselect locally with ``-m "not slow"``.
pytestmark = pytest.mark.slow

relaxed = settings(max_examples=80, deadline=None)

coordinate = st.floats(
    min_value=-500.0, max_value=500.0, allow_nan=False, allow_infinity=False
)
heading = st.floats(min_value=-math.pi, max_value=math.pi)
length = st.floats(min_value=1.0, max_value=400.0)
radius = st.floats(min_value=20.0, max_value=500.0)


def _arc_from_pose(point: Vec2, pose_heading: float, r: float,
                   arc_length: float, turn_left: bool) -> ArcCenterline:
    """The arc starting at ``point`` tangent to ``pose_heading``."""
    side = math.pi / 2.0 if turn_left else -math.pi / 2.0
    center = point + Vec2.unit(pose_heading + side) * r
    start_angle = (point - center).angle()
    return ArcCenterline(
        center=center,
        radius=r,
        start_angle=start_angle,
        arc_length=arc_length,
        turn_left=turn_left,
    )


@st.composite
def straight_centerlines(draw):
    return StraightCenterline(
        start=Vec2(draw(coordinate), draw(coordinate)),
        heading=draw(heading),
        segment_length=draw(length),
    )


@st.composite
def arc_centerlines(draw):
    r = draw(radius)
    # Keep the sweep under a half-circle so projections are unambiguous.
    arc_length = draw(
        st.floats(min_value=1.0, max_value=0.9 * math.pi * r)
    )
    return _arc_from_pose(
        Vec2(draw(coordinate), draw(coordinate)),
        draw(heading),
        r,
        arc_length,
        draw(st.booleans()),
    )


@st.composite
def composite_centerlines(draw):
    """1-4 segments chained end to end through exact joints."""
    point = Vec2(draw(coordinate), draw(coordinate))
    pose_heading = draw(heading)
    segments = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        if draw(st.booleans()):
            segment = StraightCenterline(
                start=point, heading=pose_heading, segment_length=draw(length)
            )
        else:
            r = draw(radius)
            arc_length = draw(
                st.floats(min_value=1.0, max_value=0.6 * math.pi * r)
            )
            segment = _arc_from_pose(
                point, pose_heading, r, arc_length, draw(st.booleans())
            )
        segments.append(segment)
        point = segment.point_at(segment.length)
        pose_heading = segment.heading_at(segment.length)
    return CompositeCenterline(segments)


def any_centerline():
    return st.one_of(
        straight_centerlines(), arc_centerlines(), composite_centerlines()
    )


def _arc_segments(centerline):
    if isinstance(centerline, ArcCenterline):
        return [centerline]
    if isinstance(centerline, CompositeCenterline):
        return [
            segment
            for segment in centerline._segments
            if isinstance(segment, ArcCenterline)
        ]
    return []


@st.composite
def query_points(draw, centerline):
    """Points around the centerline: on it, near joints, behind, beyond.

    Stations deliberately overshoot ``[0, length]`` so projections fall
    behind the start and beyond the end; laterals stay inside the
    smallest arc radius so Frenet points are well defined.
    """
    arcs = _arc_segments(centerline)
    max_d = min([0.4 * arc.radius for arc in arcs], default=30.0)
    s = draw(
        st.floats(min_value=-30.0, max_value=centerline.length + 30.0)
    )
    d = draw(st.floats(min_value=-max_d, max_value=max_d))
    station = min(max(s, 0.0), centerline.length)
    base = centerline.to_world(FrenetPoint(station, d))
    overshoot = s - station
    if overshoot != 0.0:
        tangent = Vec2.unit(centerline.heading_at(station))
        base = base + tangent * overshoot
    return base


@st.composite
def centerline_with_points(draw, count=6):
    centerline = draw(any_centerline())
    points = [draw(query_points(centerline)) for _ in range(count)]
    for arc in _arc_segments(centerline):
        assume(
            all(
                point.x != arc.center.x or point.y != arc.center.y
                for point in points
            )
        )
    return centerline, points


class TestBatchBitParity:
    """``to_frenet_batch`` == scalar ``to_frenet``, to the last bit."""

    @relaxed
    @given(centerline_with_points())
    def test_batch_matches_scalar_bitwise(self, case):
        centerline, points = case
        xs = np.array([p.x for p in points])
        ys = np.array([p.y for p in points])
        batch_s, batch_d = centerline.to_frenet_batch(xs, ys)
        for i, point in enumerate(points):
            scalar = centerline.to_frenet(point)
            assert scalar.s == batch_s[i], (point, scalar.s, batch_s[i])
            assert scalar.d == batch_d[i], (point, scalar.d, batch_d[i])

    @relaxed
    @given(composite_centerlines(), st.floats(-2.0, 2.0))
    def test_joint_neighbourhood_bitwise(self, centerline, wiggle):
        """Points straddling segment joints (the tie-break hot spot)."""
        joints = centerline._offsets[1:]
        if not joints:
            return
        points = []
        for joint in joints:
            station = min(max(joint + wiggle, 0.0), centerline.length)
            for lateral in (-3.0, 0.0, 3.0):
                points.append(
                    centerline.to_world(FrenetPoint(station, lateral))
                )
        xs = np.array([p.x for p in points])
        ys = np.array([p.y for p in points])
        batch_s, batch_d = centerline.to_frenet_batch(xs, ys)
        for i, point in enumerate(points):
            scalar = centerline.to_frenet(point)
            assert scalar.s == batch_s[i]
            assert scalar.d == batch_d[i]


class TestRoundTrip:
    @relaxed
    @given(any_centerline(), st.data())
    def test_world_roundtrip(self, centerline, data):
        arcs = _arc_segments(centerline)
        max_d = min([0.4 * arc.radius for arc in arcs], default=30.0)
        s = data.draw(st.floats(min_value=0.0, max_value=centerline.length))
        d = data.draw(st.floats(min_value=-max_d, max_value=max_d))
        world = centerline.to_world(FrenetPoint(s, d))
        back_s, back_d = centerline.to_frenet_batch(
            np.array([world.x]), np.array([world.y])
        )
        assert math.isclose(back_s[0], s, abs_tol=1e-6)
        assert math.isclose(back_d[0], d, abs_tol=1e-6)


class TestElementwisePurity:
    @relaxed
    @given(centerline_with_points(), st.permutations(range(6)))
    def test_permutation_invariant(self, case, order):
        centerline, points = case
        xs = np.array([p.x for p in points])
        ys = np.array([p.y for p in points])
        base_s, base_d = centerline.to_frenet_batch(xs, ys)
        perm = np.array(order)
        perm_s, perm_d = centerline.to_frenet_batch(xs[perm], ys[perm])
        assert np.array_equal(perm_s, base_s[perm])
        assert np.array_equal(perm_d, base_d[perm])

    @relaxed
    @given(centerline_with_points(), st.integers(min_value=1, max_value=5))
    def test_slice_invariant(self, case, cut):
        centerline, points = case
        xs = np.array([p.x for p in points])
        ys = np.array([p.y for p in points])
        base_s, base_d = centerline.to_frenet_batch(xs, ys)
        head_s, head_d = centerline.to_frenet_batch(xs[:cut], ys[:cut])
        assert np.array_equal(head_s, base_s[:cut])
        assert np.array_equal(head_d, base_d[:cut])


class TestKernelAssumptions:
    """The numpy/math agreements the bit-parity contract stands on.

    The kernels restrict per-element work to multiply/add/compare,
    ``sqrt`` (correctly rounded by IEEE 754), ``fmod`` (exact) and a
    shared ``arctan2``; trigonometric constants are computed once with
    ``math`` and broadcast. These tests document — and would flag on a
    numerics change, e.g. a numpy build routing float64 trig through a
    vectorized approximation — the elementwise agreements relied on.
    """

    @relaxed
    @given(
        st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6, allow_nan=False, width=64
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_sqrt_fmod_bitwise(self, values):
        arr = np.array(values)
        np_sqrt = np.sqrt(np.abs(arr))
        np_fmod = np.fmod(arr + math.pi, 2.0 * math.pi)
        for i, value in enumerate(values):
            assert np_sqrt[i] == math.sqrt(abs(value))
            assert np_fmod[i] == math.fmod(value + math.pi, 2.0 * math.pi)

    @relaxed
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_arctan2_array_matches_scalar_invocation(self, pairs):
        ys = np.array([p[0] for p in pairs])
        xs = np.array([p[1] for p in pairs])
        batch = np.arctan2(ys, xs)
        for i, (y, x) in enumerate(pairs):
            assert batch[i] == float(np.arctan2(y, x))
