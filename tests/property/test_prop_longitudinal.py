"""Property-based tests: clamped longitudinal kinematics."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.dynamics.longitudinal import braking_distance, time_to_stop, travel

speed = st.floats(min_value=0.0, max_value=60.0)
accel = st.floats(min_value=-10.0, max_value=5.0)
duration = st.floats(min_value=0.0, max_value=30.0)
decel = st.floats(min_value=0.5, max_value=10.0)


class TestTravelProperties:
    @given(speed, accel, duration)
    def test_distance_non_negative(self, v, a, t):
        distance, _ = travel(v, a, t)
        assert distance >= 0.0

    @given(speed, accel, duration)
    def test_end_speed_non_negative(self, v, a, t):
        _, end = travel(v, a, t)
        assert end >= 0.0

    @given(speed, accel, duration, duration)
    def test_distance_monotone_in_time(self, v, a, t1, t2):
        lo, hi = sorted((t1, t2))
        d_lo, _ = travel(v, a, lo)
        d_hi, _ = travel(v, a, hi)
        assert d_hi >= d_lo - 1e-9

    @given(speed, accel, duration, duration)
    def test_additivity(self, v, a, t1, t2):
        # Travelling t1 then t2 from the reached speed equals one segment
        # of t1+t2 (for braking segments — acceleration without a cap is
        # also additive).
        d1, v1 = travel(v, a, t1)
        d2, _ = travel(v1, a, t2) if a <= 0 else (None, None)
        if d2 is None:
            return
        total, _ = travel(v, a, t1 + t2)
        assert math.isclose(d1 + d2, total, rel_tol=1e-9, abs_tol=1e-6)

    @given(speed, st.floats(min_value=0.1, max_value=5.0), duration,
           st.floats(min_value=1.0, max_value=60.0))
    def test_cap_never_exceeded(self, v, a, t, cap):
        _, end = travel(v, a, t, max_speed=max(cap, v))
        assert end <= max(cap, v) + 1e-9


class TestStoppingProperties:
    @given(speed, decel)
    def test_travel_reaches_braking_distance(self, v, b):
        t_stop = time_to_stop(v, b)
        distance, end = travel(v, -b, t_stop + 1.0)
        assert end == 0.0
        assert math.isclose(
            distance, braking_distance(v, b), rel_tol=1e-9, abs_tol=1e-9
        )

    @given(speed, decel, decel)
    def test_stronger_braking_shorter_distance(self, v, b1, b2):
        lo, hi = sorted((b1, b2))
        assert braking_distance(v, hi) <= braking_distance(v, lo) + 1e-9
