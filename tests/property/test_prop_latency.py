"""Property-based tests: the latency search's safety invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ego_profile import EgoMotion
from repro.core.latency import LatencySearch, SearchStrategy
from repro.core.parameters import ZhuyiParams
from repro.core.threat import FixedGapThreat

PARAMS = ZhuyiParams()
EXACT = LatencySearch(params=PARAMS)
PAPER = LatencySearch(params=PARAMS, strategy=SearchStrategy.PAPER)
POINT = LatencySearch(params=PARAMS, strict=False)

ego_speed = st.floats(min_value=0.0, max_value=40.0)
gap = st.floats(min_value=1.0, max_value=300.0)
actor_speed = st.floats(min_value=0.0, max_value=40.0)


def ego(speed: float, accel: float = 0.0) -> EgoMotion:
    return EgoMotion.from_state(speed, accel, PARAMS)


relaxed = settings(max_examples=60, deadline=None)


class TestSearchInvariants:
    @relaxed
    @given(ego_speed, gap, actor_speed)
    def test_latency_on_grid_or_none(self, v, g, va):
        result = EXACT.tolerable_latency(ego(v), FixedGapThreat(g, va), 1.0)
        if result.latency is not None:
            grid = PARAMS.latency_grid()
            assert any(abs(result.latency - value) < 1e-9 for value in grid)

    @relaxed
    @given(ego_speed, gap, actor_speed)
    def test_feasible_result_satisfies_constraints(self, v, g, va):
        result = EXACT.tolerable_latency(ego(v), FixedGapThreat(g, va), 1.0)
        if result.latency is None:
            return
        reaction = result.latency + PARAMS.confirmation_delay(result.latency, 1.0)
        travelled, v_en = ego(v).total_travel(reaction, result.check_time)
        assert travelled <= PARAMS.c1 * g + 1e-6
        assert v_en <= PARAMS.c2 * va + 1e-6

    @relaxed
    @given(ego_speed, gap, actor_speed)
    def test_strict_at_most_point(self, v, g, va):
        threat = FixedGapThreat(g, va)
        strict = EXACT.tolerable_latency(ego(v), threat, 1.0).latency_or_zero()
        loose = POINT.tolerable_latency(ego(v), threat, 1.0).latency_or_zero()
        assert strict <= loose + 1e-9

    @relaxed
    @given(ego_speed, gap, actor_speed)
    def test_paper_at_most_point(self, v, g, va):
        threat = FixedGapThreat(g, va)
        paper = PAPER.tolerable_latency(ego(v), threat, 1.0).latency_or_zero()
        loose = POINT.tolerable_latency(ego(v), threat, 1.0).latency_or_zero()
        assert paper <= loose + 1e-9

    @relaxed
    @given(ego_speed, gap, gap, actor_speed)
    def test_monotone_in_gap(self, v, g1, g2, va):
        lo, hi = sorted((g1, g2))
        near = EXACT.tolerable_latency(
            ego(v), FixedGapThreat(lo, va), 1.0
        ).latency_or_zero()
        far = EXACT.tolerable_latency(
            ego(v), FixedGapThreat(hi, va), 1.0
        ).latency_or_zero()
        assert far >= near - 1e-9

    @relaxed
    @given(ego_speed, ego_speed, gap, actor_speed)
    def test_monotone_in_ego_speed(self, v1, v2, g, va):
        slow, fast = sorted((v1, v2))
        l_slow = EXACT.tolerable_latency(
            ego(slow), FixedGapThreat(g, va), 1.0
        ).latency_or_zero()
        l_fast = EXACT.tolerable_latency(
            ego(fast), FixedGapThreat(g, va), 1.0
        ).latency_or_zero()
        assert l_fast <= l_slow + 1e-9

    @relaxed
    @given(ego_speed, gap, actor_speed, st.floats(min_value=1 / 30, max_value=1.0))
    def test_l0_monotone(self, v, g, va, l0):
        # A slower-running stack (larger l0) never tightens the estimate.
        threat = FixedGapThreat(g, va)
        fast_stack = EXACT.tolerable_latency(ego(v), threat, 1.0 / 30.0)
        slow_stack = EXACT.tolerable_latency(ego(v), threat, l0)
        assert (
            slow_stack.latency_or_zero() >= fast_stack.latency_or_zero() - 1e-9
        )
