"""Property-based tests: cross-trace row solving on stacked grids.

The contract pinned here (see ``repro/core/engine.py`` and the
cross-trace path in ``repro/core/evaluator.py``): stacking many traces'
ticks into one :meth:`LatencyEngine.trace_grid` — the master time axis
growing to the longest horizon of *any* stacked trace — changes nothing
about any row's answer. Concretely:

* solving a trace's rows through a stacked multi-trace grid is
  bit-identical to solving them through that trace's own grid;
* :meth:`LatencyEngine.solve_rows` is a pure per-row map — permutation
  invariant, and a whole batch (dense enough to engage the
  tick-resident grouped kernel) agrees with one-row-at-a-time solves
  (which take the gathered kernel), pinning the two kernels against
  each other;
* variant stacking via per-row ``constraints`` matches dedicated
  engines carrying each variant's c1/c2.

Bulk sample arrays come from seeded numpy generators (hypothesis draws
the seeds and shapes); the solver only ever compares these values, so
uniform noise exercises it as fully as simulated threats do.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import LatencyEngine
from repro.core.ego_profile import EgoMotion
from repro.core.parameters import ZhuyiParams

#: Hypothesis-heavy module: deselect locally with ``-m "not slow"``.
pytestmark = pytest.mark.slow

relaxed = settings(max_examples=80, deadline=None)

L0 = 1.0 / 30.0

seeds = st.integers(min_value=0, max_value=2**32 - 1)
tick_counts = st.integers(min_value=1, max_value=6)


def _motions(rng, count, params):
    """``count`` plausible ego longitudinal states."""
    return [
        EgoMotion.from_state(
            float(rng.uniform(0.5, 20.0)),
            float(rng.uniform(-4.0, 2.0)),
            params,
        )
        for _ in range(count)
    ]


def _rows(rng, n_ticks, per_tick, width):
    """Row tick indices plus uniform-noise threat samples."""
    ticks = np.repeat(np.arange(n_ticks), per_tick)
    gaps = rng.uniform(-5.0, 120.0, size=(ticks.size, width))
    speeds = rng.uniform(-10.0, 30.0, size=(ticks.size, width))
    return ticks, gaps, speeds


def _narrow(grid_wide, grid_narrow, samples):
    """Re-slice stacked-width samples to a single trace's width.

    The narrow master axis is a bit-exact prefix of the wide one and
    the reaction columns sit after the master block, so a trace's own
    sample layout is ``[:T_narrow]`` plus the trailing ``L`` columns.
    """
    t_wide = grid_wide.times.size
    t_narrow = grid_narrow.times.size
    return np.concatenate(
        [samples[:, :t_narrow], samples[:, t_wide:]], axis=1
    )


@relaxed
@given(seed=seeds, ticks_a=tick_counts, ticks_b=tick_counts)
def test_stacked_grid_matches_per_trace_solves(seed, ticks_a, ticks_b):
    """Rows through a two-trace stacked grid == per-trace grid solves."""
    params = ZhuyiParams()
    engine = LatencyEngine(params=params)
    rng = np.random.default_rng(seed)
    motions_a = _motions(rng, ticks_a, params)
    motions_b = _motions(rng, ticks_b, params)

    stacked = engine.trace_grid(motions_a + motions_b, L0)
    grid_a = engine.trace_grid(motions_a, L0)
    grid_b = engine.trace_grid(motions_b, L0)
    width = stacked.times.size + stacked.reactions.size

    ticks_arr_a, gaps_a, speeds_a = _rows(rng, ticks_a, 3, width)
    ticks_arr_b, gaps_b, speeds_b = _rows(rng, ticks_b, 3, width)

    combined = engine.solve_rows(
        stacked,
        np.concatenate([ticks_arr_a, ticks_arr_b + ticks_a]),
        motions_a + motions_b,
        np.vstack([gaps_a, gaps_b]),
        np.vstack([speeds_a, speeds_b]),
    )
    alone_a = engine.solve_rows(
        grid_a,
        ticks_arr_a,
        motions_a,
        _narrow(stacked, grid_a, gaps_a),
        _narrow(stacked, grid_a, speeds_a),
    )
    alone_b = engine.solve_rows(
        grid_b,
        ticks_arr_b,
        motions_b,
        _narrow(stacked, grid_b, gaps_b),
        _narrow(stacked, grid_b, speeds_b),
    )
    assert combined == alone_a + alone_b


@relaxed
@given(seed=seeds, n_ticks=tick_counts)
def test_solve_rows_permutation_invariant(seed, n_ticks):
    """An arbitrary row interleaving permutes the results and no more."""
    params = ZhuyiParams()
    engine = LatencyEngine(params=params)
    rng = np.random.default_rng(seed)
    motions = _motions(rng, n_ticks, params)
    grid = engine.trace_grid(motions, L0)
    width = grid.times.size + grid.reactions.size
    ticks, gaps, speeds = _rows(rng, n_ticks, 4, width)

    baseline = engine.solve_rows(grid, ticks, motions, gaps, speeds)
    perm = rng.permutation(ticks.size)
    shuffled = engine.solve_rows(
        grid, ticks[perm], motions, gaps[perm], speeds[perm]
    )
    assert shuffled == [baseline[i] for i in perm]


@relaxed
@given(seed=seeds, n_ticks=st.integers(min_value=1, max_value=3))
def test_grouped_kernel_matches_row_at_a_time(seed, n_ticks):
    """A tick-dense batch (grouped kernel) == singleton solves (gathered)."""
    params = ZhuyiParams()
    engine = LatencyEngine(params=params)
    rng = np.random.default_rng(seed)
    motions = _motions(rng, n_ticks, params)
    grid = engine.trace_grid(motions, L0)
    width = grid.times.size + grid.reactions.size
    # Well past _GROUPED_MIN_ROWS_PER_TICK rows per tick: the batch
    # call runs the tick-resident kernel, each singleton the gathered
    # one.
    ticks, gaps, speeds = _rows(rng, n_ticks, 24, width)

    batch = engine.solve_rows(grid, ticks, motions, gaps, speeds)
    singles = [
        engine.solve_rows(
            grid, ticks[r : r + 1], motions, gaps[r : r + 1],
            speeds[r : r + 1],
        )[0]
        for r in range(ticks.size)
    ]
    assert batch == singles


@relaxed
@given(seed=seeds, n_ticks=tick_counts)
def test_variant_constraints_match_dedicated_engines(seed, n_ticks):
    """c1/c2 row constraints == per-variant engines on the same grid."""
    base = ZhuyiParams()
    engine = LatencyEngine(params=base)
    rng = np.random.default_rng(seed)
    motions = _motions(rng, n_ticks, base)
    grid = engine.trace_grid(motions, L0)
    width = grid.times.size + grid.reactions.size
    ticks, gaps, speeds = _rows(rng, n_ticks, 3, width)

    variants = [(1.0, 1.0), (0.85, 1.0), (1.0, 0.85), (0.9, 0.95)]
    n = len(variants)
    stacked = engine.solve_rows(
        grid,
        np.tile(ticks, n),
        motions,
        np.tile(gaps, (n, 1)),
        np.tile(speeds, (n, 1)),
        constraints=(
            np.repeat([c1 for c1, _ in variants], ticks.size),
            np.repeat([c2 for _, c2 in variants], ticks.size),
        ),
    )
    for vi, (c1, c2) in enumerate(variants):
        dedicated = LatencyEngine(
            params=replace(base, c1=c1, c2=c2)
        ).solve_rows(grid, ticks, motions, gaps, speeds)
        assert stacked[vi * ticks.size : (vi + 1) * ticks.size] == dedicated
