"""Property-based parity: prediction batch kernels vs their scalar loops.

The batched replay path is bit-identical to the per-tick reference only
because three kernels are: the clamped constant-acceleration integrator
(``travel_arrays`` vs the scalar ``travel`` branches), the per-row
trajectory interpolator (``RolloutArrays.sample_extrapolated`` vs
``StateTrajectory.sample_extrapolated``) and the predictors' closed-form
rollouts (``predict_trace`` vs a stacked per-tick ``predict`` loop).
Each contract is pinned here over arbitrary inputs, plus the closed-form
sample grid's prefix/exactness properties that replaced the drifting
``t += period`` accumulation.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamics.longitudinal import travel, travel_arrays
from repro.dynamics.state import (
    RolloutArrays,
    StateTrajectory,
    TimedState,
    VehicleState,
)
from repro.geometry.vec import Vec2
from repro.perception.world_model import PerceivedActor
from repro.prediction.base import (
    predict_trace_via_loop,
    sample_times,
)
from repro.prediction.constant_accel import ConstantAccelerationPredictor
from repro.prediction.constant_velocity import ConstantVelocityPredictor
from repro.prediction.maneuver import ManeuverPredictor
from repro.road.track import three_lane_curved_road, three_lane_straight_road

relaxed = settings(max_examples=60, deadline=None)

speed = st.floats(min_value=0.0, max_value=70.0)
accel = st.floats(min_value=-9.0, max_value=5.0)
duration = st.floats(min_value=0.0, max_value=15.0)
cap = st.one_of(st.none(), st.floats(min_value=0.5, max_value=70.0))


class TestTravelArrays:
    @relaxed
    @given(
        st.lists(st.tuples(speed, accel, duration), min_size=1, max_size=20),
        cap,
    )
    def test_matches_scalar_travel(self, rows, max_speed):
        v0 = np.array([row[0] for row in rows])
        a = np.array([row[1] for row in rows])
        t = np.array([row[2] for row in rows])
        distances, speeds = travel_arrays(v0, a, t, max_speed)
        for i, (v, acc, dt) in enumerate(rows):
            d_ref, v_ref = travel(v, acc, dt, max_speed)
            # End speeds are branch outputs (no squaring) and must match
            # bit for bit; distances involve x**2, where numpy squares
            # by multiplication while CPython calls libm pow — the two
            # can differ in the last bit, so distances get an ulp-scale
            # tolerance. (The predictors route both their per-tick and
            # batch paths through travel_arrays, so this tolerance never
            # reaches the replay parity contract.)
            assert speeds[i] == v_ref
            assert distances[i] == d_ref or abs(
                distances[i] - d_ref
            ) <= 4.0 * np.spacing(abs(d_ref))

    @relaxed
    @given(speed, accel, duration, cap)
    def test_scalar_shape_round_trip(self, v0, a, t, max_speed):
        distance, end_speed = travel_arrays(
            np.array([v0]), np.array([a]), np.array([t]), max_speed
        )
        assert end_speed[0] >= 0.0
        if max_speed is not None and a > 0.0 and v0 <= max_speed:
            assert end_speed[0] <= max_speed + 1e-12


knot_count = st.integers(min_value=1, max_value=12)


@st.composite
def rollout_rows(draw):
    """A batch of rollouts plus the equivalent StateTrajectory list."""
    n_rows = draw(st.integers(min_value=1, max_value=6))
    n_knots = draw(knot_count)
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**31)))
    starts = rng.uniform(0.0, 10.0, n_rows)
    steps = rng.uniform(0.05, 1.0, (n_rows, max(n_knots - 1, 1)))
    times = np.concatenate(
        [starts[:, None], starts[:, None] + np.cumsum(steps, axis=1)], axis=1
    )[:, :n_knots]
    xs = rng.uniform(-200.0, 200.0, (n_rows, n_knots))
    ys = rng.uniform(-200.0, 200.0, (n_rows, n_knots))
    speeds = rng.uniform(0.0, 40.0, (n_rows, n_knots))
    headings = rng.uniform(-np.pi, np.pi, (n_rows, n_knots))
    trajectories = [
        StateTrajectory(
            TimedState(
                time=float(times[r, k]),
                state=VehicleState(
                    position=Vec2(float(xs[r, k]), float(ys[r, k])),
                    heading=float(headings[r, k]),
                    speed=float(speeds[r, k]),
                ),
            )
            for k in range(n_knots)
        )
        for r in range(n_rows)
    ]
    end_velocities = [t.knot_arrays()[4] for t in trajectories]
    rollout = RolloutArrays(
        times=times,
        xs=xs,
        ys=ys,
        speeds=speeds,
        end_vx=np.array([v[0] for v in end_velocities]),
        end_vy=np.array([v[1] for v in end_velocities]),
    )
    queries = rng.uniform(-2.0, 25.0, (n_rows, 40))
    # Exact knot hits, the final knot, and beyond-the-end queries are
    # the interpolator's corners; force them into every example.
    for r in range(n_rows):
        queries[r, :n_knots] = times[r, rng.integers(0, n_knots, n_knots)]
        queries[r, n_knots] = times[r, -1]
        queries[r, n_knots + 1] = times[r, -1] + 3.0
    return rollout, trajectories, queries


class TestRolloutInterpolation:
    @relaxed
    @given(rollout_rows())
    def test_bit_identical_to_state_trajectory(self, case):
        rollout, trajectories, queries = case
        xs, ys, speeds = rollout.sample_extrapolated(queries)
        for r, trajectory in enumerate(trajectories):
            x_ref, y_ref, v_ref = trajectory.sample_extrapolated(queries[r])
            assert np.array_equal(xs[r], x_ref)
            assert np.array_equal(ys[r], y_ref)
            assert np.array_equal(speeds[r], v_ref)


horizon = st.floats(min_value=0.05, max_value=12.0)
period = st.sampled_from([0.1, 0.2, 0.25, 0.5, 1.0 / 3.0])


class TestSampleGridProperties:
    @relaxed
    @given(horizon, period)
    def test_covers_horizon_without_overshoot(self, h, p):
        grid = sample_times(h, p)
        assert grid[0] == 0.0
        assert np.all(grid <= h + 1e-9 * p + 1e-12)
        # The next sample would overshoot: the grid is maximal.
        assert grid.size * p > h - 1e-9 * p - 1e-12

    @relaxed
    @given(horizon, horizon, period)
    def test_shorter_horizon_is_prefix(self, h1, h2, p):
        lo, hi = sorted((h1, h2))
        short = sample_times(lo, p)
        long = sample_times(hi, p)
        assert np.array_equal(short, long[: short.size])


@st.composite
def perceived_trace(draw):
    n_ticks = draw(st.integers(min_value=1, max_value=6))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**31)))
    nows = 0.25 * np.arange(n_ticks) + float(rng.uniform(0.0, 2.0))
    actors = [
        PerceivedActor(
            actor_id="a",
            position=Vec2(float(rng.uniform(0.0, 300.0)), float(rng.uniform(-6.0, 6.0))),
            velocity=Vec2.unit(h := float(rng.uniform(-0.4, 0.4)))
            * (v := float(rng.uniform(0.0, 35.0))),
            heading=h,
            speed=v,
            accel=float(rng.uniform(-5.0, 3.0)),
            timestamp=float(now),
        )
        for now in nows
    ]
    return actors, nows


class TestPredictTraceParity:
    """Batch rollouts == the stacked per-tick predict loop, bit for bit."""

    def assert_equal(self, batch, stacked):
        assert stacked is not None
        assert [h.label for h in batch] == [h.label for h in stacked]
        for hypothesis_b, hypothesis_s in zip(batch, stacked):
            assert np.array_equal(hypothesis_b.active, hypothesis_s.active)
            rows = np.flatnonzero(hypothesis_b.active)
            assert np.array_equal(
                hypothesis_b.probabilities[rows],
                hypothesis_s.probabilities[rows],
            )
            for name in ("times", "xs", "ys", "speeds", "end_vx", "end_vy"):
                assert np.array_equal(
                    getattr(hypothesis_b.rollout, name)[rows],
                    getattr(hypothesis_s.rollout, name)[rows],
                ), (hypothesis_b.label, name)

    @relaxed
    @given(perceived_trace(), horizon)
    def test_constant_velocity(self, case, h):
        actors, nows = case
        predictor = ConstantVelocityPredictor()
        self.assert_equal(
            predictor.predict_trace(actors, nows, h),
            predict_trace_via_loop(predictor, actors, nows, h),
        )

    @relaxed
    @given(perceived_trace(), horizon)
    def test_constant_accel(self, case, h):
        actors, nows = case
        predictor = ConstantAccelerationPredictor()
        self.assert_equal(
            predictor.predict_trace(actors, nows, h),
            predict_trace_via_loop(predictor, actors, nows, h),
        )

    @relaxed
    @given(perceived_trace(), horizon, st.booleans())
    def test_maneuver_with_lane_change(self, case, h, curved):
        actors, nows = case
        road = (
            three_lane_curved_road() if curved else three_lane_straight_road()
        )
        predictor = ManeuverPredictor(road=road, target_lane=1)
        self.assert_equal(
            predictor.predict_trace(actors, nows, h),
            predict_trace_via_loop(predictor, actors, nows, h),
        )
