"""Property-based parity: batched engine vs the scalar EXACT search.

The engine promises bit-identical results — latency, check time and
the iterations count — for arbitrary ego states, threats and current
latencies, including the subtle corners: unavoidable collisions, the
``t_r``-window insertion (a reaction time falling between ``tn_step``
multiples), and gaps so tight the feasible window is narrower than one
scan step.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import LatencyEngine
from repro.core.ego_profile import EgoMotion
from repro.core.latency import LatencySearch
from repro.core.parameters import ZhuyiParams
from repro.core.threat import FixedGapThreat, TrajectoryThreat
from repro.dynamics.state import (
    StateTrajectory,
    TimedState,
    VehicleSpec,
    VehicleState,
)
from repro.geometry.vec import Vec2

PARAMS = ZhuyiParams()
SPEC = VehicleSpec()

ego_speed = st.floats(min_value=0.0, max_value=40.0)
ego_accel = st.floats(min_value=-6.0, max_value=4.0)
gap = st.floats(min_value=0.0, max_value=300.0)
actor_speed = st.floats(min_value=0.0, max_value=40.0)
l0 = st.floats(min_value=1.0 / 30.0, max_value=1.0)
strict = st.booleans()

relaxed = settings(max_examples=60, deadline=None)


def assert_same(scalar, batched):
    assert scalar.latency == batched.latency
    assert scalar.check_time == batched.check_time
    assert scalar.iterations == batched.iterations


class TestFixedGapParity:
    @relaxed
    @given(ego_speed, ego_accel, gap, actor_speed, l0, strict)
    def test_exact_parity(self, v, a, g, va, current, is_strict):
        motion = EgoMotion.from_state(v, a, PARAMS)
        threat = FixedGapThreat(g, va)
        scalar = LatencySearch(params=PARAMS, strict=is_strict)
        engine = LatencyEngine(params=PARAMS, strict=is_strict)
        assert_same(
            scalar.tolerable_latency(motion, threat, current),
            engine.solve(motion, threat, current),
        )

    @relaxed
    @given(
        ego_speed,
        st.floats(min_value=0.1, max_value=60.0),
        actor_speed,
        st.floats(min_value=0.01, max_value=0.05),
        st.integers(min_value=0, max_value=8),
    )
    def test_tr_window_edges(self, v, g, va, step, k):
        # Odd tn_steps and confirmation multipliers park t_r between
        # grid points, where a sub-step feasible window can open
        # exactly at t_r — the union1d insertion the kernel replays in
        # index arithmetic.
        params = ZhuyiParams(tn_step=step, k=k)
        motion = EgoMotion.from_state(v, 0.0, params)
        threat = FixedGapThreat(g, va)
        assert_same(
            LatencySearch(params=params).tolerable_latency(
                motion, threat, 1.0 / 30.0
            ),
            LatencyEngine(params=params).solve(motion, threat, 1.0 / 30.0),
        )

    @relaxed
    @given(ego_speed, actor_speed, l0)
    def test_unavoidable_parity(self, v, va, current):
        # Zero gap with a moving ego: infeasible all the way down.
        motion = EgoMotion.from_state(v, 0.0, PARAMS)
        threat = FixedGapThreat(0.0, va)
        assert_same(
            LatencySearch(params=PARAMS).tolerable_latency(
                motion, threat, current
            ),
            LatencyEngine(params=PARAMS).solve(motion, threat, current),
        )


trajectory_points = st.lists(
    st.tuples(
        st.floats(min_value=-3.0, max_value=12.0),  # x displacement step
        st.floats(min_value=-2.0, max_value=2.0),  # y
        st.floats(min_value=0.0, max_value=30.0),  # speed
    ),
    min_size=2,
    max_size=7,
)


class TestTrajectoryParity:
    @relaxed
    @given(ego_speed, ego_accel, st.floats(5.0, 120.0), trajectory_points, l0)
    def test_trajectory_threat_parity(self, v, a, start_x, points, current):
        samples = []
        x = start_x
        for index, (dx, y, speed) in enumerate(points):
            x += dx
            samples.append(
                TimedState(
                    1.3 * index,
                    VehicleState(
                        position=Vec2(x, y), heading=0.0, speed=speed, accel=0.0
                    ),
                )
            )
        trajectory = StateTrajectory(samples)
        ego_state = VehicleState(
            position=Vec2(0.0, 0.0), heading=0.0, speed=v, accel=a
        )
        motion = EgoMotion.from_state(v, a, PARAMS)
        threat = TrajectoryThreat(ego_state, SPEC, trajectory, SPEC)
        assert_same(
            LatencySearch(params=PARAMS).tolerable_latency(
                motion, threat, current
            ),
            LatencyEngine(params=PARAMS).solve(motion, threat, current),
        )


class TestRowsParity:
    @relaxed
    @given(
        st.lists(st.tuples(ego_speed, ego_accel), min_size=1, max_size=4),
        st.lists(st.tuples(gap, actor_speed), min_size=1, max_size=3),
        l0,
    )
    def test_trace_rows_match_scalar(self, egos, threat_params, current):
        # The trace-level row solver (the evaluator's hot path) against
        # the scalar loop, across ticks with differing ego states.
        motions = [EgoMotion.from_state(v, a, PARAMS) for v, a in egos]
        threats = [FixedGapThreat(g, va) for g, va in threat_params]
        engine = LatencyEngine(params=PARAMS)
        grid = engine.trace_grid(motions, current)
        rel_times = np.concatenate([grid.times, grid.reactions])
        ticks, gaps, speeds = [], [], []
        for tick in range(len(motions)):
            for threat in threats:
                g, s = threat.sample(rel_times)
                ticks.append(tick)
                gaps.append(g)
                speeds.append(s)
        rows = engine.solve_rows(
            grid, np.array(ticks), motions, np.stack(gaps), np.stack(speeds)
        )
        scalar = LatencySearch(params=PARAMS)
        k = 0
        for tick in range(len(motions)):
            for threat in threats:
                assert_same(
                    scalar.tolerable_latency(motions[tick], threat, current),
                    rows[k],
                )
                k += 1
