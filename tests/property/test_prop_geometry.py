"""Property-based tests: geometry invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.boxes import OrientedBox, boxes_overlap
from repro.geometry.transforms import Frame2
from repro.geometry.vec import Vec2
from repro.road.lane import ArcCenterline, FrenetPoint, StraightCenterline

finite = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
)
angle = st.floats(min_value=-math.pi, max_value=math.pi)
positive = st.floats(min_value=0.5, max_value=100.0)


@st.composite
def vectors(draw):
    return Vec2(draw(finite), draw(finite))


@st.composite
def frames(draw):
    return Frame2(draw(vectors()), draw(angle))


@st.composite
def boxes(draw):
    return OrientedBox(
        center=Vec2(
            draw(st.floats(min_value=-50, max_value=50)),
            draw(st.floats(min_value=-50, max_value=50)),
        ),
        heading=draw(angle),
        length=draw(positive),
        width=draw(positive),
    )


class TestVecProperties:
    @given(vectors())
    def test_rotation_preserves_norm(self, v):
        rotated = v.rotated(1.2345)
        assert math.isclose(rotated.norm(), v.norm(), abs_tol=1e-6)

    @given(vectors(), angle)
    def test_rotate_inverse(self, v, a):
        back = v.rotated(a).rotated(-a)
        assert back.distance_to(v) < 1e-6

    @given(vectors(), vectors())
    def test_triangle_inequality(self, a, b):
        assert (a + b).norm() <= a.norm() + b.norm() + 1e-9

    @given(vectors())
    def test_perp_is_orthogonal(self, v):
        assert abs(v.dot(v.perp())) < 1e-6


class TestFrameProperties:
    @given(frames(), vectors())
    def test_round_trip(self, frame, p):
        assert frame.to_world(frame.to_local(p)).distance_to(p) < 1e-6

    @given(frames(), vectors(), vectors())
    def test_transform_preserves_distance(self, frame, a, b):
        la, lb = frame.to_local(a), frame.to_local(b)
        assert math.isclose(
            la.distance_to(lb), a.distance_to(b), rel_tol=1e-9, abs_tol=1e-6
        )


class TestBoxProperties:
    @given(boxes(), boxes())
    def test_overlap_symmetric(self, a, b):
        assert boxes_overlap(a, b) == boxes_overlap(b, a)

    @given(boxes())
    def test_box_overlaps_itself(self, box):
        assert boxes_overlap(box, box)

    @given(boxes())
    def test_corners_inside_own_box(self, box):
        for corner in box.corners():
            # Shrink toward the centre to dodge boundary epsilon.
            probe = box.center.lerp(corner, 0.999)
            assert box.contains_point(probe)

    @given(boxes(), st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    def test_far_translation_never_overlaps(self, box, fx, fy):
        diameter = 2.0 * box.circumradius() + 1.0
        shifted = OrientedBox(
            center=box.center + Vec2(diameter * (1 + fx), diameter * (1 + fy)),
            heading=box.heading,
            length=box.length,
            width=box.width,
        )
        assert not boxes_overlap(box, shifted)


class TestFrenetProperties:
    @given(
        st.floats(min_value=0.0, max_value=999.0),
        st.floats(min_value=-5.0, max_value=5.0),
        angle,
    )
    def test_straight_round_trip(self, s, d, heading):
        line = StraightCenterline(Vec2(3, -7), heading, 1000.0)
        back = line.to_frenet(line.to_world(FrenetPoint(s, d)))
        assert math.isclose(back.s, s, abs_tol=1e-6)
        assert math.isclose(back.d, d, abs_tol=1e-6)

    @settings(max_examples=50)
    @given(
        st.floats(min_value=0.0, max_value=300.0),
        st.floats(min_value=-5.0, max_value=5.0),
        st.booleans(),
    )
    def test_arc_round_trip(self, s, d, turn_left):
        center = Vec2(0, 200) if turn_left else Vec2(0, -200)
        start = -math.pi / 2 if turn_left else math.pi / 2
        arc = ArcCenterline(center, 200.0, start, 310.0, turn_left)
        back = arc.to_frenet(arc.to_world(FrenetPoint(s, d)))
        assert math.isclose(back.s, s, abs_tol=1e-6)
        assert math.isclose(back.d, d, abs_tol=1e-6)

    @settings(max_examples=50)
    @given(st.floats(min_value=0.0, max_value=300.0))
    def test_arc_station_spacing_is_arc_length(self, s):
        arc = ArcCenterline(Vec2(0, 200), 200.0, -math.pi / 2, 310.0, True)
        step = 0.01
        a = arc.point_at(s)
        b = arc.point_at(min(s + step, arc.length))
        chord = a.distance_to(b)
        assert chord <= step + 1e-9
        assert chord >= step * 0.999 or s + step > arc.length
