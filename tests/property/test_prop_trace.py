"""Property-based tests: trace serialization is lossless.

Satellite of the trace-store PR: whatever a trace holds — planner
modes, per-step camera FPRs, vehicle specs, collision payloads, typed
metadata — must survive both round trips bit for bit: the JSON archive
(``to_dict``/``from_dict``) and the store's columnar form
(:class:`TraceArrays`). Silent loss here would quietly break the warm
campaign byte-parity contract, so the generator deliberately covers
ragged camera mappings, actors that enter mid-trace, duplicate-free
mode vocabularies and nested metadata.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamics.state import VehicleSpec, VehicleState
from repro.errors import TraceError
from repro.geometry.vec import Vec2
from repro.sim.collision import CollisionEvent
from repro.sim.trace import ScenarioTrace, TraceStep
from repro.store import TraceArrays, trace_arrays_equal

ACTORS = ("lead", "cutter", "trailer")
CAMERAS = ("front", "left", "right")
MODES = ("cruise", "brake", "swerve")

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
small = st.floats(
    min_value=0.0, max_value=60.0, allow_nan=False, allow_infinity=False
)


@st.composite
def states(draw):
    return VehicleState(
        position=Vec2(draw(finite), draw(finite)),
        heading=draw(finite),
        speed=draw(small),
        accel=draw(finite),
    )


@st.composite
def specs(draw):
    length = draw(small) + 3.0
    return VehicleSpec(
        length=length,
        width=draw(small) + 1.0,
        wheelbase=draw(st.floats(min_value=0.3, max_value=0.9)) * length,
        max_accel=draw(small) + 0.1,
        max_decel=draw(small) + 0.1,
        max_speed=draw(small) + 1.0,
    )


metadata_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    finite,
    st.text(max_size=8),
)
metadata_values = st.recursive(
    metadata_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.text(max_size=6), children, max_size=3),
    ),
    max_leaves=6,
)


@st.composite
def traces(draw):
    n_steps = draw(st.integers(min_value=2, max_value=10))
    # Strictly ascending timestamps with irregular gaps.
    gaps = draw(
        st.lists(
            st.floats(min_value=1e-3, max_value=2.0),
            min_size=n_steps,
            max_size=n_steps,
        )
    )
    times = np.cumsum(gaps)

    # Each actor occupies one contiguous [start, end) window; windows
    # are assigned to the actor tuple in ascending start order so every
    # step's insertion order equals the global first-appearance order
    # (the invariant the simulator upholds and the columnar form
    # requires).
    n_actors = draw(st.integers(min_value=0, max_value=len(ACTORS)))
    windows = sorted(
        (
            draw(st.integers(min_value=0, max_value=n_steps - 1)),
            draw(st.integers(min_value=1, max_value=n_steps)),
        )
        for _ in range(n_actors)
    )
    windows = [(lo, max(lo + 1, hi)) for lo, hi in windows]

    steps = []
    for pos in range(n_steps):
        actors = {
            ACTORS[rank]: draw(states())
            for rank, (lo, hi) in enumerate(windows)
            if lo <= pos < hi
        }
        cameras = draw(
            st.lists(st.sampled_from(CAMERAS), unique=True, max_size=3)
        )
        steps.append(
            TraceStep(
                time=float(times[pos]),
                ego=draw(states()),
                actors=actors,
                planner_mode=draw(st.sampled_from(MODES)),
                camera_fprs={name: draw(small) for name in cameras},
            )
        )

    collided = draw(st.booleans()) and n_actors > 0
    return ScenarioTrace(
        scenario=draw(st.sampled_from(("cut_in", "cut_out", "synthetic"))),
        dt=float(times[0]),
        steps=steps,
        collisions=(
            [
                CollisionEvent(
                    time=float(times[-1]),
                    actor_id=ACTORS[draw(st.integers(0, n_actors - 1))],
                )
            ]
            if collided
            else []
        ),
        nominal_fpr=draw(st.one_of(st.none(), st.just(30.0))),
        seed=draw(st.one_of(st.none(), st.integers(0, 99))),
        ego_spec=draw(specs()),
        actor_specs={
            ACTORS[rank]: draw(specs()) for rank in range(n_actors)
        },
        metadata=draw(
            st.dictionaries(st.text(max_size=6), metadata_values, max_size=3)
        ),
    )


def assert_traces_equal(a: ScenarioTrace, b: ScenarioTrace) -> None:
    """Bit-exact step-level equality, iteration orders included."""
    assert a.scenario == b.scenario
    assert a.dt == b.dt
    assert a.nominal_fpr == b.nominal_fpr
    assert a.seed == b.seed
    assert a.ego_spec == b.ego_spec
    assert a.actor_specs == b.actor_specs
    assert list(a.actor_specs) == list(b.actor_specs)
    assert a.metadata == b.metadata
    assert a.collisions == b.collisions
    assert len(a.steps) == len(b.steps)
    for sa, sb in zip(a.steps, b.steps):
        assert sa.time == sb.time
        assert sa.ego == sb.ego
        assert dict(sa.actors) == dict(sb.actors)
        assert list(sa.actors) == list(sb.actors)
        assert sa.planner_mode == sb.planner_mode
        assert dict(sa.camera_fprs) == dict(sb.camera_fprs)
        assert list(sa.camera_fprs) == list(sb.camera_fprs)


class TestJsonRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(traces())
    def test_dict_round_trip_is_lossless(self, trace):
        data = json.loads(json.dumps(trace.to_dict()))
        assert_traces_equal(trace, ScenarioTrace.from_dict(data))

    @settings(max_examples=60, deadline=None)
    @given(traces())
    def test_columnar_round_trip_is_lossless(self, trace):
        arrays = TraceArrays.from_trace(trace)
        back = arrays.to_trace()
        assert_traces_equal(trace, back)
        assert trace_arrays_equal(arrays, TraceArrays.from_trace(back))

    @settings(max_examples=30, deadline=None)
    @given(traces())
    def test_json_then_columnar_commute(self, trace):
        via_json = ScenarioTrace.from_dict(
            json.loads(json.dumps(trace.to_dict()))
        )
        assert trace_arrays_equal(
            TraceArrays.from_trace(trace), TraceArrays.from_trace(via_json)
        )


class TestLossRejection:
    def _step(self, **kwargs):
        defaults = dict(
            time=0.0,
            ego=VehicleState(position=Vec2(0.0, 0.0), heading=0.0, speed=0.0),
            actors={},
        )
        defaults.update(kwargs)
        return TraceStep(**defaults)

    def test_non_string_actor_id_rejected(self):
        step = self._step(
            actors={7: VehicleState(position=Vec2(0.0, 0.0), heading=0.0, speed=0.0)}
        )
        with pytest.raises(TraceError, match="must be strings"):
            ScenarioTrace(scenario="s", dt=0.1, steps=[step])

    def test_non_string_camera_id_rejected(self):
        step = self._step(camera_fprs={3: 12.0})
        with pytest.raises(TraceError, match="camera id"):
            ScenarioTrace(scenario="s", dt=0.1, steps=[step])

    def test_non_string_collision_actor_rejected(self):
        with pytest.raises(TraceError, match="collision actor ids"):
            ScenarioTrace(
                scenario="s",
                dt=0.1,
                steps=[self._step()],
                collisions=[CollisionEvent(time=0.0, actor_id=1)],
            )

    def test_metadata_numpy_scalars_collapse(self):
        trace = ScenarioTrace(
            scenario="s",
            dt=0.1,
            steps=[self._step()],
            metadata={
                "count": np.int64(4),
                "gain": np.float64(0.5),
                "nested": {"shape": (3, 4)},
            },
        )
        assert trace.metadata == {
            "count": 4,
            "gain": 0.5,
            "nested": {"shape": [3, 4]},
        }
        assert type(trace.metadata["count"]) is int
        reloaded = ScenarioTrace.from_dict(
            json.loads(json.dumps(trace.to_dict()))
        )
        assert reloaded.metadata == trace.metadata

    def test_unserializable_metadata_rejected(self):
        with pytest.raises(TraceError, match="JSON round trip"):
            ScenarioTrace(
                scenario="s",
                dt=0.1,
                steps=[self._step()],
                metadata={"bad": {1, 2}},
            )

    def test_inconsistent_actor_order_rejected(self):
        a = VehicleState(position=Vec2(0.0, 0.0), heading=0.0, speed=0.0)
        steps = [
            self._step(time=0.0, actors={"x": a, "y": a}),
            self._step(time=0.1, actors={"y": a, "x": a}),
        ]
        trace = ScenarioTrace(scenario="s", dt=0.1, steps=steps)
        with pytest.raises(TraceError, match="first-appearance"):
            TraceArrays.from_trace(trace)
