"""Campaign spec, result store and aggregation (no simulations here)."""

import json

import pytest

from repro.batch import (
    Campaign,
    CampaignResult,
    ParamVariant,
    RunSummary,
    campaign_table1,
    full_catalog_campaign,
    render_campaign_table,
    summarize_failures,
)
from repro.core.parameters import ZhuyiParams
from repro.errors import ConfigurationError, TraceError


def summary(
    index: int,
    scenario: str = "cut_in",
    seed: int = 0,
    fpr: float = 30.0,
    collided: bool = False,
    max_fpr: float = 2.0,
    error: str | None = None,
) -> RunSummary:
    if collided or error:
        return RunSummary(
            index=index,
            scenario=scenario,
            seed=seed,
            fpr=fpr,
            variant="default",
            collided=collided,
            collision_time=5.0 if collided else None,
            error=error,
        )
    return RunSummary(
        index=index,
        scenario=scenario,
        seed=seed,
        fpr=fpr,
        variant="default",
        collided=False,
        max_fpr=max_fpr,
        max_total_fpr=max_fpr + 2.0,
        fraction_of_provision=(max_fpr + 2.0) / 90.0,
        camera_max_fpr={"front_120": max_fpr, "left": 1.0, "right": 1.0},
        ticks=100,
        duration=30.0,
    )


class TestCampaignSpec:
    def test_grid_size_and_order(self):
        campaign = Campaign(
            scenarios=("cut_out", "cut_in"),
            seeds=(0, 1),
            fprs=(5.0, 30.0),
        )
        specs = campaign.runs()
        assert campaign.size == len(specs) == 8
        assert [spec.index for spec in specs] == list(range(8))
        # scenario-major, then seed, then fpr.
        assert (specs[0].scenario, specs[0].seed, specs[0].fpr) == (
            "cut_out", 0, 5.0,
        )
        assert (specs[1].scenario, specs[1].seed, specs[1].fpr) == (
            "cut_out", 0, 30.0,
        )
        assert specs[-1].scenario == "cut_in"

    def test_variant_expansion(self):
        strict = ZhuyiParams(c1=0.8, c2=0.8)
        campaign = Campaign(
            scenarios=("cut_in",),
            variants=(ParamVariant("default"), ParamVariant("strict", strict)),
        )
        specs = campaign.runs()
        assert [spec.variant for spec in specs] == ["default", "strict"]
        assert specs[0].resolved_params() == ZhuyiParams()
        assert specs[1].resolved_params() == strict

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            Campaign(scenarios=("warp",))

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            Campaign(scenarios=())
        with pytest.raises(ConfigurationError):
            Campaign(scenarios=("cut_in",), seeds=())
        with pytest.raises(ConfigurationError):
            Campaign(scenarios=("cut_in",), fprs=())

    def test_duplicate_variant_names_rejected(self):
        with pytest.raises(ConfigurationError):
            Campaign(
                scenarios=("cut_in",),
                variants=(ParamVariant("a"), ParamVariant("a")),
            )

    def test_duplicate_grid_entries_rejected(self):
        with pytest.raises(ConfigurationError):
            Campaign(scenarios=("cut_in", "cut_in"))
        with pytest.raises(ConfigurationError):
            Campaign(scenarios=("cut_in",), seeds=(0, 0))
        with pytest.raises(ConfigurationError):
            Campaign(scenarios=("cut_in",), fprs=(30.0, 30.0))

    def test_bad_stride_rejected(self):
        with pytest.raises(ConfigurationError):
            Campaign(scenarios=("cut_in",), stride=0.0)

    def test_full_catalog_covers_registry(self):
        campaign = full_catalog_campaign()
        assert "cut_out" in campaign.scenarios
        assert "vehicle_following" in campaign.scenarios

    def test_grid_dict_round_trip(self):
        campaign = Campaign(
            scenarios=("cut_out", "cut_in"),
            seeds=(0, 3),
            fprs=(5.0, 30.0),
            variants=(ParamVariant("strict", ZhuyiParams(c1=0.8)),),
            stride=0.1,
        )
        assert Campaign.from_dict(campaign.to_dict()) == campaign


class TestShardPartition:
    def campaign(self) -> Campaign:
        return Campaign(
            scenarios=("cut_out", "cut_in"),
            seeds=(0, 1),
            fprs=(5.0, 30.0),
            variants=(
                ParamVariant("default"),
                ParamVariant("strict", ZhuyiParams(c1=0.8)),
            ),
        )

    @pytest.mark.parametrize("count", [1, 2, 3, 5, 8])
    def test_union_of_shards_is_full_grid(self, count):
        campaign = self.campaign()
        indices = []
        for index in range(count):
            indices.extend(spec.index for spec in campaign.shard(index, count))
        # Union covers every run, no overlaps, regardless of shard count.
        assert sorted(indices) == [spec.index for spec in campaign.runs()]
        assert len(indices) == len(set(indices))

    def test_shards_keep_variants_together(self):
        # All variants of a (scenario, seed, fpr) cell stay on one
        # shard — the cross-variant trace cache survives sharding.
        campaign = self.campaign()
        for count in (2, 3):
            for index in range(count):
                cells: dict[tuple, int] = {}
                for spec in campaign.shard(index, count):
                    key = (spec.scenario, spec.seed, spec.fpr)
                    cells[key] = cells.get(key, 0) + 1
                assert all(n == len(campaign.variants) for n in cells.values())

    def test_shard_specs_match_full_grid_specs(self):
        campaign = self.campaign()
        by_index = {spec.index: spec for spec in campaign.runs()}
        for spec in campaign.shard(1, 3):
            assert spec == by_index[spec.index]

    def test_single_shard_is_whole_grid(self):
        campaign = self.campaign()
        assert campaign.shard(0, 1) == campaign.runs()

    def test_shard_validation(self):
        campaign = self.campaign()
        with pytest.raises(ConfigurationError):
            campaign.shard(0, 0)
        with pytest.raises(ConfigurationError):
            campaign.shard(2, 2 + campaign.size)  # more shards than cells
        with pytest.raises(ConfigurationError):
            campaign.shard(3, 3)
        with pytest.raises(ConfigurationError):
            campaign.shard(-1, 3)


class TestMerge:
    def campaign(self) -> Campaign:
        return Campaign(scenarios=("cut_in",), seeds=(0, 1), fprs=(30.0,))

    def test_merge_unions_shard_summaries(self):
        campaign = self.campaign()
        part0 = CampaignResult(
            campaign, [summary(0, seed=0)], workers=2, elapsed=1.0,
            shard=(0, 2),
        )
        part1 = CampaignResult(
            campaign, [summary(1, seed=1)], workers=4, elapsed=2.0,
            shard=(1, 2),
        )
        merged = CampaignResult.merge([part1, part0])
        assert [s.index for s in merged.summaries] == [0, 1]
        assert merged.is_complete
        assert merged.shard is None
        assert merged.elapsed == pytest.approx(3.0)
        assert merged.workers == 4

    def test_merge_rejects_mismatched_grids(self):
        other = Campaign(scenarios=("cut_in",), seeds=(0, 1), fprs=(5.0,))
        with pytest.raises(ConfigurationError):
            CampaignResult.merge(
                [
                    CampaignResult(self.campaign(), [summary(0)]),
                    CampaignResult(other, [summary(1, seed=1, fpr=5.0)]),
                ]
            )

    def test_merge_rejects_overlapping_indices(self):
        campaign = self.campaign()
        with pytest.raises(ConfigurationError):
            CampaignResult.merge(
                [
                    CampaignResult(campaign, [summary(0)]),
                    CampaignResult(campaign, [summary(0)]),
                ]
            )

    def test_merge_rejects_out_of_grid_index(self):
        campaign = self.campaign()
        with pytest.raises(ConfigurationError):
            CampaignResult.merge(
                [CampaignResult(campaign, [summary(99, seed=1)])]
            )

    def test_merge_rejects_nothing(self):
        with pytest.raises(ConfigurationError):
            CampaignResult.merge([])

    def test_partial_merge_reports_missing(self):
        merged = CampaignResult.merge(
            [CampaignResult(self.campaign(), [summary(0)])]
        )
        assert not merged.is_complete
        assert [spec.index for spec in merged.missing_runs()] == [1]


class TestResultStore:
    def campaign(self) -> Campaign:
        return Campaign(scenarios=("cut_in",), seeds=(0, 1), fprs=(30.0,))

    def test_summaries_sorted_by_index(self):
        result = CampaignResult(
            self.campaign(), [summary(1, seed=1), summary(0, seed=0)]
        )
        assert [s.index for s in result.summaries] == [0, 1]

    def test_failure_and_collision_queries(self):
        result = CampaignResult(
            self.campaign(),
            [
                summary(0, seed=0, collided=True),
                summary(1, seed=1, error="SimulationError: boom"),
            ],
        )
        assert len(result.collisions()) == 1
        assert len(result.failures()) == 1
        assert not result.failures()[0].ok
        assert "boom" in summarize_failures(result)

    def test_scenario_rollups_skip_bad_runs(self):
        result = CampaignResult(
            self.campaign(),
            [
                summary(0, seed=0, max_fpr=4.0),
                summary(1, seed=1, collided=True),
            ],
        )
        assert result.scenario_max_fpr("cut_in") == pytest.approx(4.0)
        assert result.scenario_max_fraction("cut_in") == pytest.approx(6.0 / 90.0)

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        result = CampaignResult(
            self.campaign(),
            [summary(0, seed=0), summary(1, seed=1, collided=True)],
            workers=2,
            elapsed=1.25,
        )
        result.save_jsonl(path)
        loaded = CampaignResult.load_jsonl(path)
        assert loaded.campaign == result.campaign
        assert loaded.workers == 2
        assert loaded.elapsed == pytest.approx(1.25)
        assert [s.to_dict() for s in loaded.summaries] == [
            s.to_dict() for s in result.summaries
        ]

    def test_load_rejects_garbage(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(TraceError):
            CampaignResult.load_jsonl(empty)
        headerless = tmp_path / "headerless.jsonl"
        headerless.write_text(json.dumps({"kind": "run"}) + "\n")
        with pytest.raises(TraceError):
            CampaignResult.load_jsonl(headerless)
        notjson = tmp_path / "notjson.jsonl"
        notjson.write_text("{nope\n")
        with pytest.raises(TraceError):
            CampaignResult.load_jsonl(notjson)
        badschema = tmp_path / "badschema.jsonl"
        badschema.write_text(
            json.dumps({"kind": "campaign", "schema": 99, "grid": {}}) + "\n"
        )
        with pytest.raises(TraceError):
            CampaignResult.load_jsonl(badschema)

    def test_complete_file_has_footer_with_metadata(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        CampaignResult(
            self.campaign(),
            [summary(0, seed=0), summary(1, seed=1)],
            workers=3,
            elapsed=2.5,
        ).save_jsonl(path)
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert records[0]["kind"] == "campaign"
        assert records[0]["schema"] == 2
        assert "workers" not in records[0]  # moved to the footer
        assert records[-1] == {
            "kind": "completed", "workers": 3, "elapsed": 2.5,
        }

    def test_partial_file_has_no_footer_and_reports_missing(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        CampaignResult(self.campaign(), [summary(0, seed=0)]).save_jsonl(path)
        kinds = [
            json.loads(line)["kind"]
            for line in path.read_text().splitlines()
        ]
        assert kinds == ["campaign", "run"]
        loaded = CampaignResult.load_jsonl(path)
        assert not loaded.is_complete
        assert [spec.index for spec in loaded.missing_runs()] == [1]

    def test_shard_tag_round_trip(self, tmp_path):
        path = tmp_path / "shard.jsonl"
        CampaignResult(
            self.campaign(), [summary(0, seed=0)], shard=(0, 2)
        ).save_jsonl(path)
        loaded = CampaignResult.load_jsonl(path)
        assert loaded.shard == (0, 2)
        # Shard 0 of 2 owns only run 0, so this file is complete.
        assert loaded.is_complete

    def test_schema1_file_still_loads(self, tmp_path):
        # A PR-1 era file: workers/elapsed in the header, no footer.
        path = tmp_path / "v1.jsonl"
        lines = [
            json.dumps(
                {
                    "kind": "campaign",
                    "schema": 1,
                    "workers": 2,
                    "elapsed": 1.5,
                    "grid": self.campaign().to_dict(),
                }
            ),
            json.dumps({"kind": "run", **summary(0, seed=0).to_dict()}),
            json.dumps({"kind": "run", **summary(1, seed=1).to_dict()}),
        ]
        path.write_text("\n".join(lines) + "\n")
        loaded = CampaignResult.load_jsonl(path)
        assert loaded.workers == 2
        assert loaded.elapsed == pytest.approx(1.5)
        assert loaded.is_complete

    def test_torn_final_line_is_dropped(self, tmp_path):
        # A SIGKILL can land mid-write; the torn trailing line must not
        # poison the file — that run just counts as missing.
        path = tmp_path / "torn.jsonl"
        CampaignResult(
            self.campaign(), [summary(0, seed=0), summary(1, seed=1)]
        ).save_jsonl(path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:2]) + "\n" + lines[2][: len(lines[2]) // 2])
        loaded = CampaignResult.load_jsonl(path)
        assert [s.index for s in loaded.summaries] == [0]
        assert [spec.index for spec in loaded.missing_runs()] == [1]

    def test_torn_header_or_mid_file_corruption_still_raises(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        CampaignResult(
            self.campaign(), [summary(0, seed=0), summary(1, seed=1)]
        ).save_jsonl(path)
        lines = path.read_text().splitlines()
        # Corrupt a *middle* line: that is damage, not a torn tail.
        lines[1] = lines[1][:10]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError):
            CampaignResult.load_jsonl(path)
        # A torn header (single-line file) is unrecoverable too.
        path.write_text('{"kind": "campa')
        with pytest.raises(TraceError):
            CampaignResult.load_jsonl(path)

    def test_newline_terminated_corrupt_final_line_raises(self, tmp_path):
        # The writer emits line+newline in one write, so a malformed
        # final line that still ends in a newline is disk corruption
        # or a bad edit — not a torn kill tail — and must be fatal.
        path = tmp_path / "corrupt_tail.jsonl"
        CampaignResult(
            self.campaign(), [summary(0, seed=0), summary(1, seed=1)]
        ).save_jsonl(path)
        lines = path.read_text().splitlines()
        lines[-1] = lines[-1][: len(lines[-1]) // 2]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError):
            CampaignResult.load_jsonl(path)

    def test_load_records_source_schema_and_footer(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        result = CampaignResult(
            self.campaign(), [summary(0, seed=0), summary(1, seed=1)]
        )
        result.save_jsonl(path)
        loaded = CampaignResult.load_jsonl(path)
        assert loaded.source_schema == 2
        assert loaded.source_footer is True
        assert result.source_schema is None  # never touched disk

    def test_atomic_writer_commits_only_on_finish(self, tmp_path):
        from repro.batch import CampaignWriter

        path = tmp_path / "campaign.jsonl"
        path.write_text("precious original\n")
        # Abandoned rewrite: original untouched, temp cleaned up.
        with CampaignWriter.create(path, self.campaign(), atomic=True) as w:
            w.write(summary(0, seed=0))
        assert path.read_text() == "precious original\n"
        assert not list(tmp_path.glob("*.tmp"))
        # Finished rewrite: renamed over the original.
        with CampaignWriter.create(path, self.campaign(), atomic=True) as w:
            w.write(summary(0, seed=0))
            w.write(summary(1, seed=1))
            w.finish(workers=1, elapsed=0.5)
        assert CampaignResult.load_jsonl(path).is_complete
        assert not list(tmp_path.glob("*.tmp"))

    def test_writer_streams_each_line(self, tmp_path):
        from repro.batch import CampaignWriter

        path = tmp_path / "stream.jsonl"
        with CampaignWriter.create(path, self.campaign()) as writer:
            # Header is on disk before any run completes.
            assert len(path.read_text().splitlines()) == 1
            writer.write(summary(0, seed=0))
            assert len(path.read_text().splitlines()) == 2
        # Closed without finish(): no footer, loadable, resumable.
        loaded = CampaignResult.load_jsonl(path)
        assert len(loaded) == 1 and not loaded.is_complete


class TestAggregation:
    def campaign(self) -> Campaign:
        return Campaign(
            scenarios=("cut_out", "cut_in"), seeds=(0, 1), fprs=(2.0, 30.0)
        )

    def result(self) -> CampaignResult:
        return CampaignResult(
            self.campaign(),
            [
                # cut_out: collides at 2 FPR on one seed, clean at 30.
                summary(0, "cut_out", seed=0, fpr=2.0, collided=True),
                summary(1, "cut_out", seed=0, fpr=30.0, max_fpr=6.0),
                summary(2, "cut_out", seed=1, fpr=2.0, max_fpr=5.0),
                summary(3, "cut_out", seed=1, fpr=30.0, max_fpr=8.0),
                # cut_in: clean everywhere.
                summary(4, "cut_in", seed=0, fpr=2.0, max_fpr=1.5),
                summary(5, "cut_in", seed=0, fpr=30.0, max_fpr=2.0),
                summary(6, "cut_in", seed=1, fpr=2.0, max_fpr=1.5),
                summary(7, "cut_in", seed=1, fpr=30.0, max_fpr=2.5),
            ],
        )

    def test_rows_follow_campaign_order(self):
        rows = campaign_table1(self.result())
        assert [row.scenario for row in rows] == ["cut_out", "cut_in"]

    def test_collided_setting_is_na(self):
        rows = {row.scenario: row for row in campaign_table1(self.result())}
        assert rows["cut_out"].mean_estimates[2.0] is None
        assert rows["cut_out"].mean_estimates[30.0] == pytest.approx(7.0)

    def test_mrf_from_outcomes(self):
        rows = {row.scenario: row for row in campaign_table1(self.result())}
        assert rows["cut_out"].mrf.label == "30"
        assert rows["cut_in"].mrf.label == "<2"

    def test_render_contains_all_scenarios(self):
        text = render_campaign_table(self.result())
        assert "cut_out" in text and "cut_in" in text
        assert "N/A" in text

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError):
            campaign_table1(self.result(), variant="nope")

    def test_fully_failed_rate_carries_no_mrf_evidence(self):
        # Every run at 2 FPR errored: that rate is neither safe nor
        # colliding, and must not become the MRF verdict.
        result = CampaignResult(
            Campaign(scenarios=("cut_in",), seeds=(0,), fprs=(2.0, 30.0)),
            [
                summary(0, "cut_in", seed=0, fpr=2.0, error="Error: boom"),
                summary(1, "cut_in", seed=0, fpr=30.0, max_fpr=2.0),
            ],
        )
        row = campaign_table1(result)[0]
        assert 2.0 not in row.mrf.safe_fprs
        assert 2.0 not in row.mrf.collision_fprs
        assert row.mrf.mrf == 30.0


class TestSweepVariantRoundTrip:
    def test_jsonl_with_custom_sweep_scenario(self, tmp_path):
        from repro.scenarios.catalog import ensure_scenario

        # A non-default sweep speed saved to JSONL must validate on
        # reload even though reload re-runs Campaign validation.
        assert ensure_scenario("cut_out_37mph")
        campaign = Campaign(scenarios=("cut_out_37mph",))
        path = tmp_path / "sweep.jsonl"
        CampaignResult(
            campaign, [summary(0, "cut_out_37mph")]
        ).save_jsonl(path)
        loaded = CampaignResult.load_jsonl(path)
        assert loaded.campaign.scenarios == ("cut_out_37mph",)


class TestBackendSelector:
    def test_default_backend_is_batched(self):
        campaign = Campaign(scenarios=("cut_in",))
        assert campaign.backend == "batched"
        assert all(spec.backend == "batched" for spec in campaign.runs())

    def test_scalar_backend_threads_into_specs(self):
        campaign = Campaign(scenarios=("cut_in",), backend="scalar")
        assert all(spec.backend == "scalar" for spec in campaign.runs())

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            Campaign(scenarios=("cut_in",), backend="gpu")

    def test_backend_round_trips_through_dict(self):
        campaign = Campaign(scenarios=("cut_in",), backend="scalar")
        assert Campaign.from_dict(campaign.to_dict()) == campaign

    def test_headers_without_backend_still_load(self):
        # Pre-backend files carry no "backend" key.
        data = Campaign(scenarios=("cut_in",)).to_dict()
        del data["backend"]
        assert Campaign.from_dict(data).backend == "batched"


class TestRetryFailedCache:
    def test_default_keeps_deterministic_failures(self):
        campaign = Campaign(scenarios=("cut_in",), seeds=(0, 1, 2))
        result = CampaignResult(
            campaign,
            [
                summary(0),
                summary(1, error="SimulationError: boom"),
                summary(2, error="WorkerError: killed"),
            ],
        )
        cache = result.resume_cache()
        assert set(cache) == {0, 1}

    def test_retry_failed_purges_all_errors(self):
        campaign = Campaign(scenarios=("cut_in",), seeds=(0, 1, 2))
        result = CampaignResult(
            campaign,
            [
                summary(0),
                summary(1, error="SimulationError: boom"),
                summary(2, error="WorkerError: killed"),
            ],
        )
        cache = result.resume_cache(retry_failed=True)
        assert set(cache) == {0}

    def test_retry_failed_keeps_collisions(self):
        # A collision is a result, not a failure: never re-executed.
        campaign = Campaign(scenarios=("cut_in",), seeds=(0, 1))
        result = CampaignResult(
            campaign, [summary(0, collided=True), summary(1)]
        )
        assert set(result.resume_cache(retry_failed=True)) == {0, 1}
