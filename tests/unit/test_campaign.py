"""Campaign spec, result store and aggregation (no simulations here)."""

import json

import pytest

from repro.batch import (
    Campaign,
    CampaignResult,
    ParamVariant,
    RunSummary,
    campaign_table1,
    full_catalog_campaign,
    render_campaign_table,
    summarize_failures,
)
from repro.core.parameters import ZhuyiParams
from repro.errors import ConfigurationError, TraceError


def summary(
    index: int,
    scenario: str = "cut_in",
    seed: int = 0,
    fpr: float = 30.0,
    collided: bool = False,
    max_fpr: float = 2.0,
    error: str | None = None,
) -> RunSummary:
    if collided or error:
        return RunSummary(
            index=index,
            scenario=scenario,
            seed=seed,
            fpr=fpr,
            variant="default",
            collided=collided,
            collision_time=5.0 if collided else None,
            error=error,
        )
    return RunSummary(
        index=index,
        scenario=scenario,
        seed=seed,
        fpr=fpr,
        variant="default",
        collided=False,
        max_fpr=max_fpr,
        max_total_fpr=max_fpr + 2.0,
        fraction_of_provision=(max_fpr + 2.0) / 90.0,
        camera_max_fpr={"front_120": max_fpr, "left": 1.0, "right": 1.0},
        ticks=100,
        duration=30.0,
    )


class TestCampaignSpec:
    def test_grid_size_and_order(self):
        campaign = Campaign(
            scenarios=("cut_out", "cut_in"),
            seeds=(0, 1),
            fprs=(5.0, 30.0),
        )
        specs = campaign.runs()
        assert campaign.size == len(specs) == 8
        assert [spec.index for spec in specs] == list(range(8))
        # scenario-major, then seed, then fpr.
        assert (specs[0].scenario, specs[0].seed, specs[0].fpr) == (
            "cut_out", 0, 5.0,
        )
        assert (specs[1].scenario, specs[1].seed, specs[1].fpr) == (
            "cut_out", 0, 30.0,
        )
        assert specs[-1].scenario == "cut_in"

    def test_variant_expansion(self):
        strict = ZhuyiParams(c1=0.8, c2=0.8)
        campaign = Campaign(
            scenarios=("cut_in",),
            variants=(ParamVariant("default"), ParamVariant("strict", strict)),
        )
        specs = campaign.runs()
        assert [spec.variant for spec in specs] == ["default", "strict"]
        assert specs[0].resolved_params() == ZhuyiParams()
        assert specs[1].resolved_params() == strict

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            Campaign(scenarios=("warp",))

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            Campaign(scenarios=())
        with pytest.raises(ConfigurationError):
            Campaign(scenarios=("cut_in",), seeds=())
        with pytest.raises(ConfigurationError):
            Campaign(scenarios=("cut_in",), fprs=())

    def test_duplicate_variant_names_rejected(self):
        with pytest.raises(ConfigurationError):
            Campaign(
                scenarios=("cut_in",),
                variants=(ParamVariant("a"), ParamVariant("a")),
            )

    def test_duplicate_grid_entries_rejected(self):
        with pytest.raises(ConfigurationError):
            Campaign(scenarios=("cut_in", "cut_in"))
        with pytest.raises(ConfigurationError):
            Campaign(scenarios=("cut_in",), seeds=(0, 0))
        with pytest.raises(ConfigurationError):
            Campaign(scenarios=("cut_in",), fprs=(30.0, 30.0))

    def test_bad_stride_rejected(self):
        with pytest.raises(ConfigurationError):
            Campaign(scenarios=("cut_in",), stride=0.0)

    def test_full_catalog_covers_registry(self):
        campaign = full_catalog_campaign()
        assert "cut_out" in campaign.scenarios
        assert "vehicle_following" in campaign.scenarios

    def test_grid_dict_round_trip(self):
        campaign = Campaign(
            scenarios=("cut_out", "cut_in"),
            seeds=(0, 3),
            fprs=(5.0, 30.0),
            variants=(ParamVariant("strict", ZhuyiParams(c1=0.8)),),
            stride=0.1,
        )
        assert Campaign.from_dict(campaign.to_dict()) == campaign


class TestResultStore:
    def campaign(self) -> Campaign:
        return Campaign(scenarios=("cut_in",), seeds=(0, 1), fprs=(30.0,))

    def test_summaries_sorted_by_index(self):
        result = CampaignResult(
            self.campaign(), [summary(1, seed=1), summary(0, seed=0)]
        )
        assert [s.index for s in result.summaries] == [0, 1]

    def test_failure_and_collision_queries(self):
        result = CampaignResult(
            self.campaign(),
            [
                summary(0, seed=0, collided=True),
                summary(1, seed=1, error="SimulationError: boom"),
            ],
        )
        assert len(result.collisions()) == 1
        assert len(result.failures()) == 1
        assert not result.failures()[0].ok
        assert "boom" in summarize_failures(result)

    def test_scenario_rollups_skip_bad_runs(self):
        result = CampaignResult(
            self.campaign(),
            [
                summary(0, seed=0, max_fpr=4.0),
                summary(1, seed=1, collided=True),
            ],
        )
        assert result.scenario_max_fpr("cut_in") == pytest.approx(4.0)
        assert result.scenario_max_fraction("cut_in") == pytest.approx(6.0 / 90.0)

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        result = CampaignResult(
            self.campaign(),
            [summary(0, seed=0), summary(1, seed=1, collided=True)],
            workers=2,
            elapsed=1.25,
        )
        result.save_jsonl(path)
        loaded = CampaignResult.load_jsonl(path)
        assert loaded.campaign == result.campaign
        assert loaded.workers == 2
        assert loaded.elapsed == pytest.approx(1.25)
        assert [s.to_dict() for s in loaded.summaries] == [
            s.to_dict() for s in result.summaries
        ]

    def test_load_rejects_garbage(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(TraceError):
            CampaignResult.load_jsonl(empty)
        headerless = tmp_path / "headerless.jsonl"
        headerless.write_text(json.dumps({"kind": "run"}) + "\n")
        with pytest.raises(TraceError):
            CampaignResult.load_jsonl(headerless)
        notjson = tmp_path / "notjson.jsonl"
        notjson.write_text("{nope\n")
        with pytest.raises(TraceError):
            CampaignResult.load_jsonl(notjson)


class TestAggregation:
    def campaign(self) -> Campaign:
        return Campaign(
            scenarios=("cut_out", "cut_in"), seeds=(0, 1), fprs=(2.0, 30.0)
        )

    def result(self) -> CampaignResult:
        return CampaignResult(
            self.campaign(),
            [
                # cut_out: collides at 2 FPR on one seed, clean at 30.
                summary(0, "cut_out", seed=0, fpr=2.0, collided=True),
                summary(1, "cut_out", seed=0, fpr=30.0, max_fpr=6.0),
                summary(2, "cut_out", seed=1, fpr=2.0, max_fpr=5.0),
                summary(3, "cut_out", seed=1, fpr=30.0, max_fpr=8.0),
                # cut_in: clean everywhere.
                summary(4, "cut_in", seed=0, fpr=2.0, max_fpr=1.5),
                summary(5, "cut_in", seed=0, fpr=30.0, max_fpr=2.0),
                summary(6, "cut_in", seed=1, fpr=2.0, max_fpr=1.5),
                summary(7, "cut_in", seed=1, fpr=30.0, max_fpr=2.5),
            ],
        )

    def test_rows_follow_campaign_order(self):
        rows = campaign_table1(self.result())
        assert [row.scenario for row in rows] == ["cut_out", "cut_in"]

    def test_collided_setting_is_na(self):
        rows = {row.scenario: row for row in campaign_table1(self.result())}
        assert rows["cut_out"].mean_estimates[2.0] is None
        assert rows["cut_out"].mean_estimates[30.0] == pytest.approx(7.0)

    def test_mrf_from_outcomes(self):
        rows = {row.scenario: row for row in campaign_table1(self.result())}
        assert rows["cut_out"].mrf.label == "30"
        assert rows["cut_in"].mrf.label == "<2"

    def test_render_contains_all_scenarios(self):
        text = render_campaign_table(self.result())
        assert "cut_out" in text and "cut_in" in text
        assert "N/A" in text

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError):
            campaign_table1(self.result(), variant="nope")

    def test_fully_failed_rate_carries_no_mrf_evidence(self):
        # Every run at 2 FPR errored: that rate is neither safe nor
        # colliding, and must not become the MRF verdict.
        result = CampaignResult(
            Campaign(scenarios=("cut_in",), seeds=(0,), fprs=(2.0, 30.0)),
            [
                summary(0, "cut_in", seed=0, fpr=2.0, error="Error: boom"),
                summary(1, "cut_in", seed=0, fpr=30.0, max_fpr=2.0),
            ],
        )
        row = campaign_table1(result)[0]
        assert 2.0 not in row.mrf.safe_fprs
        assert 2.0 not in row.mrf.collision_fprs
        assert row.mrf.mrf == 30.0


class TestSweepVariantRoundTrip:
    def test_jsonl_with_custom_sweep_scenario(self, tmp_path):
        from repro.scenarios.catalog import ensure_scenario

        # A non-default sweep speed saved to JSONL must validate on
        # reload even though reload re-runs Campaign validation.
        assert ensure_scenario("cut_out_37mph")
        campaign = Campaign(scenarios=("cut_out_37mph",))
        path = tmp_path / "sweep.jsonl"
        CampaignResult(
            campaign, [summary(0, "cut_out_37mph")]
        ).save_jsonl(path)
        loaded = CampaignResult.load_jsonl(path)
        assert loaded.campaign.scenarios == ("cut_out_37mph",)
