"""Perceived world model and staleness-aware extrapolation."""

import pytest

from repro.geometry.vec import Vec2
from repro.perception.world_model import PerceivedActor, WorldModel


def actor(actor_id="a", x=0.0, speed=10.0, accel=0.0, timestamp=0.0):
    return PerceivedActor(
        actor_id=actor_id,
        position=Vec2(x, 0.0),
        velocity=Vec2(speed, 0.0),
        heading=0.0,
        speed=speed,
        accel=accel,
        timestamp=timestamp,
    )


class TestWorldModel:
    def test_upsert_and_get(self):
        wm = WorldModel()
        wm.upsert(actor("a", x=5.0))
        assert wm.get("a").position.x == 5.0
        assert "a" in wm
        assert len(wm) == 1

    def test_upsert_replaces(self):
        wm = WorldModel()
        wm.upsert(actor("a", x=5.0))
        wm.upsert(actor("a", x=7.0))
        assert wm.get("a").position.x == 7.0
        assert len(wm) == 1

    def test_remove(self):
        wm = WorldModel()
        wm.upsert(actor("a"))
        wm.remove("a")
        assert wm.get("a") is None

    def test_remove_missing_is_noop(self):
        WorldModel().remove("ghost")

    def test_iteration(self):
        wm = WorldModel()
        wm.upsert(actor("a"))
        wm.upsert(actor("b"))
        assert {a.actor_id for a in wm} == {"a", "b"}

    def test_staleness(self):
        wm = WorldModel()
        wm.upsert(actor("a", timestamp=1.0))
        assert wm.staleness("a", now=3.0) == pytest.approx(2.0)
        assert wm.staleness("ghost", now=3.0) is None


class TestExtrapolation:
    def test_constant_velocity(self):
        a = actor(x=10.0, speed=5.0, timestamp=0.0)
        assert a.extrapolated_position(2.0).x == pytest.approx(20.0)

    def test_no_backwards_extrapolation(self):
        a = actor(x=10.0, speed=5.0, timestamp=2.0)
        assert a.extrapolated_position(1.0).x == 10.0

    def test_braking_actor_travels_less(self):
        braking = actor(x=0.0, speed=10.0, accel=-4.0, timestamp=0.0)
        coasting = actor(x=0.0, speed=10.0, accel=0.0, timestamp=0.0)
        assert (
            braking.extrapolated_position(2.0).x
            < coasting.extrapolated_position(2.0).x
        )
        # 10*2 - 0.5*4*4 = 12.
        assert braking.extrapolated_position(2.0).x == pytest.approx(12.0)

    def test_braking_actor_stops_not_reverses(self):
        braking = actor(x=0.0, speed=10.0, accel=-5.0, timestamp=0.0)
        # Stops after 2 s / 10 m; never moves back.
        assert braking.extrapolated_position(10.0).x == pytest.approx(10.0)

    def test_accelerating_actor_not_projected_faster(self):
        # Only braking is honoured: optimistic acceleration must not
        # inflate the predicted gap closure.
        speeding = actor(x=0.0, speed=10.0, accel=3.0, timestamp=0.0)
        assert speeding.extrapolated_position(2.0).x == pytest.approx(20.0)

    def test_extrapolated_speed_braking(self):
        a = actor(speed=10.0, accel=-4.0, timestamp=0.0)
        assert a.extrapolated_speed(2.0) == pytest.approx(2.0)
        assert a.extrapolated_speed(5.0) == 0.0

    def test_extrapolated_speed_constant_otherwise(self):
        a = actor(speed=10.0, accel=2.0, timestamp=0.0)
        assert a.extrapolated_speed(3.0) == pytest.approx(10.0)
