"""Unit tests: the ``repro replay`` plan and streaming service.

Synthetic stored traces keep these fast — the service's whole point is
that nothing here ever simulates. Covered: variant validation, plan
expansion/sharding/serialization, campaign adoption, row production
(offline and online variants, collisions, store misses as failure
rows), the JSONL write protocol with kill/resume, and the heartbeat
sidecar.
"""

import json
from pathlib import Path

import pytest

from repro.batch.campaign import Campaign, ParamVariant
from repro.core.parameters import ZhuyiParams
from repro.errors import ConfigurationError
from repro.sim.collision import CollisionEvent
from repro.store import (
    ReplayPlan,
    ReplayService,
    ReplayVariant,
    TraceStore,
    load_replay_rows,
)

from test_store import synthetic_trace


@pytest.fixture()
def store(tmp_path) -> TraceStore:
    """A store holding three synthetic cut_out cells (no simulation)."""
    store = TraceStore(tmp_path / "store")
    for seed in range(3):
        store.put(
            store.key("cut_out", seed, 30.0), synthetic_trace(seed=seed)
        )
    return store


def default_plan(store, **overrides) -> ReplayPlan:
    settings = dict(stride=0.5, variants=(ReplayVariant(name="default"),))
    settings.update(overrides)
    return ReplayPlan.from_store(store, **settings)


def run_lines(path) -> list[dict]:
    return [
        json.loads(line)
        for line in Path(path).read_text().splitlines()
        if '"kind": "run"' in line
    ]


class TestReplayVariant:
    def test_needs_a_name(self):
        with pytest.raises(ConfigurationError, match="needs a name"):
            ReplayVariant(name="")

    def test_unknown_predictor_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown predictor"):
            ReplayVariant(name="x", predictor="oracle")

    def test_aggregator_without_predictor_rejected(self):
        with pytest.raises(ConfigurationError, match="online variants"):
            ReplayVariant(name="x", aggregator="max")

    def test_bad_percentile_rejected(self):
        with pytest.raises(ConfigurationError, match="bad percentile"):
            ReplayVariant(
                name="x", predictor="cv", aggregator="percentile:high"
            )

    def test_round_trips_through_dict(self):
        variant = ReplayVariant(
            name="tuned",
            params=ZhuyiParams(horizon=2.5),
            predictor="maneuver",
            aggregator="percentile:95",
        )
        assert ReplayVariant.from_dict(variant.to_dict()) == variant


class TestReplayPlan:
    def test_expansion_is_cell_major_with_stamped_indices(self, store):
        plan = ReplayPlan(
            cells=(("cut_out", 0, 30.0), ("cut_out", 1, 30.0)),
            variants=(
                ReplayVariant(name="a"),
                ReplayVariant(name="b"),
            ),
        )
        jobs = plan.jobs()
        assert [job[0] for job in jobs] == [0, 1, 2, 3]
        assert [(job[1][1], job[2].name) for job in jobs] == [
            (0, "a"), (0, "b"), (1, "a"), (1, "b"),
        ]

    def test_shards_partition_the_jobs(self, store):
        plan = default_plan(store)
        full = {job[0] for job in plan.jobs()}
        parts = [
            {job[0] for job in plan.shard(i, 2)} for i in range(2)
        ]
        assert parts[0] | parts[1] == full
        assert parts[0] & parts[1] == set()

    def test_too_many_shards_rejected(self, store):
        with pytest.raises(ConfigurationError, match="cannot split"):
            default_plan(store).shard(0, 99)

    def test_duplicate_cells_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate cells"):
            ReplayPlan(
                cells=(("cut_out", 0, 30.0), ("cut_out", 0, 30.0)),
                variants=(ReplayVariant(name="a"),),
            )

    def test_round_trips_through_dict(self, store):
        plan = default_plan(store)
        assert ReplayPlan.from_dict(plan.to_dict()).to_dict() == plan.to_dict()

    def test_from_store_lists_recorded_cells(self, store):
        plan = default_plan(store)
        assert plan.cells == (
            ("cut_out", 0, 30.0),
            ("cut_out", 1, 30.0),
            ("cut_out", 2, 30.0),
        )

    def test_empty_store_rejected(self, tmp_path):
        empty = TraceStore(tmp_path / "empty")
        with pytest.raises(ConfigurationError, match="no replayable"):
            ReplayPlan.from_store(
                empty, variants=(ReplayVariant(name="default"),)
            )

    def test_from_campaign_matches_run_indices(self):
        campaign = Campaign(
            scenarios=("cut_out", "cut_in"),
            seeds=(0, 1),
            fprs=(30.0,),
            stride=0.5,
            variants=(
                ParamVariant("default"),
                ParamVariant("tuned", ZhuyiParams(horizon=2.5)),
            ),
        )
        plan = ReplayPlan.from_campaign(campaign)
        jobs = plan.jobs()
        specs = campaign.runs()
        assert len(jobs) == len(specs)
        for (index, cell, variant), spec in zip(jobs, specs):
            assert index == spec.index
            assert cell == (spec.scenario, spec.seed, spec.fpr)
            assert variant.name == spec.variant
            assert variant.params == spec.params


class TestReplayService:
    def test_offline_rows_from_store_alone(self, store):
        rows = ReplayService(store=store).run(default_plan(store))
        assert len(rows) == 3
        for row in rows:
            assert row["error"] is None
            assert row["max_fpr"] is not None
            assert row["predictor"] is None

    def test_online_variant_rows(self, store):
        plan = default_plan(
            store,
            variants=(
                ReplayVariant(name="cv", predictor="cv"),
                ReplayVariant(
                    name="cv-max", predictor="cv", aggregator="max"
                ),
            ),
        )
        rows = ReplayService(store=store).run(plan)
        assert len(rows) == 6
        assert all(row["error"] is None for row in rows)
        assert {row["predictor"] for row in rows} == {"cv"}
        assert {row["aggregator"] for row in rows} == {None, "max"}

    def test_store_miss_is_a_failure_row_not_a_simulation(self, store):
        plan = ReplayPlan(
            cells=(("cut_out", 0, 30.0), ("cut_out", 99, 30.0)),
            variants=(ReplayVariant(name="default"),),
            stride=0.5,
        )
        rows = ReplayService(store=store).run(plan)
        assert rows[0]["error"] is None
        assert "not in the trace store" in rows[1]["error"]

    def test_collided_cells_report_na(self, store):
        trace = synthetic_trace(seed=7)
        collided = type(trace)(
            scenario=trace.scenario,
            dt=trace.dt,
            steps=trace.steps,
            collisions=[CollisionEvent(time=1.0, actor_id="lead")],
            nominal_fpr=trace.nominal_fpr,
            seed=7,
        )
        store.put(store.key("cut_out", 7, 30.0), collided)
        plan = ReplayPlan(
            cells=(("cut_out", 7, 30.0),),
            variants=(ReplayVariant(name="default"),),
            stride=0.5,
        )
        rows = ReplayService(store=store).run(plan)
        assert rows[0]["collided"] is True
        assert rows[0]["collision_time"] == 1.0
        assert rows[0]["max_fpr"] is None

    def test_streamed_file_has_header_rows_footer(self, store, tmp_path):
        out = tmp_path / "replay.jsonl"
        ReplayService(store=store).run(default_plan(store), out=out)
        records = [
            json.loads(line) for line in out.read_text().splitlines()
        ]
        assert records[0]["kind"] == "replay"
        assert records[0]["plan"]["cells"][0]["scenario"] == "cut_out"
        assert [r["kind"] for r in records[1:-1]] == ["run"] * 3
        assert records[-1]["kind"] == "completed"

    def test_heartbeat_sidecar_tracks_progress(self, store, tmp_path):
        out = tmp_path / "replay.jsonl"
        ReplayService(store=store, heartbeat_every=1).run(
            default_plan(store), out=out
        )
        beat = json.loads((tmp_path / "replay.jsonl.heartbeat").read_text())
        assert beat["rows_done"] == 3
        assert beat["rows_total"] == 3
        assert beat["shard"] is None

    def test_kill_resume_matches_uninterrupted_run(self, store, tmp_path):
        plan = default_plan(store)
        service = ReplayService(store=store)
        clean, partial = tmp_path / "clean.jsonl", tmp_path / "partial.jsonl"
        service.run(plan, out=clean)
        service.run(plan, out=partial)
        # Kill after the first row: drop the footer and the last two rows.
        lines = partial.read_text().splitlines()
        partial.write_text("\n".join(lines[:2]) + "\n")
        service.run(plan, out=partial, resume=True)
        assert run_lines(partial) == run_lines(clean)

    def test_resume_rejects_a_different_plan(self, store, tmp_path):
        out = tmp_path / "replay.jsonl"
        service = ReplayService(store=store)
        service.run(default_plan(store), out=out)
        other = default_plan(store, stride=0.25)
        with pytest.raises(ConfigurationError, match="different plan"):
            service.run(other, out=out, resume=True)

    def test_sharded_files_union_to_the_full_plan(self, store, tmp_path):
        plan = default_plan(store)
        service = ReplayService(store=store)
        full = tmp_path / "full.jsonl"
        service.run(plan, out=full)
        parts = []
        for i in range(2):
            part = tmp_path / f"part{i}.jsonl"
            service.run(plan, out=part, shard=(i, 2))
            parts.extend(run_lines(part))
            beat = json.loads(Path(str(part) + ".heartbeat").read_text())
            assert beat["shard"] == {"index": i, "count": 2}
        parts.sort(key=lambda row: row["index"])
        assert parts == run_lines(full)

    def test_load_replay_rows_round_trip(self, store, tmp_path):
        out = tmp_path / "replay.jsonl"
        plan = default_plan(store)
        rows = ReplayService(store=store).run(plan, out=out)
        loaded_plan, loaded_rows, completed = load_replay_rows(out)
        assert completed
        assert loaded_plan.to_dict() == plan.to_dict()
        assert loaded_rows == rows
