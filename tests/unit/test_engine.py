"""The batched latency engine — exact parity with the scalar reference.

The engine's contract is bit-identical ``LatencyResult`` values
(latency, check time AND the Section 4.2 ``iterations`` count) for the
EXACT strategy, so every test here compares against
:class:`LatencySearch` rather than against golden numbers.
"""

import numpy as np
import pytest

from repro.core.engine import LatencyEngine
from repro.core.ego_profile import EgoMotion
from repro.core.latency import LatencySearch
from repro.core.parameters import ZhuyiParams
from repro.core.threat import FixedGapThreat
from repro.errors import ConfigurationError

PARAMS = ZhuyiParams()


def ego(speed: float, accel: float = 0.0, params=PARAMS) -> EgoMotion:
    return EgoMotion.from_state(speed, accel, params)


def assert_same(scalar, batched):
    assert scalar.latency == batched.latency
    assert scalar.check_time == batched.check_time
    assert scalar.iterations == batched.iterations


class TestSolveParity:
    CASES = [
        # (speed, accel, gap, actor_speed, l0)
        (20.0, 0.0, 80.0, 10.0, 1.0 / 30.0),  # mid-grid answer
        (30.0, 0.0, 300.0, 25.0, 1.0 / 30.0),  # benign, l_max
        (30.0, -2.0, 5.0, 0.0, 1.0 / 30.0),  # unavoidable collision
        (0.0, 0.0, 10.0, 0.0, 1.0),  # stopped ego
        (15.0, 2.5, 40.0, 5.0, 0.5),  # accelerating ego
        (25.0, -4.0, 60.0, 20.0, 0.2),  # decelerating ego
        (10.0, 0.0, 0.0, 3.0, 1.0 / 30.0),  # zero gap
    ]

    @pytest.mark.parametrize("speed,accel,gap,actor_speed,l0", CASES)
    def test_fixed_gap_parity(self, speed, accel, gap, actor_speed, l0):
        threat = FixedGapThreat(gap, actor_speed)
        scalar = LatencySearch(params=PARAMS).tolerable_latency(
            ego(speed, accel), threat, l0
        )
        batched = LatencyEngine(params=PARAMS).solve(
            ego(speed, accel), threat, l0
        )
        assert_same(scalar, batched)

    @pytest.mark.parametrize("speed,accel,gap,actor_speed,l0", CASES)
    def test_non_strict_parity(self, speed, accel, gap, actor_speed, l0):
        threat = FixedGapThreat(gap, actor_speed)
        scalar = LatencySearch(params=PARAMS, strict=False).tolerable_latency(
            ego(speed, accel), threat, l0
        )
        batched = LatencyEngine(params=PARAMS, strict=False).solve(
            ego(speed, accel), threat, l0
        )
        assert_same(scalar, batched)

    def test_speed_cap_parity(self):
        params = ZhuyiParams(ego_speed_cap=22.0)
        threat = FixedGapThreat(70.0, 8.0)
        motion = ego(20.0, 3.0, params)
        scalar = LatencySearch(params=params).tolerable_latency(
            motion, threat, 0.2
        )
        batched = LatencyEngine(params=params).solve(motion, threat, 0.2)
        assert_same(scalar, batched)

    def test_coarse_grid_parity(self):
        # A t_r that falls between tn_step multiples exercises the
        # union1d-insertion bookkeeping.
        params = ZhuyiParams(dl=0.1, l_min=0.1, tn_step=0.03, k=3)
        threat = FixedGapThreat(18.0, 2.0)
        motion = ego(14.0, 0.0, params)
        scalar = LatencySearch(params=params).tolerable_latency(
            motion, threat, 0.1
        )
        batched = LatencyEngine(params=params).solve(motion, threat, 0.1)
        assert_same(scalar, batched)


class TestSolveBatch:
    def test_empty_batch(self):
        assert LatencyEngine(params=PARAMS).solve_batch(ego(10.0), [], 1.0) == []

    def test_batch_matches_singletons(self):
        threats = [
            FixedGapThreat(15.0, 0.0),
            FixedGapThreat(120.0, 20.0),
            FixedGapThreat(2.0, 0.0),
            FixedGapThreat(55.0, 8.0),
        ]
        engine = LatencyEngine(params=PARAMS)
        motion = ego(22.0, -1.0)
        batch = engine.solve_batch(motion, threats, 1.0 / 30.0)
        assert len(batch) == len(threats)
        for threat, result in zip(threats, batch):
            assert_same(engine.solve(motion, threat, 1.0 / 30.0), result)

    def test_batch_matches_scalar_loop(self):
        threats = [FixedGapThreat(gap, 5.0) for gap in (3.0, 40.0, 400.0)]
        motion = ego(28.0)
        search = LatencySearch(params=PARAMS)
        batch = LatencyEngine(params=PARAMS).solve_batch(motion, threats, 0.1)
        for threat, result in zip(threats, batch):
            assert_same(search.tolerable_latency(motion, threat, 0.1), result)


class TestSolveRows:
    def test_rows_match_per_tick_batches(self):
        engine = LatencyEngine(params=PARAMS)
        motions = [ego(30.0, 0.0), ego(12.0, -2.0), ego(0.0, 0.0), ego(20.0, 1.0)]
        threats = [
            FixedGapThreat(10.0, 0.0),
            FixedGapThreat(90.0, 15.0),
            FixedGapThreat(250.0, 30.0),
        ]
        l0 = 1.0 / 30.0
        grid = engine.trace_grid(motions, l0)
        rel_times = np.concatenate([grid.times, grid.reactions])
        tick_indices = []
        gaps = []
        speeds = []
        for tick in range(len(motions)):
            for threat in threats:
                g, s = threat.sample(rel_times)
                tick_indices.append(tick)
                gaps.append(g)
                speeds.append(s)
        rows = engine.solve_rows(
            grid,
            np.array(tick_indices),
            motions,
            np.stack(gaps),
            np.stack(speeds),
        )
        for k, (tick, threat) in enumerate(
            (t, threat) for t in range(len(motions)) for threat in threats
        ):
            assert_same(engine.solve(motions[tick], threat, l0), rows[k])

    def test_trace_grid_tick_view_matches_tick_grid(self):
        engine = LatencyEngine(params=PARAMS)
        motions = [ego(25.0, -3.0), ego(8.0, 0.5)]
        grid = engine.trace_grid(motions, 0.2)
        for n, motion in enumerate(motions):
            single = engine._tick_grid(motion, 0.2)
            view = grid.tick(n)
            assert np.array_equal(single.reactions, view.reactions)
            assert np.array_equal(single.lengths, view.lengths)
            assert np.array_equal(single.inserted, view.inserted)
            assert np.array_equal(single.sizes, view.sizes)
            assert np.array_equal(
                single.times, view.times[: single.times.size]
            )

    def test_empty_rows(self):
        engine = LatencyEngine(params=PARAMS)
        grid = engine.trace_grid([ego(10.0)], 1.0)
        rel = np.concatenate([grid.times, grid.reactions])
        out = engine.solve_rows(
            grid,
            np.array([], dtype=int),
            [ego(10.0)],
            np.empty((0, rel.size)),
            np.empty((0, rel.size)),
        )
        assert out == []


class TestBackendFacade:
    def test_latency_search_batched_backend_delegates(self):
        threat = FixedGapThreat(33.0, 4.0)
        scalar = LatencySearch(params=PARAMS).tolerable_latency(
            ego(18.0), threat, 0.1
        )
        facade = LatencySearch(params=PARAMS, backend="batched")
        assert_same(scalar, facade.tolerable_latency(ego(18.0), threat, 0.1))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencySearch(params=PARAMS, backend="quantum")
