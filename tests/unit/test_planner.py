"""The ego planner: lead selection, AEB escalation, cruise."""

import pytest

from repro.dynamics.state import VehicleSpec, VehicleState
from repro.geometry.vec import Vec2
from repro.perception.world_model import PerceivedActor, WorldModel
from repro.planning.planner import Planner, PlannerConfig, PlannerMode
from repro.road.track import three_lane_straight_road


SPEC = VehicleSpec()


def ego_at(x: float = 100.0, y: float = 0.0, speed: float = 20.0):
    return VehicleState(Vec2(x, y), 0.0, speed, 0.0)


def perceived(actor_id, x, y=0.0, speed=15.0, accel=0.0, t=0.0):
    return PerceivedActor(
        actor_id=actor_id,
        position=Vec2(x, y),
        velocity=Vec2(speed, 0.0),
        heading=0.0,
        speed=speed,
        accel=accel,
        timestamp=t,
    )


@pytest.fixture
def planner():
    return Planner(
        config=PlannerConfig(
            road=three_lane_straight_road(),
            target_lane=1,
            desired_speed=20.0,
        ),
        spec=SPEC,
    )


class TestCruise:
    def test_empty_world_cruises(self, planner):
        plan = planner.plan(0.0, ego_at(speed=15.0), WorldModel())
        assert plan.mode is PlannerMode.CRUISE
        assert plan.accel > 0.0
        assert plan.lead_id is None

    def test_holds_desired_speed(self, planner):
        plan = planner.plan(0.0, ego_at(speed=20.0), WorldModel())
        assert plan.accel == pytest.approx(0.0, abs=0.1)


class TestLeadSelection:
    def test_in_lane_lead_followed(self, planner):
        wm = WorldModel()
        wm.upsert(perceived("lead", 140.0, speed=15.0))
        plan = planner.plan(0.0, ego_at(), wm)
        assert plan.mode in (PlannerMode.FOLLOW, PlannerMode.EMERGENCY)
        assert plan.lead_id == "lead"
        assert plan.lead_gap == pytest.approx(40.0 - 4.8)

    def test_adjacent_lane_ignored(self, planner):
        wm = WorldModel()
        wm.upsert(perceived("beside", 140.0, y=3.5))
        plan = planner.plan(0.0, ego_at(), wm)
        assert plan.mode is PlannerMode.CRUISE

    def test_behind_ignored(self, planner):
        wm = WorldModel()
        wm.upsert(perceived("tail", 60.0))
        plan = planner.plan(0.0, ego_at(), wm)
        assert plan.mode is PlannerMode.CRUISE

    def test_nearest_lead_binds(self, planner):
        wm = WorldModel()
        wm.upsert(perceived("far", 200.0))
        wm.upsert(perceived("near", 140.0))
        plan = planner.plan(0.0, ego_at(), wm)
        assert plan.lead_id == "near"

    def test_stale_lead_extrapolated(self, planner):
        wm = WorldModel()
        # Measured 2 s ago at x=130 doing 15 m/s: now at ~160.
        wm.upsert(perceived("lead", 130.0, speed=15.0, t=0.0))
        plan = planner.plan(2.0, ego_at(), wm)
        assert plan.lead_gap == pytest.approx(60.0 - 4.8, abs=0.5)


class TestEmergency:
    def test_emergency_on_stopped_lead(self, planner):
        wm = WorldModel()
        wm.upsert(perceived("wall", 125.0, speed=0.0))
        plan = planner.plan(0.0, ego_at(speed=20.0), wm)
        assert plan.mode is PlannerMode.EMERGENCY
        assert plan.accel <= -7.0

    def test_follow_when_comfortable(self, planner):
        wm = WorldModel()
        wm.upsert(perceived("lead", 160.0, speed=18.0))
        plan = planner.plan(0.0, ego_at(speed=20.0), wm)
        assert plan.mode is PlannerMode.FOLLOW
        assert plan.accel > -3.0
