"""The shared staged-fsync / atomic-rename helpers (PR 10 satellite).

These are the vocabulary the IO005 lint rule checks durability-critical
modules against, so their own semantics get pinned here: bytes reach
the device before a rename publishes them, and a failure mid-create
never leaves a torn file under the final name.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import ioutil
from repro.batch.results import CampaignWriter


def test_atomic_write_text_publishes_content(tmp_path):
    target = tmp_path / "sidecar.json"
    ioutil.atomic_write_text(target, "first\n")
    assert target.read_text() == "first\n"
    ioutil.atomic_write_text(target, "second\n")
    assert target.read_text() == "second\n"
    # The staging file never survives.
    assert list(tmp_path.glob("*.tmp-*")) == []


def test_atomic_write_text_failure_leaves_no_target(tmp_path, monkeypatch):
    target = tmp_path / "sidecar.json"

    def boom(src, dst):
        raise OSError("simulated kill before rename")

    monkeypatch.setattr(os, "replace", boom)
    with pytest.raises(OSError):
        ioutil.atomic_write_text(target, "half\n")
    assert not target.exists()


def test_fsynced_file_fsyncs_before_close(tmp_path, monkeypatch):
    synced: list[int] = []
    real_fsync = os.fsync

    def spy(fd):
        synced.append(fd)
        real_fsync(fd)

    monkeypatch.setattr(os, "fsync", spy)
    staging = tmp_path / "column.bin"
    with ioutil.fsynced_file(staging, "wb") as handle:
        handle.write(b"\x00\x01")
        assert synced == []  # fsync happens at block exit, after writes
    assert synced
    assert staging.read_bytes() == b"\x00\x01"


def test_fsynced_file_skips_fsync_on_error(tmp_path, monkeypatch):
    synced: list[int] = []
    monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd))
    with pytest.raises(RuntimeError):
        with ioutil.fsynced_file(tmp_path / "staging", "w") as handle:
            handle.write("partial")
            raise RuntimeError("abandon the staging file")
    assert synced == []


def test_atomic_create_stream_publishes_header_then_appends(tmp_path):
    target = tmp_path / "stream.jsonl"
    handle = ioutil.atomic_create_stream(target, "header\n")
    try:
        # The header is already durable and complete before any append.
        assert target.read_text() == "header\n"
        handle.write("row\n")
        handle.flush()
    finally:
        handle.close()
    assert target.read_text() == "header\nrow\n"


def test_fsync_dir_tolerates_unsyncable_paths(tmp_path):
    ioutil.fsync_dir(tmp_path)  # normal directory: no error
    ioutil.fsync_dir(tmp_path / "does-not-exist")  # missing: tolerated


def test_campaign_writer_create_is_kill_safe(tmp_path, monkeypatch):
    """A kill before the header rename must not publish the campaign file.

    This is the satellite fix for the bare ``target.open("w")`` creation:
    the durable (non-atomic-finish) path now routes through
    ``atomic_create_stream``, so the file either exists with a complete
    header or not at all.
    """
    target = tmp_path / "campaign.jsonl"

    def boom(src, dst):
        raise OSError("simulated kill before rename")

    monkeypatch.setattr(os, "replace", boom)
    with pytest.raises(OSError):
        CampaignWriter.create_raw(target, {"kind": "campaign"}, atomic=False)
    assert not target.exists()


def test_campaign_writer_create_header_is_complete_immediately(tmp_path):
    target = tmp_path / "campaign.jsonl"
    writer = CampaignWriter.create_raw(
        target, {"kind": "campaign"}, atomic=False
    )
    try:
        header = json.loads(target.read_text().splitlines()[0])
        assert header["kind"] == "campaign"
    finally:
        writer.close()
