"""Equation 5 — per-camera FPR."""

import pytest

from repro.core.fpr import CameraEstimate, estimate_camera_fprs, fpr_from_latency


class TestFprFromLatency:
    def test_reciprocal(self, params):
        assert fpr_from_latency(0.5, params) == pytest.approx(2.0)

    def test_clamped_to_cap(self, params):
        assert fpr_from_latency(0.001, params) == pytest.approx(params.fpr_cap())

    def test_clamped_to_floor(self, params):
        assert fpr_from_latency(5.0, params) == pytest.approx(1.0)

    def test_none_maps_to_cap(self, params):
        assert fpr_from_latency(None, params) == pytest.approx(params.fpr_cap())

    def test_zero_maps_to_cap(self, params):
        assert fpr_from_latency(0.0, params) == pytest.approx(params.fpr_cap())


class TestCameraEstimates:
    def test_min_latency_binds(self, params):
        estimates = estimate_camera_fprs(
            actor_latencies={"a": 0.5, "b": 0.2},
            camera_actors={"front": ["a", "b"]},
            params=params,
        )
        front = estimates["front"]
        assert front.latency == 0.2
        assert front.binding_actor == "b"
        assert front.fpr == pytest.approx(5.0)
        assert front.actor_count == 2

    def test_empty_camera_gets_floor(self, params):
        estimates = estimate_camera_fprs(
            actor_latencies={},
            camera_actors={"left": []},
            params=params,
        )
        left = estimates["left"]
        assert left.latency == params.l_max
        assert left.fpr == pytest.approx(1.0)
        assert left.binding_actor is None

    def test_gated_actor_ignored(self, params):
        # Actor "c" is visible but was gated out (absent from latencies).
        estimates = estimate_camera_fprs(
            actor_latencies={"a": 0.5},
            camera_actors={"front": ["a", "c"]},
            params=params,
        )
        assert estimates["front"].actor_count == 1
        assert estimates["front"].latency == 0.5

    def test_unavoidable_pins_to_cap(self, params):
        estimates = estimate_camera_fprs(
            actor_latencies={"a": None},
            camera_actors={"front": ["a"]},
            params=params,
        )
        front = estimates["front"]
        assert front.unavoidable
        assert front.fpr == pytest.approx(params.fpr_cap())

    def test_actor_in_multiple_cameras(self, params):
        estimates = estimate_camera_fprs(
            actor_latencies={"a": 0.25},
            camera_actors={"front": ["a"], "left": ["a"], "right": []},
            params=params,
        )
        assert estimates["front"].fpr == pytest.approx(4.0)
        assert estimates["left"].fpr == pytest.approx(4.0)
        assert estimates["right"].fpr == pytest.approx(1.0)

    def test_every_camera_reported(self, params):
        estimates = estimate_camera_fprs(
            actor_latencies={},
            camera_actors={"a": [], "b": [], "c": []},
            params=params,
        )
        assert set(estimates) == {"a", "b", "c"}
        assert all(isinstance(e, CameraEstimate) for e in estimates.values())
