"""Trajectory predictors."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError, EstimationError
from repro.geometry.vec import Vec2
from repro.perception.world_model import PerceivedActor
from repro.prediction.base import (
    PredictedTrajectory,
    check_probabilities,
    predict_trace_via_loop,
    sample_times,
)
from repro.prediction.constant_accel import ConstantAccelerationPredictor
from repro.prediction.constant_velocity import ConstantVelocityPredictor
from repro.prediction.maneuver import ManeuverPredictor
from repro.road.track import three_lane_straight_road


def perceived(x=0.0, y=0.0, speed=10.0, heading=0.0, accel=0.0, t=0.0):
    return PerceivedActor(
        actor_id="a",
        position=Vec2(x, y),
        velocity=Vec2.unit(heading) * speed,
        heading=heading,
        speed=speed,
        accel=accel,
        timestamp=t,
    )


class TestConstantVelocity:
    def test_straight_line(self):
        predictions = ConstantVelocityPredictor().predict(
            perceived(speed=8.0), now=5.0, horizon=4.0
        )
        assert len(predictions) == 1
        trajectory = predictions[0].trajectory
        assert trajectory.state_at(9.0).position.x == pytest.approx(32.0)
        assert trajectory.state_at(9.0).speed == pytest.approx(8.0)

    def test_probability_one(self):
        predictions = ConstantVelocityPredictor().predict(
            perceived(), now=0.0, horizon=2.0
        )
        assert predictions[0].probability == 1.0

    def test_heading_respected(self):
        predictions = ConstantVelocityPredictor().predict(
            perceived(heading=math.pi / 2, speed=5.0), now=0.0, horizon=2.0
        )
        end = predictions[0].trajectory.state_at(2.0)
        assert end.position.y == pytest.approx(10.0)

    def test_rejects_bad_horizon(self):
        with pytest.raises(EstimationError):
            ConstantVelocityPredictor().predict(perceived(), 0.0, 0.0)


class TestSampleGrid:
    """The shared closed-form prediction sample grid."""

    @staticmethod
    def drifting_grid(horizon, period):
        """The accumulated loop the predictors used to run (pre-fix)."""
        instants = []
        t = 0.0
        while t <= horizon + 1e-9:
            instants.append(t)
            t += period
        return instants

    def test_closed_form_regression_against_drifting_loop(self):
        # A horizon an ulp-scale shy of a grid multiple: the old
        # accumulated loop's absolute 1e-9 slack admits the t = 1.0
        # sample even though it lies beyond the horizon, emitting one
        # sample too many; the closed form sizes the grid correctly.
        horizon = 1.0 - 5e-10
        period = 0.25
        drifted = self.drifting_grid(horizon, period)
        assert len(drifted) == 5 and drifted[-1] > horizon  # the bug
        grid = sample_times(horizon, period)
        assert grid.size == 4
        assert np.all(grid <= horizon)
        # The predictors emit exactly the closed-form grid.
        predictions = ConstantVelocityPredictor(sample_period=period).predict(
            perceived(), now=0.0, horizon=horizon
        )
        assert len(predictions[0].trajectory) == 4

    def test_exact_multiple_keeps_final_sample(self):
        grid = sample_times(8.0, 0.25)
        assert grid.size == 33
        assert grid[-1] == 8.0

    def test_values_are_exact_multiples(self):
        grid = sample_times(3.0, 0.1)
        assert np.all(grid == 0.1 * np.arange(grid.size))


class TestHorizonContract:
    """Invalid horizons raise the estimation-layer's exception type."""

    @pytest.mark.parametrize(
        "predictor",
        [
            ConstantVelocityPredictor(),
            ConstantAccelerationPredictor(),
            ManeuverPredictor(),
        ],
        ids=["constant-velocity", "constant-accel", "maneuver"],
    )
    @pytest.mark.parametrize("horizon", [0.0, -1.0])
    def test_predict_rejects_non_positive_horizon(self, predictor, horizon):
        with pytest.raises(EstimationError):
            predictor.predict(perceived(), 0.0, horizon)

    def test_configuration_errors_stay_configuration(self):
        # Constructor validation is a configuration concern, unchanged.
        with pytest.raises(ConfigurationError):
            ConstantVelocityPredictor(sample_period=0.0)


class TestConstantAcceleration:
    def test_braking_stops(self):
        predictions = ConstantAccelerationPredictor().predict(
            perceived(speed=10.0, accel=-5.0), now=0.0, horizon=5.0
        )
        end = predictions[0].trajectory.state_at(5.0)
        assert end.speed == 0.0
        assert end.position.x == pytest.approx(10.0)

    def test_accelerating_caps_at_max_speed(self):
        predictor = ConstantAccelerationPredictor(max_speed=12.0)
        predictions = predictor.predict(
            perceived(speed=10.0, accel=4.0), now=0.0, horizon=10.0
        )
        assert predictions[0].trajectory.state_at(10.0).speed == pytest.approx(12.0)


class TestManeuverPredictor:
    def test_probabilities_sum_to_one(self):
        predictions = ManeuverPredictor().predict(perceived(), 0.0, 6.0)
        assert sum(p.probability for p in predictions) == pytest.approx(1.0)

    def test_labels_unique(self):
        predictions = ManeuverPredictor().predict(perceived(), 0.0, 6.0)
        labels = [p.label for p in predictions]
        assert len(set(labels)) == len(labels)

    def test_no_lane_change_without_road(self):
        predictions = ManeuverPredictor().predict(perceived(), 0.0, 6.0)
        assert "lane-change" not in {p.label for p in predictions}

    def test_lane_change_toward_target_lane(self):
        road = three_lane_straight_road()
        predictor = ManeuverPredictor(road=road, target_lane=1)
        # Actor in lane 0 (d = -3.5).
        predictions = predictor.predict(
            perceived(x=100.0, y=-3.5, speed=15.0), 0.0, 8.0
        )
        by_label = {p.label: p for p in predictions}
        assert "lane-change" in by_label
        end = by_label["lane-change"].trajectory.state_at(8.0)
        assert end.position.y == pytest.approx(0.0, abs=0.1)

    def test_no_lane_change_from_target_lane(self):
        road = three_lane_straight_road()
        predictor = ManeuverPredictor(road=road, target_lane=1)
        predictions = predictor.predict(
            perceived(x=100.0, y=0.0, speed=15.0), 0.0, 8.0
        )
        assert "lane-change" not in {p.label for p in predictions}

    def test_no_lane_change_across_two_lanes(self):
        road = three_lane_straight_road()
        predictor = ManeuverPredictor(road=road, target_lane=2)
        predictions = predictor.predict(
            perceived(x=100.0, y=-3.5, speed=15.0), 0.0, 8.0
        )
        assert "lane-change" not in {p.label for p in predictions}

    def test_brake_hypothesis_slower_than_keep(self):
        predictions = ManeuverPredictor().predict(
            perceived(speed=20.0), 0.0, 5.0
        )
        by_label = {p.label: p for p in predictions}
        keep_end = by_label["keep"].trajectory.state_at(5.0)
        brake_end = by_label["hard-brake"].trajectory.state_at(5.0)
        assert brake_end.position.x < keep_end.position.x
        assert brake_end.speed < keep_end.speed

    def test_zero_weights_rejected(self):
        predictor = ManeuverPredictor(weights={})
        with pytest.raises(ConfigurationError):
            predictor.predict(perceived(), 0.0, 5.0)

    @pytest.mark.parametrize("max_speed", [0.0, -5.0])
    def test_rejects_non_positive_max_speed(self, max_speed):
        with pytest.raises(ConfigurationError):
            ManeuverPredictor(max_speed=max_speed)


class TestPredictTrace:
    """The batch protocol equals the per-tick loop."""

    def assert_hypotheses_equal(self, batch, stacked):
        assert [h.label for h in batch] == [h.label for h in stacked]
        for hypothesis_b, hypothesis_s in zip(batch, stacked):
            assert np.array_equal(hypothesis_b.active, hypothesis_s.active)
            rows = np.flatnonzero(hypothesis_b.active)
            assert np.array_equal(
                hypothesis_b.probabilities[rows],
                hypothesis_s.probabilities[rows],
            )
            for name in ("times", "xs", "ys", "speeds", "end_vx", "end_vy"):
                batched = getattr(hypothesis_b.rollout, name)[rows]
                looped = getattr(hypothesis_s.rollout, name)[rows]
                assert np.array_equal(batched, looped), (
                    hypothesis_b.label,
                    name,
                )

    def trace_inputs(self, count=7):
        rng = np.random.default_rng(11)
        nows = 0.3 * np.arange(count)
        actors = [
            perceived(
                x=float(rng.uniform(-50, 50)),
                y=float(rng.uniform(-5, 5)),
                speed=float(rng.uniform(0, 30)),
                heading=float(rng.uniform(-0.3, 0.3)),
                accel=float(rng.uniform(-4, 2)),
                t=float(now),
            )
            for now in nows
        ]
        return actors, nows

    @pytest.mark.parametrize(
        "predictor",
        [
            ConstantVelocityPredictor(),
            ConstantAccelerationPredictor(),
            ManeuverPredictor(road=three_lane_straight_road(), target_lane=1),
        ],
        ids=["constant-velocity", "constant-accel", "maneuver"],
    )
    def test_matches_stacked_per_tick_loop(self, predictor):
        actors, nows = self.trace_inputs()
        batch = predictor.predict_trace(actors, nows, 6.0)
        stacked = predict_trace_via_loop(predictor, actors, nows, 6.0)
        assert stacked is not None
        self.assert_hypotheses_equal(batch, stacked)

    def test_via_loop_rejects_inconsistent_labels(self):
        class Flipping:
            def __init__(self):
                self.calls = 0

            def predict(self, actor, now, horizon):
                self.calls += 1
                predictions = ManeuverPredictor().predict(actor, now, horizon)
                if self.calls % 2 == 0:
                    predictions = list(reversed(predictions))
                return predictions

        actors, nows = self.trace_inputs(count=4)
        assert predict_trace_via_loop(Flipping(), actors, nows, 6.0) is None


class TestProbabilityCheck:
    def test_accepts_valid(self):
        predictions = ConstantVelocityPredictor().predict(perceived(), 0.0, 1.0)
        check_probabilities(predictions)

    def test_rejects_empty(self):
        with pytest.raises(EstimationError):
            check_probabilities([])

    def test_rejects_bad_sum(self):
        predictions = ConstantVelocityPredictor().predict(perceived(), 0.0, 1.0)
        bad = [PredictedTrajectory(predictions[0].trajectory, 0.5)]
        with pytest.raises(EstimationError):
            check_probabilities(bad)

    def test_rejects_probability_above_one(self):
        predictions = ConstantVelocityPredictor().predict(perceived(), 0.0, 1.0)
        with pytest.raises(EstimationError):
            PredictedTrajectory(predictions[0].trajectory, 1.5)


class TestPredictTraceViaLoopRaggedness:
    """Outputs the array form cannot hold are refused, not mangled."""

    def test_duplicate_labels_refused(self):
        class Duplicating:
            def predict(self, actor, now, horizon):
                predictions = ConstantVelocityPredictor().predict(
                    actor, now, horizon
                )
                return predictions + predictions

        actors = [perceived(t=0.0), perceived(t=0.5)]
        nows = np.array([0.0, 0.5])
        assert predict_trace_via_loop(Duplicating(), actors, nows, 2.0) is None

    def test_ragged_sample_counts_refused(self):
        class Shrinking:
            def __init__(self):
                self.calls = 0

            def predict(self, actor, now, horizon):
                self.calls += 1
                # A predictor whose sample grid depends on the tick.
                return ConstantVelocityPredictor(
                    sample_period=0.5 if self.calls % 2 else 0.25
                ).predict(actor, now, horizon)

        actors = [perceived(t=0.0), perceived(t=0.5)]
        nows = np.array([0.0, 0.5])
        assert predict_trace_via_loop(Shrinking(), actors, nows, 2.0) is None
