"""Trajectory predictors."""

import math

import pytest

from repro.errors import ConfigurationError, EstimationError
from repro.geometry.vec import Vec2
from repro.perception.world_model import PerceivedActor
from repro.prediction.base import PredictedTrajectory, check_probabilities
from repro.prediction.constant_accel import ConstantAccelerationPredictor
from repro.prediction.constant_velocity import ConstantVelocityPredictor
from repro.prediction.maneuver import ManeuverPredictor
from repro.road.track import three_lane_straight_road


def perceived(x=0.0, y=0.0, speed=10.0, heading=0.0, accel=0.0, t=0.0):
    return PerceivedActor(
        actor_id="a",
        position=Vec2(x, y),
        velocity=Vec2.unit(heading) * speed,
        heading=heading,
        speed=speed,
        accel=accel,
        timestamp=t,
    )


class TestConstantVelocity:
    def test_straight_line(self):
        predictions = ConstantVelocityPredictor().predict(
            perceived(speed=8.0), now=5.0, horizon=4.0
        )
        assert len(predictions) == 1
        trajectory = predictions[0].trajectory
        assert trajectory.state_at(9.0).position.x == pytest.approx(32.0)
        assert trajectory.state_at(9.0).speed == pytest.approx(8.0)

    def test_probability_one(self):
        predictions = ConstantVelocityPredictor().predict(
            perceived(), now=0.0, horizon=2.0
        )
        assert predictions[0].probability == 1.0

    def test_heading_respected(self):
        predictions = ConstantVelocityPredictor().predict(
            perceived(heading=math.pi / 2, speed=5.0), now=0.0, horizon=2.0
        )
        end = predictions[0].trajectory.state_at(2.0)
        assert end.position.y == pytest.approx(10.0)

    def test_rejects_bad_horizon(self):
        with pytest.raises(ConfigurationError):
            ConstantVelocityPredictor().predict(perceived(), 0.0, 0.0)


class TestConstantAcceleration:
    def test_braking_stops(self):
        predictions = ConstantAccelerationPredictor().predict(
            perceived(speed=10.0, accel=-5.0), now=0.0, horizon=5.0
        )
        end = predictions[0].trajectory.state_at(5.0)
        assert end.speed == 0.0
        assert end.position.x == pytest.approx(10.0)

    def test_accelerating_caps_at_max_speed(self):
        predictor = ConstantAccelerationPredictor(max_speed=12.0)
        predictions = predictor.predict(
            perceived(speed=10.0, accel=4.0), now=0.0, horizon=10.0
        )
        assert predictions[0].trajectory.state_at(10.0).speed == pytest.approx(12.0)


class TestManeuverPredictor:
    def test_probabilities_sum_to_one(self):
        predictions = ManeuverPredictor().predict(perceived(), 0.0, 6.0)
        assert sum(p.probability for p in predictions) == pytest.approx(1.0)

    def test_labels_unique(self):
        predictions = ManeuverPredictor().predict(perceived(), 0.0, 6.0)
        labels = [p.label for p in predictions]
        assert len(set(labels)) == len(labels)

    def test_no_lane_change_without_road(self):
        predictions = ManeuverPredictor().predict(perceived(), 0.0, 6.0)
        assert "lane-change" not in {p.label for p in predictions}

    def test_lane_change_toward_target_lane(self):
        road = three_lane_straight_road()
        predictor = ManeuverPredictor(road=road, target_lane=1)
        # Actor in lane 0 (d = -3.5).
        predictions = predictor.predict(
            perceived(x=100.0, y=-3.5, speed=15.0), 0.0, 8.0
        )
        by_label = {p.label: p for p in predictions}
        assert "lane-change" in by_label
        end = by_label["lane-change"].trajectory.state_at(8.0)
        assert end.position.y == pytest.approx(0.0, abs=0.1)

    def test_no_lane_change_from_target_lane(self):
        road = three_lane_straight_road()
        predictor = ManeuverPredictor(road=road, target_lane=1)
        predictions = predictor.predict(
            perceived(x=100.0, y=0.0, speed=15.0), 0.0, 8.0
        )
        assert "lane-change" not in {p.label for p in predictions}

    def test_no_lane_change_across_two_lanes(self):
        road = three_lane_straight_road()
        predictor = ManeuverPredictor(road=road, target_lane=2)
        predictions = predictor.predict(
            perceived(x=100.0, y=-3.5, speed=15.0), 0.0, 8.0
        )
        assert "lane-change" not in {p.label for p in predictions}

    def test_brake_hypothesis_slower_than_keep(self):
        predictions = ManeuverPredictor().predict(
            perceived(speed=20.0), 0.0, 5.0
        )
        by_label = {p.label: p for p in predictions}
        keep_end = by_label["keep"].trajectory.state_at(5.0)
        brake_end = by_label["hard-brake"].trajectory.state_at(5.0)
        assert brake_end.position.x < keep_end.position.x
        assert brake_end.speed < keep_end.speed

    def test_zero_weights_rejected(self):
        predictor = ManeuverPredictor(weights={})
        with pytest.raises(ConfigurationError):
            predictor.predict(perceived(), 0.0, 5.0)


class TestProbabilityCheck:
    def test_accepts_valid(self):
        predictions = ConstantVelocityPredictor().predict(perceived(), 0.0, 1.0)
        check_probabilities(predictions)

    def test_rejects_empty(self):
        with pytest.raises(EstimationError):
            check_probabilities([])

    def test_rejects_bad_sum(self):
        predictions = ConstantVelocityPredictor().predict(perceived(), 0.0, 1.0)
        bad = [PredictedTrajectory(predictions[0].trajectory, 0.5)]
        with pytest.raises(EstimationError):
            check_probabilities(bad)

    def test_rejects_probability_above_one(self):
        predictions = ConstantVelocityPredictor().predict(perceived(), 0.0, 1.0)
        with pytest.raises(EstimationError):
            PredictedTrajectory(predictions[0].trajectory, 1.5)
