"""Ego reaction/braking closed forms (d_e1, d_e2, v_en)."""

import pytest

from repro.core.ego_profile import EgoMotion, braking_deceleration
from repro.core.parameters import ZhuyiParams
from repro.errors import EstimationError


class TestBrakingDeceleration:
    def test_floor_is_c3(self, params):
        # Cruising (a0 = 0): the floor C3 applies.
        assert braking_deceleration(0.0, params) == pytest.approx(4.9)

    def test_accelerating_does_not_weaken(self, params):
        assert braking_deceleration(3.0, params) == pytest.approx(4.9)

    def test_current_braking_scales(self, params):
        # Braking at 6 m/s^2: a_b = max(4.9, 1.1*6) = 6.6.
        assert braking_deceleration(-6.0, params) == pytest.approx(6.6)

    def test_mild_braking_keeps_floor(self, params):
        assert braking_deceleration(-1.0, params) == pytest.approx(4.9)


class TestEgoMotion:
    def test_from_state(self, params):
        ego = EgoMotion.from_state(speed=20.0, accel=-6.0, params=params)
        assert ego.braking_decel == pytest.approx(6.6)

    def test_rejects_negative_speed(self):
        with pytest.raises(EstimationError):
            EgoMotion(speed=-1.0, accel=0.0, braking_decel=4.9)

    def test_rejects_zero_braking(self):
        with pytest.raises(EstimationError):
            EgoMotion(speed=1.0, accel=0.0, braking_decel=0.0)


class TestReactionTravel:
    def test_constant_speed_reaction(self):
        ego = EgoMotion(speed=20.0, accel=0.0, braking_decel=4.9)
        d_e1, v_tr = ego.reaction_travel(1.5)
        assert d_e1 == pytest.approx(30.0)
        assert v_tr == pytest.approx(20.0)

    def test_accelerating_reaction(self):
        ego = EgoMotion(speed=20.0, accel=2.0, braking_decel=4.9)
        d_e1, v_tr = ego.reaction_travel(2.0)
        assert d_e1 == pytest.approx(44.0)
        assert v_tr == pytest.approx(24.0)

    def test_speed_cap_during_reaction(self):
        ego = EgoMotion(speed=20.0, accel=2.0, braking_decel=4.9)
        _, v_tr = ego.reaction_travel(10.0, speed_cap=25.0)
        assert v_tr == pytest.approx(25.0)

    def test_braking_ego_can_stop_in_reaction(self):
        ego = EgoMotion(speed=5.0, accel=-5.0, braking_decel=5.5)
        d_e1, v_tr = ego.reaction_travel(3.0)
        assert v_tr == 0.0
        assert d_e1 == pytest.approx(2.5)

    def test_rejects_negative_reaction_time(self):
        ego = EgoMotion(speed=5.0, accel=0.0, braking_decel=4.9)
        with pytest.raises(EstimationError):
            ego.reaction_travel(-0.1)


class TestTotalTravel:
    def test_reaction_plus_braking(self):
        ego = EgoMotion(speed=20.0, accel=0.0, braking_decel=5.0)
        total, v_en = ego.total_travel(reaction_time=1.0, check_time=3.0)
        # 20 m coast + braking from 20 at 5 for 2 s: 40 - 10 = 30 m.
        assert total == pytest.approx(50.0)
        assert v_en == pytest.approx(10.0)

    def test_full_stop(self):
        ego = EgoMotion(speed=20.0, accel=0.0, braking_decel=5.0)
        total, v_en = ego.total_travel(reaction_time=1.0, check_time=100.0)
        assert v_en == 0.0
        assert total == pytest.approx(20.0 + 40.0)

    def test_check_before_reaction_raises(self):
        ego = EgoMotion(speed=20.0, accel=0.0, braking_decel=5.0)
        with pytest.raises(EstimationError):
            ego.total_travel(reaction_time=2.0, check_time=1.0)


class TestStopTime:
    def test_stop_time(self):
        ego = EgoMotion(speed=20.0, accel=0.0, braking_decel=5.0)
        assert ego.stop_time_after(1.0) == pytest.approx(5.0)

    def test_stop_time_with_acceleration(self):
        ego = EgoMotion(speed=20.0, accel=2.0, braking_decel=5.0)
        # v_tr = 24 after 2 s; stop takes 24/5.
        assert ego.stop_time_after(2.0) == pytest.approx(2.0 + 4.8)
