"""Ego reaction/braking closed forms (d_e1, d_e2, v_en)."""

import pytest

from repro.core.ego_profile import EgoMotion, braking_deceleration
from repro.core.parameters import ZhuyiParams
from repro.errors import EstimationError


class TestBrakingDeceleration:
    def test_floor_is_c3(self, params):
        # Cruising (a0 = 0): the floor C3 applies.
        assert braking_deceleration(0.0, params) == pytest.approx(4.9)

    def test_accelerating_does_not_weaken(self, params):
        assert braking_deceleration(3.0, params) == pytest.approx(4.9)

    def test_current_braking_scales(self, params):
        # Braking at 6 m/s^2: a_b = max(4.9, 1.1*6) = 6.6.
        assert braking_deceleration(-6.0, params) == pytest.approx(6.6)

    def test_mild_braking_keeps_floor(self, params):
        assert braking_deceleration(-1.0, params) == pytest.approx(4.9)


class TestEgoMotion:
    def test_from_state(self, params):
        ego = EgoMotion.from_state(speed=20.0, accel=-6.0, params=params)
        assert ego.braking_decel == pytest.approx(6.6)

    def test_rejects_negative_speed(self):
        with pytest.raises(EstimationError):
            EgoMotion(speed=-1.0, accel=0.0, braking_decel=4.9)

    def test_rejects_zero_braking(self):
        with pytest.raises(EstimationError):
            EgoMotion(speed=1.0, accel=0.0, braking_decel=0.0)


class TestReactionTravel:
    def test_constant_speed_reaction(self):
        ego = EgoMotion(speed=20.0, accel=0.0, braking_decel=4.9)
        d_e1, v_tr = ego.reaction_travel(1.5)
        assert d_e1 == pytest.approx(30.0)
        assert v_tr == pytest.approx(20.0)

    def test_accelerating_reaction(self):
        ego = EgoMotion(speed=20.0, accel=2.0, braking_decel=4.9)
        d_e1, v_tr = ego.reaction_travel(2.0)
        assert d_e1 == pytest.approx(44.0)
        assert v_tr == pytest.approx(24.0)

    def test_speed_cap_during_reaction(self):
        ego = EgoMotion(speed=20.0, accel=2.0, braking_decel=4.9)
        _, v_tr = ego.reaction_travel(10.0, speed_cap=25.0)
        assert v_tr == pytest.approx(25.0)

    def test_braking_ego_can_stop_in_reaction(self):
        ego = EgoMotion(speed=5.0, accel=-5.0, braking_decel=5.5)
        d_e1, v_tr = ego.reaction_travel(3.0)
        assert v_tr == 0.0
        assert d_e1 == pytest.approx(2.5)

    def test_rejects_negative_reaction_time(self):
        ego = EgoMotion(speed=5.0, accel=0.0, braking_decel=4.9)
        with pytest.raises(EstimationError):
            ego.reaction_travel(-0.1)


class TestTotalTravel:
    def test_reaction_plus_braking(self):
        ego = EgoMotion(speed=20.0, accel=0.0, braking_decel=5.0)
        total, v_en = ego.total_travel(reaction_time=1.0, check_time=3.0)
        # 20 m coast + braking from 20 at 5 for 2 s: 40 - 10 = 30 m.
        assert total == pytest.approx(50.0)
        assert v_en == pytest.approx(10.0)

    def test_full_stop(self):
        ego = EgoMotion(speed=20.0, accel=0.0, braking_decel=5.0)
        total, v_en = ego.total_travel(reaction_time=1.0, check_time=100.0)
        assert v_en == 0.0
        assert total == pytest.approx(20.0 + 40.0)

    def test_check_before_reaction_raises(self):
        ego = EgoMotion(speed=20.0, accel=0.0, braking_decel=5.0)
        with pytest.raises(EstimationError):
            ego.total_travel(reaction_time=2.0, check_time=1.0)


class TestStopTime:
    def test_stop_time(self):
        ego = EgoMotion(speed=20.0, accel=0.0, braking_decel=5.0)
        assert ego.stop_time_after(1.0) == pytest.approx(5.0)

    def test_stop_time_with_acceleration(self):
        ego = EgoMotion(speed=20.0, accel=2.0, braking_decel=5.0)
        # v_tr = 24 after 2 s; stop takes 24/5.
        assert ego.stop_time_after(2.0) == pytest.approx(2.0 + 4.8)


class TestProfileArrays:
    """The shared coast/brake profile routine (scalar search + engine)."""

    def setup_method(self):
        import numpy as np

        self.np = np
        self.params = ZhuyiParams()

    def motion(self, speed, accel):
        return EgoMotion.from_state(speed, accel, self.params)

    def test_matches_total_travel_past_reaction(self):
        from repro.core.ego_profile import ego_profile_arrays

        np = self.np
        ego = self.motion(18.0, -1.5)
        reaction = 0.73
        times = np.array([1.0, 2.0, 4.0, 8.0])
        distance, speed = ego_profile_arrays(ego, reaction, times)
        for t, d, v in zip(times, distance, speed):
            expect_d, expect_v = ego.total_travel(reaction, float(t))
            assert d == pytest.approx(expect_d, abs=1e-12)
            assert v == pytest.approx(expect_v, abs=1e-12)

    def test_coast_phase_clamps_at_zero_speed(self):
        from repro.core.ego_profile import ego_profile_arrays

        np = self.np
        ego = self.motion(4.0, -2.0)
        times = np.array([0.0, 1.0, 2.0, 3.0])  # stops at t=2 in-coast
        distance, speed = ego_profile_arrays(ego, 3.0, times)
        assert speed[2] == 0.0 and speed[3] == 0.0
        assert distance[3] == distance[2]  # no reversing

    def test_speed_cap_respected(self):
        from repro.core.ego_profile import ego_profile_arrays

        np = self.np
        params = ZhuyiParams(ego_speed_cap=10.0)
        ego = EgoMotion.from_state(8.0, 3.0, params)
        times = np.array([0.5, 2.0, 5.0])
        _, speed = ego_profile_arrays(ego, 6.0, times, speed_cap=10.0)
        assert speed.max() <= 10.0

    def test_broadcast_reaction_column_matches_rows(self):
        from repro.core.ego_profile import ego_profile_arrays

        np = self.np
        ego = self.motion(22.0, 1.0)
        reactions = np.array([0.4, 1.1, 2.9])
        times = np.arange(0.0, 6.0, 0.31)
        distance_2d, speed_2d = ego_profile_arrays(
            ego, reactions[:, None], times
        )
        for row, reaction in enumerate(reactions):
            distance, speed = ego_profile_arrays(ego, float(reaction), times)
            assert np.array_equal(distance_2d[row], distance)
            assert np.array_equal(speed_2d[row], speed)

    def test_elementwise_reaction_diagonal(self):
        from repro.core.ego_profile import ego_profile_arrays

        np = self.np
        ego = self.motion(15.0, -0.5)
        reactions = np.array([0.2, 0.9, 1.7])
        distance, speed = ego_profile_arrays(ego, reactions, reactions)
        for r, d, v in zip(reactions, distance, speed):
            d_e1, v_tr = ego.reaction_travel(float(r))
            assert d == d_e1 and v == v_tr
