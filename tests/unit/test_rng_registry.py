"""The central stream-tag registry (PR 10 satellite).

Pins the three facts RNG004 leans on: every stream/derivation literal
used anywhere in ``src/`` is registered, registered tags map to
pairwise-distinct key words, and the linter's pure-python FNV-1a
mirror is bit-identical to the runtime ``stable_key``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core import rng
from repro.errors import ConfigurationError
from repro.lint.context import ModuleContext
from repro.lint.engine import iter_source_files, package_relpath
from repro.lint.rules.rng import (
    _fnv1a64,
    collect_stream_literals,
    default_registry_path,
    registered_tags_from_source,
    tag_word,
)

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def _all_stream_literals_in_src() -> set[str]:
    used: set[str] = set()
    for path in iter_source_files(SRC):
        module = ModuleContext.from_file(path, package_relpath(path))
        for _, literal, _ in collect_stream_literals(module):
            used.add(literal)
    return used


def test_every_stream_literal_in_src_is_registered():
    used = _all_stream_literals_in_src()
    assert used, "expected stream-tag literals somewhere in src/"
    registered = set(rng.registered_streams())
    assert used <= registered, (
        f"unregistered stream tags in src/: {sorted(used - registered)}"
    )


def test_registered_tags_have_pairwise_distinct_key_words():
    streams = rng.registered_streams()
    assert len(streams) >= 8  # the shipped channels
    words = list(streams.values())
    assert len(set(words)) == len(words)


def test_registry_words_match_stable_key():
    for tag, word in rng.registered_streams().items():
        assert word == int(rng.stable_key(tag))


def test_register_stream_is_idempotent():
    before = dict(rng.registered_streams())
    word = rng.register_stream("perception.miss")
    assert word == rng.STREAM_MISS
    assert rng.registered_streams() == before


@pytest.mark.parametrize("bad", ["", 7, None, b"bytes.tag"])
def test_register_stream_rejects_non_string_tags(bad):
    with pytest.raises(ConfigurationError, match="non-empty strings"):
        rng.register_stream(bad)


def test_register_stream_rejects_key_word_collisions(monkeypatch):
    # Real FNV-1a collisions are astronomically unlikely to construct,
    # so simulate one: an imposter entry already holding the word the
    # new tag hashes to.
    fake = dict(rng.STREAM_REGISTRY)
    fake["imposter.tag"] = rng.stable_key("brand.new.tag")
    monkeypatch.setattr(rng, "STREAM_REGISTRY", fake)
    with pytest.raises(ConfigurationError, match="collides"):
        rng.register_stream("brand.new.tag")


def test_registered_streams_is_a_snapshot():
    snapshot = rng.registered_streams()
    snapshot["mutated.tag"] = 1
    assert "mutated.tag" not in rng.registered_streams()


def test_lint_fnv_mirror_matches_stable_key():
    tags = [
        "perception.miss",
        "a",
        "zhuyi.replay",
        "tag with spaces",
        "ünïcode.tag",
        "",
    ]
    for tag in tags:
        assert _fnv1a64(tag.encode("utf-8")) == int(rng.stable_key(tag))
        assert tag_word(tag) == int(rng.stable_key(tag))


def test_static_registry_parse_matches_runtime_registry():
    # RNG004 reads rng.py statically; the tags it parses must be the
    # tags the interpreter registers.
    source = default_registry_path().read_text()
    static = registered_tags_from_source(source)
    assert set(static) == set(rng.registered_streams())
