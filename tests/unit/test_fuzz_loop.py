"""The evolutionary operators and fitness functions, sans simulation.

Everything stochastic in the search is a counter-RNG draw keyed by
(generation, slot/child, gene) — these tests pin the operators as pure
functions of the config seed, with bounds respected and determinism
independent of call order. Fitness functions are pinned on synthetic
run summaries.
"""

import pytest

from repro.batch.results import RunSummary
from repro.errors import ConfigurationError
from repro.fuzz import (
    FuzzConfig,
    initial_population,
    mutate,
    next_population,
    score_disagreement,
    score_key,
    score_rows,
    tournament_pick,
)
from repro.scenarios.fuzzed import FUZZ_FAMILIES

CONFIG = FuzzConfig(
    family="cut_out", population=6, generations=3, elite=2, seed=11
)
SPACE = FUZZ_FAMILIES["cut_out"].space


def row(index=0, collided=False, max_fpr=10.0, fpr=30.0, error=None):
    return RunSummary(
        index=index,
        scenario="fuzzed_cut_out_0000000000",
        seed=0,
        fpr=fpr,
        variant="default",
        collided=collided,
        max_fpr=None if error or collided else max_fpr,
        error=error,
    )


class TestFuzzConfig:
    def test_rejects_unknown_family(self):
        with pytest.raises(ConfigurationError):
            FuzzConfig(family="nope")

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(population=1),
            dict(generations=0),
            dict(elite=6),
            dict(elite=-1),
            dict(tournament=0),
            dict(mutation_scale=0.0),
            dict(mutation_scale=1.5),
            dict(fitness="bogus"),
            dict(backend="bogus"),
            dict(sim_seeds=()),
            dict(fprs=()),
            dict(stride=0.0),
            dict(archive_size=0),
        ],
    )
    def test_rejects_bad_settings(self, kwargs):
        with pytest.raises(ConfigurationError):
            FuzzConfig(family="cut_out", **{"population": 6, **kwargs})

    def test_to_dict_round_trips_values(self):
        data = CONFIG.to_dict()
        assert data["family"] == "cut_out"
        assert data["population"] == 6
        assert FuzzConfig(**{
            **data,
            "sim_seeds": tuple(data["sim_seeds"]),
            "fprs": tuple(data["fprs"]),
        }) == CONFIG


class TestInitialPopulation:
    def test_slot_zero_is_the_family_default(self):
        population = initial_population(CONFIG)
        assert population[0] == SPACE.defaults()
        assert len(population) == CONFIG.population

    def test_random_slots_respect_bounds_and_types(self):
        for genome in initial_population(CONFIG)[1:]:
            for gene in SPACE.genes:
                value = genome[gene.name]
                assert gene.low <= value <= gene.high
                if gene.integer:
                    assert isinstance(value, int)

    def test_deterministic_in_seed(self):
        assert initial_population(CONFIG) == initial_population(CONFIG)
        other = FuzzConfig(
            family="cut_out", population=6, generations=3, elite=2, seed=12
        )
        assert initial_population(other) != initial_population(CONFIG)


class TestMutate:
    GENOME = SPACE.defaults()

    def test_stays_in_bounds(self):
        wide = FuzzConfig(
            family="cut_out", population=6, mutation_scale=1.0, seed=3
        )
        for child in range(20):
            mutated = mutate(wide, self.GENOME, 0, child)
            for gene in SPACE.genes:
                assert gene.low <= mutated[gene.name] <= gene.high

    def test_deterministic_per_key(self):
        assert mutate(CONFIG, self.GENOME, 1, 2) == mutate(
            CONFIG, self.GENOME, 1, 2
        )
        assert mutate(CONFIG, self.GENOME, 1, 2) != mutate(
            CONFIG, self.GENOME, 1, 3
        )

    def test_integer_genes_stay_integers(self):
        mutated = mutate(CONFIG, self.GENOME, 0, 0)
        assert isinstance(mutated["actor_count"], int)


class TestSelection:
    SCORES = [5.0, None, 12.0, 1.0, 12.0, 3.0]

    def test_tournament_is_deterministic(self):
        picks = [
            tournament_pick(CONFIG, self.SCORES, 2, child)
            for child in range(8)
        ]
        assert picks == [
            tournament_pick(CONFIG, self.SCORES, 2, child)
            for child in range(8)
        ]
        assert all(0 <= pick < len(self.SCORES) for pick in picks)

    def test_single_candidate_tournament(self):
        config = FuzzConfig(family="cut_out", population=6, tournament=1)
        pick = tournament_pick(config, self.SCORES, 0, 0)
        assert 0 <= pick < len(self.SCORES)

    def test_next_population_keeps_elites_first(self):
        population = initial_population(CONFIG)
        successors = next_population(CONFIG, population, self.SCORES, 0)
        assert len(successors) == CONFIG.population
        # Slots 2 and 4 tie at 12.0; the lower slot ranks first.
        assert successors[0] == population[2]
        assert successors[1] == population[4]

    def test_none_scores_never_make_elite(self):
        population = initial_population(CONFIG)
        scores = [None, None, None, None, 2.0, 1.0]
        successors = next_population(CONFIG, population, scores, 1)
        assert successors[0] == population[4]
        assert successors[1] == population[5]


class TestScoreRows:
    def test_latency_is_peak_demand(self):
        rows = [row(max_fpr=8.0), row(index=1, max_fpr=22.5)]
        assert score_rows(rows, "latency", 30.0) == 22.5

    def test_collision_scores_twice_the_provision(self):
        rows = [row(max_fpr=8.0), row(index=1, collided=True)]
        assert score_rows(rows, "latency", 30.0) == 60.0

    def test_mrf_margin_subtracts_the_run_fpr(self):
        rows = [row(max_fpr=34.0, fpr=30.0), row(index=1, max_fpr=9.0, fpr=5.0)]
        assert score_rows(rows, "mrf_margin", 30.0) == 4.0

    def test_failed_rows_are_ignored(self):
        rows = [row(error="SimulationError: boom"), row(index=1, max_fpr=3.0)]
        assert score_rows(rows, "latency", 30.0) == 3.0

    def test_all_failed_scores_none(self):
        assert score_rows([row(error="x")], "latency", 30.0) is None
        assert score_rows([], "latency", 30.0) is None

    def test_unknown_fitness_raises(self):
        with pytest.raises(ConfigurationError):
            score_rows([], "disagreement", 30.0)


class TestScoreDisagreement:
    def test_peak_absolute_difference_over_paired_cells(self):
        rows = [row(max_fpr=10.0, fpr=10.0), row(index=1, max_fpr=20.0)]
        ref = [row(max_fpr=10.5, fpr=10.0), row(index=1, max_fpr=19.0)]
        assert score_disagreement(rows, ref) == 1.0

    def test_collision_mismatch_is_infinite(self):
        assert score_disagreement(
            [row(collided=True)], [row(max_fpr=5.0)]
        ) == float("inf")

    def test_agreeing_collisions_score_zero(self):
        assert (
            score_disagreement([row(collided=True)], [row(collided=True)])
            == 0.0
        )

    def test_no_usable_pairs_is_none(self):
        assert score_disagreement([row(error="x")], [row()]) is None
        assert score_disagreement([row()], []) is None


def test_score_key_orders_none_last():
    assert score_key(None) < score_key(-1e9)
    assert sorted([None, 3.0, 1.0], key=score_key, reverse=True) == [
        3.0,
        1.0,
        None,
    ]
