"""Collision checker."""

from repro.dynamics.state import VehicleSpec, VehicleState
from repro.geometry.vec import Vec2
from repro.sim.collision import CollisionChecker


SPEC = VehicleSpec()


def vstate(x: float, y: float = 0.0) -> VehicleState:
    return VehicleState(Vec2(x, y), 0.0, 0.0, 0.0)


class TestCollisionChecker:
    def test_no_collision_when_apart(self):
        checker = CollisionChecker(SPEC)
        events = checker.check(1.0, vstate(0), {"a": (vstate(50), SPEC)})
        assert events == []

    def test_collision_detected(self):
        checker = CollisionChecker(SPEC)
        events = checker.check(2.5, vstate(0), {"a": (vstate(3.0), SPEC)})
        assert len(events) == 1
        assert events[0].actor_id == "a"
        assert events[0].time == 2.5

    def test_each_actor_reported_once(self):
        checker = CollisionChecker(SPEC)
        actors = {"a": (vstate(3.0), SPEC)}
        assert len(checker.check(1.0, vstate(0), actors)) == 1
        assert checker.check(1.1, vstate(0), actors) == []
        assert checker.collided_actors == {"a"}

    def test_multiple_simultaneous_collisions(self):
        checker = CollisionChecker(SPEC)
        actors = {
            "front": (vstate(4.0), SPEC),
            "side": (vstate(0.0, 1.5), SPEC),
            "far": (vstate(100.0), SPEC),
        }
        events = checker.check(0.0, vstate(0), actors)
        assert {e.actor_id for e in events} == {"front", "side"}

    def test_second_actor_still_detected_after_first(self):
        checker = CollisionChecker(SPEC)
        checker.check(0.0, vstate(0), {"a": (vstate(3.0), SPEC)})
        events = checker.check(1.0, vstate(0), {"b": (vstate(3.0), SPEC)})
        assert [e.actor_id for e in events] == ["b"]
