"""SE(2) frame transforms."""

import math

import pytest

from repro.geometry.transforms import Frame2
from repro.geometry.vec import Vec2


class TestRoundTrip:
    def test_local_world_inverse(self):
        frame = Frame2(Vec2(3, -2), 0.8)
        p = Vec2(7.5, 1.25)
        assert frame.to_world(frame.to_local(p)).distance_to(p) < 1e-12

    def test_world_local_inverse(self):
        frame = Frame2(Vec2(-1, 4), -2.1)
        p = Vec2(0.5, 0.5)
        assert frame.to_local(frame.to_world(p)).distance_to(p) < 1e-12


class TestSemantics:
    def test_identity_is_noop(self):
        frame = Frame2.identity()
        assert frame.to_local(Vec2(3, 4)) == Vec2(3, 4)

    def test_point_ahead_has_positive_local_x(self):
        frame = Frame2(Vec2(0, 0), math.pi / 2)  # facing +Y
        local = frame.to_local(Vec2(0, 10))
        assert local.x == pytest.approx(10.0)
        assert local.y == pytest.approx(0.0, abs=1e-12)

    def test_bearing_left_is_positive(self):
        frame = Frame2(Vec2(0, 0), 0.0)
        assert frame.bearing_of(Vec2(1, 1)) == pytest.approx(math.pi / 4)
        assert frame.bearing_of(Vec2(1, -1)) == pytest.approx(-math.pi / 4)

    def test_heading_to_local(self):
        frame = Frame2(Vec2(0, 0), 1.0)
        assert frame.heading_to_local(1.5) == pytest.approx(0.5)

    def test_direction_transform_ignores_origin(self):
        frame = Frame2(Vec2(100, 100), 0.0)
        assert frame.direction_to_local(Vec2(1, 0)) == Vec2(1, 0)


class TestCompose:
    def test_compose_translation(self):
        body = Frame2(Vec2(10, 0), 0.0)
        camera = Frame2(Vec2(1.5, 0), 0.0)
        mounted = body.compose(camera)
        assert mounted.origin == Vec2(11.5, 0)
        assert mounted.heading == pytest.approx(0.0)

    def test_compose_rotation(self):
        body = Frame2(Vec2(0, 0), math.pi / 2)
        camera = Frame2(Vec2(1, 0), math.pi / 2)  # mounted sideways
        mounted = body.compose(camera)
        assert mounted.origin.x == pytest.approx(0.0, abs=1e-12)
        assert mounted.origin.y == pytest.approx(1.0)
        assert abs(mounted.heading) == pytest.approx(math.pi)

    def test_compose_matches_sequential_transform(self):
        body = Frame2(Vec2(5, -3), 0.7)
        child = Frame2(Vec2(2, 1), -0.3)
        mounted = body.compose(child)
        p = Vec2(0.4, 0.9)
        direct = mounted.to_world(p)
        sequential = body.to_world(child.to_world(p))
        assert direct.distance_to(sequential) < 1e-12
