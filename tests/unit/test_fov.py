"""Camera FOV sectors."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry.fov import AngularSector
from repro.geometry.transforms import Frame2
from repro.geometry.vec import Vec2


def deg(value: float) -> float:
    return math.radians(value)


class TestConstruction:
    def test_rejects_zero_opening(self):
        with pytest.raises(GeometryError):
            AngularSector(0.0, 0.0, 100.0)

    def test_rejects_negative_range(self):
        with pytest.raises(GeometryError):
            AngularSector(0.0, deg(60), -1.0)

    def test_accepts_full_circle(self):
        AngularSector(0.0, 2 * math.pi, 100.0)


class TestMembership:
    def test_straight_ahead_inside(self):
        sector = AngularSector(0.0, deg(120), 100.0)
        assert sector.contains_local(Vec2(50, 0))

    def test_edge_of_opening(self):
        sector = AngularSector(0.0, deg(120), 100.0)
        # 60 degrees off-axis is exactly on the boundary.
        assert sector.contains_local(Vec2.from_polar(50, deg(60)))
        assert not sector.contains_local(Vec2.from_polar(50, deg(61)))

    def test_beyond_range(self):
        sector = AngularSector(0.0, deg(120), 100.0)
        assert not sector.contains_local(Vec2(101, 0))

    def test_origin_always_inside(self):
        sector = AngularSector(deg(90), deg(10), 1.0)
        assert sector.contains_local(Vec2(0, 0))

    def test_rear_sector_wraps_pi(self):
        rear = AngularSector(math.pi, deg(120), 100.0)
        assert rear.contains_local(Vec2(-50, 0))
        assert rear.contains_local(Vec2.from_polar(50, deg(130)))
        assert rear.contains_local(Vec2.from_polar(50, deg(-130)))
        assert not rear.contains_local(Vec2(50, 0))

    def test_side_sector(self):
        left = AngularSector(deg(90), deg(120), 100.0)
        assert left.contains_local(Vec2(0, 50))
        assert not left.contains_local(Vec2(0, -50))


class TestMountedSector:
    def test_contains_in_body_frame(self):
        sector = AngularSector(0.0, deg(60), 100.0)
        body = Frame2(Vec2(10, 10), deg(90))  # facing +Y
        assert sector.contains(body, Vec2(10, 60))
        assert not sector.contains(body, Vec2(60, 10))
