"""Camera FOV sectors."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry.fov import AngularSector
from repro.geometry.transforms import Frame2
from repro.geometry.vec import Vec2


def deg(value: float) -> float:
    return math.radians(value)


class TestConstruction:
    def test_rejects_zero_opening(self):
        with pytest.raises(GeometryError):
            AngularSector(0.0, 0.0, 100.0)

    def test_rejects_negative_range(self):
        with pytest.raises(GeometryError):
            AngularSector(0.0, deg(60), -1.0)

    def test_accepts_full_circle(self):
        AngularSector(0.0, 2 * math.pi, 100.0)


class TestMembership:
    def test_straight_ahead_inside(self):
        sector = AngularSector(0.0, deg(120), 100.0)
        assert sector.contains_local(Vec2(50, 0))

    def test_edge_of_opening(self):
        sector = AngularSector(0.0, deg(120), 100.0)
        # 60 degrees off-axis is exactly on the boundary.
        assert sector.contains_local(Vec2.from_polar(50, deg(60)))
        assert not sector.contains_local(Vec2.from_polar(50, deg(61)))

    def test_beyond_range(self):
        sector = AngularSector(0.0, deg(120), 100.0)
        assert not sector.contains_local(Vec2(101, 0))

    def test_origin_always_inside(self):
        sector = AngularSector(deg(90), deg(10), 1.0)
        assert sector.contains_local(Vec2(0, 0))

    def test_rear_sector_wraps_pi(self):
        rear = AngularSector(math.pi, deg(120), 100.0)
        assert rear.contains_local(Vec2(-50, 0))
        assert rear.contains_local(Vec2.from_polar(50, deg(130)))
        assert rear.contains_local(Vec2.from_polar(50, deg(-130)))
        assert not rear.contains_local(Vec2(50, 0))

    def test_side_sector(self):
        left = AngularSector(deg(90), deg(120), 100.0)
        assert left.contains_local(Vec2(0, 50))
        assert not left.contains_local(Vec2(0, -50))


class TestMountedSector:
    def test_contains_in_body_frame(self):
        sector = AngularSector(0.0, deg(60), 100.0)
        body = Frame2(Vec2(10, 10), deg(90))  # facing +Y
        assert sector.contains(body, Vec2(10, 60))
        assert not sector.contains(body, Vec2(60, 10))


class TestBatchMembership:
    """contains_local_batch == contains_local, to the last bit."""

    SECTORS = [
        AngularSector(0.0, deg(60), 100.0),
        AngularSector(0.0, deg(120), 100.0),
        AngularSector(deg(90), deg(120), 100.0),
        AngularSector(math.pi, deg(120), 120.0),
        AngularSector(deg(-45), deg(359.99), 50.0),
        AngularSector(0.3, 2 * math.pi, 80.0),  # full circle
    ]

    def _grid(self):
        import numpy as np

        values = np.linspace(-130.0, 130.0, 27)
        xs, ys = np.meshgrid(values, values)
        return xs.ravel(), ys.ravel()

    def test_matches_scalar_on_a_grid(self):
        xs, ys = self._grid()
        for sector in self.SECTORS:
            batch = sector.contains_local_batch(xs, ys)
            for i in range(len(xs)):
                assert batch[i] == sector.contains_local(
                    Vec2(xs[i], ys[i])
                ), (sector, xs[i], ys[i])

    def test_matches_scalar_on_boundary_points(self):
        import numpy as np

        sector = AngularSector(0.0, deg(120), 100.0)
        bearings = [deg(b) for b in (-61, -60, -59.999, 0, 59.999, 60, 61)]
        ranges = [0.0, 50.0, 99.999, 100.0, 100.001]
        points = [
            Vec2.from_polar(r, b) for b in bearings for r in ranges if r > 0.0
        ] + [Vec2(0.0, 0.0)]
        xs = np.array([p.x for p in points])
        ys = np.array([p.y for p in points])
        batch = sector.contains_local_batch(xs, ys)
        for i, point in enumerate(points):
            assert batch[i] == sector.contains_local(point)

    def test_full_circle_contains_every_bearing(self):
        import numpy as np

        sector = AngularSector(0.3, 2 * math.pi, 80.0)
        angles = np.linspace(-math.pi, math.pi, 73)
        xs = 40.0 * np.cos(angles)
        ys = 40.0 * np.sin(angles)
        assert sector.contains_local_batch(xs, ys).all()

    def test_preserves_query_shape(self):
        import numpy as np

        sector = AngularSector(0.0, deg(120), 100.0)
        xs = np.ones((3, 4)) * 10.0
        ys = np.zeros((3, 4))
        assert sector.contains_local_batch(xs, ys).shape == (3, 4)
