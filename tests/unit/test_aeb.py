"""Automatic emergency braking."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.planning.aeb import AEBMonitor, AEBParams, required_deceleration


class TestRequiredDeceleration:
    def test_not_closing_is_zero(self):
        assert required_deceleration(10.0, 12.0, 20.0) == 0.0

    def test_stopped_lead(self):
        # v^2 / (2*gap).
        assert required_deceleration(20.0, 0.0, 40.0) == pytest.approx(5.0)

    def test_moving_lead_uses_closing_speed(self):
        # (v - v_lead)^2 / (2*gap): 10 m/s closing over 25 m -> 2 m/s^2.
        assert required_deceleration(30.0, 20.0, 25.0) == pytest.approx(2.0)

    def test_zero_gap_infinite(self):
        assert math.isinf(required_deceleration(10.0, 0.0, 0.0))


class TestTriggering:
    def test_engages_above_threshold(self):
        monitor = AEBMonitor(AEBParams(trigger_decel=2.8, hard_decel=8.0))
        command = monitor.update(speed=20.0, gap=30.0, lead_speed=0.0)
        assert command == 8.0
        assert monitor.engaged

    def test_stays_quiet_below_threshold(self):
        monitor = AEBMonitor()
        assert monitor.update(speed=20.0, gap=500.0, lead_speed=18.0) is None
        assert not monitor.engaged

    def test_ttc_trigger(self):
        params = AEBParams(trigger_decel=50.0, ttc_trigger=2.0)
        monitor = AEBMonitor(params)
        # Required decel tiny but TTC = 1.5 s < 2 s.
        assert monitor.update(speed=11.0, gap=15.0, lead_speed=1.0) is not None

    def test_no_lead_disengages(self):
        monitor = AEBMonitor()
        monitor.update(speed=20.0, gap=10.0, lead_speed=0.0)
        assert monitor.engaged
        assert monitor.update(speed=20.0, gap=None, lead_speed=None) is None
        assert not monitor.engaged

    def test_braking_lead_anticipated(self):
        # A lead at matched speed but braking hard should trigger even
        # though the instantaneous closing speed is zero.
        monitor = AEBMonitor(AEBParams(trigger_decel=2.8))
        command = monitor.update(
            speed=30.0, gap=20.0, lead_speed=30.0, lead_accel=-6.0
        )
        assert command is not None

    def test_stopping_lead_distance_budget(self):
        # Lead braking to a stop: ego must stop within gap + lead's
        # remaining travel.
        monitor = AEBMonitor(AEBParams(trigger_decel=2.8))
        # Lead 14 m/s decelerating at 4: stops in 24.5 m; gap 25 m.
        # Ego at 25 m/s must stop in 49.5 m -> needs 6.3 m/s^2.
        command = monitor.update(
            speed=25.0, gap=25.0, lead_speed=14.0, lead_accel=-4.0
        )
        assert command is not None


class TestHysteresis:
    def test_holds_while_closing(self):
        monitor = AEBMonitor()
        monitor.update(speed=20.0, gap=15.0, lead_speed=0.0)
        assert monitor.engaged
        # Still closing at moderate required decel: must hold.
        assert monitor.update(speed=10.0, gap=12.0, lead_speed=0.0) is not None
        assert monitor.engaged

    def test_releases_when_resolved(self):
        monitor = AEBMonitor(AEBParams(min_release_gap=5.0))
        monitor.update(speed=20.0, gap=15.0, lead_speed=0.0)
        # Lead sped away: no closing, big gap, no demand.
        assert monitor.update(speed=10.0, gap=50.0, lead_speed=20.0) is None
        assert not monitor.engaged

    def test_releases_when_stopped(self):
        monitor = AEBMonitor()
        monitor.update(speed=20.0, gap=10.0, lead_speed=0.0)
        monitor.update(speed=0.0, gap=8.0, lead_speed=0.0)
        assert not monitor.engaged

    def test_no_release_below_min_gap(self):
        monitor = AEBMonitor(AEBParams(min_release_gap=5.0))
        monitor.update(speed=10.0, gap=8.0, lead_speed=0.0)
        assert monitor.engaged
        # Gap tiny: keep braking even if demand looks low.
        assert monitor.update(speed=1.0, gap=2.0, lead_speed=5.0) is not None

    def test_reset(self):
        monitor = AEBMonitor()
        monitor.update(speed=20.0, gap=10.0, lead_speed=0.0)
        monitor.reset()
        assert not monitor.engaged


class TestValidation:
    def test_release_must_be_below_trigger(self):
        with pytest.raises(ConfigurationError):
            AEBParams(trigger_decel=2.0, release_decel=3.0)

    def test_rejects_negative_hard_decel(self):
        with pytest.raises(ConfigurationError):
            AEBParams(hard_decel=-1.0)
