"""Section 4.2 compute-demand model."""

import pytest

from repro.core.compute import ComputeDemandModel
from repro.core.parameters import ZhuyiParams
from repro.errors import ConfigurationError


class TestOpsModel:
    def test_paper_headline_number(self, params):
        # "For a scenario with 2 actors and a single future prediction,
        # the compute demand is capped at 60 kilo-ops."
        model = ComputeDemandModel()
        assert model.ops(2, 1, params) == 60_000

    def test_max_iterations_is_m_times_l(self, params):
        model = ComputeDemandModel()
        assert model.max_iterations(params) == params.m * params.num_latency_steps

    def test_scales_linearly_in_actors(self, params):
        model = ComputeDemandModel()
        assert model.ops(4, 1, params) == 2 * model.ops(2, 1, params)

    def test_scales_linearly_in_trajectories(self, params):
        model = ComputeDemandModel()
        assert model.ops(2, 5, params) == 5 * model.ops(2, 1, params)

    def test_zero_actors_zero_ops(self, params):
        assert ComputeDemandModel().ops(0, 3, params) == 0

    def test_rejects_negative_counts(self, params):
        with pytest.raises(ConfigurationError):
            ComputeDemandModel().ops(-1, 1, params)

    def test_rejects_bad_ops_per_iteration(self):
        with pytest.raises(ConfigurationError):
            ComputeDemandModel(ops_per_iteration=0)


class TestExecutionTime:
    def test_paper_2ms_claim(self, params):
        # "For processors offering 10+ GOPS, the Zhuyi model should
        # execute within 2 ms."
        model = ComputeDemandModel()
        ops = model.ops(2, 1, params)
        assert model.execution_time(ops, throughput_gops=10.0) < 2e-3

    def test_measured_iterations_path(self):
        model = ComputeDemandModel()
        assert model.ops_from_iterations(300) == 30_000

    def test_rejects_bad_throughput(self):
        with pytest.raises(ConfigurationError):
            ComputeDemandModel().execution_time(1000, 0.0)

    def test_rejects_negative_iterations(self):
        with pytest.raises(ConfigurationError):
            ComputeDemandModel().ops_from_iterations(-1)
