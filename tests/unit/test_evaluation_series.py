"""EvaluationTick / EvaluationSeries container behaviour."""

import pytest

from repro.core.evaluator import EvaluationSeries, EvaluationTick
from repro.core.fpr import CameraEstimate
from repro.core.parameters import ZhuyiParams
from repro.errors import EstimationError


def estimate(camera: str, latency: float) -> CameraEstimate:
    return CameraEstimate(
        camera=camera,
        latency=latency,
        fpr=1.0 / latency,
        binding_actor=None,
        unavoidable=False,
        actor_count=1,
    )


def tick(time: float, front: float, left: float = 1.0,
         right: float = 1.0, accel: float = 0.0) -> EvaluationTick:
    return EvaluationTick(
        time=time,
        camera_estimates={
            "front_120": estimate("front_120", front),
            "left": estimate("left", left),
            "right": estimate("right", right),
        },
        actor_latencies={"a": front},
        ego_speed=20.0,
        ego_accel=accel,
    )


@pytest.fixture
def series(params):
    return EvaluationSeries(
        scenario="synthetic",
        ticks=[
            tick(0.0, front=1.0),
            tick(0.1, front=0.25, accel=-3.0),
            tick(0.2, front=0.5, accel=-1.0),
        ],
        params=params,
        l0=1.0 / 30.0,
    )


class TestTick:
    def test_fpr_lookup(self):
        t = tick(0.0, front=0.2)
        assert t.fpr("front_120") == pytest.approx(5.0)

    def test_unknown_camera_raises(self):
        with pytest.raises(EstimationError):
            tick(0.0, front=0.2).fpr("nope")
        with pytest.raises(EstimationError):
            tick(0.0, front=0.2).latency("nope")

    def test_total_default_cameras(self):
        t = tick(0.0, front=0.5)
        assert t.total_fpr() == pytest.approx(2.0 + 1.0 + 1.0)

    def test_total_custom_subset(self):
        t = tick(0.0, front=0.5)
        assert t.total_fpr(("front_120",)) == pytest.approx(2.0)


class TestSeries:
    def test_requires_ticks(self, params):
        with pytest.raises(EstimationError):
            EvaluationSeries("x", [], params, 0.033)

    def test_times(self, series):
        assert series.times() == [0.0, 0.1, 0.2]

    def test_latency_series(self, series):
        assert series.camera_latency_series("front_120") == [1.0, 0.25, 0.5]

    def test_max_fpr_single_camera(self, series):
        assert series.max_fpr("front_120") == pytest.approx(4.0)

    def test_max_fpr_across_all(self, series):
        assert series.max_fpr() == pytest.approx(4.0)

    def test_max_total(self, series):
        assert series.max_total_fpr() == pytest.approx(6.0)

    def test_fraction(self, series):
        assert series.fraction_of_provision() == pytest.approx(6.0 / 90.0)

    def test_accel_series(self, series):
        assert series.ego_accel_series() == [0.0, -3.0, -1.0]
