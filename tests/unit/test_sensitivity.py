"""Figure 8 sensitivity sweep (small grids for speed)."""

import numpy as np
import pytest

from repro.analysis.sensitivity import sweep_min_fpr
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def grid_30():
    return sweep_min_fpr(
        gap=30.0,
        ego_speeds_mph=np.linspace(0.0, 70.0, 8),
        actor_speeds_mph=np.linspace(0.0, 70.0, 8),
    )


@pytest.fixture(scope="module")
def grid_100():
    return sweep_min_fpr(
        gap=100.0,
        ego_speeds_mph=np.linspace(0.0, 70.0, 8),
        actor_speeds_mph=np.linspace(0.0, 70.0, 8),
    )


class TestShape:
    def test_grid_dimensions(self, grid_30):
        assert grid_30.min_fpr.shape == (8, 8)

    def test_low_speed_band_is_low_fpr(self, grid_30, grid_100):
        # "For an ego operating on streets (0-25 mph) ... FPR <= 2 is
        # enough for safety" in both panels.
        assert grid_30.band_max(0.0, 25.0) <= 2.0
        assert grid_100.band_max(0.0, 25.0) <= 2.0

    def test_short_gap_has_unavoidable_wedge(self, grid_30):
        # High ego speed toward a stopped actor 30 m away: hopeless.
        assert grid_30.region_fraction(grid_30.white_mask()) > 0.1

    def test_long_gap_mostly_feasible(self, grid_100):
        assert grid_100.region_fraction(grid_100.white_mask()) < 0.1

    def test_longer_gap_never_harder(self, grid_30, grid_100):
        # Cell-wise: 100 m can never demand more than 30 m.
        a = grid_30.min_fpr
        b = grid_100.min_fpr
        both = ~np.isnan(a) & ~np.isnan(b)
        assert np.all(b[both] <= a[both] + 1e-9)
        # And nothing unavoidable at 100 m that was fine at 30 m.
        assert not np.any(np.isnan(b) & ~np.isnan(a))

    def test_demand_monotone_in_ego_speed(self, grid_30):
        # Along each row (fixed actor speed), requirement never decreases
        # with ego speed (NaN = infinity; inf-inf diffs are vacuous).
        filled = np.nan_to_num(grid_30.min_fpr, nan=np.inf)
        with np.errstate(invalid="ignore"):
            diffs = np.diff(filled, axis=1)
        assert np.all((diffs >= -1e-9) | np.isnan(diffs))

    def test_demand_monotone_in_actor_speed(self, grid_30):
        # Along each column (fixed ego speed), a faster actor never
        # raises the requirement.
        filled = np.nan_to_num(grid_30.min_fpr, nan=np.inf)
        with np.errstate(invalid="ignore"):
            diffs = np.diff(filled, axis=0)
        assert np.all((diffs <= 1e-9) | np.isnan(diffs))


class TestMasks:
    def test_gray_above_cap(self, grid_30):
        gray = grid_30.gray_mask(cap=30.0)
        with np.errstate(invalid="ignore"):
            assert np.all(grid_30.min_fpr[gray] > 30.0)

    def test_white_is_nan(self, grid_30):
        assert np.all(np.isnan(grid_30.min_fpr[grid_30.white_mask()]))

    def test_max_finite(self, grid_30):
        assert grid_30.max_finite_fpr() <= 31.0


class TestValidation:
    def test_rejects_bad_gap(self):
        with pytest.raises(ConfigurationError):
            sweep_min_fpr(gap=0.0)
