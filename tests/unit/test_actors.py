"""Scripted actors: triggers, manoeuvres, Frenet kinematics."""

import pytest

from repro.actors.behavior import (
    ActorCommand,
    AtTime,
    Immediately,
    Never,
    ScenarioContext,
    WhenActorGapBelow,
    WhenEgoGapBelow,
    WhenEgoWithin,
)
from repro.actors.maneuvers import (
    Cruise,
    Follow,
    PaceBeside,
    SuddenBrake,
    TriggeredLaneChange,
)
from repro.actors.vehicle import Actor
from repro.dynamics.state import VehicleState
from repro.errors import ConfigurationError
from repro.geometry.vec import Vec2
from repro.road.track import three_lane_straight_road


ROAD = three_lane_straight_road()


def make_actor(behavior, lane=1, station=100.0, speed=10.0,
               actor_id="a") -> Actor:
    return Actor(
        actor_id=actor_id, road=ROAD, behavior=behavior,
        lane=lane, station=station, speed=speed,
    )


def context(ego_x=50.0, ego_speed=10.0, actors=None) -> ScenarioContext:
    return ScenarioContext(
        road=ROAD,
        ego_state=VehicleState(Vec2(ego_x, 0.0), 0.0, ego_speed, 0.0),
        actor_states=actors or {},
    )


def run(actor: Actor, duration: float, ctx_fn=context, dt: float = 0.01):
    t = 0.0
    while t < duration:
        actor.step(t, dt, ctx_fn())
        t += dt


class TestTriggers:
    def test_immediately(self):
        trigger = Immediately()
        assert trigger.fired(0.0, None, None)

    def test_never(self):
        trigger = Never()
        assert not trigger.fired(100.0, None, None)

    def test_at_time_latches(self):
        trigger = AtTime(time=2.0)
        assert not trigger.fired(1.0, None, None)
        assert trigger.fired(2.5, None, None)
        # Latches even if time went backwards (never re-evaluates).
        assert trigger.fired(0.0, None, None)

    def test_when_ego_gap_below(self):
        trigger = WhenEgoGapBelow(gap=40.0)
        actor = make_actor(Cruise(10.0), station=100.0)
        assert not trigger.fired(0.0, actor, context(ego_x=50.0))
        assert trigger.fired(1.0, actor, context(ego_x=65.0))

    def test_when_ego_within(self):
        trigger = WhenEgoWithin(distance=60.0)
        actor = make_actor(Cruise(10.0), station=100.0)
        assert trigger.fired(0.0, actor, context(ego_x=50.0))

    def test_when_actor_gap_below(self):
        trigger = WhenActorGapBelow(target_id="obstacle", gap=30.0)
        actor = make_actor(Cruise(10.0), station=100.0)
        ctx = context(actors={
            "obstacle": VehicleState(Vec2(125.0, 0.0), 0.0, 0.0, 0.0)
        })
        assert trigger.fired(0.0, actor, ctx)

    def test_when_actor_gap_missing_target(self):
        trigger = WhenActorGapBelow(target_id="ghost", gap=30.0)
        actor = make_actor(Cruise(10.0))
        assert not trigger.fired(0.0, actor, context())

    def test_rejects_bad_gap(self):
        with pytest.raises(ConfigurationError):
            WhenEgoGapBelow(gap=0.0)


class TestCruise:
    def test_holds_speed(self):
        actor = make_actor(Cruise(target_speed=10.0), speed=10.0)
        run(actor, 2.0)
        assert actor.speed == pytest.approx(10.0, abs=0.01)
        assert actor.station == pytest.approx(120.0, abs=0.5)

    def test_accelerates_to_target(self):
        actor = make_actor(Cruise(target_speed=15.0), speed=10.0)
        run(actor, 10.0)
        assert actor.speed == pytest.approx(15.0, abs=0.1)

    def test_stops_for_zero_target(self):
        actor = make_actor(Cruise(target_speed=0.0), speed=5.0)
        run(actor, 10.0)
        assert actor.speed == pytest.approx(0.0, abs=0.05)


class TestSuddenBrake:
    def test_brakes_to_stop_after_trigger(self):
        actor = make_actor(
            SuddenBrake(trigger=AtTime(time=1.0), decel=6.0, cruise_speed=20.0),
            speed=20.0,
        )
        run(actor, 6.0)
        assert actor.speed == 0.0

    def test_cruises_before_trigger(self):
        actor = make_actor(
            SuddenBrake(trigger=AtTime(time=50.0), decel=6.0, cruise_speed=20.0),
            speed=20.0,
        )
        run(actor, 2.0)
        assert actor.speed == pytest.approx(20.0, abs=0.01)


class TestLaneChange:
    def test_changes_lane_after_trigger(self):
        actor = make_actor(
            TriggeredLaneChange(
                trigger=AtTime(time=0.5), target_lane=0, duration=2.0
            ),
            lane=1,
            speed=10.0,
        )
        run(actor, 4.0)
        assert actor.lane == 0
        assert actor.lateral_offset == pytest.approx(-3.5)
        assert not actor.changing_lanes

    def test_midway_is_between_lanes(self):
        actor = make_actor(
            TriggeredLaneChange(
                trigger=Immediately(), target_lane=2, duration=2.0
            ),
            lane=1,
            speed=10.0,
        )
        run(actor, 1.0)
        assert 0.5 < actor.lateral_offset < 3.0
        assert actor.changing_lanes

    def test_heading_tilts_during_change(self):
        actor = make_actor(
            TriggeredLaneChange(
                trigger=Immediately(), target_lane=2, duration=2.0
            ),
            lane=1,
            speed=10.0,
        )
        run(actor, 1.0)
        assert actor.state.heading > 0.05

    def test_hands_off_to_then_behavior(self):
        actor = make_actor(
            TriggeredLaneChange(
                trigger=Immediately(),
                target_lane=0,
                duration=1.0,
                then=Cruise(target_speed=0.0),
            ),
            lane=1,
            speed=10.0,
        )
        run(actor, 12.0)
        assert actor.lane == 0
        assert actor.speed == pytest.approx(0.0, abs=0.05)

    def test_speed_held_during_change(self):
        actor = make_actor(
            TriggeredLaneChange(
                trigger=Immediately(), target_lane=0, duration=2.0,
                cruise_speed=10.0,
            ),
            lane=1,
            speed=10.0,
        )
        run(actor, 1.0)
        # Longitudinal speed holds; total speed includes lateral motion.
        assert actor.speed == pytest.approx(10.0, abs=0.05)
        assert actor.state.speed >= 10.0


class TestFollow:
    def test_follows_ego_at_idm_gap(self):
        actor = make_actor(Follow(lead_id=None), station=20.0, speed=10.0)

        state = {"x": 60.0}

        def ctx():
            state["x"] += 10.0 * 0.01
            return context(ego_x=state["x"], ego_speed=10.0)

        run(actor, 30.0, ctx_fn=ctx)
        gap = state["x"] - actor.station
        # IDM equilibrium: min_gap + v*T + vehicle length ~ 23 m.
        assert 10.0 < gap < 35.0

    def test_free_drives_without_lead(self):
        actor = make_actor(
            Follow(lead_id="ghost"), station=20.0, speed=10.0
        )
        run(actor, 1.0)
        assert actor.speed > 9.0


class TestPaceBeside:
    def test_locks_alongside_ego(self):
        actor = make_actor(
            PaceBeside(station_offset=1.0), lane=0, station=90.0, speed=10.0
        )

        state = {"x": 50.0}

        def ctx():
            state["x"] += 10.0 * 0.01
            return context(ego_x=state["x"], ego_speed=10.0)

        run(actor, 40.0, ctx_fn=ctx)
        assert actor.station - state["x"] == pytest.approx(1.0, abs=1.0)
        assert actor.speed == pytest.approx(10.0, abs=0.3)


class TestActorValidation:
    def test_rejects_negative_speed(self):
        with pytest.raises(ConfigurationError):
            make_actor(Cruise(10.0), speed=-1.0)

    def test_rejects_station_off_road(self):
        with pytest.raises(ConfigurationError):
            make_actor(Cruise(10.0), station=1e6)

    def test_station_clamped_at_road_end(self):
        actor = make_actor(Cruise(50.0), station=ROAD.length - 1.0, speed=50.0)
        run(actor, 2.0)
        assert actor.station == ROAD.length
