"""Lane-keeping steering."""

import pytest

from repro.dynamics.bicycle import KinematicBicycle
from repro.dynamics.state import VehicleSpec, VehicleState
from repro.errors import ConfigurationError
from repro.geometry.vec import Vec2
from repro.planning.lateral import LaneKeeper
from repro.road.track import three_lane_curved_road, three_lane_straight_road


SPEC = VehicleSpec()


class TestStraightRoad:
    def setup_method(self):
        self.road = three_lane_straight_road()
        self.keeper = LaneKeeper(road=self.road, target_lane=1)

    def test_centered_no_steer(self):
        state = VehicleState(Vec2(100, 0), 0.0, 20.0, 0.0)
        assert self.keeper.steer(state, SPEC) == pytest.approx(0.0, abs=1e-6)

    def test_offset_right_steers_left(self):
        state = VehicleState(Vec2(100, -1.0), 0.0, 20.0, 0.0)
        assert self.keeper.steer(state, SPEC) > 0.0

    def test_offset_left_steers_right(self):
        state = VehicleState(Vec2(100, 1.0), 0.0, 20.0, 0.0)
        assert self.keeper.steer(state, SPEC) < 0.0

    def test_converges_to_lane_center(self):
        bike = KinematicBicycle(SPEC)
        state = VehicleState(Vec2(100, -1.5), 0.0, 20.0, 0.0)
        for _ in range(600):
            steer = self.keeper.steer(state, SPEC)
            state = bike.step(state, 0.0, steer, 0.01)
        assert abs(state.position.y) < 0.1

    def test_invalid_lane_rejected(self):
        with pytest.raises(ConfigurationError):
            LaneKeeper(road=self.road, target_lane=7)

    def test_heading_error(self):
        state = VehicleState(Vec2(100, 0), 0.3, 20.0, 0.0)
        assert self.keeper.heading_error(state) == pytest.approx(0.3)


class TestCurvedRoad:
    def test_holds_lane_through_curve(self):
        road = three_lane_curved_road(
            entry_length=100.0, radius=300.0, arc_length=600.0
        )
        keeper = LaneKeeper(road=road, target_lane=1)
        bike = KinematicBicycle(SPEC)
        state = VehicleState(
            road.lane_center(1, 20.0), road.heading_at(20.0), 20.0, 0.0
        )
        max_offset = 0.0
        for _ in range(2500):
            steer = keeper.steer(state, SPEC)
            state = bike.step(state, 0.0, steer, 0.01)
            offset = abs(road.to_frenet(state.position).d)
            max_offset = max(max_offset, offset)
        assert max_offset < 0.6
