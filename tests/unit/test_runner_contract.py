"""Cell-execution contract, supercell grouping, writer durability.

Pins the ``execute_cell`` "never raises" contract (violations fold into
failure summaries), the :func:`_group_supercells` blocking rules behind
the ``"crosstrace"`` backend, the fsync points that make finished
campaign files power-loss durable, and the aggregation rule that error
rows contribute neither collision evidence nor FPR statistics.
"""

import os

import pytest

from repro.batch import Campaign, CampaignResult, CampaignWriter, RunSpec
from repro.batch.aggregate import campaign_table1
from repro.batch.results import RunSummary
from repro.batch.runner import (
    _group_supercells,
    execute_cell,
    execute_supercell,
)
from repro.perception.sensor import ANALYZED_CAMERAS


def spec(
    index: int = 0,
    scenario: str = "cut_in",
    seed: int = 0,
    fpr: float = 30.0,
    variant: str = "default",
    stride: float = 0.25,
    backend: str = "batched",
) -> RunSpec:
    return RunSpec(
        index=index,
        scenario=scenario,
        seed=seed,
        fpr=fpr,
        variant=variant,
        params=None,
        stride=stride,
        provisioned_fpr=30.0,
        cameras=tuple(ANALYZED_CAMERAS),
        backend=backend,
    )


class TestCellContract:
    def test_empty_cell_is_empty(self):
        assert execute_cell([]) == []

    def test_mixed_cell_coordinates_fold_into_failures(self):
        """Mixed (scenario, seed, fpr) specs: summaries, not a raise."""
        specs = [
            spec(index=0, scenario="cut_in"),
            spec(index=1, scenario="cut_out"),
        ]
        summaries = execute_cell(specs)
        assert [s.index for s in summaries] == [0, 1]
        for s in summaries:
            assert not s.ok
            assert "single (scenario, seed, fpr) cell" in s.error
            assert "ConfigurationError" in s.error

    def test_mixed_strides_fold_into_failures(self):
        """A cell presamples once: per-spec strides must agree."""
        specs = [
            spec(index=0, variant="a", stride=0.25),
            spec(index=1, variant="b", stride=0.1),
        ]
        summaries = execute_cell(specs)
        assert all(not s.ok for s in summaries)
        for s in summaries:
            assert "one stride per cell" in s.error
            assert "0.1" in s.error and "0.25" in s.error

    def test_supercell_folds_contract_violations_per_cell(self):
        """A bad cell inside a block fails alone, in order."""
        bad = [spec(index=0, scenario="cut_in"), spec(index=1, scenario="cut_out")]
        summaries = execute_supercell([bad])
        assert [s.index for s in summaries] == [0, 1]
        assert all("single (scenario, seed, fpr) cell" in s.error for s in summaries)

    def test_evaluation_failure_keeps_duration(self, monkeypatch):
        """A variant whose evaluation dies still reports the trace time."""
        import repro.batch.runner as runner_module

        class ExplodingEvaluator:
            def __init__(self, **kwargs):
                pass

            def evaluate(self, trace, samples=None):
                raise RuntimeError("kernel exploded")

        monkeypatch.setattr(
            runner_module, "OfflineEvaluator", ExplodingEvaluator
        )
        summaries = execute_cell([spec(index=3)])
        (summary,) = summaries
        assert not summary.ok
        assert "RuntimeError: kernel exploded" in summary.error
        assert summary.duration > 0.0


class TestSupercellGrouping:
    def cells(self, count, variants=("a", "b"), stride=0.25):
        return [
            [
                spec(
                    index=i * len(variants) + vi,
                    seed=i,
                    variant=v,
                    stride=stride,
                )
                for vi, v in enumerate(variants)
            ]
            for i in range(count)
        ]

    def test_blocks_cap_at_limit(self):
        blocks = _group_supercells(self.cells(5), limit=2)
        assert [len(b) for b in blocks] == [2, 2, 1]

    def test_blocks_preserve_cell_order(self):
        blocks = _group_supercells(self.cells(3), limit=4)
        flat = [cell for block in blocks for cell in block]
        assert [c[0].seed for c in flat] == [0, 1, 2]

    def test_variant_sequence_change_splits_blocks(self):
        cells = self.cells(2) + [
            [spec(index=10, seed=9, variant="other")]
        ]
        blocks = _group_supercells(cells, limit=8)
        assert [len(b) for b in blocks] == [2, 1]

    def test_stride_change_splits_blocks(self):
        cells = self.cells(1) + self.cells(1, stride=0.1)
        blocks = _group_supercells(cells, limit=8)
        assert len(blocks) == 2


class TestWriterDurability:
    def campaign(self):
        return Campaign(scenarios=("cut_in",), seeds=(0,))

    def summary(self, index=0):
        return RunSummary(
            index=index,
            scenario="cut_in",
            seed=0,
            fpr=30.0,
            variant="default",
            collided=False,
            max_fpr=1.0,
            ticks=10,
            duration=5.0,
        )

    def test_finish_fsyncs_the_file(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))
        )
        with CampaignWriter.create(tmp_path / "c.jsonl", self.campaign()) as w:
            # Header publication fsyncs at create (atomic_create_stream);
            # per-line writes after that only flush.
            after_create = len(synced)
            w.write(self.summary())
            assert len(synced) == after_create
            w.finish(workers=1, elapsed=1.0)
        assert len(synced) > after_create

    def test_atomic_close_fsyncs_the_directory(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))
        )
        path = tmp_path / "c.jsonl"
        with CampaignWriter.create(path, self.campaign(), atomic=True) as w:
            w.write(self.summary())
            w.finish(workers=1, elapsed=1.0)
        assert path.exists()
        assert not path.with_name(path.name + ".tmp").exists()
        # One fsync for the file at finish, one for the directory entry
        # after the rename.
        assert len(synced) >= 2

    def test_unsyncable_directory_does_not_lose_the_commit(
        self, tmp_path, monkeypatch
    ):
        """Filesystems that cannot fsync a directory still commit."""
        real_fsync = os.fsync
        calls = []

        def picky_fsync(fd):
            calls.append(fd)
            if len(calls) > 1:  # the directory sync after finish's
                raise OSError("directory fsync unsupported")
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", picky_fsync)
        path = tmp_path / "c.jsonl"
        with CampaignWriter.create(path, self.campaign(), atomic=True) as w:
            w.write(self.summary())
            w.finish(workers=1, elapsed=1.0)
        assert path.exists()
        assert len(calls) >= 2


class TestAggregationSkipsErrorRows:
    """Failed runs contribute no FPR statistics and no collision evidence."""

    def campaign(self):
        return Campaign(scenarios=("cut_in",), seeds=(0, 1, 2), fprs=(30.0,))

    def summary(self, index, seed, *, error=None, collided=False, max_fpr=None):
        return RunSummary(
            index=index,
            scenario="cut_in",
            seed=seed,
            fpr=30.0,
            variant="default",
            collided=collided,
            collision_time=5.0 if collided else None,
            max_fpr=max_fpr,
            max_total_fpr=None if max_fpr is None else max_fpr + 1.0,
            ticks=None if max_fpr is None else 10,
            duration=0.0 if error else 5.0,
            error=error,
        )

    def test_error_rows_excluded_from_fpr_means(self):
        result = CampaignResult(
            self.campaign(),
            [
                self.summary(0, 0, max_fpr=2.0),
                self.summary(1, 1, error="RuntimeError: boom"),
                self.summary(2, 2, max_fpr=4.0),
            ],
        )
        (row,) = campaign_table1(result)
        # Mean over the two clean seeds only; the error row's absent
        # estimate neither zeroes nor voids the mean.
        assert row.mean_estimates[30.0] == pytest.approx(3.0)

    def test_error_rows_contribute_no_collision_evidence(self):
        # All three seeds failed: the rate has no outcome at all, so it
        # is neither colliding nor safe and cannot be the MRF.
        result = CampaignResult(
            self.campaign(),
            [
                self.summary(i, i, error="RuntimeError: boom")
                for i in range(3)
            ],
        )
        (row,) = campaign_table1(result)
        assert row.mean_estimates[30.0] is None
        assert row.mrf.mrf is None
        assert row.mrf.collision_fprs == ()
        assert row.mrf.safe_fprs == ()

    def test_error_row_does_not_mask_a_collision(self):
        # seed 1 errored, seed 2 collided: the collision must still
        # void the rate's mean per the paper's N/A convention.
        result = CampaignResult(
            self.campaign(),
            [
                self.summary(0, 0, max_fpr=2.0),
                self.summary(1, 1, error="RuntimeError: boom"),
                self.summary(2, 2, collided=True),
            ],
        )
        (row,) = campaign_table1(result)
        assert row.mean_estimates[30.0] is None
        assert row.mrf.collision_fprs == (30.0,)
