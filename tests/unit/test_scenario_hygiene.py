"""Scenario-parameter hygiene: jitter bounds and the perception seed.

Regression coverage for two silent-corruption bugs: a jitter fraction
above 1.0 can flip the sign of gaps and decelerations (the factor
``1 + U(-f, f)`` goes negative), and the old additive perception seed
(``seed + 7919``) collided scenario seed ``s + 7919``'s choreography
generator with seed ``s``'s perception stream.
"""

import numpy as np
import pytest

from repro.core.rng import derive_seed
from repro.errors import ConfigurationError
from repro.scenarios import build_scenario
from repro.scenarios.base import jittered
from repro.scenarios.catalog import SCENARIOS


class TestJittered:
    def test_fraction_above_one_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError, match="<= 1.0"):
            jittered(rng, 10.0, 1.2)

    def test_fraction_of_exactly_one_is_allowed(self):
        rng = np.random.default_rng(0)
        assert jittered(rng, 10.0, 1.0) >= 0.0

    def test_negative_fraction_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError, match="non-negative"):
            jittered(rng, 10.0, -0.1)

    def test_zero_fraction_returns_value_without_a_draw(self):
        rng = np.random.default_rng(7)
        before = rng.bit_generator.state
        assert jittered(rng, 42.0, 0.0) == 42.0
        assert rng.bit_generator.state == before

    def test_factor_stays_within_band(self):
        rng = np.random.default_rng(3)
        for _ in range(200):
            value = jittered(rng, 10.0, 0.25)
            assert 7.5 <= value <= 12.5


class TestPerceptionSeed:
    def test_derived_through_the_seed_stream(self):
        built = build_scenario("cut_in", seed=123)
        assert built.perception_seed == derive_seed(123, "perception")
        assert built.perception_seed != 123 + 7_919

    def test_no_collision_with_offset_scenario_seeds(self):
        # The old additive offset made seed s+7919's choreography
        # generator share a root with seed s's perception stream.
        built = build_scenario("cut_in", seed=5)
        offset = build_scenario("cut_in", seed=5 + 7_919)
        assert built.perception_seed != offset.seed
        assert built.perception_seed != offset.perception_seed

    def test_distinct_seeds_decorrelate(self):
        seeds = {build_scenario("cut_in", seed=s).perception_seed
                 for s in range(32)}
        assert len(seeds) == 32


class TestCatalogCallSites:
    """Every catalog builder must survive the tightened jitter guard."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    @pytest.mark.parametrize("seed", [0, 1, 1_000])
    def test_all_scenarios_build(self, name, seed):
        actors = build_scenario(name, seed=seed).build_actors()
        assert actors
        for actor in actors:
            assert actor.station >= 0.0
