"""The online safety check."""

import pytest

from repro.core.evaluator import EvaluationTick
from repro.core.fpr import CameraEstimate
from repro.errors import ConfigurationError
from repro.system.safety_check import (
    MitigationAction,
    SafetyChecker,
)


def tick(front_fpr: float, left_fpr: float = 1.0, time: float = 0.0):
    def estimate(camera: str, fpr: float) -> CameraEstimate:
        return CameraEstimate(
            camera=camera,
            latency=1.0 / fpr,
            fpr=fpr,
            binding_actor=None,
            unavoidable=False,
            actor_count=0,
        )

    return EvaluationTick(
        time=time,
        camera_estimates={
            "front_120": estimate("front_120", front_fpr),
            "left": estimate("left", left_fpr),
        },
        actor_latencies={},
        ego_speed=20.0,
        ego_accel=0.0,
    )


class TestVerdicts:
    def test_safe_when_rates_sufficient(self):
        checker = SafetyChecker()
        verdict = checker.check(tick(5.0), {"front_120": 10.0, "left": 2.0})
        assert verdict.safe
        assert verdict.alarms == ()
        assert verdict.recommended_action is None

    def test_alarm_when_rate_below_estimate(self):
        checker = SafetyChecker()
        verdict = checker.check(tick(12.0), {"front_120": 10.0, "left": 2.0})
        assert not verdict.safe
        alarm = verdict.alarms[0]
        assert alarm.camera == "front_120"
        assert alarm.deficit == pytest.approx(2.0)
        assert verdict.recommended_action is MitigationAction.RAISE_PROCESSING_RATE

    def test_multiple_alarms(self):
        checker = SafetyChecker()
        verdict = checker.check(tick(12.0, left_fpr=5.0),
                                {"front_120": 10.0, "left": 2.0})
        assert len(verdict.alarms) == 2

    def test_unknown_camera_ignored(self):
        checker = SafetyChecker()
        verdict = checker.check(tick(12.0), {"left": 2.0})
        assert verdict.safe  # front not operated by this system

    def test_margin_requires_headroom(self):
        checker = SafetyChecker(margin=1.5)
        verdict = checker.check(tick(8.0), {"front_120": 10.0, "left": 2.0})
        assert not verdict.safe  # 8 * 1.5 = 12 > 10

    def test_history_and_counts(self):
        checker = SafetyChecker()
        checker.check(tick(12.0, time=0.0), {"front_120": 10.0, "left": 2.0})
        checker.check(tick(3.0, time=0.1), {"front_120": 10.0, "left": 2.0})
        assert len(checker.history) == 2
        assert checker.alarm_count == 1

    def test_rejects_margin_below_one(self):
        with pytest.raises(ConfigurationError):
            SafetyChecker(margin=0.5)
