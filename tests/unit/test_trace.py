"""Scenario traces: queries and JSON round-trip."""

import pytest

from repro.dynamics.state import VehicleSpec, VehicleState
from repro.errors import TraceError
from repro.geometry.vec import Vec2
from repro.sim.collision import CollisionEvent
from repro.sim.trace import ScenarioTrace, TraceStep


def vstate(x: float, speed: float = 10.0) -> VehicleState:
    return VehicleState(Vec2(x, 0.0), 0.0, speed, 0.0)


def make_trace(collisions=(), steps=None) -> ScenarioTrace:
    if steps is None:
        steps = [
            TraceStep(
                time=i * 0.1,
                ego=vstate(i * 1.0),
                actors={"lead": vstate(50.0 + i * 0.5, speed=5.0)},
                planner_mode="cruise",
                camera_fprs={"front_120": 30.0},
            )
            for i in range(11)
        ]
    return ScenarioTrace(
        scenario="test",
        dt=0.1,
        steps=steps,
        collisions=list(collisions),
        nominal_fpr=30.0,
        seed=7,
        metadata={"note": "unit"},
    )


class TestQueries:
    def test_duration(self):
        assert make_trace().duration == pytest.approx(1.0)

    def test_actor_ids(self):
        assert make_trace().actor_ids() == ["lead"]

    def test_no_collision_flags(self):
        trace = make_trace()
        assert not trace.has_collision
        assert trace.first_collision_time is None

    def test_collision_flags(self):
        trace = make_trace(collisions=[CollisionEvent(0.7, "lead")])
        assert trace.has_collision
        assert trace.first_collision_time == 0.7

    def test_ego_trajectory_interpolates(self):
        trajectory = make_trace().ego_trajectory()
        assert trajectory.state_at(0.55).position.x == pytest.approx(5.5)

    def test_actor_trajectory(self):
        trajectory = make_trace().actor_trajectory("lead")
        assert trajectory.state_at(0.0).position.x == pytest.approx(50.0)

    def test_missing_actor_raises(self):
        with pytest.raises(TraceError):
            make_trace().actor_trajectory("ghost")

    def test_step_at_picks_nearest(self):
        step = make_trace().step_at(0.44)
        assert step.time == pytest.approx(0.4)

    def test_time_ms(self):
        assert make_trace().steps[3].time_ms == 300

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError):
            ScenarioTrace(scenario="x", dt=0.1, steps=[])

    def test_actor_spec_default(self):
        assert make_trace().actor_spec("anything") == VehicleSpec()


class TestSerialization:
    def test_round_trip(self, tmp_path):
        trace = make_trace(collisions=[CollisionEvent(0.7, "lead")])
        path = tmp_path / "trace.json"
        trace.save_json(path)
        loaded = ScenarioTrace.load_json(path)
        assert loaded.scenario == trace.scenario
        assert loaded.nominal_fpr == 30.0
        assert loaded.seed == 7
        assert loaded.metadata == {"note": "unit"}
        assert len(loaded.steps) == len(trace.steps)
        assert loaded.has_collision
        assert loaded.first_collision_time == 0.7
        original = trace.steps[5]
        restored = loaded.steps[5]
        assert restored.time == pytest.approx(original.time)
        assert restored.ego.position.x == pytest.approx(original.ego.position.x)
        assert restored.actors["lead"].speed == pytest.approx(5.0)
        assert restored.camera_fprs == {"front_120": 30.0}

    def test_round_trip_preserves_trajectories(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "trace.json"
        trace.save_json(path)
        loaded = ScenarioTrace.load_json(path)
        t = 0.37
        assert loaded.ego_trajectory().state_at(t).position.x == pytest.approx(
            trace.ego_trajectory().state_at(t).position.x
        )

    def test_malformed_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(TraceError):
            ScenarioTrace.load_json(path)

    def test_missing_fields_raise(self):
        with pytest.raises(TraceError):
            ScenarioTrace.from_dict({"scenario": "x"})
