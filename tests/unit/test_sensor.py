"""Camera rig geometry."""

import math

import pytest

from repro.dynamics.state import VehicleState
from repro.errors import ConfigurationError
from repro.geometry.fov import AngularSector
from repro.geometry.transforms import Frame2
from repro.geometry.vec import Vec2
from repro.perception.sensor import ANALYZED_CAMERAS, Camera, CameraRig, default_rig


def ego_at(x: float = 0.0, y: float = 0.0, heading: float = 0.0) -> VehicleState:
    return VehicleState(Vec2(x, y), heading, 10.0, 0.0)


class TestDefaultRig:
    def setup_method(self):
        self.rig = default_rig()

    def test_five_cameras(self):
        assert len(self.rig) == 5
        assert set(self.rig.names) == {
            "front_60", "front_120", "left", "right", "rear"
        }

    def test_analyzed_cameras_exist(self):
        for name in ANALYZED_CAMERAS:
            assert name in self.rig

    def test_front_sees_ahead(self):
        ego = ego_at()
        assert self.rig["front_120"].sees(ego, Vec2(50, 0))
        assert self.rig["front_60"].sees(ego, Vec2(50, 0))

    def test_front_does_not_see_behind(self):
        ego = ego_at()
        assert not self.rig["front_120"].sees(ego, Vec2(-50, 0))

    def test_narrow_front_narrower_than_wide(self):
        ego = ego_at()
        off_axis = Vec2(20, 15)  # ~37 degrees off
        assert self.rig["front_120"].sees(ego, off_axis)
        assert not self.rig["front_60"].sees(ego, off_axis)

    def test_side_cameras_see_abeam(self):
        ego = ego_at()
        assert self.rig["left"].sees(ego, Vec2(0, 20))
        assert self.rig["right"].sees(ego, Vec2(0, -20))
        assert not self.rig["left"].sees(ego, Vec2(0, -20))

    def test_rear_sees_behind(self):
        ego = ego_at()
        assert self.rig["rear"].sees(ego, Vec2(-40, 0))

    def test_adjacent_lane_far_ahead_is_front_only(self):
        # An actor 50 m ahead in the adjacent lane sits in the front
        # camera's FOV, not the side camera's — why the paper's Cut-in
        # has no side activity.
        ego = ego_at()
        point = Vec2(50, -3.5)
        assert self.rig["front_120"].sees(ego, point)
        assert not self.rig["right"].sees(ego, point)

    def test_rotates_with_ego(self):
        ego = ego_at(heading=math.pi / 2)  # facing +Y
        assert self.rig["front_120"].sees(ego, Vec2(0, 50))
        assert not self.rig["front_120"].sees(ego, Vec2(50, 0))

    def test_range_limit(self):
        ego = ego_at()
        assert not self.rig["front_120"].sees(ego, Vec2(500, 0))


class TestVisibility:
    def test_visible_actors_grouping(self):
        rig = default_rig()
        ego = ego_at()
        visibility = rig.visible_actors(
            ego,
            {
                "ahead": Vec2(60, 0),
                "left_abeam": Vec2(0, 15),
                "behind": Vec2(-50, 0),
            },
        )
        assert "ahead" in visibility["front_120"]
        assert "left_abeam" in visibility["left"]
        assert "behind" in visibility["rear"]
        assert "behind" not in visibility["front_120"]

    def test_actor_in_multiple_cameras(self):
        rig = default_rig()
        ego = ego_at()
        # Ahead-left diagonal: both front_120 and (close enough) left.
        visibility = rig.visible_actors(ego, {"diag": Vec2(10, 10)})
        cameras = [name for name, ids in visibility.items() if "diag" in ids]
        assert "front_120" in cameras
        assert "left" in cameras


class TestRigValidation:
    def _camera(self, name: str) -> Camera:
        return Camera(
            name=name,
            mount=Frame2(Vec2(0, 0), 0.0),
            fov=AngularSector(0.0, math.radians(60), 100.0),
        )

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            CameraRig([])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ConfigurationError):
            CameraRig([self._camera("a"), self._camera("a")])

    def test_unknown_camera_lookup_raises(self):
        rig = CameraRig([self._camera("a")])
        with pytest.raises(ConfigurationError):
            rig["missing"]


class TestVisibilityTrace:
    """The trace-level visibility kernel vs the per-tick loop."""

    def _ego_track(self):
        import numpy as np

        # A curving ego: heading sweeps a quarter turn over the ticks so
        # every camera frame genuinely rotates.
        return [
            ego_at(
                x=5.0 * i,
                y=0.3 * i * i,
                heading=float(angle),
            )
            for i, angle in enumerate(np.linspace(0.0, math.pi / 2.0, 12))
        ]

    def _actor_tracks(self):
        import numpy as np

        ticks = np.arange(12, dtype=float)
        return {
            "ahead": (10.0 + 6.0 * ticks, 1.0 + 0.4 * ticks),
            "abeam": (5.0 * ticks, 15.0 + 0.0 * ticks),
            "behind": (-40.0 + 5.0 * ticks, 0.2 * ticks),
            "far": (400.0 + 0.0 * ticks, 0.0 * ticks),
        }

    def test_matches_per_tick_groupings(self):
        rig = default_rig()
        ego_states = self._ego_track()
        actor_positions = self._actor_tracks()
        batched = rig.visible_actors_trace(ego_states, actor_positions)
        assert len(batched) == len(ego_states)
        for i, ego in enumerate(ego_states):
            per_tick = rig.visible_actors(
                ego,
                {
                    actor_id: Vec2(xs[i], ys[i])
                    for actor_id, (xs, ys) in actor_positions.items()
                },
            )
            assert batched[i] == per_tick, i

    def test_tables_shape_and_order(self):
        rig = default_rig()
        ego_states = self._ego_track()
        actor_positions = self._actor_tracks()
        tables = rig.visibility_trace(ego_states, actor_positions)
        assert set(tables) == set(rig.names)
        for table in tables.values():
            assert table.shape == (len(ego_states), len(actor_positions))

    def test_empty_actor_set(self):
        rig = default_rig()
        ego_states = self._ego_track()
        batched = rig.visible_actors_trace(ego_states, {})
        assert batched == [
            {name: [] for name in rig.names} for _ in ego_states
        ]
        tables = rig.visibility_trace(ego_states, {})
        for table in tables.values():
            assert table.shape == (len(ego_states), 0)
