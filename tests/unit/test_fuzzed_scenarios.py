"""The genome <-> ScenarioSpec binding: spaces, digests, archives.

Fuzzed catalog entries must be *reproducible identities*: the digest
name is a pure function of the canonical genome, registration is
idempotent, and an archive file rebuilds exactly the entries it
recorded — with tampering detected, not silently rebuilt under a
trusted name.
"""

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import build_scenario
from repro.scenarios.catalog import SCENARIOS, ensure_scenario
from repro.scenarios.fuzzed import (
    FUZZ_FAMILIES,
    RECIPES_ENV,
    GeneSpec,
    ParamSpace,
    _FUZZED_RECIPES,
    fuzzed_name,
    fuzzed_recipe,
    fuzzed_recipes,
    get_family,
    load_fuzzed_archive,
    register_fuzzed,
    resolve_fuzzed,
)


class TestGeneSpec:
    def test_bounds_must_be_ordered(self):
        with pytest.raises(ConfigurationError):
            GeneSpec("gap", 10.0, 10.0, 10.0)

    def test_default_must_lie_inside_bounds(self):
        with pytest.raises(ConfigurationError):
            GeneSpec("gap", 0.0, 1.0, 2.0)

    def test_integer_gene_needs_integral_bounds(self):
        with pytest.raises(ConfigurationError):
            GeneSpec("count", 0.5, 4.0, 1.0, integer=True)

    def test_name_required(self):
        with pytest.raises(ConfigurationError):
            GeneSpec("", 0.0, 1.0, 0.5)

    def test_quantize_clips_and_rounds(self):
        gene = GeneSpec("gap", 10.0, 20.0, 15.0)
        assert gene.quantize(25.0) == 20.0
        assert gene.quantize(5.0) == 10.0
        assert gene.quantize(12.3456789) == 12.345679

    def test_quantize_integer_rounds_to_int(self):
        gene = GeneSpec("count", 0, 6, 0, integer=True)
        assert gene.quantize(2.7) == 3
        assert isinstance(gene.quantize(2.7), int)
        assert gene.quantize(9.9) == 6


class TestParamSpace:
    SPACE = ParamSpace(
        genes=(
            GeneSpec("gap", 10.0, 20.0, 15.0),
            GeneSpec("count", 0, 4, 1, integer=True),
        )
    )

    def test_needs_genes(self):
        with pytest.raises(ConfigurationError):
            ParamSpace(genes=())

    def test_rejects_duplicate_names(self):
        gene = GeneSpec("gap", 0.0, 1.0, 0.5)
        with pytest.raises(ConfigurationError):
            ParamSpace(genes=(gene, gene))

    def test_defaults_are_canonical(self):
        assert self.SPACE.defaults() == {"gap": 15.0, "count": 1}

    def test_canonical_rejects_unknown_gene(self):
        with pytest.raises(ConfigurationError, match="unknown gene"):
            self.SPACE.canonical({"gap": 12.0, "count": 1, "bogus": 3.0})

    def test_canonical_rejects_missing_gene(self):
        with pytest.raises(ConfigurationError, match="missing gene"):
            self.SPACE.canonical({"gap": 12.0})

    def test_canonical_rejects_out_of_bounds(self):
        with pytest.raises(ConfigurationError, match="outside"):
            self.SPACE.canonical({"gap": 9.0, "count": 1})

    def test_canonical_rejects_non_finite(self):
        with pytest.raises(ConfigurationError, match="finite"):
            self.SPACE.canonical({"gap": float("nan"), "count": 1})


class TestFamilies:
    def test_every_family_has_a_registered_base(self):
        for family in FUZZ_FAMILIES.values():
            assert family.base_scenario in SCENARIOS

    def test_unknown_family_lists_choices(self):
        with pytest.raises(ConfigurationError, match="choose from"):
            get_family("nope")

    @pytest.mark.parametrize("family", sorted(FUZZ_FAMILIES))
    def test_default_genome_builds_actors(self, family):
        name = register_fuzzed(
            family, FUZZ_FAMILIES[family].space.defaults()
        )
        built = build_scenario(name, seed=0)
        actors = built.build_actors()
        assert actors
        assert len({actor.actor_id for actor in actors}) == len(actors)

    @pytest.mark.parametrize("family", sorted(FUZZ_FAMILIES))
    def test_bound_corners_build_actors(self, family):
        space = FUZZ_FAMILIES[family].space
        for corner in ("low", "high"):
            genome = {
                gene.name: getattr(gene, corner) for gene in space.genes
            }
            name = register_fuzzed(family, genome)
            assert build_scenario(name, seed=1).build_actors()


class TestRegistration:
    def test_digest_name_is_order_independent(self):
        space = FUZZ_FAMILIES["vehicle_following"].space
        params = space.defaults()
        shuffled = dict(reversed(list(params.items())))
        assert fuzzed_name("vehicle_following", params) == fuzzed_name(
            "vehicle_following", shuffled
        )

    def test_register_is_idempotent(self):
        params = FUZZ_FAMILIES["cut_out"].space.defaults()
        name = register_fuzzed("cut_out", params)
        assert register_fuzzed("cut_out", params) == name
        assert name.startswith("fuzzed_cut_out_")
        assert name in SCENARIOS

    def test_nearby_genomes_get_distinct_names(self):
        params = FUZZ_FAMILIES["cut_out"].space.defaults()
        other = dict(params, lead_gap=params["lead_gap"] + 0.5)
        assert register_fuzzed("cut_out", params) != register_fuzzed(
            "cut_out", other
        )

    def test_recipe_round_trips(self):
        params = FUZZ_FAMILIES["cut_out"].space.defaults()
        name = register_fuzzed("cut_out", params)
        recipe = fuzzed_recipe(name)
        assert recipe["family"] == "cut_out"
        assert recipe["params"] == params

    def test_recipe_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            fuzzed_recipe("fuzzed_cut_out_0000000000")

    def test_ensure_scenario_unknown_digest_is_false(self):
        assert not ensure_scenario("fuzzed_cut_out_ffffffffff")


class TestArchive:
    def _archive_file(self, tmp_path, names):
        path = tmp_path / "archive.json"
        path.write_text(json.dumps(fuzzed_recipes(names)))
        return path

    def test_archive_round_trip(self, tmp_path):
        params = dict(
            FUZZ_FAMILIES["challenging_cut_in"].space.defaults(),
            trigger_gap=17.5,
        )
        name = register_fuzzed("challenging_cut_in", params)
        path = self._archive_file(tmp_path, [name])
        # Forget the entry entirely, then rebuild it from the file.
        SCENARIOS.pop(name)
        _FUZZED_RECIPES.pop(name)
        assert load_fuzzed_archive(path) == [name]
        assert name in SCENARIOS
        assert build_scenario(name, seed=0).build_actors()

    def test_archive_tamper_is_detected(self, tmp_path):
        name = register_fuzzed(
            "cut_out", FUZZ_FAMILIES["cut_out"].space.defaults()
        )
        payload = fuzzed_recipes([name])
        payload["entries"][0]["params"]["lead_gap"] += 1.0
        path = tmp_path / "tampered.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match="does not match"):
            load_fuzzed_archive(path)

    def test_archive_without_entries_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"kind": "something_else"}))
        with pytest.raises(ConfigurationError, match="entries"):
            load_fuzzed_archive(path)

    def test_unreadable_archive_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="unreadable"):
            load_fuzzed_archive(path)
        with pytest.raises(ConfigurationError, match="unreadable"):
            load_fuzzed_archive(tmp_path / "missing.json")

    def test_resolve_via_environment_archive(self, tmp_path, monkeypatch):
        params = dict(
            FUZZ_FAMILIES["vehicle_following"].space.defaults(),
            decel=6.25,
        )
        name = register_fuzzed("vehicle_following", params)
        path = self._archive_file(tmp_path, [name])
        SCENARIOS.pop(name)
        _FUZZED_RECIPES.pop(name)
        monkeypatch.setenv(
            RECIPES_ENV,
            os.pathsep.join([str(tmp_path / "absent.json"), str(path)]),
        )
        # ensure_scenario's fuzzed branch walks the env var's archives.
        assert ensure_scenario(name)
        assert name in SCENARIOS

    def test_resolve_from_recipe_table(self):
        params = dict(
            FUZZ_FAMILIES["cut_out"].space.defaults(), bail_out_gap=17.0
        )
        name = register_fuzzed("cut_out", params)
        SCENARIOS.pop(name)  # recipe survives; registry entry dropped
        assert resolve_fuzzed(name)
        assert name in SCENARIOS

    def test_resolve_unknown_without_env_is_false(self, monkeypatch):
        monkeypatch.delenv(RECIPES_ENV, raising=False)
        assert not resolve_fuzzed("fuzzed_cut_out_eeeeeeeeee")
