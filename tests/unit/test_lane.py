"""Centerline primitives and Frenet conversions."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry.vec import Vec2
from repro.road.lane import (
    ArcCenterline,
    CompositeCenterline,
    FrenetPoint,
    StraightCenterline,
)


class TestStraight:
    def setup_method(self):
        self.line = StraightCenterline(Vec2(10, 5), 0.0, 100.0)

    def test_rejects_non_positive_length(self):
        with pytest.raises(GeometryError):
            StraightCenterline(Vec2(0, 0), 0.0, 0.0)

    def test_point_at(self):
        assert self.line.point_at(40.0) == Vec2(50, 5)

    def test_heading_constant(self):
        assert self.line.heading_at(0.0) == self.line.heading_at(99.0) == 0.0

    def test_zero_curvature(self):
        assert self.line.curvature_at(50.0) == 0.0

    def test_frenet_round_trip(self):
        frenet = FrenetPoint(30.0, -2.5)
        world = self.line.to_world(frenet)
        back = self.line.to_frenet(world)
        assert back.s == pytest.approx(30.0)
        assert back.d == pytest.approx(-2.5)

    def test_left_offset_is_positive_y(self):
        world = self.line.to_world(FrenetPoint(0.0, 3.0))
        assert world == Vec2(10, 8)


class TestArc:
    def test_rejects_bad_radius(self):
        with pytest.raises(GeometryError):
            ArcCenterline(Vec2(0, 0), 0.0, 0.0, 10.0)

    def test_left_turn_quarter_circle(self):
        # Start at angle -pi/2 (bottom of circle), turning left.
        arc = ArcCenterline(
            center=Vec2(0, 100),
            radius=100.0,
            start_angle=-math.pi / 2,
            arc_length=100.0 * math.pi / 2,
            turn_left=True,
        )
        start = arc.point_at(0.0)
        assert start.distance_to(Vec2(0, 0)) < 1e-9
        assert arc.heading_at(0.0) == pytest.approx(0.0)
        end = arc.point_at(arc.length)
        assert end.distance_to(Vec2(100, 100)) < 1e-9
        assert arc.heading_at(arc.length) == pytest.approx(math.pi / 2)

    def test_right_turn_heading(self):
        arc = ArcCenterline(
            center=Vec2(0, -100),
            radius=100.0,
            start_angle=math.pi / 2,
            arc_length=50.0,
            turn_left=False,
        )
        assert arc.heading_at(0.0) == pytest.approx(0.0)
        assert arc.curvature_at(0.0) == pytest.approx(-0.01)

    def test_left_positive_d_shrinks_radius(self):
        arc = ArcCenterline(Vec2(0, 100), 100.0, -math.pi / 2, 100.0, True)
        inner = arc.to_world(FrenetPoint(0.0, 3.0))
        assert inner.distance_to(Vec2(0, 100)) == pytest.approx(97.0)

    def test_frenet_round_trip_left(self):
        arc = ArcCenterline(Vec2(0, 100), 100.0, -math.pi / 2, 150.0, True)
        frenet = FrenetPoint(80.0, 1.5)
        back = arc.to_frenet(arc.to_world(frenet))
        assert back.s == pytest.approx(80.0)
        assert back.d == pytest.approx(1.5)

    def test_frenet_round_trip_right(self):
        arc = ArcCenterline(Vec2(0, -100), 100.0, math.pi / 2, 150.0, False)
        frenet = FrenetPoint(60.0, -2.0)
        back = arc.to_frenet(arc.to_world(frenet))
        assert back.s == pytest.approx(60.0)
        assert back.d == pytest.approx(-2.0)

    def test_offset_exceeding_radius_raises(self):
        arc = ArcCenterline(Vec2(0, 10), 10.0, -math.pi / 2, 10.0, True)
        with pytest.raises(GeometryError):
            arc.to_world(FrenetPoint(0.0, 10.0))


class TestComposite:
    def _composite(self):
        entry = StraightCenterline(Vec2(0, 0), 0.0, 100.0)
        arc = ArcCenterline(
            center=Vec2(100, 200),
            radius=200.0,
            start_angle=-math.pi / 2,
            arc_length=100.0,
            turn_left=True,
        )
        return CompositeCenterline([entry, arc])

    def test_total_length(self):
        assert self._composite().length == pytest.approx(200.0)

    def test_rejects_empty(self):
        with pytest.raises(GeometryError):
            CompositeCenterline([])

    def test_rejects_disjoint_segments(self):
        a = StraightCenterline(Vec2(0, 0), 0.0, 10.0)
        b = StraightCenterline(Vec2(50, 0), 0.0, 10.0)
        with pytest.raises(GeometryError):
            CompositeCenterline([a, b])

    def test_rejects_heading_mismatch(self):
        a = StraightCenterline(Vec2(0, 0), 0.0, 10.0)
        b = StraightCenterline(Vec2(10, 0), 0.5, 10.0)
        with pytest.raises(GeometryError):
            CompositeCenterline([a, b])

    def test_continuity_at_joint(self):
        composite = self._composite()
        before = composite.point_at(99.999)
        after = composite.point_at(100.001)
        assert before.distance_to(after) < 0.01

    def test_point_in_second_segment(self):
        composite = self._composite()
        # 50 m into the arc.
        expected = ArcCenterline(
            Vec2(100, 200), 200.0, -math.pi / 2, 100.0, True
        ).point_at(50.0)
        assert composite.point_at(150.0).distance_to(expected) < 1e-9

    def test_frenet_round_trip_across_segments(self):
        composite = self._composite()
        for s in (10.0, 99.0, 101.0, 180.0):
            frenet = FrenetPoint(s, 1.0)
            back = composite.to_frenet(composite.to_world(frenet))
            assert back.s == pytest.approx(s, abs=1e-6)
            assert back.d == pytest.approx(1.0, abs=1e-6)

    def test_curvature_switches_at_joint(self):
        composite = self._composite()
        assert composite.curvature_at(50.0) == 0.0
        assert composite.curvature_at(150.0) == pytest.approx(1.0 / 200.0)
