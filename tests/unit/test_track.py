"""Multi-lane road layout."""

import pytest

from repro.errors import ConfigurationError
from repro.geometry.vec import Vec2
from repro.road.lane import FrenetPoint
from repro.road.track import (
    Road,
    three_lane_curved_road,
    three_lane_straight_road,
)


class TestLaneLayout:
    def setup_method(self):
        self.road = three_lane_straight_road(length=1000.0)

    def test_three_lanes(self):
        assert self.road.lane_count == 3
        assert self.road.width == pytest.approx(10.5)

    def test_lane_offsets_ordered_right_to_left(self):
        offsets = [self.road.lane_offset(i) for i in range(3)]
        assert offsets == sorted(offsets)
        assert offsets[1] == pytest.approx(0.0)
        assert offsets[0] == pytest.approx(-3.5)
        assert offsets[2] == pytest.approx(3.5)

    def test_invalid_lane_raises(self):
        with pytest.raises(ConfigurationError):
            self.road.lane_offset(3)
        with pytest.raises(ConfigurationError):
            self.road.lane_offset(-1)

    def test_lane_of_offset_round_trip(self):
        for lane in range(3):
            assert self.road.lane_of_offset(self.road.lane_offset(lane)) == lane

    def test_lane_of_offset_clamps(self):
        assert self.road.lane_of_offset(-100.0) == 0
        assert self.road.lane_of_offset(100.0) == 2

    def test_lane_center_position(self):
        p = self.road.lane_center(0, 100.0)
        assert p == Vec2(100.0, -3.5)


class TestOnRoad:
    def setup_method(self):
        self.road = three_lane_straight_road(length=1000.0)

    def test_center_on_road(self):
        assert self.road.on_road(Vec2(500, 0))

    def test_edge_cases(self):
        assert self.road.on_road(Vec2(500, 5.25))
        assert not self.road.on_road(Vec2(500, 5.5))

    def test_before_start_off_road(self):
        assert not self.road.on_road(Vec2(-1, 0))

    def test_margin_extends(self):
        assert self.road.on_road(Vec2(500, 5.5), margin=0.5)


class TestConstruction:
    def test_rejects_zero_lanes(self):
        base = three_lane_straight_road().centerline
        with pytest.raises(ConfigurationError):
            Road(centerline=base, lane_count=0)

    def test_rejects_bad_lane_width(self):
        base = three_lane_straight_road().centerline
        with pytest.raises(ConfigurationError):
            Road(centerline=base, lane_width=0.0)


class TestCurvedRoad:
    def test_builds_both_directions(self):
        left = three_lane_curved_road(turn_left=True)
        right = three_lane_curved_road(turn_left=False)
        assert left.length == pytest.approx(right.length)

    def test_entry_is_straight(self):
        road = three_lane_curved_road(entry_length=200.0)
        assert road.heading_at(0.0) == pytest.approx(0.0)
        assert road.heading_at(199.0) == pytest.approx(0.0)

    def test_curve_changes_heading(self):
        road = three_lane_curved_road(
            entry_length=200.0, radius=400.0, arc_length=1200.0, turn_left=True
        )
        assert road.heading_at(500.0) > 0.1

    def test_right_turn_heading_negative(self):
        road = three_lane_curved_road(turn_left=False)
        assert road.heading_at(road.length - 1.0) < -0.1

    def test_frenet_round_trip_in_curve(self):
        road = three_lane_curved_road()
        frenet = FrenetPoint(700.0, -3.5)
        back = road.to_frenet(road.to_world(frenet))
        assert back.s == pytest.approx(700.0, abs=1e-6)
        assert back.d == pytest.approx(-3.5, abs=1e-6)


class TestBatchKernels:
    """to_world_batch / heading_at_batch vs their scalar counterparts."""

    @pytest.mark.parametrize(
        "road",
        [
            three_lane_straight_road(),
            three_lane_curved_road(),
            three_lane_curved_road(turn_left=False),
        ],
        ids=["straight", "curved-left", "curved-right"],
    )
    def test_to_world_batch_matches_scalar(self, road):
        import numpy as np

        stations = np.array([0.0, 1.0, 199.0, 200.0, 201.0, 700.0, 1399.9])
        offsets = np.array([0.0, -3.5, 3.5, 1.75, -1.75, 0.5, -0.5])
        xs, ys = road.to_world_batch(stations, offsets)
        for i in range(stations.size):
            point = road.to_world(
                FrenetPoint(float(stations[i]), float(offsets[i]))
            )
            assert xs[i] == pytest.approx(point.x, abs=1e-9)
            assert ys[i] == pytest.approx(point.y, abs=1e-9)

    @pytest.mark.parametrize(
        "road",
        [
            three_lane_straight_road(),
            three_lane_curved_road(),
            three_lane_curved_road(turn_left=False),
        ],
        ids=["straight", "curved-left", "curved-right"],
    )
    def test_heading_at_batch_matches_scalar(self, road):
        import numpy as np

        stations = np.array([0.0, 150.0, 200.0, 450.0, 1100.0])
        headings = road.heading_at_batch(stations)
        for i in range(stations.size):
            assert headings[i] == pytest.approx(
                road.heading_at(float(stations[i])), abs=1e-12
            )

    def test_to_world_batch_broadcasts_offsets(self):
        import numpy as np

        road = three_lane_curved_road()
        stations = np.array([[100.0, 300.0], [500.0, 900.0]])
        xs, ys = road.to_world_batch(stations, np.array(-3.5))
        assert xs.shape == stations.shape
        point = road.to_world(FrenetPoint(900.0, -3.5))
        assert xs[1, 1] == pytest.approx(point.x, abs=1e-9)
        assert ys[1, 1] == pytest.approx(point.y, abs=1e-9)

    def test_arc_batch_rejects_offset_beyond_radius(self):
        import numpy as np

        from repro.errors import GeometryError

        road = three_lane_curved_road(radius=400.0)
        with pytest.raises(GeometryError):
            road.to_world_batch(np.array([600.0]), np.array([400.0]))
