"""Vehicle states and trajectories."""

import math

import numpy as np
import pytest

from repro.dynamics.state import (
    StateTrajectory,
    TimedState,
    VehicleSpec,
    VehicleState,
)
from repro.errors import ConfigurationError, SimulationError
from repro.geometry.vec import Vec2


def state(x: float, y: float = 0.0, heading: float = 0.0,
          speed: float = 10.0, accel: float = 0.0) -> VehicleState:
    return VehicleState(Vec2(x, y), heading, speed, accel)


class TestVehicleSpec:
    def test_defaults_consistent(self):
        spec = VehicleSpec()
        assert 0 < spec.wheelbase <= spec.length

    def test_rejects_negative_speed_limit(self):
        with pytest.raises(ConfigurationError):
            VehicleSpec(max_speed=-1.0)

    def test_rejects_wheelbase_longer_than_body(self):
        with pytest.raises(ConfigurationError):
            VehicleSpec(length=4.0, wheelbase=4.5)

    def test_rejects_zero_decel(self):
        with pytest.raises(ConfigurationError):
            VehicleSpec(max_decel=0.0)


class TestVehicleState:
    def test_rejects_negative_speed(self):
        with pytest.raises(SimulationError):
            state(0.0, speed=-1.0)

    def test_velocity_along_heading(self):
        s = state(0, heading=math.pi / 2, speed=5.0)
        v = s.velocity()
        assert v.x == pytest.approx(0.0, abs=1e-12)
        assert v.y == pytest.approx(5.0)

    def test_footprint_dimensions(self):
        spec = VehicleSpec(length=4.8, width=1.9)
        box = state(10, 5).footprint(spec)
        assert box.length == 4.8
        assert box.width == 1.9
        assert box.center == Vec2(10, 5)

    def test_with_accel(self):
        s = state(0).with_accel(-3.0)
        assert s.accel == -3.0
        assert s.speed == 10.0


class TestStateTrajectory:
    def _trajectory(self) -> StateTrajectory:
        return StateTrajectory(
            [
                TimedState(0.0, state(0.0, speed=10.0)),
                TimedState(1.0, state(10.0, speed=10.0)),
                TimedState(2.0, state(20.0, speed=12.0)),
            ]
        )

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            StateTrajectory([])

    def test_rejects_duplicate_times(self):
        with pytest.raises(ConfigurationError):
            StateTrajectory(
                [TimedState(0.0, state(0)), TimedState(0.0, state(1))]
            )

    def test_sorts_by_time(self):
        trajectory = StateTrajectory(
            [TimedState(1.0, state(10)), TimedState(0.0, state(0))]
        )
        assert trajectory.start_time == 0.0
        assert trajectory.state_at(0.0).position.x == 0.0

    def test_interpolates_position(self):
        trajectory = self._trajectory()
        assert trajectory.state_at(0.5).position.x == pytest.approx(5.0)

    def test_interpolates_speed(self):
        trajectory = self._trajectory()
        assert trajectory.state_at(1.5).speed == pytest.approx(11.0)

    def test_clamps_before_start(self):
        assert self._trajectory().state_at(-5.0).position.x == 0.0

    def test_clamps_after_end(self):
        assert self._trajectory().state_at(10.0).position.x == 20.0

    def test_duration(self):
        assert self._trajectory().duration == pytest.approx(2.0)

    def test_shifted(self):
        shifted = self._trajectory().shifted(5.0)
        assert shifted.start_time == 5.0
        assert shifted.state_at(5.5).position.x == pytest.approx(5.0)


class TestExtrapolation:
    def _trajectory(self) -> StateTrajectory:
        return StateTrajectory(
            [
                TimedState(0.0, state(0.0, speed=10.0)),
                TimedState(1.0, state(10.0, speed=10.0)),
            ]
        )

    def test_extrapolated_state_coasts(self):
        extrapolated = self._trajectory().extrapolated_state_at(3.0)
        assert extrapolated.position.x == pytest.approx(30.0)
        assert extrapolated.speed == pytest.approx(10.0)
        assert extrapolated.accel == 0.0

    def test_extrapolated_matches_interp_inside(self):
        trajectory = self._trajectory()
        inside = trajectory.extrapolated_state_at(0.5)
        assert inside.position.x == pytest.approx(5.0)

    def test_stopped_final_state_stays_put(self):
        trajectory = StateTrajectory(
            [
                TimedState(0.0, state(0.0, speed=5.0)),
                TimedState(1.0, state(3.0, speed=0.0)),
            ]
        )
        assert trajectory.extrapolated_state_at(100.0).position.x == (
            pytest.approx(3.0)
        )

    def test_vectorized_sampling_matches_scalar(self):
        trajectory = self._trajectory()
        times = np.array([0.0, 0.25, 0.9, 1.0, 2.0, 5.0])
        xs, ys, speeds = trajectory.sample_extrapolated(times)
        for i, t in enumerate(times):
            expected = trajectory.extrapolated_state_at(float(t))
            assert xs[i] == pytest.approx(expected.position.x)
            assert ys[i] == pytest.approx(expected.position.y)
            assert speeds[i] == pytest.approx(expected.speed)


class TestRolloutArrays:
    def test_rejects_non_grid_times(self):
        import numpy as np

        from repro.dynamics.state import RolloutArrays
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            RolloutArrays(
                times=np.zeros(3),
                xs=np.zeros(3),
                ys=np.zeros(3),
                speeds=np.zeros(3),
                end_vx=np.zeros(1),
                end_vy=np.zeros(1),
            )

    def test_take_selects_rows(self):
        import numpy as np

        from repro.dynamics.state import RolloutArrays

        rollout = RolloutArrays(
            times=np.array([[0.0, 1.0], [0.5, 1.5], [1.0, 2.0]]),
            xs=np.arange(6.0).reshape(3, 2),
            ys=np.arange(6.0).reshape(3, 2) + 10.0,
            speeds=np.ones((3, 2)),
            end_vx=np.array([1.0, 2.0, 3.0]),
            end_vy=np.zeros(3),
        )
        sub = rollout.take(np.array([2, 0]))
        assert sub.rows == 2
        assert sub.times[0, 0] == 1.0
        assert sub.end_vx.tolist() == [3.0, 1.0]

    def test_knot_arrays_round_trip(self):
        import numpy as np

        trajectory = StateTrajectory(
            [
                TimedState(0.0, VehicleState(Vec2(0.0, 0.0), 0.0, 5.0)),
                TimedState(1.0, VehicleState(Vec2(5.0, 0.0), 0.0, 5.0)),
            ]
        )
        t, x, y, v, end_velocity = trajectory.knot_arrays()
        assert t.tolist() == [0.0, 1.0]
        assert x.tolist() == [0.0, 5.0]
        assert v.tolist() == [5.0, 5.0]
        assert end_velocity[0] == pytest.approx(5.0)
        assert end_velocity[1] == pytest.approx(0.0)
