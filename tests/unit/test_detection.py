"""Per-frame detection: FOV, occlusion, noise, misses."""

import pytest

from repro.dynamics.state import VehicleSpec, VehicleState
from repro.errors import ConfigurationError
from repro.geometry.vec import Vec2
from repro.perception.detection import DetectionModel
from repro.perception.sensor import default_rig


def vstate(x: float, y: float = 0.0, speed: float = 10.0) -> VehicleState:
    return VehicleState(Vec2(x, y), 0.0, speed, 0.0)


@pytest.fixture
def rig():
    return default_rig()


SPEC = VehicleSpec()


class TestBasicDetection:
    def test_detects_actor_in_fov(self, rig):
        model = DetectionModel(position_noise=0.0)
        detections = model.detect(
            rig["front_120"], vstate(0), 1.0,
            {"a": (vstate(50), SPEC)}, seed=0,
        )
        assert [d.actor_id for d in detections] == ["a"]
        assert detections[0].time == 1.0
        assert detections[0].position == Vec2(50, 0)

    def test_ignores_actor_outside_fov(self, rig):
        model = DetectionModel()
        detections = model.detect(
            rig["front_120"], vstate(0), 0.0,
            {"behind": (vstate(-50), SPEC)}, seed=0,
        )
        assert detections == []

    def test_noise_perturbs_position(self, rig):
        model = DetectionModel(position_noise=0.5)
        detections = model.detect(
            rig["front_120"], vstate(0), 0.0,
            {"a": (vstate(50), SPEC)}, seed=7,
        )
        assert detections[0].position != Vec2(50, 0)
        assert detections[0].position.distance_to(Vec2(50, 0)) < 3.0

    def test_noise_varies_over_time_and_actors(self, rig):
        model = DetectionModel(position_noise=0.5)
        at = lambda t: model.detect(  # noqa: E731 - tiny local helper
            rig["front_120"], vstate(0), t,
            {"a": (vstate(50), SPEC), "b": (vstate(40, 3.0), SPEC)}, seed=7,
        )
        first, second = at(0.0), at(0.1)
        assert first[0].position != first[1].position - Vec2(-10.0, 3.0)
        assert first[0].position != second[0].position

    def test_carries_true_kinematics(self, rig):
        model = DetectionModel(position_noise=0.0)
        detections = model.detect(
            rig["front_120"], vstate(0), 0.0,
            {"a": (vstate(50, speed=17.5), SPEC)}, seed=0,
        )
        assert detections[0].true_speed == 17.5


class TestCounterKeyedDraws:
    """The order-independence contract of the detection draws."""

    def test_repeat_call_is_bit_identical(self, rig):
        model = DetectionModel(position_noise=0.5, miss_rate=0.3)
        args = (
            rig["front_120"], vstate(0), 1.5,
            {"a": (vstate(50), SPEC), "b": (vstate(40, 3.0), SPEC)},
        )
        first = model.detect(*args, seed=11)
        second = model.detect(*args, seed=11)
        assert first == second

    def test_draws_independent_of_candidate_set(self, rig):
        # Removing one actor must not shift another actor's draws — the
        # stateful-generator failure mode this scheme eliminates.
        model = DetectionModel(position_noise=0.5)
        both = model.detect(
            rig["front_120"], vstate(0), 1.5,
            {"a": (vstate(50), SPEC), "b": (vstate(40, 3.0), SPEC)}, seed=3,
        )
        alone = model.detect(
            rig["front_120"], vstate(0), 1.5,
            {"b": (vstate(40, 3.0), SPEC)}, seed=3,
        )
        b_in_both = next(d for d in both if d.actor_id == "b")
        assert alone == [b_in_both]

    def test_seed_and_camera_separate_streams(self, rig):
        model = DetectionModel(position_noise=0.5)
        actors = {"a": (vstate(30), SPEC)}
        base = model.detect(rig["front_120"], vstate(0), 0.5, actors, seed=0)
        other_seed = model.detect(
            rig["front_120"], vstate(0), 0.5, actors, seed=1
        )
        other_camera = model.detect(
            rig["front_60"], vstate(0), 0.5, actors, seed=0
        )
        assert base[0].position != other_seed[0].position
        assert base[0].position != other_camera[0].position


class TestMissRate:
    def test_miss_rate_one_impossible(self):
        with pytest.raises(ConfigurationError):
            DetectionModel(miss_rate=1.0)

    def test_high_miss_rate_drops_frames(self, rig):
        model = DetectionModel(miss_rate=0.9)
        hits = 0
        # Distinct capture times draw independently (one frozen instant
        # would repeat the same verdict 200 times).
        for frame in range(200):
            hits += len(
                model.detect(
                    rig["front_120"], vstate(0), 0.01 * frame,
                    {"a": (vstate(50), SPEC)}, seed=3,
                )
            )
        assert 2 <= hits <= 50


class TestOcclusion:
    def test_blocked_by_vehicle_between(self, rig):
        model = DetectionModel(position_noise=0.0, occlusion=True)
        actors = {
            "blocker": (vstate(25), SPEC),
            "hidden": (vstate(60), SPEC),
        }
        ids = {
            d.actor_id
            for d in model.detect(rig["front_120"], vstate(0), 0.0, actors, 0)
        }
        assert ids == {"blocker"}

    def test_adjacent_lane_not_blocking(self, rig):
        model = DetectionModel(position_noise=0.0, occlusion=True)
        actors = {
            "beside": (vstate(25, 3.5), SPEC),
            "visible": (vstate(60), SPEC),
        }
        ids = {
            d.actor_id
            for d in model.detect(rig["front_120"], vstate(0), 0.0, actors, 0)
        }
        assert ids == {"beside", "visible"}

    def test_occlusion_off_sees_through(self, rig):
        model = DetectionModel(position_noise=0.0, occlusion=False)
        actors = {
            "blocker": (vstate(25), SPEC),
            "hidden": (vstate(60), SPEC),
        }
        ids = {
            d.actor_id
            for d in model.detect(rig["front_120"], vstate(0), 0.0, actors, 0)
        }
        assert ids == {"blocker", "hidden"}

    def test_reveal_after_lateral_shift(self, rig):
        # The cut-out mechanism: once the blocker moves ~a lane over, the
        # obstacle behind it becomes visible.
        model = DetectionModel(position_noise=0.0, occlusion=True)
        actors = {
            "blocker": (vstate(25, 2.5), SPEC),
            "obstacle": (vstate(60, 0.0, speed=0.0), SPEC),
        }
        ids = {
            d.actor_id
            for d in model.detect(rig["front_120"], vstate(0), 0.0, actors, 0)
        }
        assert "obstacle" in ids


class TestValidation:
    def test_rejects_negative_noise(self):
        with pytest.raises(ConfigurationError):
            DetectionModel(position_noise=-0.1)
