"""Per-frame detection: FOV, occlusion, noise, misses."""

import numpy as np
import pytest

from repro.dynamics.state import VehicleSpec, VehicleState
from repro.errors import ConfigurationError
from repro.geometry.vec import Vec2
from repro.perception.detection import DetectionModel
from repro.perception.sensor import default_rig


def vstate(x: float, y: float = 0.0, speed: float = 10.0) -> VehicleState:
    return VehicleState(Vec2(x, y), 0.0, speed, 0.0)


@pytest.fixture
def rig():
    return default_rig()


@pytest.fixture
def rng():
    return np.random.default_rng(0)


SPEC = VehicleSpec()


class TestBasicDetection:
    def test_detects_actor_in_fov(self, rig, rng):
        model = DetectionModel(position_noise=0.0)
        detections = model.detect(
            rig["front_120"], vstate(0), 1.0,
            {"a": (vstate(50), SPEC)}, rng,
        )
        assert [d.actor_id for d in detections] == ["a"]
        assert detections[0].time == 1.0
        assert detections[0].position == Vec2(50, 0)

    def test_ignores_actor_outside_fov(self, rig, rng):
        model = DetectionModel()
        detections = model.detect(
            rig["front_120"], vstate(0), 0.0,
            {"behind": (vstate(-50), SPEC)}, rng,
        )
        assert detections == []

    def test_noise_perturbs_position(self, rig):
        model = DetectionModel(position_noise=0.5)
        rng = np.random.default_rng(7)
        detections = model.detect(
            rig["front_120"], vstate(0), 0.0,
            {"a": (vstate(50), SPEC)}, rng,
        )
        assert detections[0].position != Vec2(50, 0)
        assert detections[0].position.distance_to(Vec2(50, 0)) < 3.0

    def test_carries_true_kinematics(self, rig, rng):
        model = DetectionModel(position_noise=0.0)
        detections = model.detect(
            rig["front_120"], vstate(0), 0.0,
            {"a": (vstate(50, speed=17.5), SPEC)}, rng,
        )
        assert detections[0].true_speed == 17.5


class TestMissRate:
    def test_miss_rate_one_impossible(self):
        with pytest.raises(ConfigurationError):
            DetectionModel(miss_rate=1.0)

    def test_high_miss_rate_drops_frames(self, rig):
        model = DetectionModel(miss_rate=0.9)
        rng = np.random.default_rng(3)
        hits = 0
        for _ in range(200):
            hits += len(
                model.detect(
                    rig["front_120"], vstate(0), 0.0,
                    {"a": (vstate(50), SPEC)}, rng,
                )
            )
        assert 2 <= hits <= 50


class TestOcclusion:
    def test_blocked_by_vehicle_between(self, rig, rng):
        model = DetectionModel(position_noise=0.0, occlusion=True)
        actors = {
            "blocker": (vstate(25), SPEC),
            "hidden": (vstate(60), SPEC),
        }
        ids = {
            d.actor_id
            for d in model.detect(rig["front_120"], vstate(0), 0.0, actors, rng)
        }
        assert ids == {"blocker"}

    def test_adjacent_lane_not_blocking(self, rig, rng):
        model = DetectionModel(position_noise=0.0, occlusion=True)
        actors = {
            "beside": (vstate(25, 3.5), SPEC),
            "visible": (vstate(60), SPEC),
        }
        ids = {
            d.actor_id
            for d in model.detect(rig["front_120"], vstate(0), 0.0, actors, rng)
        }
        assert ids == {"beside", "visible"}

    def test_occlusion_off_sees_through(self, rig, rng):
        model = DetectionModel(position_noise=0.0, occlusion=False)
        actors = {
            "blocker": (vstate(25), SPEC),
            "hidden": (vstate(60), SPEC),
        }
        ids = {
            d.actor_id
            for d in model.detect(rig["front_120"], vstate(0), 0.0, actors, rng)
        }
        assert ids == {"blocker", "hidden"}

    def test_reveal_after_lateral_shift(self, rig, rng):
        # The cut-out mechanism: once the blocker moves ~a lane over, the
        # obstacle behind it becomes visible.
        model = DetectionModel(position_noise=0.0, occlusion=True)
        actors = {
            "blocker": (vstate(25, 2.5), SPEC),
            "obstacle": (vstate(60, 0.0, speed=0.0), SPEC),
        }
        ids = {
            d.actor_id
            for d in model.detect(rig["front_120"], vstate(0), 0.0, actors, rng)
        }
        assert "obstacle" in ids


class TestValidation:
    def test_rejects_negative_noise(self):
        with pytest.raises(ConfigurationError):
            DetectionModel(position_noise=-0.1)
