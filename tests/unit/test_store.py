"""Unit tests: the simulate-once trace store.

Synthetic traces keep these fast — nothing here runs the closed loop.
Covered: bundle round trips through the memmap read path, key
versioning (stale sim_version / fingerprint read as misses), corruption
and truncation verification, the concurrent-recorder rename race,
index maintenance, deterministic handle release on ``close()``, and the
flat-FD guarantee across a 50-cell warm campaign pass.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.batch.campaign import RunSpec
from repro.batch.runner import execute_cell
from repro.dynamics.state import VehicleState
from repro.errors import TraceError
from repro.geometry.vec import Vec2
from repro.perception.sensor import ANALYZED_CAMERAS
from repro.sim.trace import ScenarioTrace, TraceStep
from repro.store import (
    ColumnarTrace,
    SIM_VERSION,
    TraceArrays,
    TraceStore,
    code_fingerprint,
    trace_arrays_equal,
)


def synthetic_trace(
    scenario: str = "cut_out", seed: int = 0, n_steps: int = 41
) -> ScenarioTrace:
    """A small evaluable trace: ego cruising, one lead actor ahead."""
    dt = 0.05
    steps = []
    for i in range(n_steps):
        t = i * dt
        steps.append(
            TraceStep(
                time=t,
                ego=VehicleState(
                    position=Vec2(10.0 * t, 0.0), heading=0.0, speed=10.0
                ),
                actors={
                    "lead": VehicleState(
                        position=Vec2(40.0 + 8.0 * t, 0.0),
                        heading=0.0,
                        speed=8.0,
                    )
                },
                planner_mode="cruise" if i % 3 else "brake",
                camera_fprs={"front": 12.0 + i},
            )
        )
    return ScenarioTrace(
        scenario=scenario,
        dt=dt,
        steps=steps,
        nominal_fpr=30.0,
        seed=seed,
        metadata={"synthetic": True, "steps": n_steps},
    )


@pytest.fixture()
def store(tmp_path) -> TraceStore:
    return TraceStore(tmp_path / "store")


class TestStoreKey:
    def test_digest_is_stable_and_key_sensitive(self, store):
        key = store.key("cut_out", 0, 30.0)
        assert key.digest() == store.key("cut_out", 0, 30.0).digest()
        for other in (
            store.key("cut_in", 0, 30.0),
            store.key("cut_out", 1, 30.0),
            store.key("cut_out", 0, 15.0),
        ):
            assert other.digest() != key.digest()

    def test_digest_covers_versions(self, tmp_path):
        a = TraceStore(tmp_path, sim_version=1, fingerprint="aaaa")
        b = TraceStore(tmp_path, sim_version=2, fingerprint="aaaa")
        c = TraceStore(tmp_path, sim_version=1, fingerprint="bbbb")
        key = ("cut_out", 0, 30.0)
        digests = {s.key(*key).digest() for s in (a, b, c)}
        assert len(digests) == 3

    def test_round_trips_through_dict(self, store):
        key = store.key("cut_out", 3, 15.0)
        assert type(key).from_dict(key.to_dict()) == key

    def test_fingerprint_defaults_to_code_fingerprint(self, store):
        assert store.fingerprint == code_fingerprint()
        assert len(code_fingerprint()) == 16


class TestPutGet:
    def test_miss_before_put(self, store):
        key = store.key("cut_out", 0, 30.0)
        assert key not in store
        assert store.get(key) is None

    def test_round_trip_is_bit_exact(self, store):
        trace = synthetic_trace()
        key = store.key("cut_out", 0, 30.0)
        store.put(key, trace)
        assert key in store
        loaded = store.get(key)
        assert isinstance(loaded, ColumnarTrace)
        assert trace_arrays_equal(
            TraceArrays.from_trace(trace), TraceArrays.from_trace(loaded)
        )
        loaded.close()

    def test_loaded_columns_are_memmapped(self, store):
        key = store.key("cut_out", 0, 30.0)
        store.put(key, synthetic_trace())
        loaded = store.get(key)
        assert isinstance(loaded.columns.times, np.memmap)
        # Trajectories adopt the columns without copying.
        span = loaded.time_span()
        assert span[0] == 0.0
        loaded.close()

    def test_stale_sim_version_misses(self, tmp_path):
        old = TraceStore(tmp_path, sim_version=SIM_VERSION)
        old.put(old.key("cut_out", 0, 30.0), synthetic_trace())
        new = TraceStore(tmp_path, sim_version=SIM_VERSION + 1)
        assert new.get(new.key("cut_out", 0, 30.0)) is None
        assert new.keys() == []
        assert len(old.keys()) == 1

    def test_stale_fingerprint_misses(self, tmp_path):
        old = TraceStore(tmp_path, fingerprint="old-tree")
        old.put(old.key("cut_out", 0, 30.0), synthetic_trace())
        new = TraceStore(tmp_path, fingerprint="new-tree")
        assert new.get(new.key("cut_out", 0, 30.0)) is None
        assert new.keys() == []


class TestVerification:
    def _corrupt(self, store, key, column="ego.npy"):
        path = store.bundle_dir(key) / column
        raw = bytearray(path.read_bytes())
        raw[-8] ^= 0xFF
        path.write_bytes(bytes(raw))

    def test_corrupt_column_reads_as_miss(self, store):
        key = store.key("cut_out", 0, 30.0)
        store.put(key, synthetic_trace())
        self._corrupt(store, key)
        assert store.get(key) is None

    def test_truncated_column_reads_as_miss(self, store):
        key = store.key("cut_out", 0, 30.0)
        store.put(key, synthetic_trace())
        path = store.bundle_dir(key) / "times.npy"
        path.write_bytes(path.read_bytes()[:-16])
        assert store.get(key) is None

    def test_damaged_meta_reads_as_miss(self, store):
        key = store.key("cut_out", 0, 30.0)
        store.put(key, synthetic_trace())
        (store.bundle_dir(key) / "meta.json").write_text("{not json")
        assert store.get(key) is None

    def test_reput_replaces_damaged_bundle(self, store):
        trace = synthetic_trace()
        key = store.key("cut_out", 0, 30.0)
        store.put(key, trace)
        self._corrupt(store, key)
        assert store.get(key) is None
        store.put(key, trace)  # re-simulation records over the damage
        loaded = store.get(key)
        assert loaded is not None
        assert trace_arrays_equal(
            TraceArrays.from_trace(trace), TraceArrays.from_trace(loaded)
        )
        loaded.close()


class TestRenameRace:
    def test_loser_reuses_winner(self, store):
        """Two recorders stage the same key; the loser keeps the winner."""
        key = store.key("cut_out", 0, 30.0)
        winner_trace = synthetic_trace(n_steps=41)
        loser_trace = synthetic_trace(n_steps=41)

        final = store.bundle_dir(key)
        final.parent.mkdir(parents=True, exist_ok=True)
        staging = final.parent / f"{final.name}.tmp-test-loser"
        store._write_bundle(
            staging, key, TraceArrays.from_trace(loser_trace)
        )
        # The other recorder commits first.
        store.put(key, winner_trace)
        marker = json.loads((final / "meta.json").read_text())
        store._commit(staging, final)
        # The winner's bundle survived the losing commit untouched.
        assert json.loads((final / "meta.json").read_text()) == marker
        assert store.get(key) is not None

    def test_commit_replaces_unverifiable_existing_bundle(self, store):
        key = store.key("cut_out", 0, 30.0)
        trace = synthetic_trace()
        store.put(key, trace)
        bundle = store.bundle_dir(key)
        (bundle / "meta.json").write_text("{}")
        staging = bundle.parent / f"{bundle.name}.tmp-test-replace"
        store._write_bundle(staging, key, TraceArrays.from_trace(trace))
        store._commit(staging, bundle)
        assert store.get(key) is not None


class TestIndex:
    def test_keys_enumerates_recorded_cells(self, store):
        for seed in (2, 0, 1):
            store.put(
                store.key("cut_out", seed, 30.0), synthetic_trace(seed=seed)
            )
        assert [key.cell for key in store.keys()] == [
            ("cut_out", 0, 30.0),
            ("cut_out", 1, 30.0),
            ("cut_out", 2, 30.0),
        ]

    def test_duplicate_index_lines_dedupe(self, store):
        key = store.key("cut_out", 0, 30.0)
        store.put(key, synthetic_trace())
        store._append_index(key)  # a second recorder logged it too
        assert len(store.keys()) == 1

    def test_rebuild_index_recovers_orphans(self, store):
        for seed in range(3):
            store.put(
                store.key("cut_out", seed, 30.0), synthetic_trace(seed=seed)
            )
        store.index_path.unlink()
        assert store.keys() == []
        assert store.rebuild_index() == 3
        assert len(store.keys()) == 3

    def test_torn_index_line_is_skipped(self, store):
        store.put(store.key("cut_out", 0, 30.0), synthetic_trace())
        with store.index_path.open("a") as handle:
            handle.write('{"key": {"scenario"')  # torn tail, no newline
        assert len(store.keys()) == 1


class TestColumnarClose:
    def test_close_releases_columns(self, store):
        key = store.key("cut_out", 0, 30.0)
        store.put(key, synthetic_trace())
        trace = store.get(key)
        trace.ego_trajectory()
        trace.close()
        with pytest.raises(TraceError, match="closed"):
            trace.ego_trajectory()
        with pytest.raises(TraceError, match="closed"):
            _ = trace.columns
        trace.close()  # idempotent

    def test_scalars_survive_close(self, store):
        key = store.key("cut_out", 0, 30.0)
        store.put(key, synthetic_trace())
        trace = store.get(key)
        duration = trace.duration
        trace.close()
        assert trace.scenario == "cut_out"
        assert trace.nominal_fpr == 30.0
        assert duration > 0.0


class TestFdBudget:
    def test_fifty_warm_cells_keep_fd_count_flat(self, store):
        """Satellite regression: a warm pass must not leak handles.

        Every cell opens a bundle's memmaps; without the deterministic
        ``close()`` in the runner's ``finally`` the FD count grows per
        cell until the campaign dies on EMFILE.
        """
        for seed in range(50):
            store.put(
                store.key("cut_out", seed, 30.0), synthetic_trace(seed=seed)
            )
        specs = [
            RunSpec(
                index=seed,
                scenario="cut_out",
                seed=seed,
                fpr=30.0,
                variant="default",
                params=None,
                stride=0.5,
                provisioned_fpr=30.0,
                cameras=ANALYZED_CAMERAS,
            )
            for seed in range(50)
        ]
        fd_dir = Path("/proc/self/fd")
        if not fd_dir.is_dir():
            pytest.skip("no /proc fd accounting on this platform")
        # Warm up imports/caches so lazy module loads don't count.
        assert execute_cell([specs[0]], store=store)[0].ok
        before = len(os.listdir(fd_dir))
        for spec in specs:
            summaries = execute_cell([spec], store=store)
            assert summaries[0].ok, summaries[0].error
        after = len(os.listdir(fd_dir))
        assert after - before <= 2, f"fd leak: {before} -> {after}"
