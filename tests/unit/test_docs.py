"""Documentation stays honest: fences parse, links resolve.

Mirrors the CI docs smoke job (``tools/check_doc_fences.py``) inside
tier-1, so a syntax error in a copy-pasteable example or a dangling
docs link fails locally too.
"""

import re
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_doc_fences  # noqa: E402


def test_doc_files_exist():
    assert (REPO_ROOT / "docs" / "ARCHITECTURE.md").exists()
    assert (REPO_ROOT / "docs" / "CAMPAIGNS.md").exists()


def test_readme_links_docs():
    readme = (REPO_ROOT / "README.md").read_text()
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/CAMPAIGNS.md" in readme


@pytest.mark.parametrize(
    "path",
    check_doc_fences.doc_files(REPO_ROOT),
    ids=lambda p: p.name,
)
def test_fences_parse(path):
    errors = check_doc_fences.check_file(path)
    assert not errors, "\n".join(errors)


def test_relative_markdown_links_resolve():
    pattern = re.compile(r"\]\((?!https?://|#)([^)]+?)(?:#[^)]*)?\)")
    for path in check_doc_fences.doc_files(REPO_ROOT):
        for target in pattern.findall(path.read_text()):
            resolved = (path.parent / target).resolve()
            assert resolved.exists(), f"{path.name} links missing {target}"


def test_fence_extraction_sees_the_examples():
    # Guard against a regex regression silently checking zero fences.
    campaigns = (REPO_ROOT / "docs" / "CAMPAIGNS.md").read_text()
    fences = check_doc_fences.extract_fences(campaigns)
    langs = [lang for lang, _, _ in fences]
    assert langs.count("python") >= 2
    assert langs.count("bash") >= 2
    assert langs.count("json") >= 3
