"""Equation 4 — multi-trajectory aggregation."""

import pytest

from repro.core.aggregation import (
    MaxAggregator,
    MeanAggregator,
    PercentileAggregator,
    aggregate_latencies,
)
from repro.errors import EstimationError


class TestMaxAggregator:
    def test_picks_most_demanding(self):
        assert MaxAggregator().aggregate([0.5, 0.2, 0.9]) == 0.2

    def test_single_value(self):
        assert MaxAggregator().aggregate([0.4]) == 0.4

    def test_unavoidable_dominates(self):
        assert MaxAggregator().aggregate([0.5, 0.0]) == 0.0


class TestMeanAggregator:
    def test_uniform_mean(self):
        assert MeanAggregator().aggregate([0.2, 0.4]) == pytest.approx(0.3)

    def test_weighted_mean(self):
        value = MeanAggregator().aggregate([0.2, 0.8], [0.75, 0.25])
        assert value == pytest.approx(0.35)

    def test_weights_normalized(self):
        a = MeanAggregator().aggregate([0.2, 0.8], [3.0, 1.0])
        b = MeanAggregator().aggregate([0.2, 0.8], [0.75, 0.25])
        assert a == pytest.approx(b)


class TestPercentileAggregator:
    def test_99th_with_many_trajectories(self):
        # 200 uniform latencies: PR99 lands near (but not at) the worst.
        latencies = [i / 200.0 for i in range(1, 201)]
        value = PercentileAggregator(99.0).aggregate(latencies)
        assert 0.005 < value <= 0.02

    def test_100_is_most_pessimistic(self):
        assert PercentileAggregator(100.0).aggregate([0.3, 0.1, 0.9]) == 0.1

    def test_0_is_most_permissive(self):
        assert PercentileAggregator(0.0).aggregate([0.3, 0.1, 0.9]) == 0.9

    def test_90_skips_10pct_extreme(self):
        # A hard-brake hypothesis carrying exactly 10% probability is
        # excluded at n=90 (exclusive convention).
        value = PercentileAggregator(90.0).aggregate(
            [0.05, 0.4, 0.6], [0.1, 0.6, 0.3]
        )
        assert value == 0.4

    def test_99_keeps_10pct_extreme(self):
        value = PercentileAggregator(99.0).aggregate(
            [0.05, 0.4, 0.6], [0.1, 0.6, 0.3]
        )
        assert value == 0.05

    def test_rejects_out_of_range(self):
        with pytest.raises(EstimationError):
            PercentileAggregator(101.0)


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(EstimationError):
            MaxAggregator().aggregate([])

    def test_negative_latency_rejected(self):
        with pytest.raises(EstimationError):
            MeanAggregator().aggregate([-0.1])

    def test_mismatched_weights_rejected(self):
        with pytest.raises(EstimationError):
            MeanAggregator().aggregate([0.1, 0.2], [1.0])

    def test_all_zero_weights_rejected(self):
        with pytest.raises(EstimationError):
            MeanAggregator().aggregate([0.1, 0.2], [0.0, 0.0])

    def test_negative_weight_rejected(self):
        with pytest.raises(EstimationError):
            MeanAggregator().aggregate([0.1, 0.2], [1.0, -0.5])


class TestConvenienceWrapper:
    def test_default_is_percentile(self):
        latencies = [0.1, 0.5, 0.9]
        assert aggregate_latencies(latencies) == PercentileAggregator().aggregate(
            latencies
        )

    def test_custom_aggregator(self):
        assert aggregate_latencies([0.1, 0.9], aggregator=MaxAggregator()) == 0.1


class TestAggregateRows:
    """The vectorized Equation 4 path equals the scalar reductions."""

    def rows(self):
        import numpy as np

        latencies = np.array([[0.4, 0.1, 1.0], [0.2, 0.9, 0.5]])
        probabilities = np.array([[0.5, 0.3, 0.2], [0.6, 0.2, 0.2]])
        active = np.array([[True, True, True], [True, False, True]])
        return latencies, probabilities, active

    @pytest.mark.parametrize(
        "aggregator",
        [MaxAggregator(), MeanAggregator(), PercentileAggregator(90.0)],
        ids=["max", "mean", "percentile"],
    )
    def test_matches_scalar_per_row(self, aggregator):
        latencies, probabilities, active = self.rows()
        out = aggregator.aggregate_rows(latencies, probabilities, active)
        for r in range(latencies.shape[0]):
            ls = [float(l) for l, a in zip(latencies[r], active[r]) if a]
            ps = [float(p) for p, a in zip(probabilities[r], active[r]) if a]
            assert out[r] == aggregator.aggregate(ls, ps)

    def test_rejects_empty_rows(self):
        import numpy as np

        latencies, probabilities, active = self.rows()
        active = np.zeros_like(active)
        with pytest.raises(EstimationError):
            PercentileAggregator().aggregate_rows(
                latencies, probabilities, active
            )

    def test_rejects_negative_values(self):
        import numpy as np

        latencies, probabilities, active = self.rows()
        with pytest.raises(EstimationError):
            PercentileAggregator().aggregate_rows(
                -latencies, probabilities, active
            )
        with pytest.raises(EstimationError):
            PercentileAggregator().aggregate_rows(
                latencies, -probabilities, active
            )

    def test_rejects_misaligned_shapes(self):
        import numpy as np

        latencies, probabilities, active = self.rows()
        with pytest.raises(EstimationError):
            MaxAggregator().aggregate_rows(
                latencies[:, :2], probabilities, active
            )

    def test_rejects_zero_probability_rows(self):
        import numpy as np

        latencies, probabilities, active = self.rows()
        with pytest.raises(EstimationError):
            MeanAggregator().aggregate_rows(
                latencies, np.zeros_like(probabilities), active
            )
