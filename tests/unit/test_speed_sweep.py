"""The speed-sweep catalog expander."""

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    DEFAULT_SWEEP_SPEEDS,
    SCENARIO_NAMES,
    SCENARIOS,
    build_scenario,
    speed_sweep,
)


@pytest.fixture(scope="module")
def sweep_names() -> list[str]:
    return speed_sweep()


class TestExpansion:
    def test_names_unique(self, sweep_names):
        assert len(sweep_names) == len(set(sweep_names))
        assert len(sweep_names) == 2 * len(DEFAULT_SWEEP_SPEEDS)

    def test_names_registered(self, sweep_names):
        for name in sweep_names:
            assert name in SCENARIOS

    def test_idempotent(self, sweep_names):
        before = len(SCENARIOS)
        assert speed_sweep() == sweep_names
        assert len(SCENARIOS) == before

    def test_does_not_shadow_table1_names(self, sweep_names):
        assert not set(sweep_names) & set(SCENARIO_NAMES)

    def test_specs_buildable(self, sweep_names):
        for name in sweep_names:
            built = build_scenario(name, seed=3)
            state = built.ego_initial_state()
            assert state.speed == pytest.approx(built.ego_speed)
            actors = built.build_actors()
            assert actors, name
            ids = [actor.actor_id for actor in actors]
            assert len(ids) == len(set(ids))

    def test_speed_encoded_in_spec(self, sweep_names):
        assert SCENARIOS["cut_out_50mph"].ego_speed_mph == 50.0
        assert SCENARIOS["cut_in_20mph"].ego_speed_mph == 20.0

    def test_same_seed_same_choreography(self, sweep_names):
        first = build_scenario("cut_out_60mph", seed=5).build_actors()
        second = build_scenario("cut_out_60mph", seed=5).build_actors()
        assert [a.station for a in first] == [a.station for a in second]


class TestEnsureScenario:
    """Sweep names carry their own recipe and re-derive on demand.

    This is what keeps spawn-start-method campaign workers and fresh
    processes reloading a campaign JSONL working: their registries have
    never seen the parent's ``speed_sweep()`` call.
    """

    def test_derives_unregistered_custom_speed(self):
        from repro.scenarios.catalog import ensure_scenario

        # 23.5 mph is in no default sweep, so no other test registered it.
        assert "cut_out_23.5mph" not in SCENARIOS
        assert ensure_scenario("cut_out_23.5mph")
        assert SCENARIOS["cut_out_23.5mph"].ego_speed_mph == 23.5

    def test_build_scenario_accepts_underived_variant(self):
        built = build_scenario("cut_in_33mph", seed=0)
        assert built.spec.ego_speed_mph == 33.0

    def test_rejects_non_sweep_names(self):
        from repro.scenarios.catalog import ensure_scenario

        assert not ensure_scenario("warp")
        assert not ensure_scenario("cut_out_mph")
        assert not ensure_scenario("teleport_30mph")


class TestValidation:
    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError):
            speed_sweep(families=("teleport",))

    def test_non_positive_speed_rejected(self):
        with pytest.raises(ConfigurationError):
            speed_sweep(speeds_mph=(0.0,))
