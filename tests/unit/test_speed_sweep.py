"""The speed-sweep catalog expander."""

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    DEFAULT_SWEEP_SPEEDS,
    SCENARIO_NAMES,
    SCENARIOS,
    build_scenario,
    speed_sweep,
)


@pytest.fixture(scope="module")
def sweep_names() -> list[str]:
    return speed_sweep()


class TestExpansion:
    def test_names_unique(self, sweep_names):
        assert len(sweep_names) == len(set(sweep_names))
        assert len(sweep_names) == 2 * len(DEFAULT_SWEEP_SPEEDS)

    def test_names_registered(self, sweep_names):
        for name in sweep_names:
            assert name in SCENARIOS

    def test_idempotent(self, sweep_names):
        before = len(SCENARIOS)
        assert speed_sweep() == sweep_names
        assert len(SCENARIOS) == before

    def test_does_not_shadow_table1_names(self, sweep_names):
        assert not set(sweep_names) & set(SCENARIO_NAMES)

    def test_specs_buildable(self, sweep_names):
        for name in sweep_names:
            built = build_scenario(name, seed=3)
            state = built.ego_initial_state()
            assert state.speed == pytest.approx(built.ego_speed)
            actors = built.build_actors()
            assert actors, name
            ids = [actor.actor_id for actor in actors]
            assert len(ids) == len(set(ids))

    def test_speed_encoded_in_spec(self, sweep_names):
        assert SCENARIOS["cut_out_50mph"].ego_speed_mph == 50.0
        assert SCENARIOS["cut_in_20mph"].ego_speed_mph == 20.0

    def test_same_seed_same_choreography(self, sweep_names):
        first = build_scenario("cut_out_60mph", seed=5).build_actors()
        second = build_scenario("cut_out_60mph", seed=5).build_actors()
        assert [a.station for a in first] == [a.station for a in second]


class TestEnsureScenario:
    """Sweep names carry their own recipe and re-derive on demand.

    This is what keeps spawn-start-method campaign workers and fresh
    processes reloading a campaign JSONL working: their registries have
    never seen the parent's ``speed_sweep()`` call.
    """

    def test_derives_unregistered_custom_speed(self):
        from repro.scenarios.catalog import ensure_scenario

        # 23.5 mph is in no default sweep, so no other test registered it.
        assert "cut_out_23.5mph" not in SCENARIOS
        assert ensure_scenario("cut_out_23.5mph")
        assert SCENARIOS["cut_out_23.5mph"].ego_speed_mph == 23.5

    def test_build_scenario_accepts_underived_variant(self):
        built = build_scenario("cut_in_33mph", seed=0)
        assert built.spec.ego_speed_mph == 33.0

    def test_rejects_non_sweep_names(self):
        from repro.scenarios.catalog import ensure_scenario

        assert not ensure_scenario("warp")
        assert not ensure_scenario("cut_out_mph")
        assert not ensure_scenario("teleport_30mph")


class TestValidation:
    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError):
            speed_sweep(families=("teleport",))

    def test_non_positive_speed_rejected(self):
        with pytest.raises(ConfigurationError):
            speed_sweep(speeds_mph=(0.0,))


class TestVehicleFollowingFamily:
    def test_family_registers(self):
        names = speed_sweep(
            speeds_mph=(30.0, 60.0), families=("vehicle_following",)
        )
        assert names == [
            "vehicle_following_30mph",
            "vehicle_following_60mph",
        ]
        for name in names:
            assert name in SCENARIOS
            assert SCENARIOS[name].activity == {
                "front": True,
                "right": False,
                "left": False,
            }

    def test_variant_buildable_with_scaled_gap(self):
        speed_sweep(speeds_mph=(30.0,), families=("vehicle_following",))
        built = build_scenario("vehicle_following_30mph", seed=1)
        actors = built.build_actors()
        assert [a.actor_id for a in actors] == ["lead"]
        # The 50 m baseline gap shrinks with the 30/70 speed ratio.
        gap = actors[0].station - SCENARIOS["vehicle_following_30mph"].ego_station
        assert 15.0 < gap < 30.0

    def test_ensure_scenario_derives_it(self):
        from repro.scenarios.catalog import ensure_scenario

        assert "vehicle_following_23mph" not in SCENARIOS
        assert ensure_scenario("vehicle_following_23mph")
        assert SCENARIOS["vehicle_following_23mph"].ego_speed_mph == 23.0


class TestDensitySweep:
    def test_default_registration(self):
        from repro.scenarios import DEFAULT_DENSITY_COUNTS, density_sweep

        names = density_sweep()
        # Four sweepable families: the three straight-road Table 1
        # bases plus the curved cut-in.
        assert len(names) == 4 * len(DEFAULT_DENSITY_COUNTS)
        assert "cut_in_dense4" in names
        assert "challenging_cut_in_curved_dense8" in names
        for name in names:
            assert name in SCENARIOS

    def test_idempotent(self):
        from repro.scenarios import density_sweep

        first = density_sweep()
        before = len(SCENARIOS)
        assert density_sweep() == first
        assert len(SCENARIOS) == before

    def test_background_actor_count_and_determinism(self):
        from repro.scenarios import density_sweep

        density_sweep(counts=(6,), families=("cut_in",))
        built = build_scenario("cut_in_dense6", seed=2)
        actors = built.build_actors()
        backgrounds = [
            a for a in actors if a.actor_id.startswith("background_")
        ]
        assert len(backgrounds) == 6
        ids = [a.actor_id for a in actors]
        assert len(ids) == len(set(ids))
        again = build_scenario("cut_in_dense6", seed=2).build_actors()
        assert [a.station for a in actors] == [a.station for a in again]

    def test_queue_is_stopped_and_in_ego_lane(self):
        from repro.scenarios import density_sweep

        density_sweep(counts=(4,), families=("vehicle_following",))
        built = build_scenario("vehicle_following_dense4", seed=0)
        spec = SCENARIOS["vehicle_following_dense4"]
        queue = [
            a
            for a in built.build_actors()
            if a.actor_id.startswith("background_") and a.speed == 0.0
        ]
        assert len(queue) == 2  # even indices of 4
        for actor in queue:
            assert actor.lane == spec.ego_lane
            assert actor.station > spec.ego_station + 400.0

    def test_ensure_scenario_derives_density_names(self):
        from repro.scenarios.catalog import ensure_scenario

        assert "cut_out_dense3" not in SCENARIOS
        assert ensure_scenario("cut_out_dense3")
        assert not ensure_scenario("cut_out_dense")
        assert not ensure_scenario("warp_dense4")

    def test_validation(self):
        from repro.scenarios import density_sweep

        with pytest.raises(ConfigurationError):
            density_sweep(families=("teleport",))
        with pytest.raises(ConfigurationError):
            density_sweep(counts=(0,))
