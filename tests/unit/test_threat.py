"""Threat extraction: fixed gaps, trajectory threats, lateral gating."""

import numpy as np
import pytest

from repro.core.parameters import ZhuyiParams
from repro.core.threat import FixedGapThreat, ThreatAssessor, TrajectoryThreat
from repro.dynamics.state import (
    StateTrajectory,
    TimedState,
    VehicleSpec,
    VehicleState,
)
from repro.errors import EstimationError
from repro.geometry.vec import Vec2


def vstate(x: float, y: float = 0.0, speed: float = 10.0,
           heading: float = 0.0) -> VehicleState:
    return VehicleState(Vec2(x, y), heading, speed, 0.0)


def straight_trajectory(x0: float, y: float, speed: float,
                        duration: float = 10.0) -> StateTrajectory:
    return StateTrajectory(
        TimedState(t, vstate(x0 + speed * t, y, speed))
        for t in np.arange(0.0, duration + 0.25, 0.25)
    )


class TestFixedGapThreat:
    def test_constant_queries(self):
        threat = FixedGapThreat(gap=30.0, actor_speed=5.0)
        assert threat.gap_at(0.0) == 30.0
        assert threat.gap_at(100.0) == 30.0
        assert threat.actor_speed_at(42.0) == 5.0

    def test_vectorized_matches_scalar(self):
        threat = FixedGapThreat(gap=30.0, actor_speed=5.0)
        gaps, speeds = threat.sample(np.array([0.0, 1.0, 2.0]))
        assert np.allclose(gaps, 30.0)
        assert np.allclose(speeds, 5.0)

    def test_rejects_negative_gap(self):
        with pytest.raises(EstimationError):
            FixedGapThreat(gap=-1.0, actor_speed=0.0)

    def test_rejects_negative_speed(self):
        with pytest.raises(EstimationError):
            FixedGapThreat(gap=1.0, actor_speed=-1.0)


class TestTrajectoryThreat:
    def setup_method(self):
        self.spec = VehicleSpec(length=4.8)
        self.ego = vstate(0.0, speed=20.0)

    def test_gap_subtracts_half_lengths(self):
        trajectory = straight_trajectory(50.0, 0.0, speed=0.0)
        threat = TrajectoryThreat(self.ego, self.spec, trajectory, self.spec)
        assert threat.gap_at(0.0) == pytest.approx(50.0 - 4.8)

    def test_gap_grows_with_receding_actor(self):
        trajectory = straight_trajectory(50.0, 0.0, speed=10.0)
        threat = TrajectoryThreat(self.ego, self.spec, trajectory, self.spec)
        assert threat.gap_at(2.0) == pytest.approx(70.0 - 4.8)

    def test_gap_never_negative(self):
        trajectory = straight_trajectory(1.0, 0.0, speed=0.0)
        threat = TrajectoryThreat(self.ego, self.spec, trajectory, self.spec)
        assert threat.gap_at(0.0) == 0.0

    def test_speed_query(self):
        trajectory = straight_trajectory(50.0, 0.0, speed=7.5)
        threat = TrajectoryThreat(self.ego, self.spec, trajectory, self.spec)
        assert threat.actor_speed_at(1.0) == pytest.approx(7.5)

    def test_t0_offset(self):
        trajectory = straight_trajectory(50.0, 0.0, speed=10.0)
        threat = TrajectoryThreat(
            self.ego, self.spec, trajectory, self.spec, t0=2.0
        )
        # Relative t=0 is absolute t=2: actor at 70.
        assert threat.gap_at(0.0) == pytest.approx(70.0 - 4.8)

    def test_coasts_past_prediction_end(self):
        trajectory = straight_trajectory(50.0, 0.0, speed=10.0, duration=2.0)
        threat = TrajectoryThreat(self.ego, self.spec, trajectory, self.spec)
        # At t=5 the record ends at x=70; coasting adds 3 s * 10 m/s.
        assert threat.gap_at(5.0) == pytest.approx(100.0 - 4.8)

    def test_vectorized_matches_scalar(self):
        trajectory = straight_trajectory(50.0, 1.0, speed=4.0, duration=3.0)
        threat = TrajectoryThreat(self.ego, self.spec, trajectory, self.spec)
        times = np.array([0.0, 0.5, 2.9, 3.5, 8.0])
        gaps, speeds = threat.sample(times)
        for i, t in enumerate(times):
            assert gaps[i] == pytest.approx(threat.gap_at(float(t)))
            assert speeds[i] == pytest.approx(threat.actor_speed_at(float(t)))


class TestThreatAssessorGating:
    def setup_method(self):
        self.params = ZhuyiParams()
        self.assessor = ThreatAssessor(params=self.params)
        self.spec = VehicleSpec()
        self.ego = vstate(0.0, 0.0, speed=20.0)

    def test_lead_in_lane_is_threat(self):
        trajectory = straight_trajectory(40.0, 0.0, speed=15.0)
        assert self.assessor.assess(
            self.ego, self.spec, trajectory, self.spec
        ) is not None

    def test_adjacent_lane_actor_gated_out(self):
        trajectory = straight_trajectory(40.0, 3.5, speed=15.0)
        assert self.assessor.assess(
            self.ego, self.spec, trajectory, self.spec
        ) is None

    def test_behind_actor_gated_out(self):
        trajectory = straight_trajectory(-20.0, 0.0, speed=25.0)
        assert self.assessor.assess(
            self.ego, self.spec, trajectory, self.spec
        ) is None

    def test_cut_in_actor_is_threat(self):
        # Starts in the adjacent lane, merges into the ego lane at t=2-4.
        samples = []
        for t in np.arange(0.0, 8.25, 0.25):
            if t < 2.0:
                y = 3.5
            elif t < 4.0:
                y = 3.5 * (1.0 - (t - 2.0) / 2.0)
            else:
                y = 0.0
            samples.append(TimedState(t, vstate(40.0 + 15.0 * t, y, 15.0)))
        trajectory = StateTrajectory(samples)
        assert self.assessor.assess(
            self.ego, self.spec, trajectory, self.spec
        ) is not None

    def test_cut_in_beyond_horizon_gated_out(self):
        # Merge starts after the assessor's horizon: not yet a threat.
        params = ZhuyiParams(horizon=3.0)
        assessor = ThreatAssessor(params=params)
        samples = []
        for t in np.arange(0.0, 12.25, 0.25):
            y = 3.5 if t < 10.0 else 0.0
            samples.append(TimedState(t, vstate(40.0 + 15.0 * t, y, 15.0)))
        trajectory = StateTrajectory(samples)
        assert assessor.assess(self.ego, self.spec, trajectory, self.spec) is None

    def test_gating_disabled_includes_everything(self):
        params = ZhuyiParams(gate_lateral=False)
        assessor = ThreatAssessor(params=params)
        trajectory = straight_trajectory(40.0, 3.5, speed=15.0)
        assert assessor.assess(
            self.ego, self.spec, trajectory, self.spec
        ) is not None

    def test_faster_follower_in_lane_gated_out(self):
        # The front_right_activity_1 regression: a faster actor behind the
        # ego crosses the ego's *original* position but can never be hit
        # by a braking ego.
        trajectory = straight_trajectory(-30.0, 0.0, speed=25.0)
        assert self.assessor.assess(
            self.ego, self.spec, trajectory, self.spec
        ) is None

    def test_abeam_actor_in_other_lane_gated_out(self):
        trajectory = straight_trajectory(1.0, 3.5, speed=20.0)
        assert self.assessor.assess(
            self.ego, self.spec, trajectory, self.spec
        ) is None


class TestSampleGrid:
    def test_shape_preserved(self):
        from repro.core.threat import sample_grid

        threat = FixedGapThreat(gap=12.0, actor_speed=3.0)
        times = np.linspace(0.0, 4.0, 12).reshape(3, 4)
        gaps, speeds = sample_grid(threat, times)
        assert gaps.shape == (3, 4) and speeds.shape == (3, 4)
        assert np.all(gaps == 12.0) and np.all(speeds == 3.0)

    def test_matches_flat_sample(self):
        from repro.core.threat import sample_grid

        spec = VehicleSpec()
        trajectory = straight_trajectory(30.0, 0.0, speed=8.0)
        threat = TrajectoryThreat(vstate(0.0), spec, trajectory, spec)
        times = np.linspace(0.0, 6.0, 10).reshape(2, 5)
        gaps, speeds = sample_grid(threat, times)
        flat_gaps, flat_speeds = threat.sample(times.ravel())
        assert np.array_equal(gaps.ravel(), flat_gaps)
        assert np.array_equal(speeds.ravel(), flat_speeds)


class TestTraceGate:
    """could_collide_trace == the per-tick gate, every tick."""

    spec = VehicleSpec()

    def _states(self, times):
        return [vstate(20.0 * t, 0.0, speed=20.0) for t in times]

    @pytest.mark.parametrize("lane_y", [0.0, 3.5])
    def test_matches_per_tick_assess(self, lane_y):
        from repro.road.track import three_lane_straight_road

        road = three_lane_straight_road(length=1500.0)
        assessor = ThreatAssessor(params=ZhuyiParams(), road=road)
        trajectory = straight_trajectory(60.0, lane_y, speed=4.0, duration=20.0)
        times = np.arange(0.0, 18.0, 0.4)
        ego_states = self._states(times)
        table = assessor.could_collide_trace(
            ego_states, self.spec, trajectory, self.spec, times
        )
        for state, t0, verdict in zip(ego_states, times, table):
            per_tick = (
                assessor.assess(
                    state, self.spec, trajectory, self.spec, t0=float(t0)
                )
                is not None
            )
            assert per_tick == bool(verdict), t0

    def test_gate_disabled_all_true(self):
        assessor = ThreatAssessor(params=ZhuyiParams(gate_lateral=False))
        trajectory = straight_trajectory(60.0, 0.0, speed=4.0)
        times = np.arange(0.0, 3.0, 0.5)
        table = assessor.could_collide_trace(
            self._states(times), self.spec, trajectory, self.spec, times
        )
        assert table.all()


class TestTraceSampler:
    """sample_threats_trace == per-tick TrajectoryThreat.sample, bit for bit."""

    spec = VehicleSpec()

    def test_matches_per_tick_threats(self):
        from repro.road.track import three_lane_straight_road

        road = three_lane_straight_road(length=1500.0)
        assessor = ThreatAssessor(params=ZhuyiParams(), road=road)
        # A cut-in-ish trajectory: starts in the next lane, merges.
        samples = []
        for t in np.arange(0.0, 15.25, 0.25):
            y = max(0.0, 3.5 - 0.5 * t)
            samples.append(TimedState(float(t), vstate(50.0 + 6.0 * t, y, 6.0)))
        trajectory = StateTrajectory(samples)
        t0s = np.arange(0.0, 12.0, 0.8)
        ego_states = [vstate(5.0 * t, 0.0, speed=5.0) for t in t0s]
        rel_times = np.arange(0.0, 9.0, 0.037)

        gaps, speeds = assessor.sample_threats_trace(
            ego_states, self.spec, trajectory, self.spec, t0s, rel_times
        )
        for n, (state, t0) in enumerate(zip(ego_states, t0s)):
            threat = assessor.build_threat(
                state, self.spec, trajectory, self.spec, t0=float(t0)
            )
            tick_gaps, tick_speeds = threat.sample(rel_times)
            assert np.array_equal(gaps[n], tick_gaps), t0
            assert np.array_equal(speeds[n], tick_speeds), t0

    def test_requires_road_when_gated(self):
        assessor = ThreatAssessor(params=ZhuyiParams(), road=None)
        trajectory = straight_trajectory(30.0, 0.0, speed=5.0)
        with pytest.raises(EstimationError):
            assessor.sample_threats_trace(
                [vstate(0.0)], self.spec, trajectory, self.spec,
                np.array([0.0]), np.array([0.0, 0.1]),
            )

    def test_gate_disabled_skips_corridor(self):
        assessor = ThreatAssessor(params=ZhuyiParams(gate_lateral=False))
        trajectory = straight_trajectory(30.0, 0.0, speed=5.0)
        t0s = np.array([0.0, 1.0])
        rel = np.arange(0.0, 2.0, 0.5)
        gaps, speeds = assessor.sample_threats_trace(
            [vstate(0.0), vstate(5.0)], self.spec, trajectory, self.spec,
            t0s, rel,
        )
        assert gaps.shape == (2, rel.size)
        assert np.isfinite(gaps).all()


class TestCorridorMaskQuantization:
    """The 10 ms master-grid contract of the corridor mask.

    ``TrajectoryThreat._corridor_mask`` evaluates the lateral geometry
    once on a fixed 10 ms grid; every query — however far off-grid — is
    answered by the nearest grid sample without re-evaluating anything.
    """

    def _cut_in_threat(self) -> TrajectoryThreat:
        # The actor slides from the adjacent lane into the ego's lane,
        # so the corridor mask flips from clear to overlapping somewhere
        # along the master grid.
        trajectory = StateTrajectory(
            TimedState(
                t, vstate(30.0 + 5.0 * t, max(0.0, 4.0 - 0.8 * t), speed=5.0)
            )
            for t in np.arange(0.0, 10.0 + 0.25, 0.25)
        )
        assessor = ThreatAssessor(params=ZhuyiParams(), road=None)
        return assessor.build_threat(
            vstate(0.0, speed=20.0), VehicleSpec(), trajectory, VehicleSpec()
        )

    def _corridor_states(self, threat, times: np.ndarray) -> np.ndarray:
        gaps, _ = threat.sample(times)
        return np.isinf(gaps)

    def test_off_grid_queries_snap_to_nearest_grid_sample(self):
        threat = self._cut_in_threat()
        off_grid = np.array([0.1234, 1.0049, 2.5551, 4.4444, 7.7777])
        snapped = np.rint(off_grid / 0.01) * 0.01
        assert np.array_equal(
            self._corridor_states(threat, off_grid),
            self._corridor_states(threat, snapped),
        )

    def test_rounding_picks_the_nearest_neighbour_at_a_flip(self):
        threat = self._cut_in_threat()
        grid = np.arange(0.0, 10.0, 0.01)
        states = self._corridor_states(threat, grid)
        flips = np.flatnonzero(states[1:] != states[:-1])
        assert flips.size, "the cut-in must cross the corridor edge"
        boundary = float(grid[flips[0] + 1])
        # 4 ms before the flip sample rounds onto it; 6 ms before rounds
        # back onto the previous sample.
        assert self._corridor_states(threat, np.array([boundary - 0.004]))[
            0
        ] == states[flips[0] + 1]
        assert self._corridor_states(threat, np.array([boundary - 0.006]))[
            0
        ] == states[flips[0]]

    def test_queries_outside_the_span_clamp_to_the_grid_ends(self):
        threat = self._cut_in_threat()
        assert self._corridor_states(threat, np.array([-0.5]))[
            0
        ] == self._corridor_states(threat, np.array([0.0]))[0]
        assert self._corridor_states(threat, np.array([80.0]))[
            0
        ] == self._corridor_states(threat, np.array([24.99]))[0]

    def test_mask_is_built_once_and_never_rebuilt(self):
        threat = self._cut_in_threat()
        trajectory = threat._trajectory
        calls = {"count": 0}
        original = trajectory.sample_extrapolated

        def counting(times):
            calls["count"] += 1
            return original(times)

        trajectory.sample_extrapolated = counting
        threat.sample(np.array([0.0, 0.107]))
        # One interpolation for the query itself, one for the mask grid.
        assert calls["count"] == 2
        threat.sample(np.array([0.0037]))  # off-grid
        threat.sample(np.array([19.99]))  # off-grid, near the span end
        # Only the per-query interpolations; the mask was not rebuilt.
        assert calls["count"] == 4


class TestFuturesBatch:
    """could_collide_futures / sample_threat_futures vs per-tick threats.

    The futures batch serves the batched replay: row n carries the
    actor's *predicted* trajectory as of tick n. Against per-tick
    trajectories that differ row to row, the batch must reproduce the
    per-tick assess/sample arithmetic exactly.
    """

    def rollout_rows(self, trajectories):
        from repro.dynamics.state import RolloutArrays

        knots = [trajectory.knot_arrays() for trajectory in trajectories]
        return RolloutArrays(
            times=np.stack([k[0] for k in knots]),
            xs=np.stack([k[1] for k in knots]),
            ys=np.stack([k[2] for k in knots]),
            speeds=np.stack([k[3] for k in knots]),
            end_vx=np.array([k[4][0] for k in knots]),
            end_vy=np.array([k[4][1] for k in knots]),
        )

    def per_tick_setup(self, road=None):
        from repro.road.track import three_lane_straight_road

        params = ZhuyiParams()
        assessor = ThreatAssessor(
            params=params,
            road=three_lane_straight_road() if road else None,
        )
        t0s = np.array([0.0, 0.5, 1.0, 1.5])
        ego_states = [vstate(5.0 * t, 0.0, speed=20.0) for t in t0s]
        # A different predicted future per tick: a lead pulling away,
        # a crosser, a parallel-lane actor and a receding actor.
        trajectories = [
            straight_trajectory(40.0 + 3.0 * i, y, 12.0 + i, duration=6.0)
            for i, y in enumerate((0.0, 1.5, 5.0, 0.5))
        ]
        return params, assessor, t0s, ego_states, trajectories

    def test_gate_matches_per_tick_assess(self):
        spec = VehicleSpec()
        for with_road in (False, True):
            params, assessor, t0s, ego_states, trajectories = (
                self.per_tick_setup(road=with_road)
            )
            batch = assessor.could_collide_futures(
                ego_states, spec, self.rollout_rows(trajectories), spec, t0s
            )
            for i in range(len(t0s)):
                per_tick = (
                    assessor.assess(
                        ego_states[i],
                        spec,
                        trajectories[i],
                        spec,
                        t0=float(t0s[i]),
                    )
                    is not None
                )
                assert bool(batch[i]) == per_tick, (with_road, i)

    def test_gate_all_true_without_lateral_gating(self):
        spec = VehicleSpec()
        params, _, t0s, ego_states, trajectories = self.per_tick_setup()
        assessor = ThreatAssessor(
            params=ZhuyiParams(gate_lateral=False), road=None
        )
        batch = assessor.could_collide_futures(
            ego_states, spec, self.rollout_rows(trajectories), spec, t0s
        )
        assert batch.all()

    def test_samples_match_per_tick_trajectory_threat(self):
        from repro.road.track import three_lane_straight_road

        spec = VehicleSpec()
        params, _, t0s, ego_states, trajectories = self.per_tick_setup()
        assessor = ThreatAssessor(
            params=ZhuyiParams(), road=three_lane_straight_road()
        )
        rel_times = np.array([0.0, 0.1, 0.37, 1.0, 2.5, 7.0, 30.0])
        gaps, speeds = assessor.sample_threat_futures(
            ego_states,
            spec,
            self.rollout_rows(trajectories),
            spec,
            t0s,
            rel_times,
        )
        for i in range(len(t0s)):
            threat = assessor.build_threat(
                ego_states[i], spec, trajectories[i], spec, t0=float(t0s[i])
            )
            ref_gaps, ref_speeds = threat.sample(rel_times)
            assert np.array_equal(gaps[i], ref_gaps), i
            assert np.array_equal(speeds[i], ref_speeds), i

    def test_sampling_requires_road_when_gating(self):
        spec = VehicleSpec()
        params, assessor, t0s, ego_states, trajectories = (
            self.per_tick_setup(road=False)
        )
        with pytest.raises(EstimationError):
            assessor.sample_threat_futures(
                ego_states,
                spec,
                self.rollout_rows(trajectories),
                spec,
                t0s,
                np.array([0.0, 1.0]),
            )
