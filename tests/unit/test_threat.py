"""Threat extraction: fixed gaps, trajectory threats, lateral gating."""

import numpy as np
import pytest

from repro.core.parameters import ZhuyiParams
from repro.core.threat import FixedGapThreat, ThreatAssessor, TrajectoryThreat
from repro.dynamics.state import (
    StateTrajectory,
    TimedState,
    VehicleSpec,
    VehicleState,
)
from repro.errors import EstimationError
from repro.geometry.vec import Vec2


def vstate(x: float, y: float = 0.0, speed: float = 10.0,
           heading: float = 0.0) -> VehicleState:
    return VehicleState(Vec2(x, y), heading, speed, 0.0)


def straight_trajectory(x0: float, y: float, speed: float,
                        duration: float = 10.0) -> StateTrajectory:
    return StateTrajectory(
        TimedState(t, vstate(x0 + speed * t, y, speed))
        for t in np.arange(0.0, duration + 0.25, 0.25)
    )


class TestFixedGapThreat:
    def test_constant_queries(self):
        threat = FixedGapThreat(gap=30.0, actor_speed=5.0)
        assert threat.gap_at(0.0) == 30.0
        assert threat.gap_at(100.0) == 30.0
        assert threat.actor_speed_at(42.0) == 5.0

    def test_vectorized_matches_scalar(self):
        threat = FixedGapThreat(gap=30.0, actor_speed=5.0)
        gaps, speeds = threat.sample(np.array([0.0, 1.0, 2.0]))
        assert np.allclose(gaps, 30.0)
        assert np.allclose(speeds, 5.0)

    def test_rejects_negative_gap(self):
        with pytest.raises(EstimationError):
            FixedGapThreat(gap=-1.0, actor_speed=0.0)

    def test_rejects_negative_speed(self):
        with pytest.raises(EstimationError):
            FixedGapThreat(gap=1.0, actor_speed=-1.0)


class TestTrajectoryThreat:
    def setup_method(self):
        self.spec = VehicleSpec(length=4.8)
        self.ego = vstate(0.0, speed=20.0)

    def test_gap_subtracts_half_lengths(self):
        trajectory = straight_trajectory(50.0, 0.0, speed=0.0)
        threat = TrajectoryThreat(self.ego, self.spec, trajectory, self.spec)
        assert threat.gap_at(0.0) == pytest.approx(50.0 - 4.8)

    def test_gap_grows_with_receding_actor(self):
        trajectory = straight_trajectory(50.0, 0.0, speed=10.0)
        threat = TrajectoryThreat(self.ego, self.spec, trajectory, self.spec)
        assert threat.gap_at(2.0) == pytest.approx(70.0 - 4.8)

    def test_gap_never_negative(self):
        trajectory = straight_trajectory(1.0, 0.0, speed=0.0)
        threat = TrajectoryThreat(self.ego, self.spec, trajectory, self.spec)
        assert threat.gap_at(0.0) == 0.0

    def test_speed_query(self):
        trajectory = straight_trajectory(50.0, 0.0, speed=7.5)
        threat = TrajectoryThreat(self.ego, self.spec, trajectory, self.spec)
        assert threat.actor_speed_at(1.0) == pytest.approx(7.5)

    def test_t0_offset(self):
        trajectory = straight_trajectory(50.0, 0.0, speed=10.0)
        threat = TrajectoryThreat(
            self.ego, self.spec, trajectory, self.spec, t0=2.0
        )
        # Relative t=0 is absolute t=2: actor at 70.
        assert threat.gap_at(0.0) == pytest.approx(70.0 - 4.8)

    def test_coasts_past_prediction_end(self):
        trajectory = straight_trajectory(50.0, 0.0, speed=10.0, duration=2.0)
        threat = TrajectoryThreat(self.ego, self.spec, trajectory, self.spec)
        # At t=5 the record ends at x=70; coasting adds 3 s * 10 m/s.
        assert threat.gap_at(5.0) == pytest.approx(100.0 - 4.8)

    def test_vectorized_matches_scalar(self):
        trajectory = straight_trajectory(50.0, 1.0, speed=4.0, duration=3.0)
        threat = TrajectoryThreat(self.ego, self.spec, trajectory, self.spec)
        times = np.array([0.0, 0.5, 2.9, 3.5, 8.0])
        gaps, speeds = threat.sample(times)
        for i, t in enumerate(times):
            assert gaps[i] == pytest.approx(threat.gap_at(float(t)))
            assert speeds[i] == pytest.approx(threat.actor_speed_at(float(t)))


class TestThreatAssessorGating:
    def setup_method(self):
        self.params = ZhuyiParams()
        self.assessor = ThreatAssessor(params=self.params)
        self.spec = VehicleSpec()
        self.ego = vstate(0.0, 0.0, speed=20.0)

    def test_lead_in_lane_is_threat(self):
        trajectory = straight_trajectory(40.0, 0.0, speed=15.0)
        assert self.assessor.assess(
            self.ego, self.spec, trajectory, self.spec
        ) is not None

    def test_adjacent_lane_actor_gated_out(self):
        trajectory = straight_trajectory(40.0, 3.5, speed=15.0)
        assert self.assessor.assess(
            self.ego, self.spec, trajectory, self.spec
        ) is None

    def test_behind_actor_gated_out(self):
        trajectory = straight_trajectory(-20.0, 0.0, speed=25.0)
        assert self.assessor.assess(
            self.ego, self.spec, trajectory, self.spec
        ) is None

    def test_cut_in_actor_is_threat(self):
        # Starts in the adjacent lane, merges into the ego lane at t=2-4.
        samples = []
        for t in np.arange(0.0, 8.25, 0.25):
            if t < 2.0:
                y = 3.5
            elif t < 4.0:
                y = 3.5 * (1.0 - (t - 2.0) / 2.0)
            else:
                y = 0.0
            samples.append(TimedState(t, vstate(40.0 + 15.0 * t, y, 15.0)))
        trajectory = StateTrajectory(samples)
        assert self.assessor.assess(
            self.ego, self.spec, trajectory, self.spec
        ) is not None

    def test_cut_in_beyond_horizon_gated_out(self):
        # Merge starts after the assessor's horizon: not yet a threat.
        params = ZhuyiParams(horizon=3.0)
        assessor = ThreatAssessor(params=params)
        samples = []
        for t in np.arange(0.0, 12.25, 0.25):
            y = 3.5 if t < 10.0 else 0.0
            samples.append(TimedState(t, vstate(40.0 + 15.0 * t, y, 15.0)))
        trajectory = StateTrajectory(samples)
        assert assessor.assess(self.ego, self.spec, trajectory, self.spec) is None

    def test_gating_disabled_includes_everything(self):
        params = ZhuyiParams(gate_lateral=False)
        assessor = ThreatAssessor(params=params)
        trajectory = straight_trajectory(40.0, 3.5, speed=15.0)
        assert assessor.assess(
            self.ego, self.spec, trajectory, self.spec
        ) is not None

    def test_faster_follower_in_lane_gated_out(self):
        # The front_right_activity_1 regression: a faster actor behind the
        # ego crosses the ego's *original* position but can never be hit
        # by a braking ego.
        trajectory = straight_trajectory(-30.0, 0.0, speed=25.0)
        assert self.assessor.assess(
            self.ego, self.spec, trajectory, self.spec
        ) is None

    def test_abeam_actor_in_other_lane_gated_out(self):
        trajectory = straight_trajectory(1.0, 3.5, speed=20.0)
        assert self.assessor.assess(
            self.ego, self.spec, trajectory, self.spec
        ) is None
