"""Kinematic bicycle integrator."""

import math

import pytest

from repro.dynamics.bicycle import MAX_STEER_ANGLE, KinematicBicycle
from repro.dynamics.state import VehicleSpec, VehicleState
from repro.geometry.vec import Vec2


def make(speed: float = 10.0, heading: float = 0.0) -> VehicleState:
    return VehicleState(Vec2(0, 0), heading, speed, 0.0)


class TestLongitudinal:
    def setup_method(self):
        self.bike = KinematicBicycle(VehicleSpec())

    def test_straight_coasting(self):
        state = make(speed=10.0)
        for _ in range(100):
            state = self.bike.step(state, 0.0, 0.0, 0.01)
        assert state.position.x == pytest.approx(10.0, abs=1e-6)
        assert state.position.y == pytest.approx(0.0, abs=1e-9)
        assert state.speed == pytest.approx(10.0)

    def test_acceleration_integrates(self):
        state = make(speed=0.0)
        for _ in range(100):
            state = self.bike.step(state, 2.0, 0.0, 0.01)
        assert state.speed == pytest.approx(2.0)
        assert state.position.x == pytest.approx(1.0, abs=1e-3)

    def test_braking_stops_at_zero(self):
        state = make(speed=1.0)
        for _ in range(300):
            state = self.bike.step(state, -5.0, 0.0, 0.01)
        assert state.speed == 0.0

    def test_accel_command_clamped_to_spec(self):
        spec = VehicleSpec(max_accel=2.0)
        bike = KinematicBicycle(spec)
        state = bike.step(make(speed=10.0), 100.0, 0.0, 0.01)
        assert state.accel <= 2.0 + 1e-9

    def test_decel_command_clamped_to_spec(self):
        spec = VehicleSpec(max_decel=6.0)
        bike = KinematicBicycle(spec)
        state = bike.step(make(speed=10.0), -100.0, 0.0, 0.01)
        assert state.accel >= -6.0 - 1e-9

    def test_speed_capped_at_max(self):
        spec = VehicleSpec(max_speed=12.0)
        bike = KinematicBicycle(spec)
        state = make(speed=11.99)
        for _ in range(100):
            state = bike.step(state, 4.0, 0.0, 0.01)
        assert state.speed == pytest.approx(12.0)

    def test_rejects_non_positive_dt(self):
        with pytest.raises(ValueError):
            self.bike.step(make(), 0.0, 0.0, 0.0)


class TestSteering:
    def setup_method(self):
        self.spec = VehicleSpec()
        self.bike = KinematicBicycle(self.spec)

    def test_left_steer_turns_left(self):
        state = make(speed=10.0)
        for _ in range(50):
            state = self.bike.step(state, 0.0, 0.2, 0.01)
        assert state.heading > 0.0
        assert state.position.y > 0.0

    def test_steer_clamped(self):
        state = self.bike.step(make(speed=10.0), 0.0, 10.0, 0.01)
        expected_yaw_rate = 10.0 / self.spec.wheelbase * math.tan(MAX_STEER_ANGLE)
        assert state.heading == pytest.approx(expected_yaw_rate * 0.01, rel=1e-3)

    def test_circle_radius_matches_theory(self):
        # Constant steer at constant speed traces a circle of radius
        # wheelbase / tan(steer).
        steer = 0.1
        radius = self.spec.wheelbase / math.tan(steer)
        state = make(speed=10.0)
        states = [state]
        for _ in range(2000):
            state = self.bike.step(state, 0.0, steer, 0.01)
            states.append(state)
        # The circle's centre sits at (0, radius) for a start at origin
        # heading +X.
        center = Vec2(0.0, radius)
        radii = [s.position.distance_to(center) for s in states[100:]]
        assert min(radii) == pytest.approx(radius, rel=0.01)
        assert max(radii) == pytest.approx(radius, rel=0.01)

    def test_no_yaw_at_standstill(self):
        state = self.bike.step(make(speed=0.0), 0.0, 0.3, 0.01)
        assert state.heading == pytest.approx(0.0, abs=1e-9)
