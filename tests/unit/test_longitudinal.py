"""Clamped constant-acceleration closed forms."""

import pytest

from repro.dynamics.longitudinal import (
    braking_distance,
    clamp,
    speed_after_distance,
    time_to_stop,
    travel,
)


class TestTravel:
    def test_constant_speed(self):
        assert travel(10.0, 0.0, 5.0) == (50.0, 10.0)

    def test_zero_duration(self):
        assert travel(10.0, -3.0, 0.0) == (0.0, 10.0)

    def test_accelerating(self):
        distance, speed = travel(10.0, 2.0, 3.0)
        assert distance == pytest.approx(10 * 3 + 0.5 * 2 * 9)
        assert speed == pytest.approx(16.0)

    def test_braking_without_stopping(self):
        distance, speed = travel(10.0, -2.0, 3.0)
        assert distance == pytest.approx(30 - 9)
        assert speed == pytest.approx(4.0)

    def test_braking_clamps_at_zero(self):
        distance, speed = travel(10.0, -2.0, 10.0)
        assert speed == 0.0
        assert distance == pytest.approx(braking_distance(10.0, 2.0))

    def test_no_reverse_after_stop(self):
        distance_short, _ = travel(10.0, -5.0, 2.0)
        distance_long, _ = travel(10.0, -5.0, 100.0)
        assert distance_long == pytest.approx(distance_short)

    def test_speed_cap_binds(self):
        distance, speed = travel(10.0, 2.0, 10.0, max_speed=14.0)
        assert speed == 14.0
        # 2 s to reach the cap (24 m), then 8 s at 14 m/s.
        assert distance == pytest.approx(24.0 + 112.0)

    def test_speed_cap_already_reached(self):
        distance, speed = travel(20.0, 2.0, 5.0, max_speed=20.0)
        assert speed == 20.0
        assert distance == pytest.approx(100.0)

    def test_rejects_negative_speed(self):
        with pytest.raises(ValueError):
            travel(-1.0, 0.0, 1.0)

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            travel(1.0, 0.0, -1.0)


class TestStopping:
    def test_braking_distance(self):
        assert braking_distance(20.0, 5.0) == pytest.approx(40.0)

    def test_time_to_stop(self):
        assert time_to_stop(20.0, 5.0) == pytest.approx(4.0)

    def test_consistency_with_travel(self):
        t = time_to_stop(17.0, 4.9)
        distance, speed = travel(17.0, -4.9, t)
        assert speed == pytest.approx(0.0, abs=1e-9)
        assert distance == pytest.approx(braking_distance(17.0, 4.9))

    def test_rejects_non_positive_decel(self):
        with pytest.raises(ValueError):
            braking_distance(10.0, 0.0)
        with pytest.raises(ValueError):
            time_to_stop(10.0, -1.0)


class TestSpeedAfterDistance:
    def test_accelerating(self):
        assert speed_after_distance(3.0, 2.0, 4.0) == pytest.approx(5.0)

    def test_braking_to_zero_before_distance(self):
        assert speed_after_distance(10.0, -5.0, 100.0) == 0.0

    def test_rejects_negative_distance(self):
        with pytest.raises(ValueError):
            speed_after_distance(1.0, 0.0, -1.0)


class TestClamp:
    def test_inside(self):
        assert clamp(5.0, 0.0, 10.0) == 5.0

    def test_edges(self):
        assert clamp(-1.0, 0.0, 10.0) == 0.0
        assert clamp(11.0, 0.0, 10.0) == 10.0

    def test_empty_interval_raises(self):
        with pytest.raises(ValueError):
            clamp(0.0, 1.0, -1.0)


class TestTravelArrays:
    def test_matches_scalar_branches(self):
        import numpy as np

        from repro.dynamics.longitudinal import travel_arrays

        cases = [
            (10.0, 0.0, 2.0, None),   # coast
            (10.0, -5.0, 5.0, None),  # brakes to a stop
            (10.0, -1.0, 2.0, None),  # braking, still moving
            (10.0, 4.0, 10.0, 12.0),  # accelerates into the cap
            (15.0, 4.0, 3.0, 12.0),   # already over the cap
            (10.0, 2.0, 3.0, None),   # uncapped acceleration
            (0.0, -3.0, 1.0, None),   # stopped stays stopped
            (10.0, 3.0, 0.0, 12.0),   # zero duration
        ]
        for v0, a, t, cap in cases:
            d_ref, v_ref = travel(v0, a, t, cap)
            d, v = travel_arrays(
                np.array([v0]), np.array([a]), np.array([t]), cap
            )
            assert v[0] == v_ref, (v0, a, t, cap)
            assert d[0] == pytest.approx(d_ref, rel=1e-12), (v0, a, t, cap)

    def test_rejects_negative_inputs(self):
        import numpy as np

        from repro.dynamics.longitudinal import travel_arrays

        with pytest.raises(ValueError):
            travel_arrays(np.array([-1.0]), np.array([0.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            travel_arrays(np.array([1.0]), np.array([0.0]), np.array([-1.0]))
