"""CLI surface."""

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_scenarios_command(self):
        args = build_parser().parse_args(["scenarios"])
        assert args.command == "scenarios"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "cut_in"])
        assert args.fpr == 30.0
        assert args.seed == 0

    def test_run_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "warp"])

    def test_sweep_gap_positional(self):
        args = build_parser().parse_args(["sweep", "100"])
        assert args.gap == 100.0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.scenarios == []
        assert args.seeds == 1
        assert args.fprs == "30"
        assert args.workers == 1
        assert args.stride == 0.05
        assert args.out is None
        assert args.resume is None
        assert args.shard is None
        assert not args.expand_speeds

    def test_campaign_backend_flag(self):
        args = build_parser().parse_args(["campaign"])
        assert args.backend == "batched"
        args = build_parser().parse_args(["campaign", "--backend", "scalar"])
        assert args.backend == "scalar"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--backend", "gpu"])

    def test_campaign_retry_failed_flag(self):
        args = build_parser().parse_args(["campaign"])
        assert not args.retry_failed
        args = build_parser().parse_args(
            ["campaign", "--resume", "c.jsonl", "--retry-failed"]
        )
        assert args.retry_failed

    def test_campaign_resume_and_shard_flags(self):
        args = build_parser().parse_args(
            ["campaign", "--resume", "campaign.jsonl"]
        )
        assert args.resume == "campaign.jsonl"
        args = build_parser().parse_args(["campaign", "--shard", "2/8"])
        assert args.shard == "2/8"

    def test_campaign_merge_parser(self):
        args = build_parser().parse_args(
            ["campaign-merge", "a.jsonl", "b.jsonl", "--out", "m.jsonl"]
        )
        assert args.command == "campaign-merge"
        assert args.parts == ["a.jsonl", "b.jsonl"]
        assert args.out == "m.jsonl"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign-merge"])  # needs parts

    def test_campaign_grid_flags(self):
        args = build_parser().parse_args(
            ["campaign", "cut_out", "cut_in", "--seeds", "4",
             "--fprs", "5,30", "--workers", "2", "--expand-speeds"]
        )
        assert args.scenarios == ["cut_out", "cut_in"]
        assert args.seeds == 4
        assert args.fprs == "5,30"
        assert args.workers == 2
        assert args.expand_speeds


class TestCommands:
    def test_scenarios_lists_all(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "cut_out_fast" in out
        assert "vehicle_following" in out

    def test_sweep_renders(self, capsys):
        assert main(["sweep", "30", "--resolution", "6"]) == 0
        out = capsys.readouterr().out
        assert "s_n = 30 m" in out
        assert "max finite FPR" in out

    @pytest.mark.slow
    def test_run_and_save_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        code = main(
            ["run", "cut_in", "--fpr", "30", "--save-trace", str(path)]
        )
        assert code == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "max estimated FPR" in out

    @pytest.mark.slow
    def test_mrf_command(self, capsys):
        assert main(["mrf", "vehicle_following", "--grid", "1,2"]) == 0
        out = capsys.readouterr().out
        assert "minimum required FPR: <1" in out


class TestCampaignCommand:
    def test_unknown_scenario_exits_nonzero(self, capsys):
        assert main(["campaign", "warp"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_bad_fpr_list_exits_nonzero(self, capsys):
        assert main(["campaign", "cut_in", "--fprs", "30,abc"]) == 2
        assert "error" in capsys.readouterr().err

    def test_malformed_shard_exits_nonzero(self, capsys):
        assert main(["campaign", "cut_in", "--shard", "nope"]) == 2
        assert "--shard wants I/N" in capsys.readouterr().err

    def test_out_of_range_shard_exits_nonzero(self, capsys):
        assert main(["campaign", "cut_in", "--shard", "5/5"]) == 2
        assert "error" in capsys.readouterr().err

    def test_resume_conflicts_exit_nonzero(self, capsys):
        assert main(["campaign", "cut_in", "--resume", "x.jsonl"]) == 2
        assert "--resume" in capsys.readouterr().err
        assert (
            main(["campaign", "--resume", "x.jsonl", "--out", "y.jsonl"]) == 2
        )

    def test_resume_rejects_silently_ignored_grid_flags(self, capsys):
        # seeds/fprs/stride also come from the file; accepting them
        # silently would mislead about what actually ran.
        for flags in (["--seeds", "4"], ["--fprs", "5,30"],
                      ["--stride", "0.1"]):
            assert main(["campaign", "--resume", "x.jsonl", *flags]) == 2
            assert "--resume" in capsys.readouterr().err

    def test_resume_rejects_backend_flag(self, capsys):
        assert (
            main(["campaign", "--resume", "x.jsonl", "--backend", "scalar"])
            == 2
        )
        assert "--resume" in capsys.readouterr().err

    def test_retry_failed_without_resume_exits_nonzero(self, capsys):
        assert main(["campaign", "cut_in", "--retry-failed"]) == 2
        assert "--retry-failed" in capsys.readouterr().err

    def test_unwritable_out_exits_nonzero(self, tmp_path, capsys):
        target = tmp_path / "no" / "such" / "dir" / "c.jsonl"
        code = main(
            ["campaign", "cut_in", "--stride", "0.5", "--out", str(target)]
        )
        assert code == 2
        assert "cannot write" in capsys.readouterr().err

    def test_resume_missing_file_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "missing.jsonl"
        assert main(["campaign", "--resume", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    @pytest.mark.slow
    def test_resume_retry_failed_interaction_with_worker_retry(
        self, tmp_path, capsys
    ):
        import json

        from repro.batch import Campaign, CampaignResult, RunSummary

        # A partial with one deterministic error (index 0) and one
        # WorkerError (index 1). Plain --resume auto-retries only the
        # WorkerError and keeps the deterministic failure (exit 1);
        # --retry-failed forces that one too (exit 0).
        campaign = Campaign(
            scenarios=("cut_in", "vehicle_following"), stride=0.5
        )
        specs = campaign.runs()
        records = [
            RunSummary(
                index=0, scenario=specs[0].scenario, seed=specs[0].seed,
                fpr=specs[0].fpr, variant=specs[0].variant, collided=False,
                error="SimulationError: since-fixed bug",
            ),
            RunSummary(
                index=1, scenario=specs[1].scenario, seed=specs[1].seed,
                fpr=specs[1].fpr, variant=specs[1].variant, collided=False,
                error="WorkerError: BrokenProcessPool",
            ),
        ]
        path = tmp_path / "partial.jsonl"
        CampaignResult(campaign, records).save_jsonl(path)

        assert main(["campaign", "--resume", str(path)]) == 1
        out = capsys.readouterr()
        assert "1 of 2 runs already recorded" in out.out  # WorkerError purged
        reloaded = CampaignResult.load_jsonl(path)
        assert [s.index for s in reloaded.failures()] == [0]
        assert reloaded.summaries[1].ok  # the crashed cell re-ran

        assert main(["campaign", "--resume", str(path), "--retry-failed"]) == 0
        out = capsys.readouterr()
        assert "0 of 2 runs already recorded" not in out.out
        final = CampaignResult.load_jsonl(path)
        assert not final.failures()
        assert final.is_complete

    @pytest.mark.slow
    def test_campaign_jsonl_round_trip(self, tmp_path, capsys):
        from repro.batch import CampaignResult

        path = tmp_path / "campaign.jsonl"
        code = main(
            ["campaign", "cut_in", "--stride", "0.5", "--out", str(path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 runs in" in out
        assert f"campaign written to {path}" in out

        result = CampaignResult.load_jsonl(path)
        assert len(result) == 1
        summary = result.summaries[0]
        assert summary.scenario == "cut_in"
        assert summary.ok and not summary.collided
        assert summary.max_fpr >= 1.0


class TestCampaignMergeCommand:
    def _result(self, campaign, summaries, shard=None):
        from repro.batch import CampaignResult

        return CampaignResult(campaign, summaries, shard=shard)

    def _summary(self, campaign, index):
        from repro.batch import RunSummary

        spec = campaign.runs()[index]
        return RunSummary(
            index=spec.index,
            scenario=spec.scenario,
            seed=spec.seed,
            fpr=spec.fpr,
            variant=spec.variant,
            collided=False,
            max_fpr=2.0,
            max_total_fpr=4.0,
            fraction_of_provision=4.0 / 90.0,
            ticks=10,
            duration=5.0,
        )

    def _campaign(self):
        from repro.batch import Campaign

        return Campaign(scenarios=("cut_in",), seeds=(0, 1), fprs=(30.0,))

    def test_merge_round_trip(self, tmp_path, capsys):
        from repro.batch import CampaignResult

        campaign = self._campaign()
        paths = []
        for index in range(2):
            path = tmp_path / f"part{index}.jsonl"
            self._result(
                campaign, [self._summary(campaign, index)], shard=(index, 2)
            ).save_jsonl(path)
            paths.append(str(path))
        out = tmp_path / "merged.jsonl"
        assert main(["campaign-merge", *paths, "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "2 of 2 runs present" in text
        merged = CampaignResult.load_jsonl(out)
        assert merged.is_complete and merged.shard is None

    def test_merge_grid_mismatch_exits_nonzero(self, tmp_path, capsys):
        from repro.batch import Campaign

        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        campaign = self._campaign()
        other = Campaign(scenarios=("cut_in",), seeds=(0, 1), fprs=(5.0,))
        self._result(campaign, [self._summary(campaign, 0)]).save_jsonl(a)
        self._result(other, [self._summary(other, 1)]).save_jsonl(b)
        assert main(["campaign-merge", str(a), str(b)]) == 2
        assert "different grids" in capsys.readouterr().err

    def test_merge_overlap_exits_nonzero(self, tmp_path, capsys):
        campaign = self._campaign()
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        self._result(campaign, [self._summary(campaign, 0)]).save_jsonl(a)
        self._result(campaign, [self._summary(campaign, 0)]).save_jsonl(b)
        assert main(["campaign-merge", str(a), str(b)]) == 2
        assert "overlapping run index" in capsys.readouterr().err

    def test_incomplete_merge_exits_one(self, tmp_path, capsys):
        campaign = self._campaign()
        a = tmp_path / "a.jsonl"
        self._result(campaign, [self._summary(campaign, 0)]).save_jsonl(a)
        assert main(["campaign-merge", str(a)]) == 1
        assert "incomplete merge" in capsys.readouterr().err

    def test_merge_missing_file_exits_nonzero(self, tmp_path, capsys):
        assert main(["campaign-merge", str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

    def test_merge_unwritable_out_exits_nonzero(self, tmp_path, capsys):
        campaign = self._campaign()
        a = tmp_path / "a.jsonl"
        self._result(
            campaign,
            [self._summary(campaign, 0), self._summary(campaign, 1)],
        ).save_jsonl(a)
        target = tmp_path / "no" / "dir" / "m.jsonl"
        assert main(["campaign-merge", str(a), "--out", str(target)]) == 2
        assert "cannot write" in capsys.readouterr().err


class TestFuzzCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["fuzz", "cut_out", "--out", "d"])
        assert args.family == "cut_out"
        assert args.out == "d"
        # Population/generations/elite/tournament/stride stay None so
        # --smoke (or the full preset) can fill them in.
        assert args.population is None
        assert args.generations is None
        assert args.stride is None
        assert args.fitness == "latency"
        assert args.mutation_scale == 0.15
        assert args.seed == 0
        assert args.workers == 1
        assert args.archive_size == 5
        assert not args.smoke

    def test_parser_smoke_and_overrides(self):
        args = build_parser().parse_args(
            ["fuzz", "vehicle_following", "--out", "d", "--smoke",
             "--population", "6", "--fitness", "mrf_margin",
             "--backend", "crosstrace"]
        )
        assert args.smoke
        assert args.population == 6
        assert args.fitness == "mrf_margin"
        assert args.backend == "crosstrace"

    def test_parser_rejects_unknown_family(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "warp", "--out", "d"])

    def test_parser_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "cut_out"])

    def test_bad_config_exits_two(self, tmp_path, capsys):
        code = main(
            ["fuzz", "cut_out", "--out", str(tmp_path), "--smoke",
             "--elite", "10"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_bad_fprs_exits_two(self, tmp_path, capsys):
        code = main(
            ["fuzz", "cut_out", "--out", str(tmp_path), "--smoke",
             "--fprs", "abc"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_campaign_fuzz_archive_unreadable_exits_two(
        self, tmp_path, capsys
    ):
        code = main(
            ["campaign", "cut_in",
             "--fuzz-archive", str(tmp_path / "nope.json")]
        )
        assert code == 2
        assert "unreadable" in capsys.readouterr().err

    def test_fuzz_archive_registers_and_reports(
        self, tmp_path, capsys, monkeypatch
    ):
        import json

        from repro.cli import _load_fuzz_archives
        from repro.scenarios.fuzzed import (
            FUZZ_FAMILIES,
            RECIPES_ENV,
            fuzzed_recipes,
            register_fuzzed,
        )

        monkeypatch.delenv(RECIPES_ENV, raising=False)
        name = register_fuzzed(
            "cut_out", FUZZ_FAMILIES["cut_out"].space.defaults()
        )
        path = tmp_path / "archive.json"
        path.write_text(json.dumps(fuzzed_recipes([name])))
        assert _load_fuzz_archives([str(path)]) is None
        out = capsys.readouterr().out
        assert "1 scenario(s) registered" in out
        # Later workers resolve the same names through the env var.
        assert str(path) in os.environ[RECIPES_ENV]
