"""CLI surface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_scenarios_command(self):
        args = build_parser().parse_args(["scenarios"])
        assert args.command == "scenarios"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "cut_in"])
        assert args.fpr == 30.0
        assert args.seed == 0

    def test_run_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "warp"])

    def test_sweep_gap_positional(self):
        args = build_parser().parse_args(["sweep", "100"])
        assert args.gap == 100.0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.scenarios == []
        assert args.seeds == 1
        assert args.fprs == "30"
        assert args.workers == 1
        assert args.stride == 0.05
        assert args.out is None
        assert not args.expand_speeds

    def test_campaign_grid_flags(self):
        args = build_parser().parse_args(
            ["campaign", "cut_out", "cut_in", "--seeds", "4",
             "--fprs", "5,30", "--workers", "2", "--expand-speeds"]
        )
        assert args.scenarios == ["cut_out", "cut_in"]
        assert args.seeds == 4
        assert args.fprs == "5,30"
        assert args.workers == 2
        assert args.expand_speeds


class TestCommands:
    def test_scenarios_lists_all(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "cut_out_fast" in out
        assert "vehicle_following" in out

    def test_sweep_renders(self, capsys):
        assert main(["sweep", "30", "--resolution", "6"]) == 0
        out = capsys.readouterr().out
        assert "s_n = 30 m" in out
        assert "max finite FPR" in out

    @pytest.mark.slow
    def test_run_and_save_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        code = main(
            ["run", "cut_in", "--fpr", "30", "--save-trace", str(path)]
        )
        assert code == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "max estimated FPR" in out

    @pytest.mark.slow
    def test_mrf_command(self, capsys):
        assert main(["mrf", "vehicle_following", "--grid", "1,2"]) == 0
        out = capsys.readouterr().out
        assert "minimum required FPR: <1" in out


class TestCampaignCommand:
    def test_unknown_scenario_exits_nonzero(self, capsys):
        assert main(["campaign", "warp"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_bad_fpr_list_exits_nonzero(self, capsys):
        assert main(["campaign", "cut_in", "--fprs", "30,abc"]) == 2
        assert "error" in capsys.readouterr().err

    @pytest.mark.slow
    def test_campaign_jsonl_round_trip(self, tmp_path, capsys):
        from repro.batch import CampaignResult

        path = tmp_path / "campaign.jsonl"
        code = main(
            ["campaign", "cut_in", "--stride", "0.5", "--out", str(path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 runs in" in out
        assert f"campaign written to {path}" in out

        result = CampaignResult.load_jsonl(path)
        assert len(result) == 1
        summary = result.summaries[0]
        assert summary.scenario == "cut_in"
        assert summary.ok and not summary.collided
        assert summary.max_fpr >= 1.0
