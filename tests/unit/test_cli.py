"""CLI surface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_scenarios_command(self):
        args = build_parser().parse_args(["scenarios"])
        assert args.command == "scenarios"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "cut_in"])
        assert args.fpr == 30.0
        assert args.seed == 0

    def test_run_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "warp"])

    def test_sweep_gap_positional(self):
        args = build_parser().parse_args(["sweep", "100"])
        assert args.gap == 100.0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_scenarios_lists_all(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "cut_out_fast" in out
        assert "vehicle_following" in out

    def test_sweep_renders(self, capsys):
        assert main(["sweep", "30", "--resolution", "6"]) == 0
        out = capsys.readouterr().out
        assert "s_n = 30 m" in out
        assert "max finite FPR" in out

    @pytest.mark.slow
    def test_run_and_save_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        code = main(
            ["run", "cut_in", "--fpr", "30", "--save-trace", str(path)]
        )
        assert code == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "max estimated FPR" in out

    @pytest.mark.slow
    def test_mrf_command(self, capsys):
        assert main(["mrf", "vehicle_following", "--grid", "1,2"]) == 0
        out = capsys.readouterr().out
        assert "minimum required FPR: <1" in out
