"""Oriented boxes: overlap, containment, segment intersection."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry.boxes import (
    OrientedBox,
    box_distance,
    boxes_overlap,
    segment_intersects_box,
)
from repro.geometry.vec import Vec2


def car(x: float, y: float, heading: float = 0.0) -> OrientedBox:
    return OrientedBox(Vec2(x, y), heading, length=4.8, width=1.9)


class TestConstruction:
    def test_rejects_zero_length(self):
        with pytest.raises(GeometryError):
            OrientedBox(Vec2(0, 0), 0.0, length=0.0, width=1.0)

    def test_rejects_negative_width(self):
        with pytest.raises(GeometryError):
            OrientedBox(Vec2(0, 0), 0.0, length=1.0, width=-2.0)

    def test_corners_are_ccw_and_centered(self):
        box = car(0, 0)
        corners = box.corners()
        assert len(corners) == 4
        centroid = Vec2(
            sum(c.x for c in corners) / 4, sum(c.y for c in corners) / 4
        )
        assert centroid.distance_to(box.center) < 1e-12

    def test_circumradius(self):
        box = car(0, 0)
        assert box.circumradius() == pytest.approx(math.hypot(2.4, 0.95))


class TestContainment:
    def test_center_inside(self):
        assert car(0, 0).contains_point(Vec2(0, 0))

    def test_just_outside_width(self):
        assert not car(0, 0).contains_point(Vec2(0, 1.0))

    def test_just_inside_length(self):
        assert car(0, 0).contains_point(Vec2(2.3, 0))

    def test_rotated_containment(self):
        box = car(0, 0, heading=math.pi / 2)  # length now along Y
        assert box.contains_point(Vec2(0, 2.3))
        assert not box.contains_point(Vec2(2.3, 0))


class TestOverlap:
    def test_identical_overlap(self):
        assert boxes_overlap(car(0, 0), car(0, 0))

    def test_far_apart(self):
        assert not boxes_overlap(car(0, 0), car(100, 0))

    def test_longitudinal_touching(self):
        # Centres 4.7 m apart: 0.1 m of overlap bumper-to-bumper.
        assert boxes_overlap(car(0, 0), car(4.7, 0))

    def test_longitudinal_clear(self):
        assert not boxes_overlap(car(0, 0), car(4.9, 0))

    def test_lateral_adjacent_lane_clear(self):
        assert not boxes_overlap(car(0, 0), car(0, 3.5))

    def test_lateral_sideswipe(self):
        assert boxes_overlap(car(0, 0), car(0, 1.8))

    def test_rotated_cross_overlap(self):
        a = car(0, 0)
        b = car(0, 0, heading=math.pi / 2)
        assert boxes_overlap(a, b)

    def test_diagonal_near_miss_needs_sat(self):
        # Two boxes at 45 degrees whose bounding circles overlap but the
        # rectangles do not — the case the SAT axes must resolve.
        a = OrientedBox(Vec2(0, 0), 0.0, 4.0, 1.0)
        b = OrientedBox(Vec2(3.5, 2.1), math.pi / 4, 4.0, 1.0)
        assert a.circumradius() + b.circumradius() > a.center.distance_to(b.center)
        assert not boxes_overlap(a, b)

    def test_symmetric(self):
        a, b = car(0, 0), car(4.0, 1.0)
        assert boxes_overlap(a, b) == boxes_overlap(b, a)


class TestDistance:
    def test_zero_when_overlapping(self):
        assert box_distance(car(0, 0), car(1, 0)) == 0.0

    def test_longitudinal_gap(self):
        # Centres 10 m apart, half-lengths 2.4 each -> 5.2 m clearance.
        assert box_distance(car(0, 0), car(10, 0)) == pytest.approx(5.2, abs=0.05)

    def test_lateral_gap(self):
        assert box_distance(car(0, 0), car(0, 3.5)) == pytest.approx(1.6, abs=0.05)


class TestSegmentIntersection:
    def test_segment_through_box(self):
        assert segment_intersects_box(Vec2(-10, 0), Vec2(10, 0), car(0, 0))

    def test_segment_missing_box(self):
        assert not segment_intersects_box(Vec2(-10, 5), Vec2(10, 5), car(0, 0))

    def test_segment_ending_before_box(self):
        assert not segment_intersects_box(Vec2(-10, 0), Vec2(-3, 0), car(0, 0))

    def test_segment_starting_inside(self):
        assert segment_intersects_box(Vec2(0, 0), Vec2(10, 0), car(0, 0))

    def test_segment_parallel_outside_slab(self):
        assert not segment_intersects_box(Vec2(-10, 1.2), Vec2(10, 1.2), car(0, 0))

    def test_rotated_box_intersection(self):
        box = car(5, 0, heading=math.pi / 4)
        assert segment_intersects_box(Vec2(0, 0), Vec2(10, 0), box)

    def test_degenerate_point_segment_inside(self):
        assert segment_intersects_box(Vec2(0, 0), Vec2(0, 0), car(0, 0))

    def test_degenerate_point_segment_outside(self):
        assert not segment_intersects_box(Vec2(9, 9), Vec2(9, 9), car(0, 0))
