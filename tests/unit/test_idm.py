"""Intelligent Driver Model."""

import pytest

from repro.errors import ConfigurationError
from repro.planning.idm import IDMParams, idm_acceleration


class TestFreeRoad:
    def test_accelerates_below_desired(self):
        params = IDMParams(desired_speed=30.0)
        assert idm_acceleration(10.0, params) > 0.0

    def test_zero_at_desired_speed(self):
        params = IDMParams(desired_speed=30.0)
        assert idm_acceleration(30.0, params) == pytest.approx(0.0)

    def test_decelerates_above_desired(self):
        params = IDMParams(desired_speed=30.0)
        assert idm_acceleration(35.0, params) < 0.0

    def test_max_accel_from_standstill(self):
        params = IDMParams(desired_speed=30.0, max_accel=2.0)
        assert idm_acceleration(0.0, params) == pytest.approx(2.0)


class TestFollowing:
    def setup_method(self):
        self.params = IDMParams(desired_speed=30.0)

    def test_close_gap_brakes_hard(self):
        accel = idm_acceleration(20.0, self.params, gap=5.0, lead_speed=20.0)
        assert accel < -3.0

    def test_large_gap_nearly_free(self):
        accel = idm_acceleration(20.0, self.params, gap=500.0, lead_speed=20.0)
        free = idm_acceleration(20.0, self.params)
        assert accel == pytest.approx(free, abs=0.05)

    def test_steady_state_gap(self):
        # At equilibrium (accel = 0, equal speeds) the gap equals
        # min_gap + v*T.
        v = 20.0
        expected = self.params.min_gap + v * self.params.time_headway
        accel = idm_acceleration(v, self.params, gap=expected, lead_speed=v)
        # The desired-speed term is not exactly zero below v0; allow slack.
        assert abs(accel) < 0.6

    def test_closing_speed_increases_braking(self):
        matched = idm_acceleration(20.0, self.params, gap=40.0, lead_speed=20.0)
        closing = idm_acceleration(25.0, self.params, gap=40.0, lead_speed=15.0)
        assert closing < matched

    def test_monotone_in_gap(self):
        accels = [
            idm_acceleration(20.0, self.params, gap=g, lead_speed=15.0)
            for g in (10.0, 20.0, 40.0, 80.0)
        ]
        assert accels == sorted(accels)

    def test_requires_lead_speed_with_gap(self):
        with pytest.raises(ConfigurationError):
            idm_acceleration(20.0, self.params, gap=10.0)

    def test_rejects_negative_speed(self):
        with pytest.raises(ConfigurationError):
            idm_acceleration(-1.0, self.params)


class TestParams:
    def test_with_desired_speed(self):
        params = IDMParams().with_desired_speed(17.5)
        assert params.desired_speed == 17.5

    def test_rejects_bad_headway(self):
        with pytest.raises(ConfigurationError):
            IDMParams(time_headway=0.0)
