"""Zhuyi model constants and the latency grid."""

import pytest

from repro.core.parameters import ZhuyiParams
from repro.errors import ConfigurationError


class TestDefaults:
    def test_paper_values(self, params):
        assert params.c1 == 0.9
        assert params.c2 == 0.9
        assert params.c3 == 4.9
        assert params.c4 == 1.1
        assert params.k == 5
        assert params.m == 10

    def test_grid_size_is_paper_L(self, params):
        # L = 1 s / 33 ms = 30 candidate latencies.
        assert params.num_latency_steps == 30

    def test_grid_descends_from_lmax_to_lmin(self, params):
        grid = params.latency_grid()
        assert grid[0] == pytest.approx(1.0)
        assert grid[-1] == pytest.approx(1.0 / 30.0)
        assert all(b < a for a, b in zip(grid, grid[1:]))

    def test_grid_fprs_are_round(self, params):
        # l = k/30 means the FPR ladder is exactly 30/k.
        fprs = sorted(1.0 / l for l in params.latency_grid())
        assert fprs[0] == pytest.approx(1.0)
        assert fprs[-1] == pytest.approx(30.0)

    def test_fpr_bounds(self, params):
        assert params.fpr_floor() == pytest.approx(1.0)
        assert params.fpr_cap() == pytest.approx(30.0)


class TestValidation:
    def test_rejects_c1_above_one(self):
        with pytest.raises(ConfigurationError):
            ZhuyiParams(c1=1.5)

    def test_rejects_c4_below_one(self):
        with pytest.raises(ConfigurationError):
            ZhuyiParams(c4=0.9)

    def test_rejects_lmin_above_lmax(self):
        with pytest.raises(ConfigurationError):
            ZhuyiParams(l_min=2.0, l_max=1.0)

    def test_rejects_zero_m(self):
        with pytest.raises(ConfigurationError):
            ZhuyiParams(m=0)

    def test_rejects_negative_k(self):
        with pytest.raises(ConfigurationError):
            ZhuyiParams(k=-1)

    def test_rejects_bad_dl(self):
        with pytest.raises(ConfigurationError):
            ZhuyiParams(dl=0.0)


class TestConfirmationDelay:
    def test_alpha_formula(self, params):
        # alpha = K * (l - l0).
        assert params.confirmation_delay(0.233, 0.033) == pytest.approx(1.0)

    def test_alpha_clamped_at_zero(self, params):
        assert params.confirmation_delay(0.033, 1.0) == 0.0

    def test_alpha_zero_at_l0(self, params):
        assert params.confirmation_delay(0.5, 0.5) == 0.0

    def test_k_zero_disables_alpha(self):
        params = ZhuyiParams(k=0)
        assert params.confirmation_delay(1.0, 0.033) == 0.0

    def test_custom_grid(self):
        params = ZhuyiParams(l_max=0.5, l_min=0.1, dl=0.1)
        grid = params.latency_grid()
        assert grid[0] == pytest.approx(0.5)
        assert grid[-1] == pytest.approx(0.1)
        assert len(grid) == 5
