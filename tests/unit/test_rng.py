"""The counter-based RNG core and the trace-level noise model.

Two kinds of pins live here. The behavioural ones (key handling,
broadcasting, stream separation, validation) guard the API. The
GOLDEN_* pins fix the *stream values themselves*: recorded campaign
results are reproducible only while every draw hashes to the same bits,
so changing any mixing constant, stream tag or key encoding must show
up as a loud failure here, not as silently different campaigns.
"""

import numpy as np
import pytest

from repro.core.rng import (
    STREAM_DERIVE,
    STREAM_MISS,
    STREAM_NOISE_X,
    STREAM_NOISE_Y,
    counter_hash,
    counter_normal,
    counter_uniform,
    derive_seed,
    stable_key,
    time_key,
)
from repro.errors import ConfigurationError
from repro.perception.noise import PerceptionNoise


class TestStableKey:
    def test_int_keys_by_bit_pattern(self):
        assert int(stable_key(0)) == 0
        assert int(stable_key(1)) == 1
        # Two's complement: -1 is all ones.
        assert int(stable_key(-1)) == 0xFFFFFFFFFFFFFFFF
        assert int(stable_key(np.int32(7))) == 7

    def test_large_int_reduced_mod_2_64(self):
        assert stable_key(2**64 + 5) == stable_key(5)

    def test_float_keys_by_ieee_bits(self):
        assert int(stable_key(1.5)) == 0x3FF8000000000000
        assert int(stable_key(0.0)) == 0
        assert stable_key(np.float64(2.25)) == stable_key(2.25)

    def test_int_and_float_keys_disjoint(self):
        # 1 and 1.0 are different identities: bit patterns differ.
        assert stable_key(1) != stable_key(1.0)

    def test_str_and_bytes_agree(self):
        assert stable_key("actor") == stable_key(b"actor")

    def test_str_keys_differ(self):
        assert stable_key("a") != stable_key("b")
        assert stable_key("") != stable_key("a")

    def test_bool_rejected(self):
        with pytest.raises(ConfigurationError):
            stable_key(True)

    def test_unkeyable_type_rejected(self):
        with pytest.raises(ConfigurationError):
            stable_key(("tuple", "id"))

    def test_never_uses_python_hash(self):
        # PYTHONHASHSEED-independence: the FNV path is fixed for all
        # time, pinned below in TestGoldenStreams.
        assert int(stable_key("perception.miss")) == 0x06212A57895BEB2C


class TestTimeKey:
    def test_scalar_bit_pattern(self):
        assert int(time_key(1.5)) == 0x3FF8000000000000
        assert time_key(0.3) == stable_key(0.3)

    def test_array_elementwise(self):
        times = np.array([0.0, 0.05, 0.1])
        words = time_key(times)
        assert words.shape == times.shape
        assert words[1] == time_key(0.05)

    def test_bit_equal_times_only(self):
        # 0.1 + 0.2 != 0.3 in floats: different instants, different keys.
        assert time_key(0.1 + 0.2) != time_key(0.3)


class TestCounterDraws:
    def test_scalar_vector_parity(self):
        words = np.array([stable_key("a"), stable_key("b"), stable_key("c")])
        batch = counter_uniform(3, STREAM_MISS, time_key(0.5), words)
        singles = [
            float(counter_uniform(3, STREAM_MISS, time_key(0.5), w))
            for w in words
        ]
        assert batch.tolist() == singles

    def test_chunked_equals_whole(self):
        times = time_key(0.05 * np.arange(100))
        whole = counter_normal(1, STREAM_NOISE_X, times, stable_key("a"))
        parts = np.concatenate(
            [
                counter_normal(1, STREAM_NOISE_X, times[i : i + 7], stable_key("a"))
                for i in range(0, 100, 7)
            ]
        )
        assert whole.tolist() == parts.tolist()

    def test_streams_are_independent(self):
        keys = (time_key(1.0), stable_key("a"))
        draws = {
            float(counter_uniform(0, stream, *keys))
            for stream in (STREAM_MISS, STREAM_NOISE_X, STREAM_NOISE_Y, STREAM_DERIVE)
        }
        assert len(draws) == 4

    def test_seed_separates(self):
        keys = (time_key(1.0), stable_key("a"))
        assert counter_uniform(0, STREAM_MISS, *keys) != counter_uniform(
            1, STREAM_MISS, *keys
        )

    def test_uniform_range(self):
        draws = counter_uniform(
            0, STREAM_MISS, time_key(0.01 * np.arange(10_000))
        )
        assert draws.min() >= 0.0
        assert draws.max() < 1.0
        assert abs(draws.mean() - 0.5) < 0.02

    def test_normal_moments(self):
        draws = counter_normal(
            0, STREAM_NOISE_X, time_key(0.01 * np.arange(20_000))
        )
        assert np.isfinite(draws).all()
        assert abs(draws.mean()) < 0.03
        assert abs(draws.std() - 1.0) < 0.03

    def test_string_stream_accepted(self):
        # Streams may be named inline; equal names, equal draws.
        assert counter_uniform(0, "my.stream", 1) == counter_uniform(
            0, stable_key("my.stream"), 1
        )

    def test_derive_seed_decorrelates(self):
        children = {derive_seed(0, s, f) for s in range(4) for f in range(4)}
        assert len(children) == 16
        assert derive_seed(0, 1, 2) != derive_seed(0, 2, 1)


class TestGoldenStreams:
    """The pinned bits of the recorded-stream contract.

    These values were frozen when the counter-based generator replaced
    the stateful ``np.random.Generator`` streams (the one-time
    deliberate RNG break — see docs/TESTING.md, "RNG determinism
    contract"). Any change here invalidates every recorded stochastic
    campaign; regenerate goldens and say so loudly in the changelog.
    """

    def test_stream_tags(self):
        assert int(STREAM_MISS) == 0x06212A57895BEB2C
        assert int(STREAM_NOISE_X) == 0x9A45C810BB9C7A68
        assert int(STREAM_NOISE_Y) == 0x9A45C910BB9C7C1B
        assert int(STREAM_DERIVE) == 0xC9350D641FB3046D

    def test_hash_pin(self):
        word = counter_hash(0, STREAM_MISS, stable_key("a"), time_key(1.0))
        assert int(word) == 0x7C5F2EA37C779EB1

    def test_uniform_pin(self):
        value = counter_uniform(0, STREAM_MISS, stable_key("a"), time_key(1.0))
        assert float(value) == 0.4858273648391943

    def test_normal_pin(self):
        value = counter_normal(0, STREAM_NOISE_X, stable_key("a"), time_key(1.0))
        assert float(value) == -0.4508968514543348

    def test_derive_seed_pin(self):
        assert derive_seed(0, 1, 2) == 3507520669832435036


class TestPerceptionNoise:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PerceptionNoise(miss_rate=1.0)
        with pytest.raises(ConfigurationError):
            PerceptionNoise(miss_rate=-0.1)
        with pytest.raises(ConfigurationError):
            PerceptionNoise(position_noise=-0.5)

    def test_enabled(self):
        assert not PerceptionNoise().enabled
        assert PerceptionNoise(miss_rate=0.1).enabled
        assert PerceptionNoise(position_noise=0.1).enabled

    def test_sample_actor_shapes_and_determinism(self):
        noise = PerceptionNoise(miss_rate=0.3, position_noise=0.5, seed=3)
        times = 0.05 * np.arange(50)
        detected, dx, dy = noise.sample_actor("lead", times)
        assert detected.shape == dx.shape == dy.shape == times.shape
        again = noise.sample_actor("lead", times)
        assert detected.tolist() == again[0].tolist()
        assert dx.tolist() == again[1].tolist()
        # The x and y channels are distinct streams.
        assert dx.tolist() != dy.tolist()

    def test_disabled_channels(self):
        times = 0.05 * np.arange(10)
        detected, dx, dy = PerceptionNoise(position_noise=0.5).sample_actor(
            "a", times
        )
        assert detected.all()
        detected, dx, dy = PerceptionNoise(miss_rate=0.5, seed=1).sample_actor(
            "a", times
        )
        assert not detected.all()
        assert not dx.any() and not dy.any()

    def test_subset_draws_subset_values(self):
        # The order-independence core: any window of a grid draws the
        # window of the grid's values.
        noise = PerceptionNoise(miss_rate=0.3, position_noise=0.5, seed=3)
        times = 0.05 * np.arange(60)
        _, dx, _ = noise.sample_actor("a", times)
        _, dx_win, _ = noise.sample_actor("a", times[20:40])
        assert dx[20:40].tolist() == dx_win.tolist()

    def test_for_cell_is_pure_and_decorrelated(self):
        root = PerceptionNoise(miss_rate=0.2, position_noise=0.1, seed=9)
        cell = root.for_cell("cut_in", 0, 30.0)
        assert cell == root.for_cell("cut_in", 0, 30.0)
        assert cell.seed != root.seed
        assert cell.miss_rate == root.miss_rate
        others = {
            root.for_cell(s, seed, fpr).seed
            for s in ("cut_in", "cut_out")
            for seed in (0, 1)
            for fpr in (10.0, 30.0)
        }
        assert len(others) == 8

    def test_dict_round_trip(self):
        noise = PerceptionNoise(miss_rate=0.25, position_noise=0.4, seed=11)
        assert PerceptionNoise.from_dict(noise.to_dict()) == noise
