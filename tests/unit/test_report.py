"""ASCII rendering helpers."""

import math

import numpy as np
import pytest

from repro.analysis.report import (
    format_table,
    pearson_correlation,
    render_heatmap,
    render_series,
)
from repro.errors import ConfigurationError


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_header_separator(self):
        text = format_table(["x"], [["1"]])
        assert text.splitlines()[1].strip("-") == ""

    def test_rejects_ragged_rows(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [["1"]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestHeatmap:
    def test_level_glyphs(self):
        grid = np.array([[1.0, 4.0], [12.0, 40.0]])
        text = render_heatmap(grid)
        # Row 0 is printed last (y grows upward).
        lines = text.splitlines()
        assert lines[1] == ".:"
        assert lines[0] == "*@"

    def test_nan_is_blank(self):
        grid = np.array([[float("nan"), 1.0]])
        assert render_heatmap(grid).startswith(" ")

    def test_rejects_1d(self):
        with pytest.raises(ConfigurationError):
            render_heatmap(np.array([1.0, 2.0]))


class TestSeries:
    def test_plots_and_labels(self):
        values = [math.sin(i / 10) for i in range(100)]
        text = render_series(values, width=40, height=8, label="sine")
        lines = text.splitlines()
        assert "sine" in lines[0]
        assert len(lines) == 9
        assert any("*" in line for line in lines[1:])

    def test_constant_series_ok(self):
        text = render_series([5.0] * 10)
        assert "min=5" in text

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            render_series([])

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ConfigurationError):
            render_series([1.0, 2.0], width=1)


class TestCorrelation:
    def test_perfect_positive(self):
        assert pearson_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series_returns_zero(self):
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            pearson_correlation([1, 2], [1, 2, 3])

    def test_too_short_rejected(self):
        with pytest.raises(ConfigurationError):
            pearson_correlation([1], [1])
