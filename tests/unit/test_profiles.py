"""Smoothstep motion profiles."""

import pytest

from repro.dynamics.profiles import smoothstep, smoothstep_slope


class TestSmoothstep:
    def test_endpoints(self):
        assert smoothstep(0.0) == 0.0
        assert smoothstep(1.0) == 1.0

    def test_midpoint(self):
        assert smoothstep(0.5) == pytest.approx(0.5)

    def test_clamps_outside(self):
        assert smoothstep(-1.0) == 0.0
        assert smoothstep(2.0) == 1.0

    def test_monotone(self):
        values = [smoothstep(i / 100) for i in range(101)]
        assert all(b >= a for a, b in zip(values, values[1:]))


class TestSlope:
    def test_zero_at_ends(self):
        assert smoothstep_slope(0.0) == 0.0
        assert smoothstep_slope(1.0) == 0.0

    def test_peak_at_center(self):
        assert smoothstep_slope(0.5) == pytest.approx(1.5)

    def test_matches_finite_difference(self):
        h = 1e-6
        for p in (0.2, 0.5, 0.8):
            numeric = (smoothstep(p + h) - smoothstep(p - h)) / (2 * h)
            assert smoothstep_slope(p) == pytest.approx(numeric, rel=1e-4)
