"""K-frame confirmation tracking."""

import pytest

from repro.errors import ConfigurationError
from repro.geometry.vec import Vec2
from repro.perception.detection import Detection
from repro.perception.tracker import ConfirmationTracker


def det(actor: str, x: float, y: float = 0.0, t: float = 0.0,
        camera: str = "front_120") -> Detection:
    return Detection(
        actor_id=actor, camera=camera, time=t,
        position=Vec2(x, y), true_speed=10.0, true_heading=0.0,
    )


class TestConfirmation:
    def test_needs_k_consecutive_frames(self):
        tracker = ConfirmationTracker(confirmation_hits=5)
        for i in range(4):
            tracker.update(i * 0.1, [det("a", 10 + i, t=i * 0.1)])
            assert not tracker.tracks["a"].confirmed
        tracker.update(0.4, [det("a", 14, t=0.4)])
        assert tracker.tracks["a"].confirmed
        assert "a" in tracker.confirmed_tracks()

    def test_k_one_confirms_immediately(self):
        tracker = ConfirmationTracker(confirmation_hits=1)
        tracker.update(0.0, [det("a", 10)])
        assert tracker.tracks["a"].confirmed

    def test_miss_resets_hit_count(self):
        tracker = ConfirmationTracker(confirmation_hits=3, max_misses=5)
        tracker.update(0.0, [det("a", 10, t=0.0)])
        tracker.update(0.1, [det("a", 11, t=0.1)])
        tracker.update(0.2, [], expected=["a"])  # miss
        tracker.update(0.3, [det("a", 13, t=0.3)])
        tracker.update(0.4, [det("a", 14, t=0.4)])
        assert not tracker.tracks["a"].confirmed
        tracker.update(0.5, [det("a", 15, t=0.5)])
        assert tracker.tracks["a"].confirmed

    def test_out_of_coverage_not_a_miss(self):
        tracker = ConfirmationTracker(confirmation_hits=3)
        tracker.update(0.0, [det("a", 10)])
        # Frame that could not have seen "a": no penalty.
        tracker.update(0.1, [], expected=[])
        assert tracker.tracks["a"].misses == 0

    def test_track_dropped_after_max_misses(self):
        tracker = ConfirmationTracker(confirmation_hits=1, max_misses=2)
        tracker.update(0.0, [det("a", 10)])
        tracker.update(0.1, [], expected=["a"])
        assert "a" in tracker.tracks
        tracker.update(0.2, [], expected=["a"])
        assert "a" not in tracker.tracks

    def test_same_instant_views_count_once(self):
        # Two cameras seeing the actor in the same frame batch (or two
        # batches at the same capture time) add one hit, not two.
        tracker = ConfirmationTracker(confirmation_hits=3)
        tracker.update(0.0, [det("a", 10, camera="front_60"),
                             det("a", 10, camera="front_120")])
        assert tracker.tracks["a"].hits == 1
        tracker.update(0.0, [det("a", 10, camera="left")])
        assert tracker.tracks["a"].hits == 1


class TestVelocityEstimation:
    def test_velocity_from_positions(self):
        tracker = ConfirmationTracker(confirmation_hits=1)
        tracker.update(0.0, [det("a", 10, t=0.0)])
        tracker.update(1.0, [det("a", 20, t=1.0)])
        track = tracker.tracks["a"]
        assert track.velocity.x == pytest.approx(10.0)
        assert track.speed == pytest.approx(10.0)

    def test_window_averages_noise(self):
        tracker = ConfirmationTracker(confirmation_hits=1, velocity_window=1.0)
        # 10 m/s with +-0.3 m alternating noise at 10 FPS.
        for i in range(11):
            noise = 0.3 if i % 2 == 0 else -0.3
            tracker.update(i * 0.1, [det("a", 10 + i * 1.0 + noise, t=i * 0.1)])
        track = tracker.tracks["a"]
        assert track.speed == pytest.approx(10.0, abs=1.0)

    def test_heading_follows_motion(self):
        tracker = ConfirmationTracker(confirmation_hits=1)
        tracker.update(0.0, [det("a", 0, 0, t=0.0)])
        tracker.update(1.0, [det("a", 0, 10, t=1.0)])
        import math
        assert tracker.tracks["a"].heading == pytest.approx(math.pi / 2)

    def test_accel_estimated_from_speed_trend(self):
        tracker = ConfirmationTracker(confirmation_hits=1, velocity_window=0.5)
        # Decelerating at 2 m/s^2 from 20 m/s, sampled at 2 FPS.
        x, v = 0.0, 20.0
        for i in range(14):
            t = i * 0.5
            tracker.update(t, [det("a", x, t=t)])
            x += v * 0.5 - 0.25 * 2.0 * 0.25 * 2  # integrate a=-2
            v -= 1.0
        assert tracker.tracks["a"].accel == pytest.approx(-2.0, abs=0.7)


class TestValidation:
    def test_rejects_zero_hits(self):
        with pytest.raises(ConfigurationError):
            ConfirmationTracker(confirmation_hits=0)

    def test_rejects_zero_misses(self):
        with pytest.raises(ConfigurationError):
            ConfirmationTracker(max_misses=0)

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            ConfirmationTracker(velocity_window=0.0)
