"""The tolerable-latency search (Equations 1-3)."""

import pytest

from repro.core.ego_profile import EgoMotion
from repro.core.latency import LatencySearch, SearchStrategy
from repro.core.parameters import ZhuyiParams
from repro.core.threat import FixedGapThreat


def ego(speed: float, accel: float = 0.0,
        params: ZhuyiParams | None = None) -> EgoMotion:
    return EgoMotion.from_state(
        speed, accel, params if params is not None else ZhuyiParams()
    )


@pytest.fixture
def search(params):
    return LatencySearch(params=params)


#: l0 of a stack already running at the grid maximum: alpha clamps to 0.
NO_ALPHA = 1.0


class TestClearCases:
    def test_huge_gap_gives_l_max(self, search, params):
        result = search.tolerable_latency(
            ego(10.0), FixedGapThreat(gap=500.0, actor_speed=8.0), NO_ALPHA
        )
        assert result.latency == pytest.approx(params.l_max)
        assert not result.unavoidable

    def test_wall_in_face_is_unavoidable(self, search):
        # Stopped actor 5 m ahead at highway speed: nothing helps.
        result = search.tolerable_latency(
            ego(30.0), FixedGapThreat(gap=5.0, actor_speed=0.0), NO_ALPHA
        )
        assert result.unavoidable
        assert result.latency is None
        assert result.latency_or_zero() == 0.0

    def test_stopped_ego_always_safe(self, search, params):
        result = search.tolerable_latency(
            ego(0.0), FixedGapThreat(gap=1.0, actor_speed=0.0), NO_ALPHA
        )
        assert result.latency == pytest.approx(params.l_max)

    def test_faster_actor_never_binds(self, search, params):
        # Ego slower than the actor: Eq 2 already holds, gap grows.
        result = search.tolerable_latency(
            ego(10.0), FixedGapThreat(gap=20.0, actor_speed=20.0), NO_ALPHA
        )
        assert result.latency == pytest.approx(params.l_max)

    def test_intermediate_case_in_grid(self, search, params):
        # 25 mph toward a stopped actor 30 m away needs a quick but
        # achievable reaction (the Figure 8 band boundary case).
        result = search.tolerable_latency(
            ego(11.2), FixedGapThreat(gap=30.0, actor_speed=0.0), NO_ALPHA
        )
        assert result.latency is not None
        assert params.l_min < result.latency <= params.l_max


class TestStoppedActorClosedForm:
    """Against a stopped actor the feasibility condition is analytic:
    v*t_r + v^2/(2*a_b) <= C1*gap."""

    @pytest.mark.parametrize("speed,gap", [(10.0, 40.0), (20.0, 90.0),
                                           (15.0, 50.0), (30.0, 150.0)])
    def test_matches_closed_form(self, params, speed, gap):
        search = LatencySearch(params=params)
        result = search.tolerable_latency(
            ego(speed), FixedGapThreat(gap=gap, actor_speed=0.0), NO_ALPHA
        )
        budget = params.c1 * gap - speed**2 / (2.0 * params.c3)
        feasible = [
            l for l in params.latency_grid() if speed * l <= budget + 1e-9
        ]
        if feasible:
            assert result.latency == pytest.approx(max(feasible))
        else:
            assert result.unavoidable


class TestAlphaEffect:
    def test_smaller_l0_shrinks_latency(self, params):
        # A faster-running stack (small l0) implies a larger alpha at any
        # probed l, hence more conservative latencies.
        search = LatencySearch(params=params)
        threat = FixedGapThreat(gap=60.0, actor_speed=0.0)
        slow_stack = search.tolerable_latency(ego(15.0), threat, 1.0)
        fast_stack = search.tolerable_latency(ego(15.0), threat, 1.0 / 30.0)
        assert fast_stack.latency <= slow_stack.latency

    def test_k_zero_matches_no_alpha(self):
        params = ZhuyiParams(k=0)
        search = LatencySearch(params=params)
        threat = FixedGapThreat(gap=60.0, actor_speed=0.0)
        with_k0 = search.tolerable_latency(ego(15.0), threat, 1.0 / 30.0)
        baseline = search.tolerable_latency(ego(15.0), threat, params.l_max)
        assert with_k0.latency == baseline.latency


class TestEgoStateEffects:
    def test_accelerating_ego_more_conservative(self, search):
        threat = FixedGapThreat(gap=50.0, actor_speed=0.0)
        cruising = search.tolerable_latency(ego(15.0, 0.0), threat, NO_ALPHA)
        accelerating = search.tolerable_latency(ego(15.0, 2.0), threat, NO_ALPHA)
        assert accelerating.latency <= cruising.latency

    def test_braking_ego_more_permissive(self, search):
        threat = FixedGapThreat(gap=40.0, actor_speed=0.0)
        cruising = search.tolerable_latency(ego(15.0, 0.0), threat, NO_ALPHA)
        braking = search.tolerable_latency(ego(15.0, -6.0), threat, NO_ALPHA)
        assert braking.latency >= cruising.latency


class TestStrategies:
    def test_paper_never_less_conservative_than_exact(self, params):
        # The M-bounded Eq 3 search may miss a feasible t_n; it must never
        # report a larger tolerable latency than the dense point check.
        exact = LatencySearch(
            params=params, strategy=SearchStrategy.EXACT, strict=False
        )
        paper = LatencySearch(params=params, strategy=SearchStrategy.PAPER)
        cases = [
            (ego(10.0), FixedGapThreat(gap=30.0, actor_speed=0.0)),
            (ego(25.0), FixedGapThreat(gap=80.0, actor_speed=10.0)),
            (ego(30.0), FixedGapThreat(gap=120.0, actor_speed=20.0)),
            (ego(15.0), FixedGapThreat(gap=25.0, actor_speed=5.0)),
        ]
        for motion, threat in cases:
            le = exact.tolerable_latency(motion, threat, NO_ALPHA).latency_or_zero()
            lp = paper.tolerable_latency(motion, threat, NO_ALPHA).latency_or_zero()
            assert lp <= le + 1e-9

    def test_strict_never_more_permissive_than_point(self, params):
        strict = LatencySearch(params=params, strict=True)
        point = LatencySearch(params=params, strict=False)
        cases = [
            (ego(10.0), FixedGapThreat(gap=30.0, actor_speed=0.0)),
            (ego(30.0), FixedGapThreat(gap=60.0, actor_speed=25.0)),
            (ego(20.0), FixedGapThreat(gap=45.0, actor_speed=12.0)),
        ]
        for motion, threat in cases:
            ls = strict.tolerable_latency(motion, threat, NO_ALPHA).latency_or_zero()
            lp = point.tolerable_latency(motion, threat, NO_ALPHA).latency_or_zero()
            assert ls <= lp + 1e-9

    def test_check_time_not_before_reaction(self, params):
        for strategy in SearchStrategy:
            search = LatencySearch(params=params, strategy=strategy)
            result = search.tolerable_latency(
                ego(12.0), FixedGapThreat(gap=60.0, actor_speed=0.0), NO_ALPHA
            )
            if result.latency is None:
                continue
            reaction = result.latency + params.confirmation_delay(
                result.latency, NO_ALPHA
            )
            assert result.check_time >= reaction - 1e-9

    def test_iterations_reported(self, search):
        result = search.tolerable_latency(
            ego(20.0), FixedGapThreat(gap=70.0, actor_speed=0.0), NO_ALPHA
        )
        assert result.iterations > 0

    def test_paper_iterations_bounded_by_m_times_l(self, params):
        paper = LatencySearch(params=params, strategy=SearchStrategy.PAPER)
        result = paper.tolerable_latency(
            ego(30.0), FixedGapThreat(gap=5.0, actor_speed=0.0), NO_ALPHA
        )
        assert result.iterations <= params.m * params.num_latency_steps


class TestMonotonicity:
    def test_latency_grows_with_gap(self, search):
        latencies = []
        for gap in (10.0, 30.0, 60.0, 120.0, 240.0):
            result = search.tolerable_latency(
                ego(20.0), FixedGapThreat(gap=gap, actor_speed=0.0), NO_ALPHA
            )
            latencies.append(result.latency_or_zero())
        assert latencies == sorted(latencies)

    def test_latency_shrinks_with_ego_speed(self, search):
        latencies = []
        for speed in (5.0, 10.0, 20.0, 30.0):
            result = search.tolerable_latency(
                ego(speed), FixedGapThreat(gap=60.0, actor_speed=0.0), NO_ALPHA
            )
            latencies.append(result.latency_or_zero())
        assert latencies == sorted(latencies, reverse=True)

    def test_latency_grows_with_actor_speed(self, search):
        latencies = []
        for actor_speed in (0.0, 5.0, 10.0, 15.0):
            result = search.tolerable_latency(
                ego(20.0),
                FixedGapThreat(gap=50.0, actor_speed=actor_speed),
                NO_ALPHA,
            )
            latencies.append(result.latency_or_zero())
        assert latencies == sorted(latencies)
