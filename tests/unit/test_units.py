"""Unit conversions and angle wrapping."""

import math

import pytest

from repro import units


class TestSpeedConversions:
    def test_60_mph_is_26_82_mps(self):
        assert units.mph_to_mps(60.0) == pytest.approx(26.8224)

    def test_mph_round_trip(self):
        assert units.mps_to_mph(units.mph_to_mps(37.5)) == pytest.approx(37.5)

    def test_kmh_to_mps(self):
        assert units.kmh_to_mps(36.0) == pytest.approx(10.0)

    def test_kmh_round_trip(self):
        assert units.mps_to_kmh(units.kmh_to_mps(88.0)) == pytest.approx(88.0)

    def test_zero_speed(self):
        assert units.mph_to_mps(0.0) == 0.0


class TestTimeConversions:
    def test_seconds_to_ms_rounds(self):
        assert units.seconds_to_ms(1.2345) == 1234
        assert units.seconds_to_ms(1.2355) == 1236

    def test_ms_to_seconds(self):
        assert units.ms_to_seconds(330.0) == pytest.approx(0.33)

    def test_ms_round_trip(self):
        assert units.ms_to_seconds(units.seconds_to_ms(2.5)) == pytest.approx(2.5)


class TestAngles:
    def test_deg_rad_round_trip(self):
        assert units.rad_to_deg(units.deg_to_rad(123.0)) == pytest.approx(123.0)

    def test_wrap_identity_in_range(self):
        assert units.wrap_angle(1.0) == pytest.approx(1.0)
        assert units.wrap_angle(-1.0) == pytest.approx(-1.0)

    def test_wrap_above_pi(self):
        assert units.wrap_angle(math.pi + 0.1) == pytest.approx(-math.pi + 0.1)

    def test_wrap_below_minus_pi(self):
        assert units.wrap_angle(-math.pi - 0.1) == pytest.approx(math.pi - 0.1)

    def test_wrap_pi_maps_to_pi(self):
        assert units.wrap_angle(math.pi) == pytest.approx(math.pi)

    def test_wrap_many_turns(self):
        assert units.wrap_angle(7.0 * math.pi) == pytest.approx(math.pi)

    def test_wrap_zero(self):
        assert units.wrap_angle(0.0) == 0.0


class TestTimeGridCount:
    def test_exact_multiple_includes_endpoint(self):
        assert units.time_grid_count(8.0, 0.25) == 33

    def test_near_multiple_below_excludes_endpoint(self):
        assert units.time_grid_count(1.0 - 5e-10, 0.25) == 4

    def test_zero_span_is_one_sample(self):
        assert units.time_grid_count(0.0, 0.1) == 1

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            units.time_grid_count(1.0, 0.0)
        with pytest.raises(ValueError):
            units.time_grid_count(-1.0, 0.1)
