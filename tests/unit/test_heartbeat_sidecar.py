"""Heartbeat sidecar timing consistency (PR 10 satellite).

The original ``_write_heartbeat`` read ``time.time()`` twice — once for
``elapsed`` and once for ``updated`` — so ``updated - elapsed`` drifted
from the true start instant. The fix reads the clock once; these tests
pin that and the sidecar's atomic-replace publication.
"""

from __future__ import annotations

import json

import pytest

from repro.store import replay


class TickingClock:
    """A fake ``time.time`` that advances on every read.

    Any implementation reading the clock twice for one heartbeat gets
    two different instants and fails the consistency assertion below.
    """

    def __init__(self, start: float):
        self.now = start

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


def test_heartbeat_uses_one_instant_for_elapsed_and_updated(
    tmp_path, monkeypatch
):
    started = 1000.0
    monkeypatch.setattr(replay.time, "time", TickingClock(started + 40.0))
    path = tmp_path / "heartbeat.json"
    replay._write_heartbeat(
        path,
        done=3,
        total=10,
        last_index=2,
        started=started,
        shard=(1, 4),
    )
    payload = json.loads(path.read_text())
    assert payload["kind"] == "heartbeat"
    assert payload["rows_done"] == 3
    assert payload["rows_total"] == 10
    assert payload["last_index"] == 2
    assert payload["shard"] == {"index": 1, "count": 4}
    # One clock read: updated minus elapsed reconstructs the start
    # instant exactly. With two reads the ticking clock makes this off
    # by the inter-read tick.
    assert payload["updated"] - payload["elapsed"] == pytest.approx(
        started, abs=0.0
    )


def test_heartbeat_is_always_one_complete_json_object(tmp_path):
    path = tmp_path / "heartbeat.json"
    replay._write_heartbeat(
        path, done=0, total=5, last_index=None, started=0.0, shard=None
    )
    first = path.read_text()
    assert json.loads(first)["rows_done"] == 0
    replay._write_heartbeat(
        path, done=5, total=5, last_index=4, started=0.0, shard=None
    )
    assert json.loads(path.read_text())["rows_done"] == 5
    # Atomic replace: no staging files left beside the sidecar.
    assert list(tmp_path.glob("*.tmp-*")) == []
