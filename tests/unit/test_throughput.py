"""Figure 1 throughput model."""

import pytest

from repro.analysis.throughput import (
    PERCEPTION_MODELS,
    SOC_CATALOG,
    PerceptionModel,
    ThroughputModel,
)
from repro.errors import ConfigurationError


class TestDemand:
    def test_paper_configuration(self):
        # 388 GOPs * 30 FPR * 12 cams * 1.2 = 167.6 TOPS.
        model = ThroughputModel()
        assert model.demand_tops() == pytest.approx(167.6, abs=0.1)

    def test_exceeds_xavier(self):
        model = ThroughputModel()
        assert not model.feasible_on(SOC_CATALOG["xavier"])
        assert model.utilization(SOC_CATALOG["xavier"]) > 5.0

    def test_fits_orin_alone(self):
        # The raw detection demand fits Orin, but uses more than half of
        # it — the paper's motivation that perception alone dominates.
        model = ThroughputModel()
        assert model.feasible_on(SOC_CATALOG["orin"])
        assert model.utilization(SOC_CATALOG["orin"]) > 0.5

    def test_demand_scales_with_fpr(self):
        model = ThroughputModel()
        assert model.demand_at_fpr(15.0) == pytest.approx(
            model.demand_tops() / 2.0
        )

    def test_smaller_model_much_cheaper(self):
        small = ThroughputModel(model=PERCEPTION_MODELS["ssd-small"])
        assert small.demand_tops() < 10.0

    def test_figure1_rows(self):
        rows = ThroughputModel().figure1_rows()
        assert len(rows) == 3
        labels = [label for label, _ in rows]
        assert any("Xavier" in label for label in labels)
        assert any("Orin" in label for label in labels)


class TestValidation:
    def test_rejects_zero_cameras(self):
        with pytest.raises(ConfigurationError):
            ThroughputModel(cameras=0)

    def test_rejects_discount_factor(self):
        with pytest.raises(ConfigurationError):
            ThroughputModel(extra_models_factor=0.8)

    def test_rejects_bad_model(self):
        with pytest.raises(ConfigurationError):
            PerceptionModel("x", -1.0, (10, 10))

    def test_rejects_bad_fpr_query(self):
        with pytest.raises(ConfigurationError):
            ThroughputModel().demand_at_fpr(0.0)
