"""Vec2 value-type behaviour."""

import math

import pytest

from repro.geometry.vec import Vec2


class TestArithmetic:
    def test_add(self):
        assert Vec2(1, 2) + Vec2(3, 4) == Vec2(4, 6)

    def test_sub(self):
        assert Vec2(5, 5) - Vec2(2, 3) == Vec2(3, 2)

    def test_scalar_multiply_both_sides(self):
        assert Vec2(1, -2) * 3 == Vec2(3, -6)
        assert 3 * Vec2(1, -2) == Vec2(3, -6)

    def test_divide(self):
        assert Vec2(4, 6) / 2 == Vec2(2, 3)

    def test_negate(self):
        assert -Vec2(1, -2) == Vec2(-1, 2)


class TestProducts:
    def test_dot_orthogonal(self):
        assert Vec2(1, 0).dot(Vec2(0, 5)) == 0.0

    def test_dot_parallel(self):
        assert Vec2(2, 0).dot(Vec2(3, 0)) == 6.0

    def test_cross_sign(self):
        assert Vec2(1, 0).cross(Vec2(0, 1)) == 1.0
        assert Vec2(0, 1).cross(Vec2(1, 0)) == -1.0


class TestNorms:
    def test_norm_345(self):
        assert Vec2(3, 4).norm() == pytest.approx(5.0)

    def test_norm_sq(self):
        assert Vec2(3, 4).norm_sq() == pytest.approx(25.0)

    def test_distance(self):
        assert Vec2(1, 1).distance_to(Vec2(4, 5)) == pytest.approx(5.0)

    def test_normalized_unit_length(self):
        assert Vec2(10, -10).normalized().norm() == pytest.approx(1.0)

    def test_normalized_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Vec2(0, 0).normalized()


class TestRotations:
    def test_perp_is_ccw(self):
        assert Vec2(1, 0).perp() == Vec2(0, 1)

    def test_rotate_quarter_turn(self):
        rotated = Vec2(1, 0).rotated(math.pi / 2)
        assert rotated.x == pytest.approx(0.0, abs=1e-12)
        assert rotated.y == pytest.approx(1.0)

    def test_angle(self):
        assert Vec2(0, 2).angle() == pytest.approx(math.pi / 2)

    def test_unit_matches_angle(self):
        v = Vec2.unit(0.7)
        assert v.angle() == pytest.approx(0.7)
        assert v.norm() == pytest.approx(1.0)

    def test_from_polar(self):
        v = Vec2.from_polar(2.0, math.pi)
        assert v.x == pytest.approx(-2.0)
        assert v.y == pytest.approx(0.0, abs=1e-12)


class TestMisc:
    def test_lerp_midpoint(self):
        assert Vec2(0, 0).lerp(Vec2(2, 4), 0.5) == Vec2(1, 2)

    def test_lerp_endpoints(self):
        a, b = Vec2(1, 1), Vec2(5, 9)
        assert a.lerp(b, 0.0) == a
        assert a.lerp(b, 1.0) == b

    def test_as_tuple(self):
        assert Vec2(1.5, -2.5).as_tuple() == (1.5, -2.5)

    def test_hashable(self):
        assert len({Vec2(1, 2), Vec2(1, 2), Vec2(3, 4)}) == 2
