"""The FPR-scheduled perception pipeline."""

import pytest

from repro.dynamics.state import VehicleSpec, VehicleState
from repro.errors import ConfigurationError
from repro.geometry.vec import Vec2
from repro.perception.detection import DetectionModel
from repro.perception.pipeline import MIN_FPR, PerceptionSystem


SPEC = VehicleSpec()


def ego_at(x: float = 0.0) -> VehicleState:
    return VehicleState(Vec2(x, 0), 0.0, 10.0, 0.0)


def static_actor(x: float, y: float = 0.0):
    return (VehicleState(Vec2(x, y), 0.0, 0.0, 0.0), SPEC)


def run_system(system: PerceptionSystem, duration: float, actors,
               dt: float = 0.01):
    t = 0.0
    while t <= duration:
        system.step(t, ego_at(), actors)
        t += dt


class TestScheduling:
    def test_capture_count_matches_fpr(self):
        system = PerceptionSystem(
            detection_model=DetectionModel(position_noise=0.0), fpr=10.0
        )
        run_system(system, 1.999, {"a": static_actor(50)})
        # 10 FPR for 2 s: 20 frames per camera.
        assert system.frames_captured("front_120") == 20

    def test_per_camera_rates(self):
        rates = {
            "front_60": 5.0, "front_120": 20.0,
            "left": 10.0, "right": 10.0, "rear": 5.0,
        }
        system = PerceptionSystem(
            detection_model=DetectionModel(position_noise=0.0), fpr=rates
        )
        run_system(system, 0.999, {"a": static_actor(50)})
        assert system.frames_captured("front_120") == 20
        assert system.frames_captured("front_60") == 5

    def test_missing_camera_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            PerceptionSystem(fpr={"front_120": 10.0})

    def test_rate_clamped_to_floor(self):
        system = PerceptionSystem(fpr=30.0)
        system.set_fpr("left", 0.0)
        assert system.fpr("left") == MIN_FPR

    def test_unknown_camera_raises(self):
        system = PerceptionSystem(fpr=30.0)
        with pytest.raises(ConfigurationError):
            system.set_fpr("nope", 10.0)

    def test_processing_latency_is_frame_period(self):
        system = PerceptionSystem(fpr=10.0)
        assert system.processing_latency("front_120") == pytest.approx(0.1)


class TestLatencyAndConfirmation:
    def test_confirmation_delay_scales_with_fpr(self):
        # K=5 at 10 FPR: 5 frames at 0.1 s + one 0.1 s processing delay:
        # the actor must be absent from the world model before ~0.5 s and
        # present shortly after.
        system = PerceptionSystem(
            detection_model=DetectionModel(position_noise=0.0),
            fpr=10.0,
            confirmation_hits=5,
        )
        actors = {"a": static_actor(50)}
        seen_at = None
        t = 0.0
        while t <= 2.0 and seen_at is None:
            system.step(t, ego_at(), actors)
            if "a" in system.world_model:
                seen_at = t
            t += 0.01
        assert seen_at is not None
        assert 0.45 <= seen_at <= 0.65

    def test_results_delayed_by_processing(self):
        # With K=1 the first frame (t=0) becomes visible only after the
        # processing latency (1 frame period).
        system = PerceptionSystem(
            detection_model=DetectionModel(position_noise=0.0),
            fpr=2.0,
            confirmation_hits=1,
        )
        actors = {"a": static_actor(50)}
        system.step(0.0, ego_at(), actors)
        assert "a" not in system.world_model
        system.step(0.49, ego_at(), actors)
        assert "a" not in system.world_model
        system.step(0.51, ego_at(), actors)
        assert "a" in system.world_model

    def test_world_model_drops_lost_actor(self):
        # An actor that leaves every camera's coverage ages out of the
        # world model even though no in-coverage miss is ever counted.
        system = PerceptionSystem(
            detection_model=DetectionModel(position_noise=0.0),
            fpr=10.0,
            confirmation_hits=1,
            max_misses=2,
        )
        actors = {"a": static_actor(50)}
        run_system(system, 0.5, actors)
        assert "a" in system.world_model
        gone = {"a": static_actor(-500)}
        t = 0.5
        while t <= 4.5:
            system.step(t, ego_at(), gone)
            t += 0.01
        assert "a" not in system.world_model

    def test_world_model_velocity_estimate(self):
        system = PerceptionSystem(
            detection_model=DetectionModel(position_noise=0.0),
            fpr=10.0,
            confirmation_hits=1,
        )
        t = 0.0
        while t <= 2.0:
            actors = {
                "a": (VehicleState(Vec2(50 + 7.0 * t, 0), 0.0, 7.0, 0.0), SPEC)
            }
            system.step(t, ego_at(), actors)
            t += 0.01
        perceived = system.world_model.get("a")
        assert perceived is not None
        assert perceived.speed == pytest.approx(7.0, abs=0.3)


class TestRepeatability:
    """The stateful-RNG footgun regression: identical runs, identical draws.

    Before the counter-keyed scheme the pipeline held one
    ``np.random.Generator`` whose stream carried across runs, so stepping
    the same pipeline object through the same inputs twice diverged.
    """

    @staticmethod
    def _collect(system, duration=1.5):
        snapshots = []
        actors = {
            "a": static_actor(50.0),
            "b": static_actor(40.0, 3.0),
        }
        t = 0.0
        while t <= duration:
            system.step(t, ego_at(), actors)
            snapshots.append(
                {
                    actor_id: system.world_model.get(actor_id).position
                    for actor_id in ("a", "b")
                    if actor_id in system.world_model
                }
            )
            t += 0.01
        return snapshots

    def test_reset_run_is_bit_identical(self):
        system = PerceptionSystem(
            detection_model=DetectionModel(position_noise=0.3, miss_rate=0.2),
            fpr=10.0,
            confirmation_hits=2,
            seed=13,
        )
        first = self._collect(system)
        system.reset()
        second = self._collect(system)
        assert first == second
        # Sanity: noise actually perturbed something (non-trivial run).
        assert any(
            snap.get("a") is not None and snap["a"] != Vec2(50.0, 0.0)
            for snap in first
        )

    def test_reset_restores_schedule_and_rates(self):
        system = PerceptionSystem(fpr=10.0)
        run_system(system, 0.5, {"a": static_actor(50)})
        system.set_fpr("left", 60.0)
        system.reset()
        assert system.frames_captured() == 0
        assert system.fpr("left") == 10.0
        assert len(system.world_model) == 0

    def test_two_fresh_systems_agree(self):
        make = lambda: PerceptionSystem(  # noqa: E731 - tiny local helper
            detection_model=DetectionModel(position_noise=0.3, miss_rate=0.2),
            fpr=10.0,
            confirmation_hits=2,
            seed=13,
        )
        assert self._collect(make()) == self._collect(make())


class TestValidation:
    def test_rejects_negative_latency_factor(self):
        with pytest.raises(ConfigurationError):
            PerceptionSystem(latency_factor=-1.0)
