"""Work prioritization: frame-budget allocation and actor ranking."""

import pytest

from repro.core.evaluator import EvaluationTick
from repro.core.fpr import CameraEstimate
from repro.errors import ConfigurationError
from repro.system.prioritization import (
    WorkPrioritizer,
    allocate_frame_budget,
    rank_actors,
)


class TestAllocation:
    def test_budget_conserved(self):
        allocation = allocate_frame_budget(
            {"a": 10.0, "b": 2.0, "c": 1.0}, total_budget=45.0
        )
        assert sum(allocation.values()) == pytest.approx(45.0)

    def test_floors_respected(self):
        estimates = {"a": 10.0, "b": 2.0, "c": 1.0}
        allocation = allocate_frame_budget(estimates, total_budget=45.0)
        for camera, estimate in estimates.items():
            assert allocation[camera] >= estimate

    def test_surplus_proportional_to_demand(self):
        allocation = allocate_frame_budget(
            {"a": 10.0, "b": 5.0}, total_budget=30.0
        )
        # Surplus 15 split 2:1.
        assert allocation["a"] == pytest.approx(20.0)
        assert allocation["b"] == pytest.approx(10.0)

    def test_degraded_mode_scales_down(self):
        allocation = allocate_frame_budget(
            {"a": 20.0, "b": 20.0}, total_budget=20.0
        )
        assert sum(allocation.values()) == pytest.approx(20.0)
        assert allocation["a"] == pytest.approx(10.0)

    def test_max_fpr_cap(self):
        allocation = allocate_frame_budget(
            {"a": 29.0, "b": 1.0}, total_budget=90.0, max_fpr=30.0
        )
        assert allocation["a"] <= 30.0

    def test_min_fpr_floor(self):
        allocation = allocate_frame_budget(
            {"a": 0.2, "b": 10.0}, total_budget=20.0, min_fpr=1.0
        )
        assert allocation["a"] >= 1.0

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            allocate_frame_budget({}, total_budget=10.0)

    def test_rejects_zero_budget(self):
        with pytest.raises(ConfigurationError):
            allocate_frame_budget({"a": 1.0}, total_budget=0.0)


class TestActorRanking:
    def test_smaller_latency_more_important(self):
        order = rank_actors({"slow": 0.9, "fast": 0.1, "mid": 0.5})
        assert order == ["fast", "mid", "slow"]

    def test_unavoidable_first(self):
        order = rank_actors({"a": 0.5, "doomed": None})
        assert order[0] == "doomed"

    def test_empty_ok(self):
        assert rank_actors({}) == []


class TestWorkPrioritizer:
    def _tick(self, fprs: dict) -> EvaluationTick:
        return EvaluationTick(
            time=0.0,
            camera_estimates={
                name: CameraEstimate(
                    camera=name, latency=1.0 / fpr, fpr=fpr,
                    binding_actor=None, unavoidable=False, actor_count=0,
                )
                for name, fpr in fprs.items()
            },
            actor_latencies={},
            ego_speed=20.0,
            ego_accel=0.0,
        )

    def test_allocation_from_tick(self):
        prioritizer = WorkPrioritizer(
            total_budget=36.0, cameras=("front_120", "left", "right")
        )
        allocation = prioritizer.allocation_for(
            self._tick({"front_120": 10.0, "left": 1.0, "right": 1.0})
        )
        assert sum(allocation.values()) == pytest.approx(36.0)
        assert allocation["front_120"] > allocation["left"]

    def test_missing_camera_estimates_rejected(self):
        prioritizer = WorkPrioritizer(total_budget=36.0, cameras=("ghost",))
        with pytest.raises(ConfigurationError):
            prioritizer.allocation_for(self._tick({"front_120": 5.0}))

    def test_rejects_no_cameras(self):
        with pytest.raises(ConfigurationError):
            WorkPrioritizer(total_budget=10.0, cameras=())
