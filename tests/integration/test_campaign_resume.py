"""Fault tolerance: kill/resume, streaming, sharding, variant cache.

The tentpole guarantees, end to end with real simulations:

* a campaign killed mid-flight and resumed via ``CampaignRunner.resume``
  produces a JSONL byte-identical to an uninterrupted run's (footer
  wall-clock aside);
* shards merged via ``CampaignResult.merge`` aggregate to the same
  Table 1 rows as the monolithic campaign;
* the cross-variant trace cache changes nothing but the clock —
  cached summaries equal per-run re-execution byte for byte.
"""

import json

import pytest

from repro.batch import (
    Campaign,
    CampaignResult,
    CampaignRunner,
    ParamVariant,
    campaign_table1,
    execute_run,
)
from repro.core.parameters import ZhuyiParams


class Killed(Exception):
    """Raised by a progress hook to simulate a mid-campaign crash."""


@pytest.fixture(scope="module")
def campaign() -> Campaign:
    # Coarse stride keeps the evaluation cheap; the guarantees under
    # test are stride-independent.
    return Campaign(
        scenarios=("cut_out", "cut_in"),
        seeds=(0, 1),
        fprs=(30.0,),
        stride=0.5,
    )


@pytest.fixture(scope="module")
def uninterrupted(campaign, tmp_path_factory):
    path = tmp_path_factory.mktemp("full") / "campaign.jsonl"
    result = CampaignRunner(workers=1).run(campaign, out=path)
    return path, result


@pytest.mark.slow
class TestKillAndResume:
    def kill_after(self, campaign, path, runs: int):
        def hook(done, total, summary):
            if done >= runs:
                raise Killed()

        with pytest.raises(Killed):
            CampaignRunner(workers=1).run(campaign, hook, out=path)

    def test_partial_file_keeps_finished_runs(self, campaign, tmp_path):
        path = tmp_path / "killed.jsonl"
        self.kill_after(campaign, path, runs=2)
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        # Header + the two completed runs were flushed; no footer.
        assert [r["kind"] for r in records] == ["campaign", "run", "run"]
        assert [r["index"] for r in records[1:]] == [0, 1]

    def test_resumed_file_byte_identical_to_uninterrupted(
        self, campaign, uninterrupted, tmp_path
    ):
        full_path, _ = uninterrupted
        path = tmp_path / "killed.jsonl"
        self.kill_after(campaign, path, runs=1)
        resumed = CampaignRunner(workers=1).resume(path)
        assert resumed.is_complete

        full_lines = full_path.read_text().splitlines()
        resumed_lines = path.read_text().splitlines()
        # Everything but the footer matches byte for byte; the footer
        # differs only in wall-clock metadata.
        assert resumed_lines[:-1] == full_lines[:-1]
        full_footer = json.loads(full_lines[-1])
        resumed_footer = json.loads(resumed_lines[-1])
        assert full_footer["kind"] == resumed_footer["kind"] == "completed"
        assert full_footer["workers"] == resumed_footer["workers"]

    def test_resume_skips_completed_runs(self, campaign, tmp_path):
        path = tmp_path / "killed.jsonl"
        self.kill_after(campaign, path, runs=2)
        executed = []
        CampaignRunner(workers=1).resume(
            path, lambda done, total, s: executed.append(s.index)
        )
        # Only the two missing runs were executed.
        assert executed == [2, 3]

    def test_resume_after_torn_final_line(self, campaign, tmp_path):
        # Chop the last run line mid-byte (what a SIGKILL mid-write
        # leaves): resume drops it, re-runs that index, and the file
        # still converges to the canonical layout.
        path = tmp_path / "torn.jsonl"
        self.kill_after(campaign, path, runs=2)
        text = path.read_text()
        path.write_text(text[: len(text) - 40])  # tear into line 3
        resumed = CampaignRunner(workers=1).resume(path)
        assert resumed.is_complete
        reloaded = CampaignResult.load_jsonl(path)
        assert reloaded.is_complete
        assert [s.index for s in reloaded.summaries] == [0, 1, 2, 3]

    def test_resume_footerless_complete_file_appends_footer(
        self, campaign, tmp_path
    ):
        # Killed after the last run line but before the footer: resume
        # executes nothing and just stamps the footer.
        path = tmp_path / "footerless.jsonl"
        self.kill_after(campaign, path, runs=4)
        assert not CampaignResult.load_jsonl(path).source_footer
        resumed = CampaignRunner(workers=1).resume(
            path, lambda *a: pytest.fail("nothing should execute")
        )
        assert resumed.is_complete
        reloaded = CampaignResult.load_jsonl(path)
        assert reloaded.source_footer

    def test_resume_schema1_file_rewrites_canonically(
        self, campaign, uninterrupted, tmp_path
    ):
        import json as json_mod

        full_path, full = uninterrupted
        # Forge a PR-1 era partial: v1 header, first two runs only.
        path = tmp_path / "v1.jsonl"
        header = {
            "kind": "campaign", "schema": 1, "workers": 1,
            "elapsed": 0.0, "grid": campaign.to_dict(),
        }
        lines = [json_mod.dumps(header)] + [
            json_mod.dumps({"kind": "run", **s.to_dict()})
            for s in full.summaries[:2]
        ]
        path.write_text("\n".join(lines) + "\n")
        resumed = CampaignRunner(workers=1).resume(path)
        assert resumed.is_complete
        # The file is now canonical schema 2 — identical to an
        # uninterrupted run's, footer wall-clock aside.
        assert (
            path.read_text().splitlines()[:-1]
            == full_path.read_text().splitlines()[:-1]
        )
        assert not list(tmp_path.glob("*.tmp"))

    def test_crashed_rewrite_preserves_original(self, campaign, tmp_path):
        # A non-prefix partial (gap at index 0) forces the atomic
        # rewrite path; crashing mid-rewrite must leave the original
        # file byte-identical and no temp debris behind... the cached
        # expensive results survive.
        path = tmp_path / "gap.jsonl"
        full = CampaignRunner(workers=1).run(campaign)
        CampaignResult(
            campaign, full.summaries[1:3]
        ).save_jsonl(path)
        before = path.read_text()

        def crash(done, total, summary):
            raise Killed()

        with pytest.raises(Killed):
            CampaignRunner(workers=1).resume(path, crash)
        assert path.read_text() == before
        assert not list(tmp_path.glob("*.tmp"))

    def test_resume_retries_worker_error_runs(
        self, campaign, uninterrupted, tmp_path
    ):
        import json as json_mod

        full_path, full = uninterrupted
        # Forge a partial whose index-1 summary is a WorkerError (the
        # worker died — an environment accident, not a property of the
        # run): resume must re-execute it and purge the stale line.
        path = tmp_path / "crashed.jsonl"
        lines = full_path.read_text().splitlines()
        crashed = {
            "kind": "run",
            **full.summaries[1].to_dict(),
        }
        crashed.update(
            collided=False, max_fpr=None, max_total_fpr=None,
            fraction_of_provision=None, camera_max_fpr={}, ticks=0,
            duration=0.0, collision_time=None,
            error="WorkerError: BrokenProcessPool",
        )
        path.write_text(
            "\n".join([lines[0], lines[1], json_mod.dumps(crashed)]) + "\n"
        )
        executed = []
        resumed = CampaignRunner(workers=1).resume(
            path, lambda done, total, s: executed.append(s.index)
        )
        assert 1 in executed  # the crashed cell re-ran
        assert not resumed.failures()
        # File converged to the canonical uninterrupted layout.
        assert path.read_text().splitlines()[:-1] == lines[:-1]

    def test_resume_keeps_deterministic_failures(self, campaign, tmp_path):
        import json as json_mod

        from repro.batch import RunSummary

        # A run that raised deterministically keeps its summary: the
        # whole remainder executes, index 0 is not retried.
        path = tmp_path / "failed.jsonl"
        spec = campaign.runs()[0]
        failed = RunSummary(
            index=0, scenario=spec.scenario, seed=spec.seed, fpr=spec.fpr,
            variant=spec.variant, collided=False,
            error="SimulationError: boom",
        )
        CampaignResult(campaign, [failed]).save_jsonl(path)
        executed = []
        resumed = CampaignRunner(workers=1).resume(
            path, lambda done, total, s: executed.append(s.index)
        )
        assert executed == [1, 2, 3]
        assert [s.error for s in resumed.summaries][0] == (
            "SimulationError: boom"
        )

    def test_retry_failed_reexecutes_deterministic_errors(
        self, campaign, uninterrupted, tmp_path
    ):
        from repro.batch import RunSummary

        full_path, full = uninterrupted
        # A file whose index-0 summary is a deterministic error (say, a
        # since-fixed bug) and whose index-1 summary is a WorkerError:
        # plain resume re-runs only the WorkerError cell; --retry-failed
        # forces both, converging to the clean uninterrupted file.
        path = tmp_path / "mixed.jsonl"
        spec0 = campaign.runs()[0]
        failed = RunSummary(
            index=0, scenario=spec0.scenario, seed=spec0.seed,
            fpr=spec0.fpr, variant=spec0.variant, collided=False,
            error="SimulationError: since-fixed bug",
        )
        crashed = RunSummary(
            index=1, scenario=campaign.runs()[1].scenario,
            seed=campaign.runs()[1].seed, fpr=campaign.runs()[1].fpr,
            variant=campaign.runs()[1].variant, collided=False,
            error="WorkerError: BrokenProcessPool",
        )
        CampaignResult(campaign, [failed, crashed]).save_jsonl(path)

        executed: list[int] = []
        resumed = CampaignRunner(workers=1).resume(
            path,
            lambda done, total, s: executed.append(s.index),
            retry_failed=True,
        )
        assert sorted(executed) == [0, 1, 2, 3]
        assert not resumed.failures()
        # Byte-converged to the uninterrupted file, footer aside.
        assert (
            path.read_text().splitlines()[:-1]
            == full_path.read_text().splitlines()[:-1]
        )

    def test_retry_failed_on_complete_footered_file(
        self, campaign, uninterrupted, tmp_path
    ):
        import json as json_mod

        from repro.batch import RunSummary

        full_path, full = uninterrupted
        # Complete file (footer present) whose index-2 summary errored:
        # plain resume is a no-op; retry_failed re-runs just that cell.
        path = tmp_path / "complete_with_error.jsonl"
        lines = full_path.read_text().splitlines()
        spec = campaign.runs()[2]
        errored = {
            "kind": "run",
            **RunSummary(
                index=2, scenario=spec.scenario, seed=spec.seed,
                fpr=spec.fpr, variant=spec.variant, collided=False,
                error="EstimationError: transient",
            ).to_dict(),
        }
        lines[3] = json_mod.dumps(errored)  # header + runs 0..1, then 2
        path.write_text("\n".join(lines) + "\n")

        untouched = CampaignRunner(workers=1).resume(path, None)
        assert [s.index for s in untouched.failures()] == [2]

        executed: list[int] = []
        resumed = CampaignRunner(workers=1).resume(
            path,
            lambda done, total, s: executed.append(s.index),
            retry_failed=True,
        )
        assert executed == [2]
        assert not resumed.failures()
        assert (
            path.read_text().splitlines()[:-1]
            == full_path.read_text().splitlines()[:-1]
        )

    def test_resume_of_complete_file_runs_nothing(self, uninterrupted):
        path, result = uninterrupted
        before = path.read_text()
        resumed = CampaignRunner(workers=1).resume(
            path, lambda *a: pytest.fail("nothing should execute")
        )
        assert path.read_text() == before
        assert json.dumps([s.to_dict() for s in resumed.summaries]) == (
            json.dumps([s.to_dict() for s in result.summaries])
        )


@pytest.mark.slow
class TestShardMergeParity:
    def test_merged_shards_match_monolithic_table(
        self, campaign, uninterrupted, tmp_path
    ):
        _, monolithic = uninterrupted
        parts = []
        for index in range(2):
            path = tmp_path / f"part{index}.jsonl"
            CampaignRunner(workers=1).run(
                campaign, out=path, shard=(index, 2)
            )
            parts.append(CampaignResult.load_jsonl(path))
        merged = CampaignResult.merge(parts)
        assert merged.is_complete
        assert json.dumps([s.to_dict() for s in merged.summaries]) == (
            json.dumps([s.to_dict() for s in monolithic.summaries])
        )
        assert [row.__dict__ for row in campaign_table1(merged)] == [
            row.__dict__ for row in campaign_table1(monolithic)
        ]


@pytest.mark.slow
class TestVariantCacheParity:
    def test_cached_summaries_equal_per_run_execution(self):
        campaign = Campaign(
            scenarios=("cut_in",),
            seeds=(0,),
            fprs=(30.0,),
            stride=0.5,
            variants=(
                ParamVariant("default"),
                ParamVariant("strict", ZhuyiParams(c1=0.8, c2=0.8)),
            ),
        )
        cached = CampaignRunner(workers=1).run(campaign)
        uncached = [execute_run(spec) for spec in campaign.runs()]
        assert json.dumps([s.to_dict() for s in cached.summaries]) == (
            json.dumps([s.to_dict() for s in uncached])
        )
        # The variants genuinely differ — the cache isn't collapsing them.
        by_variant = {s.variant: s.max_fpr for s in cached.summaries}
        assert by_variant["default"] != by_variant["strict"]
