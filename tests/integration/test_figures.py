"""Figures 4-7 series extraction."""

import pytest

from repro.analysis.figures import (
    decel_correlation,
    offline_figure_series,
    online_figure_series,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def fig4():
    return offline_figure_series("cut_out_fast", seed=0, stride=0.2)


@pytest.fixture(scope="module")
def fig7():
    return online_figure_series("cut_in", seed=0, period=0.2)


class TestFigure4:
    def test_collision_free_at_30(self, fig4):
        assert not fig4.collided

    def test_front_camera_tightest(self, fig4):
        # "the front camera processing requires 167 ms in some time-steps
        # ... the tolerable latency for side cameras is >= 500 ms".
        assert fig4.min_latency("front_120") < 0.2
        assert fig4.min_latency("left") >= 0.5
        assert fig4.min_latency("right") >= 0.5

    def test_times_in_milliseconds(self, fig4):
        assert fig4.times_ms[0] == 0
        assert fig4.times_ms[-1] > 10_000  # tens of seconds

    def test_strong_decel_correlation(self, fig4):
        # "a strong correlation between the front camera FPR
        # requirements and ego deceleration".
        assert decel_correlation(fig4) > 0.5

    def test_unknown_camera_rejected(self, fig4):
        with pytest.raises(ConfigurationError):
            fig4.latency("bumper_cam")


class TestFigure7:
    def test_online_mode_labelled(self, fig7):
        assert fig7.mode == "online"

    def test_estimates_bounded(self, fig7, params):
        series = fig7.latency("front_120")
        assert all(0.0 <= value <= params.l_max for value in series)

    def test_cut_in_binds_online_too(self, fig7):
        assert fig7.min_latency("front_120") < 0.5

    def test_estimates_safe_for_operation(self, fig7):
        # "the estimates are low-enough for safe operations": the run at
        # 30 FPR stayed collision-free while the demand never exceeded
        # the operating rate.
        assert not fig7.collided
        assert fig7.max_fpr("front_120") <= 30.0 + 1e-6


class TestOfflineOnlineRelationship:
    def test_same_scenario_same_event_window(self, fig4):
        # The binding moment lies inside the simulated interval, not at
        # the boundaries (the scenario script creates it).
        series = fig4.latency("front_120")
        binding = series.index(min(series))
        assert 0 < binding < len(series) - 1
