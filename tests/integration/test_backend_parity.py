"""Scalar vs batched backend: identical output on real traces.

The acceptance bar of the batched engine: a whole
:class:`EvaluationSeries` — every camera estimate, every per-actor
latency, at every tick — must be *equal*, not approximately equal,
between the two backends, on real closed-loop traces including
multi-actor density variants and curved roads. The online estimator
gets the same treatment over a perceived world model.
"""

import pytest

from repro import OfflineEvaluator, build_scenario
from repro.core.evaluator import presample_trace


def assert_series_identical(a, b):
    assert len(a.ticks) == len(b.ticks)
    for tick_a, tick_b in zip(a.ticks, b.ticks):
        assert tick_a.time == tick_b.time
        assert dict(tick_a.actor_latencies) == dict(tick_b.actor_latencies)
        assert dict(tick_a.camera_estimates) == dict(tick_b.camera_estimates)


def evaluate_both(name, stride=0.1, **evaluator_kwargs):
    scenario = build_scenario(name, seed=0)
    trace = scenario.run(fpr=30.0)
    assert not trace.has_collision, name
    samples = presample_trace(trace, stride)
    series = {}
    for backend in ("scalar", "batched"):
        evaluator = OfflineEvaluator(
            road=scenario.road,
            stride=stride,
            backend=backend,
            **evaluator_kwargs,
        )
        series[backend] = evaluator.evaluate(trace, samples=samples)
    return series


@pytest.mark.slow
class TestOfflineParity:
    def test_cut_in(self):
        series = evaluate_both("cut_in")
        assert_series_identical(series["scalar"], series["batched"])

    def test_cut_out_multi_actor(self):
        series = evaluate_both("cut_out")
        assert_series_identical(series["scalar"], series["batched"])

    def test_curved_road(self):
        series = evaluate_both("challenging_cut_in_curved")
        assert_series_identical(series["scalar"], series["batched"])

    def test_density_variant(self):
        from repro.scenarios.catalog import density_sweep

        density_sweep(counts=(4,), families=("cut_in",))
        series = evaluate_both("cut_in_dense4")
        assert_series_identical(series["scalar"], series["batched"])
        # The variant genuinely loads the engine: queued actors must be
        # estimated, not gated out.
        per_tick = [
            len(t.actor_latencies) for t in series["batched"].ticks
        ]
        assert max(per_tick) >= 3


@pytest.mark.slow
class TestOnlineParity:
    def test_online_tick_identical(self):
        from repro.core.aggregation import PercentileAggregator
        from repro.core.online import OnlineEstimator
        from repro.core.parameters import ZhuyiParams
        from repro.prediction.maneuver import ManeuverPredictor
        from repro.system import SafetyChecker, ZhuyiOnlineSystem

        ticks = {}
        for backend in ("scalar", "batched"):
            scenario = build_scenario("cut_in", seed=0)
            params = ZhuyiParams()
            system = ZhuyiOnlineSystem(
                estimator=OnlineEstimator(
                    params=params,
                    predictor=ManeuverPredictor(
                        road=scenario.road,
                        target_lane=scenario.spec.ego_lane,
                    ),
                    road=scenario.road,
                    aggregator=PercentileAggregator(90.0),
                    backend=backend,
                ),
                checker=SafetyChecker(),
                period=0.2,
            )
            scenario.run(fpr=30.0, hooks=[system])
            ticks[backend] = list(system.ticks())

        assert len(ticks["scalar"]) == len(ticks["batched"])
        for a, b in zip(ticks["scalar"], ticks["batched"]):
            assert a.time == b.time
            assert dict(a.actor_latencies) == dict(b.actor_latencies)
            assert dict(a.camera_estimates) == dict(b.camera_estimates)
