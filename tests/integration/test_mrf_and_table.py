"""MRF search and the Table 1 harness (reduced grids for test speed)."""

import pytest

from repro.analysis.table1 import Table1Config, generate_table1, render_table1
from repro.core.parameters import ZhuyiParams
from repro.errors import ConfigurationError
from repro.system.mrf import MRFResult, find_minimum_required_fpr


class TestMRFFromCache:
    def test_mrf_above_all_collisions(self):
        cache = {
            (1.0, 0): True,
            (2.0, 0): True,
            (3.0, 0): False,
            (5.0, 0): False,
        }
        result = find_minimum_required_fpr(
            "cut_out", fpr_grid=(1.0, 2.0, 3.0, 5.0), seeds=(0,),
            collision_cache=cache,
        )
        assert result.mrf == 3.0
        assert result.label == "3"
        assert result.collision_fprs == (1.0, 2.0)
        assert result.runs == 0  # everything served from the cache

    def test_all_safe_gives_below_label(self):
        cache = {(1.0, 0): False, (2.0, 0): False}
        result = find_minimum_required_fpr(
            "cut_in", fpr_grid=(1.0, 2.0), seeds=(0,), collision_cache=cache
        )
        assert result.mrf == 1.0
        assert result.label == "<1"

    def test_all_unsafe_gives_none(self):
        cache = {(1.0, 0): True, (2.0, 0): True}
        result = find_minimum_required_fpr(
            "cut_out", fpr_grid=(1.0, 2.0), seeds=(0,), collision_cache=cache
        )
        assert result.mrf is None
        assert result.label == "unsafe"

    def test_any_seed_collision_counts(self):
        cache = {
            (1.0, 0): False, (1.0, 1): True,
            (2.0, 0): False, (2.0, 1): False,
        }
        result = find_minimum_required_fpr(
            "cut_out", fpr_grid=(1.0, 2.0), seeds=(0, 1),
            collision_cache=cache,
        )
        assert result.mrf == 2.0

    def test_non_monotone_collisions_handled(self):
        # A freak collision at a higher rate pushes the MRF above it.
        cache = {(1.0, 0): False, (2.0, 0): True, (3.0, 0): False}
        result = find_minimum_required_fpr(
            "cut_out", fpr_grid=(1.0, 2.0, 3.0), seeds=(0,),
            collision_cache=cache,
        )
        assert result.mrf == 3.0

    def test_rejects_empty_grid(self):
        with pytest.raises(ConfigurationError):
            find_minimum_required_fpr("cut_out", fpr_grid=(), seeds=(0,))


@pytest.mark.slow
class TestMRFLive:
    def test_cut_out_mrf_matches_paper(self):
        result = find_minimum_required_fpr(
            "cut_out", fpr_grid=(1.0, 2.0, 3.0), seeds=(0,)
        )
        assert isinstance(result, MRFResult)
        assert result.mrf == 2.0  # the paper's value

    def test_vehicle_following_safe_at_floor(self):
        result = find_minimum_required_fpr(
            "vehicle_following", fpr_grid=(1.0, 2.0), seeds=(0,)
        )
        assert result.label == "<1"


@pytest.mark.slow
class TestTable1Harness:
    @pytest.fixture(scope="class")
    def small_table(self):
        config = Table1Config(
            scenarios=("cut_out", "vehicle_following"),
            fpr_grid=(2.0, 5.0, 30.0),
            seeds=(0,),
            params=ZhuyiParams(),
        )
        return config, generate_table1(config)

    def test_one_row_per_scenario(self, small_table):
        _, rows = small_table
        assert [row.scenario for row in rows] == [
            "cut_out", "vehicle_following"
        ]

    def test_estimates_above_mrf(self, small_table):
        # The paper's validation: estimated FPR >= MRF wherever a real
        # MRF exists (some rate actually collided; a "<x" label only
        # bounds the MRF from above).
        _, rows = small_table
        for row in rows:
            if row.mrf.mrf is None or not row.mrf.collision_fprs:
                continue
            for estimate in row.mean_estimates.values():
                if estimate is not None:
                    assert estimate >= row.mrf.mrf - 1e-6

    def test_na_below_mrf(self, small_table):
        _, rows = small_table
        cut_out = rows[0]
        assert cut_out.mean_estimates[2.0] is not None  # MRF is 2
        assert cut_out.mrf.mrf == 2.0

    def test_fraction_within_headline(self, small_table):
        _, rows = small_table
        for row in rows:
            assert row.fraction <= 0.36 + 1e-6

    def test_render_includes_all_rows(self, small_table):
        config, rows = small_table
        text = render_table1(rows, config)
        assert "cut_out" in text
        assert "vehicle_following" in text
        assert "Fraction" in text
