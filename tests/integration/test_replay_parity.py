"""Whole-trace replay: the batched array program vs the per-tick loop.

The acceptance bar of the online batch path: across every catalog
scenario — and the dense multi-actor variants that actually load the
(tick x actor x hypothesis) row batch — ``OnlineEstimator.replay`` with
``backend="batched"`` must produce an :class:`EvaluationSeries` *equal*,
not approximately equal, to the scalar per-tick reference, with the
multi-hypothesis :class:`ManeuverPredictor` supplying several futures
per actor per tick (the earlier parity suite only replayed
single-future defaults). Aggregator choices and the perception-margin
extension ride the same contract.
"""

import numpy as np
import pytest

from repro import build_scenario
from repro.core.aggregation import (
    MaxAggregator,
    MeanAggregator,
    PercentileAggregator,
)
from repro.core.online import OnlineEstimator
from repro.core.parameters import ZhuyiParams
from repro.perception.noise import PerceptionNoise
from repro.prediction.base import PredictedTrajectory
from repro.prediction.constant_accel import ConstantAccelerationPredictor
from repro.prediction.maneuver import ManeuverPredictor
from repro.scenarios.catalog import SCENARIO_NAMES, density_sweep


def build_trace(name, seed=0):
    scenario = build_scenario(name, seed=seed)
    trace = scenario.run(fpr=30.0)
    assert not trace.has_collision, name
    return scenario, trace


def assert_series_identical(a, b):
    assert len(a.ticks) == len(b.ticks)
    for tick_a, tick_b in zip(a.ticks, b.ticks):
        assert tick_a.time == tick_b.time
        assert dict(tick_a.actor_latencies) == dict(tick_b.actor_latencies)
        assert dict(tick_a.camera_estimates) == dict(tick_b.camera_estimates)


def maneuver_estimator(scenario, backend, **kwargs):
    return OnlineEstimator(
        params=kwargs.pop("params", ZhuyiParams()),
        predictor=ManeuverPredictor(
            road=scenario.road, target_lane=scenario.spec.ego_lane
        ),
        road=scenario.road,
        backend=backend,
        **kwargs,
    )


def replay_both(scenario, trace, period=0.25, **kwargs):
    return {
        backend: maneuver_estimator(scenario, backend, **kwargs).replay(
            trace, period=period
        )
        for backend in ("scalar", "batched")
    }


@pytest.mark.slow
class TestCatalogReplayParity:
    """Scalar vs batched replay across the whole catalog."""

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_catalog_scenario(self, name):
        scenario, trace = build_trace(name)
        series = replay_both(scenario, trace)
        assert_series_identical(series["scalar"], series["batched"])
        # The summaries the Figure 7 analysis reads agree exactly.
        assert series["scalar"].max_fpr() == series["batched"].max_fpr()
        assert (
            series["scalar"].max_total_fpr()
            == series["batched"].max_total_fpr()
        )

    def test_dense_multi_actor_variants(self):
        density_sweep()
        for name in ("cut_in_dense4", "challenging_cut_in_curved_dense4"):
            scenario, trace = build_trace(name)
            series = replay_both(scenario, trace)
            assert_series_identical(series["scalar"], series["batched"])
            # The queued actors genuinely load the row batch.
            per_tick = [
                len(t.actor_latencies) for t in series["batched"].ticks
            ]
            assert max(per_tick) >= 3, name


@pytest.mark.slow
class TestReplayConfigurations:
    """The parity contract holds across estimator configurations."""

    def test_aggregators(self):
        scenario, trace = build_trace("cut_in")
        for aggregator in (
            MaxAggregator(),
            MeanAggregator(),
            PercentileAggregator(90.0),
        ):
            series = replay_both(
                scenario, trace, period=0.5, aggregator=aggregator
            )
            assert_series_identical(series["scalar"], series["batched"])

    def test_gap_margin(self):
        scenario, trace = build_trace("cut_out")
        series = replay_both(scenario, trace, period=0.5, gap_margin=0.75)
        assert_series_identical(series["scalar"], series["batched"])

    def test_single_future_predictor(self):
        scenario, trace = build_trace("vehicle_following")
        series = {}
        for backend in ("scalar", "batched"):
            estimator = OnlineEstimator(
                params=ZhuyiParams(),
                predictor=ConstantAccelerationPredictor(),
                road=scenario.road,
                backend=backend,
            )
            series[backend] = estimator.replay(trace, period=0.5)
        assert_series_identical(series["scalar"], series["batched"])

    def test_predictor_without_batch_protocol_falls_back(self):
        scenario, trace = build_trace("cut_in")

        class LoopOnly:
            """A per-tick predictor: served by the stacked default."""

            def __init__(self, inner):
                self.inner = inner

            def predict(self, actor, now, horizon):
                return self.inner.predict(actor, now, horizon)

        series = {}
        for backend in ("scalar", "batched"):
            estimator = OnlineEstimator(
                params=ZhuyiParams(),
                predictor=LoopOnly(
                    ManeuverPredictor(
                        road=scenario.road,
                        target_lane=scenario.spec.ego_lane,
                    )
                ),
                road=scenario.road,
                backend=backend,
            )
            series[backend] = estimator.replay(trace, period=0.5)
        assert_series_identical(series["scalar"], series["batched"])

    def test_unbatchable_predictor_falls_back_per_tick(self):
        scenario, trace = build_trace("cut_in")

        class Ragged:
            """Alternating labels: the via-loop stacking must refuse."""

            def __init__(self, inner):
                self.inner = inner
                self.calls = 0

            def predict(self, actor, now, horizon):
                self.calls += 1
                predictions = self.inner.predict(actor, now, horizon)
                if self.calls % 2:
                    predictions = [
                        PredictedTrajectory(
                            p.trajectory, p.probability, label=p.label + "~"
                        )
                        for p in predictions
                    ]
                return predictions

        series = {}
        for backend in ("scalar", "batched"):
            estimator = OnlineEstimator(
                params=ZhuyiParams(),
                predictor=Ragged(
                    ManeuverPredictor(
                        road=scenario.road,
                        target_lane=scenario.spec.ego_lane,
                    )
                ),
                road=scenario.road,
                backend=backend,
            )
            series[backend] = estimator.replay(trace, period=0.5)
        assert_series_identical(series["scalar"], series["batched"])

    def test_predictor_with_no_futures_for_an_actor(self):
        # A predictor may deem an actor irrelevant and emit no futures
        # at all; both backends must treat it as not-a-threat rather
        # than crash or disagree.
        scenario, trace = build_trace("cut_in")

        class Selective:
            def __init__(self, inner):
                self.inner = inner

            def predict(self, actor, now, horizon):
                if actor.actor_id != "cutter":
                    return []
                return self.inner.predict(actor, now, horizon)

        assert "cutter" in trace.actor_ids()
        series = {}
        for backend in ("scalar", "batched"):
            estimator = OnlineEstimator(
                params=ZhuyiParams(),
                predictor=Selective(
                    ManeuverPredictor(
                        road=scenario.road,
                        target_lane=scenario.spec.ego_lane,
                    )
                ),
                road=scenario.road,
                backend=backend,
            )
            series[backend] = estimator.replay(trace, period=0.5)
        assert_series_identical(series["scalar"], series["batched"])

    def test_replay_grid_matches_offline_stride(self):
        # Replay ticks land on the presampler's closed-form grid.
        scenario, trace = build_trace("cut_in")
        series = maneuver_estimator(scenario, "batched").replay(
            trace, period=0.25
        )
        times = np.array([tick.time for tick in series.ticks])
        start = trace.steps[0].time
        assert np.array_equal(times, start + 0.25 * np.arange(times.size))


@pytest.mark.slow
class TestNoisyReplayParity:
    """Stochastic perception rides the same exact-equality contract.

    With counter-based draws (keyed on timestamp bits and actor id, see
    ``repro/core/rng.py``) the scalar loop and the batched array program
    sample identical misses and position perturbations, so noisy replay
    parity is *equality*, not statistics.
    """

    NOISE = PerceptionNoise(miss_rate=0.15, position_noise=0.3, seed=42)

    def test_noisy_scalar_batched_identical(self):
        scenario, trace = build_trace("cut_in", seed=1)
        series = replay_both(scenario, trace, noise=self.NOISE)
        assert_series_identical(series["scalar"], series["batched"])

    def test_noisy_dense_variant_identical(self):
        density_sweep()
        scenario, trace = build_trace("cut_in_dense4")
        series = replay_both(scenario, trace, noise=self.NOISE)
        assert_series_identical(series["scalar"], series["batched"])
        per_tick = [len(t.actor_latencies) for t in series["batched"].ticks]
        assert max(per_tick) >= 3

    def test_miss_only_and_noise_only_channels(self):
        scenario, trace = build_trace("cut_out")
        for noise in (
            PerceptionNoise(miss_rate=0.3, seed=7),
            PerceptionNoise(position_noise=0.5, seed=7),
        ):
            series = replay_both(scenario, trace, period=0.5, noise=noise)
            assert_series_identical(series["scalar"], series["batched"])

    def test_noise_actually_perturbs(self):
        # Guard against a silently disabled noise path: strong miss
        # sampling must change what the estimator sees somewhere.
        scenario, trace = build_trace("cut_in")
        clean = maneuver_estimator(scenario, "batched").replay(
            trace, period=0.25
        )
        noisy = maneuver_estimator(
            scenario,
            "batched",
            noise=PerceptionNoise(miss_rate=0.4, position_noise=0.75, seed=7),
        ).replay(trace, period=0.25)
        assert any(
            dict(a.actor_latencies) != dict(b.actor_latencies)
            for a, b in zip(clean.ticks, noisy.ticks)
        )
