"""Determinism under parallelism: workers must not change results."""

import json

import pytest

from repro.batch import Campaign, CampaignRunner


@pytest.fixture(scope="module")
def parity_campaign() -> Campaign:
    # Coarse stride keeps the evaluation cheap; determinism is
    # stride-independent.
    return Campaign(
        scenarios=("cut_out", "cut_in"),
        seeds=(0, 1),
        fprs=(30.0,),
        stride=0.5,
    )


@pytest.fixture(scope="module")
def sequential(parity_campaign):
    return CampaignRunner(workers=1).run(parity_campaign)


@pytest.fixture(scope="module")
def parallel(parity_campaign):
    return CampaignRunner(workers=2).run(parity_campaign)


@pytest.mark.slow
class TestParallelParity:
    def test_no_failures(self, sequential, parallel):
        assert not sequential.failures()
        assert not parallel.failures()

    def test_summaries_byte_identical(self, sequential, parallel):
        seq = json.dumps([s.to_dict() for s in sequential.summaries])
        par = json.dumps([s.to_dict() for s in parallel.summaries])
        assert seq == par

    def test_jsonl_run_lines_byte_identical(
        self, sequential, parallel, tmp_path
    ):
        # The footer records worker count and wall time (which differ by
        # construction); the header and every run line must match byte
        # for byte.
        seq_path = tmp_path / "seq.jsonl"
        par_path = tmp_path / "par.jsonl"
        sequential.save_jsonl(seq_path)
        parallel.save_jsonl(par_path)
        seq_lines = seq_path.read_text().splitlines()
        par_lines = par_path.read_text().splitlines()
        assert seq_lines[:-1] == par_lines[:-1]
        assert json.loads(seq_lines[-1])["kind"] == "completed"
        assert json.loads(par_lines[-1])["kind"] == "completed"

    def test_grid_fully_covered(self, parallel, parity_campaign):
        cells = {
            (s.scenario, s.seed, s.fpr) for s in parallel.summaries
        }
        assert len(parallel.summaries) == parity_campaign.size
        assert ("cut_out", 0, 30.0) in cells
        assert ("cut_in", 1, 30.0) in cells
