"""Golden regression: a small campaign reproduces Table 1's shape.

The paper's qualitative story — the cut-out family is the demand driver
while benign activity scenarios barely dent the provision — must
survive any refactor of the campaign engine or the evaluator hot path.
"""

import pytest

from repro.batch import Campaign, CampaignRunner, campaign_table1

CUT_OUT_FAMILY = ("cut_out", "cut_out_fast")
ACTIVITY = ("front_right_activity_1", "front_right_activity_2")


@pytest.fixture(scope="module")
def golden_result():
    campaign = Campaign(
        scenarios=CUT_OUT_FAMILY + ("cut_in",) + ACTIVITY,
        seeds=(0,),
        fprs=(30.0,),
        stride=0.05,
    )
    return CampaignRunner(workers=1).run(campaign)


@pytest.mark.slow
class TestTable1Shape:
    def test_all_runs_clean_at_provision(self, golden_result):
        assert not golden_result.failures()
        assert not golden_result.collisions()

    def test_cut_out_family_demands_most(self, golden_result):
        family_peak = max(
            golden_result.scenario_max_fpr(name) for name in CUT_OUT_FAMILY
        )
        for other in ("cut_in",) + ACTIVITY:
            assert family_peak > golden_result.scenario_max_fpr(other), other

    def test_activity_scenarios_stay_under_provision(self, golden_result):
        for name in ACTIVITY:
            fraction = golden_result.scenario_max_fraction(name)
            assert fraction is not None and fraction < 1.0, name

    def test_fast_cut_out_exceeds_slow(self, golden_result):
        assert golden_result.scenario_max_fpr(
            "cut_out_fast"
        ) > golden_result.scenario_max_fpr("cut_out")

    def test_rows_carry_paper_metadata(self, golden_result):
        rows = {row.scenario: row for row in campaign_table1(golden_result)}
        assert rows["cut_out"].ego_speed_mph == 20.0
        assert rows["cut_out_fast"].paper_mrf == "6"
        assert rows["front_right_activity_1"].activity["front"] is True
