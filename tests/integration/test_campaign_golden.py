"""Golden regression: a small campaign reproduces Table 1's shape.

The paper's qualitative story — the cut-out family is the demand driver
while benign activity scenarios barely dent the provision — must
survive any refactor of the campaign engine or the evaluator hot path.
A second suite pins the *curved-road* summaries to exact values: the
composite-centerline Frenet kernel sits under every corridor mask and
gate-table query of those runs, so a silent numeric shift in it (or in
the trace-level visibility tables) would move these numbers.
"""

import pytest

from repro.batch import Campaign, CampaignRunner, campaign_table1
from repro.core.evaluator import OfflineEvaluator
from repro.perception import DetectionModel, PerceptionSystem
from repro.perception.noise import PerceptionNoise
from repro.scenarios.catalog import build_scenario, density_sweep

CUT_OUT_FAMILY = ("cut_out", "cut_out_fast")
ACTIVITY = ("front_right_activity_1", "front_right_activity_2")


@pytest.fixture(scope="module")
def golden_result():
    campaign = Campaign(
        scenarios=CUT_OUT_FAMILY + ("cut_in",) + ACTIVITY,
        seeds=(0,),
        fprs=(30.0,),
        stride=0.05,
    )
    return CampaignRunner(workers=1).run(campaign)


@pytest.mark.slow
class TestTable1Shape:
    def test_all_runs_clean_at_provision(self, golden_result):
        assert not golden_result.failures()
        assert not golden_result.collisions()

    def test_cut_out_family_demands_most(self, golden_result):
        family_peak = max(
            golden_result.scenario_max_fpr(name) for name in CUT_OUT_FAMILY
        )
        for other in ("cut_in",) + ACTIVITY:
            assert family_peak > golden_result.scenario_max_fpr(other), other

    def test_activity_scenarios_stay_under_provision(self, golden_result):
        for name in ACTIVITY:
            fraction = golden_result.scenario_max_fraction(name)
            assert fraction is not None and fraction < 1.0, name

    def test_fast_cut_out_exceeds_slow(self, golden_result):
        assert golden_result.scenario_max_fpr(
            "cut_out_fast"
        ) > golden_result.scenario_max_fpr("cut_out")

    def test_rows_carry_paper_metadata(self, golden_result):
        rows = {row.scenario: row for row in campaign_table1(golden_result)}
        assert rows["cut_out"].ego_speed_mph == 20.0
        assert rows["cut_out_fast"].paper_mrf == "6"
        assert rows["front_right_activity_1"].activity["front"] is True


#: Pinned (max_fpr, max_total_fpr, fraction_of_provision) per curved
#: run at seed 0 / 30 FPR / 0.05 stride. Latencies land on the model's
#: discrete search grid, so legitimate refactors reproduce these to the
#: bit; a drift of a whole grid step means the composite Frenet kernel
#: or the corridor mask changed behaviour — exactly what this guards.
#:
#: Re-verified bit-identical when the stateful ``np.random.Generator``
#: perception streams were replaced by counter-based draws (the
#: deliberate one-time RNG break, PR 7): the sub-centimetre shifts in
#: simulated detection noise were absorbed by the discrete latency
#: search grid, so these values carried over unchanged.
CURVED_GOLDEN = {
    "challenging_cut_in_curved": (10.0, 12.0, 0.13333333333333333),
    "challenging_cut_in_curved_dense4": (
        14.999999925000001,
        16.999999925,
        0.18888888805555556,
    ),
}


@pytest.fixture(scope="module")
def curved_result():
    density_sweep(counts=(4,), families=("challenging_cut_in_curved",))
    campaign = Campaign(
        scenarios=tuple(CURVED_GOLDEN),
        seeds=(0,),
        fprs=(30.0,),
        stride=0.05,
    )
    return CampaignRunner(workers=1).run(campaign)


@pytest.mark.slow
class TestCurvedGolden:
    def test_runs_clean(self, curved_result):
        assert not curved_result.failures()
        assert not curved_result.collisions()

    @pytest.mark.parametrize("scenario", sorted(CURVED_GOLDEN))
    def test_summaries_pinned(self, curved_result, scenario):
        max_fpr, max_total, fraction = CURVED_GOLDEN[scenario]
        summary = next(
            s for s in curved_result.summaries if s.scenario == scenario
        )
        assert summary.max_fpr == pytest.approx(max_fpr, rel=1e-12)
        assert summary.max_total_fpr == pytest.approx(max_total, rel=1e-12)
        assert summary.fraction_of_provision == pytest.approx(
            fraction, rel=1e-12
        )

    def test_front_camera_binds(self, curved_result):
        # The cutter crosses the front-120 FOV; side cameras stay at the
        # floor rate in both runs.
        for summary in curved_result.summaries:
            cams = dict(summary.camera_max_fpr)
            assert cams["front_120"] == summary.max_fpr
            assert cams["left"] == 1.0
            assert cams["right"] == 1.0


#: Pinned tick-level aggregates for a strongly-noisy offline evaluation
#: (cut_in, seed 0, 30 FPR, 0.05 stride, batched backend,
#: ``PerceptionNoise(miss_rate=0.4, position_noise=0.75, seed=7)``).
#:
#: Campaign *maxima* are noise-robust — the binding demand plateau
#: survives random misses, and threat latencies read ground-truth
#: trajectories — so a golden on ``max_fpr`` would pass even if the
#: noise path silently died. The tick-level sum and the count of
#: demanding ticks are the opposite: any change to the miss stream, the
#: position-noise stream, the draw keys, or the cell-seed derivation
#: moves them. Values frozen at the counter-based RNG switch (PR 7);
#: a legitimate RNG change must update them *and* the stream pins in
#: ``tests/unit/test_rng.py`` together.
NOISY_GOLDEN = {
    "noisy": (2417.909328000349, 482),
    "clean": (2427.830156464889, 801),
}


@pytest.mark.slow
class TestNoisyAggregateGolden:
    @pytest.fixture(scope="class")
    def cut_in_trace(self):
        built = build_scenario("cut_in", seed=0)
        trace = built.run(fpr=30.0)
        assert not trace.has_collision
        return built, trace

    @pytest.mark.parametrize("label", sorted(NOISY_GOLDEN))
    def test_tick_aggregates_pinned(self, cut_in_trace, label):
        built, trace = cut_in_trace
        noise = (
            PerceptionNoise(miss_rate=0.4, position_noise=0.75, seed=7)
            if label == "noisy"
            else None
        )
        series = OfflineEvaluator(
            road=built.road, stride=0.05, backend="batched", noise=noise
        ).evaluate(trace)
        total, demanding = NOISY_GOLDEN[label]
        assert len(series.ticks) == 801
        assert sum(t.total_fpr() for t in series.ticks) == pytest.approx(
            total, rel=1e-12
        )
        assert sum(1 for t in series.ticks if t.actor_latencies) == demanding


class TestStatefulRNGTombstone:
    """The retired order-dependent RNG API stays dead.

    Before PR 7, ``DetectionModel.detect`` consumed a shared
    ``np.random.Generator`` (``rng=``) whose draws depended on camera
    firing order and run start point, and ``PerceptionSystem`` owned the
    generator as hidden state. Both were replaced by counter-keyed
    draws rooted at an integer ``seed``. These tests make sure the old
    surface cannot quietly come back — code still passing ``rng=``
    must fail loudly, not fall back to order-dependent sampling.
    """

    def test_detect_rejects_generator_keyword(self):
        import numpy as np

        from repro.dynamics.state import VehicleSpec, VehicleState
        from repro.geometry import Vec2
        from repro.perception.sensor import default_rig

        camera = default_rig().cameras[0]
        ego = VehicleState(position=Vec2(0.0, 0.0), heading=0.0, speed=10.0)
        actors = {
            "lead": (
                VehicleState(position=Vec2(20.0, 0.0), heading=0.0, speed=8.0),
                VehicleSpec(),
            )
        }
        with pytest.raises(TypeError):
            DetectionModel().detect(
                camera, ego, 0.0, actors, rng=np.random.default_rng(0)
            )

    def test_perception_system_rejects_generator_keyword(self):
        import numpy as np

        with pytest.raises(TypeError):
            PerceptionSystem(rng=np.random.default_rng(0))

    def test_perception_system_holds_no_generator_state(self):
        system = PerceptionSystem(seed=3)
        assert system.seed == 3
        assert not any("rng" in name for name in vars(system))
