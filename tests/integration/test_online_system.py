"""The Zhuyi-based online system in the closed loop."""

import pytest

from repro import build_scenario
from repro.core.aggregation import PercentileAggregator
from repro.core.online import OnlineEstimator
from repro.core.parameters import ZhuyiParams
from repro.prediction.maneuver import ManeuverPredictor
from repro.system import SafetyChecker, WorkPrioritizer, ZhuyiOnlineSystem


def make_system(scenario, prioritizer=None, percentile=90.0):
    params = ZhuyiParams()
    predictor = ManeuverPredictor(
        road=scenario.road, target_lane=scenario.spec.ego_lane
    )
    return ZhuyiOnlineSystem(
        estimator=OnlineEstimator(
            params=params,
            predictor=predictor,
            road=scenario.road,
            aggregator=PercentileAggregator(percentile),
        ),
        checker=SafetyChecker(),
        prioritizer=prioritizer,
        period=0.2,
    )


@pytest.fixture(scope="module")
def online_run():
    scenario = build_scenario("cut_in", seed=0)
    system = make_system(scenario)
    trace = scenario.run(fpr=30.0, hooks=[system])
    return scenario, system, trace


class TestOnlineEstimation:
    def test_ticks_recorded_at_cadence(self, online_run):
        _, system, trace = online_run
        expected = trace.duration / system.period
        assert len(system.records) == pytest.approx(expected, rel=0.05)

    def test_front_camera_series_varies(self, online_run):
        _, system, _ = online_run
        series = system.camera_latency_series("front_120")
        assert min(series) < 1.0  # the cut-in binds at some point
        assert max(series) == pytest.approx(1.0)  # and is quiet elsewhere

    def test_estimates_stay_positive(self, online_run):
        _, system, _ = online_run
        for fpr in system.camera_fpr_series("front_120"):
            assert 1.0 <= fpr <= 30.0 + 1e-6

    def test_no_alarms_at_full_rate(self, online_run):
        # Running all cameras at 30 FPR can never fall below a Zhuyi
        # estimate (the cap is 30).
        _, system, _ = online_run
        assert system.alarms() == []

    def test_run_stays_safe(self, online_run):
        _, _, trace = online_run
        assert not trace.has_collision


@pytest.mark.slow
class TestSafetyCheckAlarms:
    def test_underprovisioned_camera_raises_alarms(self):
        # At a uniform 5 FPR the run survives (MRF is 4), but during the
        # reveal the online estimate exceeds the operating rate — exactly
        # the condition the safety check must flag.
        scenario = build_scenario("cut_out_fast", seed=0)
        system = make_system(scenario)
        trace = scenario.run(fpr=5.0, hooks=[system])
        assert not trace.has_collision
        assert len(system.alarms()) > 0
        cameras = {
            alarm.camera
            for verdict in system.alarms()
            for alarm in verdict.alarms
        }
        assert "front_120" in cameras


@pytest.mark.slow
class TestWorkPrioritization:
    def test_rates_reallocated_toward_front(self):
        scenario = build_scenario("cut_out_fast", seed=0)
        prioritizer = WorkPrioritizer(
            total_budget=36.0, cameras=("front_120", "left", "right")
        )
        system = make_system(scenario, prioritizer=prioritizer)
        trace = scenario.run(fpr=12.0, hooks=[system])

        front_rates = [
            step.camera_fprs["front_120"] for step in trace.steps
        ]
        left_rates = [step.camera_fprs["left"] for step in trace.steps]
        # During the reveal, the front camera must have been boosted above
        # the uniform 12 FPR while a side camera gave rates up.
        assert max(front_rates) > 14.0
        assert min(left_rates) < 10.0

    def test_budget_respected_each_step(self):
        scenario = build_scenario("cut_in", seed=0)
        prioritizer = WorkPrioritizer(
            total_budget=36.0, cameras=("front_120", "left", "right")
        )
        system = make_system(scenario, prioritizer=prioritizer)
        scenario.run(fpr=12.0, hooks=[system])
        for record in system.records:
            if record.applied_rates is None:
                continue
            assert sum(record.applied_rates.values()) <= 36.0 + 1e-6
