"""Trace-level perception vs per-tick perception: identical output.

The acceptance bar of the batched perception layer, in the style of
``test_backend_parity.py``: across every catalog scenario, the
trace-level visibility tables must reproduce the per-tick
``visible_actors`` groupings exactly; the batched evaluator backend
(engine kernel + visibility tables + composite Frenet corridor) must
produce an :class:`EvaluationSeries` *equal* — not approximately equal —
to the scalar per-tick reference, down to the Table 1 summaries; the
online estimator's replay path gets the same treatment; and the
vectorized occlusion mask must agree with the scalar segment/box loop.
"""

import numpy as np
import pytest

from repro import OfflineEvaluator, build_scenario
from repro.core.evaluator import presample_trace
from repro.scenarios.catalog import SCENARIO_NAMES, density_sweep


def build_trace(name, seed=0):
    scenario = build_scenario(name, seed=seed)
    trace = scenario.run(fpr=30.0)
    assert not trace.has_collision, name
    return scenario, trace


def assert_series_identical(a, b):
    assert len(a.ticks) == len(b.ticks)
    for tick_a, tick_b in zip(a.ticks, b.ticks):
        assert tick_a.time == tick_b.time
        assert dict(tick_a.actor_latencies) == dict(tick_b.actor_latencies)
        assert dict(tick_a.camera_estimates) == dict(tick_b.camera_estimates)


@pytest.mark.slow
class TestVisibilityTraceParity:
    """visible_actors_trace == a per-tick visible_actors loop."""

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_catalog_scenario(self, name):
        scenario, trace = build_trace(name)
        samples = presample_trace(trace, 0.25)
        evaluator = OfflineEvaluator(road=scenario.road, stride=0.25)
        rig = evaluator.rig
        batched = rig.visible_actors_trace(
            samples.ego_states, samples.actor_positions
        )
        assert len(batched) == len(samples.times)
        for i, ego_state in enumerate(samples.ego_states):
            per_tick = rig.visible_actors(
                ego_state,
                {
                    actor_id: states[i].position
                    for actor_id, states in samples.actor_states.items()
                },
            )
            assert batched[i] == per_tick, (name, i)

    def test_membership_tables_align_with_groupings(self):
        scenario, trace = build_trace("cut_out")
        samples = presample_trace(trace, 0.5)
        rig = OfflineEvaluator(road=scenario.road, stride=0.5).rig
        tables = rig.visibility_trace(
            samples.ego_states, samples.actor_positions
        )
        groupings = rig.visible_actors_trace(
            samples.ego_states, samples.actor_positions
        )
        ids = list(samples.actor_positions)
        for camera, table in tables.items():
            assert table.shape == (len(samples.times), len(ids))
            for i in range(len(samples.times)):
                assert groupings[i][camera] == [
                    ids[j] for j in np.flatnonzero(table[i])
                ]


@pytest.mark.slow
class TestEvaluatorBackendParity:
    """Scalar vs batched evaluator across the whole catalog."""

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_catalog_scenario(self, name):
        scenario, trace = build_trace(name)
        samples = presample_trace(trace, 0.25)
        series = {}
        for backend in ("scalar", "batched"):
            evaluator = OfflineEvaluator(
                road=scenario.road, stride=0.25, backend=backend
            )
            series[backend] = evaluator.evaluate(trace, samples=samples)
        assert_series_identical(series["scalar"], series["batched"])
        # The Table 1 summaries derived from the series agree exactly.
        assert series["scalar"].max_fpr() == series["batched"].max_fpr()
        assert (
            series["scalar"].max_total_fpr()
            == series["batched"].max_total_fpr()
        )
        assert (
            series["scalar"].fraction_of_provision()
            == series["batched"].fraction_of_provision()
        )

    def test_curved_dense_variant(self):
        density_sweep(counts=(4,), families=("challenging_cut_in_curved",))
        scenario, trace = build_trace("challenging_cut_in_curved_dense4")
        samples = presample_trace(trace, 0.1)
        series = {}
        for backend in ("scalar", "batched"):
            evaluator = OfflineEvaluator(
                road=scenario.road, stride=0.1, backend=backend
            )
            series[backend] = evaluator.evaluate(trace, samples=samples)
        assert_series_identical(series["scalar"], series["batched"])
        # The queued actors genuinely load the batched path.
        per_tick = [len(t.actor_latencies) for t in series["batched"].ticks]
        assert max(per_tick) >= 3


@pytest.mark.slow
class TestReplayParity:
    """OnlineEstimator.replay: batched == scalar == per-tick estimate."""

    def _estimator(self, scenario, backend):
        from repro.core.online import OnlineEstimator
        from repro.core.parameters import ZhuyiParams
        from repro.prediction.maneuver import ManeuverPredictor

        return OnlineEstimator(
            params=ZhuyiParams(),
            predictor=ManeuverPredictor(
                road=scenario.road, target_lane=scenario.spec.ego_lane
            ),
            road=scenario.road,
            backend=backend,
        )

    def test_replay_backend_parity_curved(self):
        scenario, trace = build_trace("challenging_cut_in_curved")
        series = {
            backend: self._estimator(scenario, backend).replay(
                trace, period=0.25
            )
            for backend in ("scalar", "batched")
        }
        assert_series_identical(series["scalar"], series["batched"])

    def test_replay_equals_estimate_loop(self):
        from repro.perception.world_model import PerceivedActor, WorldModel

        scenario, trace = build_trace("cut_in")
        estimator = self._estimator(scenario, "batched")
        series = estimator.replay(trace, period=0.5)

        reference = self._estimator(scenario, "batched")
        times = np.array([tick.time for tick in series.ticks])
        ego_states = trace.ego_trajectory().sample_states(times)
        actor_states = {
            actor_id: trace.actor_trajectory(actor_id).sample_states(times)
            for actor_id in trace.actor_ids()
        }
        l0 = 1.0 / trace.nominal_fpr
        for i, tick in enumerate(series.ticks):
            world = WorldModel()
            for actor_id, states in actor_states.items():
                state = states[i]
                world.upsert(
                    PerceivedActor(
                        actor_id=actor_id,
                        position=state.position,
                        velocity=state.velocity(),
                        heading=state.heading,
                        speed=state.speed,
                        accel=state.accel,
                        timestamp=float(times[i]),
                    )
                )
            expected = reference.estimate(
                now=float(times[i]),
                ego_state=ego_states[i],
                ego_spec=trace.ego_spec,
                world_model=world,
                l0=l0,
            )
            assert tick.time == expected.time
            assert dict(tick.actor_latencies) == dict(
                expected.actor_latencies
            )
            assert dict(tick.camera_estimates) == dict(
                expected.camera_estimates
            )


class TestOcclusionMaskParity:
    """The vectorized slab test == the scalar segment/box loop."""

    def test_against_scalar_segments(self):
        from repro.dynamics.state import VehicleSpec, VehicleState
        from repro.geometry.boxes import segment_intersects_box
        from repro.geometry.vec import Vec2
        from repro.perception.detection import (
            _TARGET_CLEARANCE,
            occlusion_mask,
        )

        rng = np.random.default_rng(7)
        for _ in range(50):
            actors = [
                (
                    VehicleState(
                        position=Vec2(*rng.uniform(-40.0, 40.0, 2)),
                        heading=float(rng.uniform(-np.pi, np.pi)),
                        speed=1.0,
                    ),
                    VehicleSpec(),
                )
                for _ in range(5)
            ]
            eye = Vec2(*rng.uniform(-5.0, 5.0, 2))
            targets = [
                (index, actors[index][0].position)
                for index in range(len(actors))
            ]
            batched = occlusion_mask(eye, targets, actors)
            for row, (target_index, target) in enumerate(targets):
                ray = target - eye
                distance = np.sqrt(ray.x * ray.x + ray.y * ray.y)
                if distance <= _TARGET_CLEARANCE:
                    expected = False
                else:
                    end = eye + ray * (
                        (distance - _TARGET_CLEARANCE) / distance
                    )
                    expected = any(
                        segment_intersects_box(
                            eye, end, state.footprint(spec)
                        )
                        for blocker_index, (state, spec) in enumerate(actors)
                        if blocker_index != target_index
                    )
                assert bool(batched[row]) == expected
