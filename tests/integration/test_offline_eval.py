"""The offline (pre-deployment) evaluator on real traces."""

import pytest

from repro import OfflineEvaluator, build_scenario
from repro.dynamics.state import VehicleState
from repro.errors import EstimationError
from repro.geometry.vec import Vec2
from repro.perception.sensor import ANALYZED_CAMERAS
from repro.sim.trace import ScenarioTrace, TraceStep


@pytest.fixture(scope="module")
def cut_in_series(cut_in_trace_30):
    scenario = build_scenario("cut_in", seed=0)
    return OfflineEvaluator(road=scenario.road).evaluate(cut_in_trace_30)


class TestSeriesStructure:
    def test_ticks_cover_trace(self, cut_in_series, cut_in_trace_30):
        times = cut_in_series.times()
        assert times[0] == pytest.approx(0.0)
        assert times[-1] == pytest.approx(cut_in_trace_30.duration, abs=0.2)

    def test_every_camera_estimated(self, cut_in_series):
        tick = cut_in_series.ticks[0]
        for camera in ("front_60", "front_120", "left", "right", "rear"):
            assert camera in tick.camera_estimates

    def test_l0_defaults_to_frame_period(self, cut_in_series):
        assert cut_in_series.l0 == pytest.approx(1.0 / 30.0)

    def test_missing_nominal_fpr_needs_explicit_l0(self, cut_in_trace_30):
        scenario = build_scenario("cut_in", seed=0)
        evaluator = OfflineEvaluator(road=scenario.road)
        cut_in_trace_30.nominal_fpr = None
        try:
            with pytest.raises(EstimationError):
                evaluator.evaluate(cut_in_trace_30)
        finally:
            cut_in_trace_30.nominal_fpr = 30.0


class TestPaperShape:
    def test_side_cameras_at_floor(self, cut_in_series):
        # "For Cut-in, the tolerable latency for side cameras is 1000 ms
        # as there are no actors on the sides."
        assert cut_in_series.max_fpr("left") == pytest.approx(1.0)
        assert cut_in_series.max_fpr("right") == pytest.approx(1.0)

    def test_front_camera_binds(self, cut_in_series):
        assert cut_in_series.max_fpr("front_120") > 1.0

    def test_latencies_within_grid(self, cut_in_series, params):
        for camera in ANALYZED_CAMERAS:
            for latency in cut_in_series.camera_latency_series(camera):
                assert 0.0 <= latency <= params.l_max + 1e-9

    def test_total_below_provision(self, cut_in_series):
        # The headline claim: peak total demand stays within 36% of a
        # 3-camera 30-FPR provision for this scenario family.
        assert cut_in_series.fraction_of_provision() <= 0.36 + 1e-6

    def test_max_total_consistent(self, cut_in_series):
        total = cut_in_series.max_total_fpr()
        per_cam_max = sum(
            cut_in_series.max_fpr(camera) for camera in ANALYZED_CAMERAS
        )
        assert total <= per_cam_max + 1e-9

    def test_estimate_exceeds_mrf(self, cut_in_series):
        # Cut-in is safe even at 1 FPR (MRF < 1); any estimate >= 1
        # certifies it. The substantive check: Zhuyi never reports less
        # than the floor.
        assert cut_in_series.max_fpr() >= 1.0


class TestEvaluatorOptions:
    def test_stride_controls_tick_count(self, cut_in_trace_30):
        scenario = build_scenario("cut_in", seed=0)
        coarse = OfflineEvaluator(road=scenario.road, stride=1.0).evaluate(
            cut_in_trace_30
        )
        fine = OfflineEvaluator(road=scenario.road, stride=0.25).evaluate(
            cut_in_trace_30
        )
        assert len(fine.ticks) > 2 * len(coarse.ticks)

    def test_explicit_l0_changes_estimates(self, cut_in_trace_30):
        scenario = build_scenario("cut_in", seed=0)
        evaluator = OfflineEvaluator(road=scenario.road, stride=0.5)
        fast = evaluator.evaluate(cut_in_trace_30, l0=1.0 / 30.0)
        slow = evaluator.evaluate(cut_in_trace_30, l0=1.0)
        # A slower-running stack yields a more permissive estimate.
        assert slow.max_fpr() <= fast.max_fpr() + 1e-9

    def test_rejects_bad_stride(self):
        with pytest.raises(EstimationError):
            OfflineEvaluator(stride=0.0)


def _synthetic_trace(times) -> ScenarioTrace:
    steps = [
        TraceStep(
            time=t,
            ego=VehicleState(Vec2(10.0 * t, 0.0), 0.0, 10.0, 0.0),
            actors={"lead": VehicleState(Vec2(60.0 + 5.0 * t, 0.0), 0.0, 5.0, 0.0)},
        )
        for t in times
    ]
    return ScenarioTrace(scenario="synthetic", dt=0.1, steps=steps, nominal_fpr=30.0)


class TestTickGrid:
    """Tick times come from start + i * stride, not float accumulation."""

    def test_stride_not_dividing_duration(self):
        # 1.0 s trace, 0.3 s stride: ticks at 0, 0.3, 0.6, 0.9 only.
        trace = _synthetic_trace([0.0, 0.5, 1.0])
        series = OfflineEvaluator(stride=0.3).evaluate(trace)
        assert series.times() == pytest.approx([0.0, 0.3, 0.6, 0.9])

    def test_no_tick_past_trace_end(self):
        # A trace ending just below a stride multiple must not get an
        # extra tick at the multiple — ``t0 += stride`` accumulation
        # used to walk past the recorded end.
        end = 0.9999999999
        trace = _synthetic_trace([0.0, 0.5, end])
        series = OfflineEvaluator(stride=0.05).evaluate(trace)
        assert len(series.ticks) == 20
        assert series.times()[-1] <= end

    def test_exact_grid_on_long_trace(self):
        # Accumulated stride drifts after hundreds of additions; the
        # closed-form grid stays exact and keeps the final tick.
        times = [i * 0.01 for i in range(3501)]  # 35 s at 10 ms
        trace = _synthetic_trace(times)
        series = OfflineEvaluator(stride=0.05).evaluate(trace)
        assert len(series.ticks) == 701
        for i, t in enumerate(series.times()):
            assert t == i * 0.05  # exact, not approx


class TestCutOutShape:
    def test_front_camera_demands_most(self, cut_out_trace_30):
        scenario = build_scenario("cut_out", seed=0)
        series = OfflineEvaluator(road=scenario.road).evaluate(
            cut_out_trace_30
        )
        front = series.max_fpr("front_120")
        assert front >= series.max_fpr("left")
        assert front >= series.max_fpr("right")

    def test_obstacle_is_binding_actor(self, cut_out_trace_30):
        scenario = build_scenario("cut_out", seed=0)
        series = OfflineEvaluator(road=scenario.road).evaluate(
            cut_out_trace_30
        )
        binders = {
            tick.camera_estimates["front_120"].binding_actor
            for tick in series.ticks
        }
        assert "obstacle" in binders
