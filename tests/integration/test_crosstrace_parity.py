"""Cross-trace campaign backend: byte-identical to per-cell batched.

The acceptance bar of the ``"crosstrace"`` backend: a campaign routed
through :func:`execute_supercell` — traces and variants solved together
as whole-block array programs — must produce summaries (and JSONL run
lines) *equal* to the per-cell ``"batched"`` execution, on real
closed-loop traces including multi-actor density variants. The
:meth:`OfflineEvaluator.evaluate_many` entry point gets the same
treatment against one-trace-at-a-time evaluation.
"""

import json
from dataclasses import replace

import pytest

from repro import OfflineEvaluator, build_scenario
from repro.batch import Campaign, CampaignRunner, ParamVariant
from repro.core.evaluator import presample_trace
from repro.core.parameters import ZhuyiParams
from repro.perception.noise import PerceptionNoise


def run_campaign(backend, tmp_path, **kwargs):
    campaign = Campaign(backend=backend, **kwargs)
    out = tmp_path / f"{backend}.jsonl"
    result = CampaignRunner(workers=1).run(campaign, out=out)
    assert not result.failures()
    lines = out.read_text().splitlines()
    # Drop the header (carries the backend tag) and footer (wall clock):
    # every run line must match byte for byte.
    return [line for line in lines if '"kind": "run"' in line]


@pytest.mark.slow
class TestCampaignParity:
    def test_multi_variant_campaign_byte_identical(self, tmp_path):
        base = ZhuyiParams()
        grid = dict(
            scenarios=("cut_in", "cut_out"),
            seeds=(0,),
            fprs=(30.0,),
            variants=(
                ParamVariant("paper"),
                ParamVariant("c1_09", replace(base, c1=0.9)),
                ParamVariant("c2_09", replace(base, c2=0.9)),
            ),
            stride=0.25,
        )
        batched = run_campaign("batched", tmp_path, **grid)
        crosstrace = run_campaign("crosstrace", tmp_path, **grid)
        assert batched == crosstrace
        assert len(batched) == 6

    def test_density_variant_campaign_byte_identical(self, tmp_path):
        grid = dict(
            scenarios=("cut_in_dense4",),
            seeds=(0, 1),
            fprs=(30.0,),
            variants=(
                ParamVariant("paper"),
                ParamVariant(
                    "tight", replace(ZhuyiParams(), c1=0.85, c2=0.9)
                ),
            ),
            stride=0.25,
        )
        batched = run_campaign("batched", tmp_path, **grid)
        crosstrace = run_campaign("crosstrace", tmp_path, **grid)
        assert batched == crosstrace

    def test_run_lines_carry_real_estimates(self, tmp_path):
        lines = run_campaign(
            "crosstrace",
            tmp_path,
            scenarios=("cut_in",),
            seeds=(0,),
            fprs=(30.0,),
            stride=0.25,
        )
        (record,) = [json.loads(line) for line in lines]
        assert record["max_fpr"] is not None
        assert record["error"] is None


@pytest.mark.slow
class TestNoisyCampaignParity:
    """Noisy campaigns stay byte-identical across every backend.

    Counter-based draws make evaluation-time noise a pure function of
    (cell-derived seed, timestamp bits, actor id) — see
    ``repro/core/rng.py`` — so enabling it must not open any gap
    between the scalar reference loop, the per-cell batched kernels and
    the cross-trace supercell path.
    """

    NOISE = PerceptionNoise(miss_rate=0.1, position_noise=0.25, seed=5)

    def test_noisy_all_backends_byte_identical(self, tmp_path):
        grid = dict(
            scenarios=("cut_in", "cut_out"),
            seeds=(0, 1),
            fprs=(10.0, 30.0),
            stride=0.25,
            noise=self.NOISE,
        )
        scalar = run_campaign("scalar", tmp_path, **grid)
        batched = run_campaign("batched", tmp_path, **grid)
        crosstrace = run_campaign("crosstrace", tmp_path, **grid)
        assert scalar == batched == crosstrace
        assert len(batched) == 8

    def test_noisy_dense_variant_byte_identical(self, tmp_path):
        grid = dict(
            scenarios=("cut_in_dense4",),
            seeds=(0,),
            fprs=(30.0,),
            variants=(
                ParamVariant("paper"),
                ParamVariant(
                    "tight", replace(ZhuyiParams(), c1=0.85, c2=0.9)
                ),
            ),
            stride=0.25,
            noise=self.NOISE,
        )
        batched = run_campaign("batched", tmp_path, **grid)
        crosstrace = run_campaign("crosstrace", tmp_path, **grid)
        assert batched == crosstrace

    def test_noisy_shard_merge_matches_unsharded(self, tmp_path):
        from repro.batch import CampaignResult

        campaign = Campaign(
            scenarios=("cut_in", "cut_out"),
            seeds=(0, 1),
            fprs=(30.0,),
            stride=0.25,
            noise=self.NOISE,
        )
        whole = tmp_path / "whole.jsonl"
        CampaignRunner(workers=1).run(campaign, out=whole)
        parts = []
        for index in range(2):
            part = tmp_path / f"part{index}.jsonl"
            CampaignRunner(workers=1).run(campaign, out=part, shard=(index, 2))
            parts.append(CampaignResult.load_jsonl(part))
        merged = tmp_path / "merged.jsonl"
        CampaignResult.merge(parts).save_jsonl(merged)
        pick = lambda path: [
            line
            for line in path.read_text().splitlines()
            if '"kind": "run"' in line
        ]
        assert pick(whole) == pick(merged)

    def test_noisy_kill_resume_matches_uninterrupted(self, tmp_path):
        campaign = Campaign(
            scenarios=("cut_in", "cut_out"),
            seeds=(0, 1),
            fprs=(30.0,),
            stride=0.25,
            noise=self.NOISE,
        )
        whole = tmp_path / "whole.jsonl"
        CampaignRunner(workers=1).run(campaign, out=whole)

        class Killed(RuntimeError):
            pass

        def kill_hook(done, total, summary):
            if done >= 2:
                raise Killed()

        killed = tmp_path / "killed.jsonl"
        with pytest.raises(Killed):
            CampaignRunner(workers=1).run(campaign, kill_hook, out=killed)
        resumed = CampaignRunner(workers=1).resume(killed)
        assert resumed.is_complete
        # Identical run lines — the resumed noise draws key on tick
        # times and actor ids, not on where the first attempt died.
        pick = lambda path: [
            line
            for line in path.read_text().splitlines()
            if '"kind": "run"' in line
        ]
        assert pick(whole) == pick(killed)

    def test_noisy_evaluate_many_matches_single(self):
        noise = PerceptionNoise(miss_rate=0.2, position_noise=0.4, seed=3)
        traces, samples = [], []
        for name in ("cut_in", "cut_out"):
            scenario = build_scenario(name, seed=0)
            trace = scenario.run(fpr=30.0)
            assert not trace.has_collision, name
            traces.append(trace)
            samples.append(presample_trace(trace, 0.25, noise=noise))

        block = OfflineEvaluator(
            stride=0.25, backend="crosstrace", noise=noise
        ).evaluate_many(traces, samples=samples)
        for trace, trace_samples, series in zip(traces, samples, block):
            alone = OfflineEvaluator(
                stride=0.25, backend="batched", noise=noise
            ).evaluate(trace, samples=trace_samples)
            assert len(series.ticks) == len(alone.ticks)
            for tick_a, tick_b in zip(series.ticks, alone.ticks):
                assert tick_a.time == tick_b.time
                assert dict(tick_a.actor_latencies) == dict(
                    tick_b.actor_latencies
                )
                assert dict(tick_a.camera_estimates) == dict(
                    tick_b.camera_estimates
                )


@pytest.mark.slow
class TestEvaluateMany:
    def test_matches_one_trace_at_a_time(self):
        traces, samples, roads = [], [], []
        for name in ("cut_in", "cut_out"):
            scenario = build_scenario(name, seed=0)
            trace = scenario.run(fpr=30.0)
            assert not trace.has_collision, name
            traces.append(trace)
            samples.append(presample_trace(trace, 0.25))
            roads.append(scenario.road)

        # evaluate_many stacks roadless jobs; evaluate one at a time as
        # the reference with the standard batched backend.
        block = OfflineEvaluator(
            stride=0.25, backend="crosstrace"
        ).evaluate_many(traces, samples=samples)
        for trace, trace_samples, series in zip(traces, samples, block):
            alone = OfflineEvaluator(stride=0.25, backend="batched").evaluate(
                trace, samples=trace_samples
            )
            assert len(series.ticks) == len(alone.ticks)
            for tick_a, tick_b in zip(series.ticks, alone.ticks):
                assert tick_a.time == tick_b.time
                assert dict(tick_a.actor_latencies) == dict(
                    tick_b.actor_latencies
                )
                assert dict(tick_a.camera_estimates) == dict(
                    tick_b.camera_estimates
                )
