"""Integration: simulate-once campaigns and store-only replay.

The acceptance bar for the trace store, end to end with real
simulations:

* a campaign run against a warm store produces a JSONL byte-identical
  to the cold run that filled it — across the scalar, batched and
  crosstrace backends, under sharding, kill/resume, and stochastic
  perception;
* ``repro replay`` reproduces a recorded campaign's estimation rows
  from the store alone, without ever touching the simulator;
* CLI round trip: ``repro campaign --store`` warm/cold parity and
  ``repro replay --from-campaign`` row parity.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.batch import Campaign, CampaignRunner
from repro.perception.noise import PerceptionNoise
from repro.store import (
    ReplayPlan,
    ReplayService,
    ReplayVariant,
    TraceStore,
)

REPO = Path(__file__).resolve().parents[2]


class Killed(Exception):
    """Raised by a progress hook to simulate a mid-campaign crash."""


def grid(**overrides) -> Campaign:
    settings = dict(
        scenarios=("cut_out", "cut_in"),
        seeds=(0, 1),
        fprs=(30.0,),
        stride=0.5,
    )
    settings.update(overrides)
    return Campaign(**settings)


def run_lines(path) -> list[str]:
    return [
        line
        for line in Path(path).read_text().splitlines()
        if '"kind": "run"' in line
    ]


@pytest.fixture(scope="module")
def warm_store(tmp_path_factory):
    """A store filled by one cold campaign run, plus that run's file."""
    root = tmp_path_factory.mktemp("warm")
    store = TraceStore(root / "store")
    cold = root / "cold.jsonl"
    CampaignRunner(workers=1, store=store).run(grid(), out=cold)
    return store, cold


@pytest.mark.slow
class TestWarmColdParity:
    def test_warm_run_lines_byte_identical(self, warm_store, tmp_path):
        store, cold = warm_store
        warm = tmp_path / "warm.jsonl"
        CampaignRunner(workers=1, store=store).run(grid(), out=warm)
        assert run_lines(warm) == run_lines(cold)

    @pytest.mark.parametrize("backend", ["scalar", "crosstrace"])
    def test_other_backends_hit_the_same_bundles(
        self, warm_store, tmp_path, backend
    ):
        # The store key excludes the evaluation backend: one recorded
        # trace serves all three engines, and each warm run matches its
        # own cold run byte for byte.
        store, _ = warm_store
        campaign = grid(backend=backend)
        cold = tmp_path / "cold.jsonl"
        warm = tmp_path / "warm.jsonl"
        fresh = TraceStore(tmp_path / "fresh")
        CampaignRunner(workers=1, store=fresh).run(campaign, out=cold)
        CampaignRunner(workers=1, store=store).run(campaign, out=warm)
        assert run_lines(warm) == run_lines(cold)

    def test_noisy_campaign_parity(self, warm_store, tmp_path):
        # Stochastic perception is evaluation-time: the recorded trace
        # is noise-free, so a warm noisy run must equal the cold one.
        store, _ = warm_store
        campaign = grid(
            noise=PerceptionNoise(
                miss_rate=0.1, position_noise=0.2, seed=7
            )
        )
        cold = tmp_path / "cold.jsonl"
        warm = tmp_path / "warm.jsonl"
        CampaignRunner(
            workers=1, store=TraceStore(tmp_path / "fresh")
        ).run(campaign, out=cold)
        CampaignRunner(workers=1, store=store).run(campaign, out=warm)
        assert run_lines(warm) == run_lines(cold)

    def test_sharded_warm_runs_union_to_cold(self, warm_store, tmp_path):
        store, cold = warm_store
        lines = []
        for index in range(2):
            part = tmp_path / f"part{index}.jsonl"
            CampaignRunner(workers=1, store=store).run(
                grid(), out=part, shard=(index, 2)
            )
            lines.extend(run_lines(part))
        lines.sort(key=lambda line: json.loads(line)["index"])
        assert lines == run_lines(cold)

    def test_parallel_workers_reuse_the_store(self, warm_store, tmp_path):
        store, cold = warm_store
        warm = tmp_path / "warm.jsonl"
        CampaignRunner(workers=2, store=store).run(grid(), out=warm)
        assert run_lines(warm) == run_lines(cold)


@pytest.mark.slow
class TestKillResumeWithStore:
    def test_resumed_warm_file_matches_cold(self, warm_store, tmp_path):
        store, cold = warm_store
        path = tmp_path / "killed.jsonl"

        def hook(done, total, summary):
            if done >= 2:
                raise Killed()

        with pytest.raises(Killed):
            CampaignRunner(workers=1, store=store).run(
                grid(), hook, out=path
            )
        resumed = CampaignRunner(workers=1, store=store).resume(path)
        assert resumed.is_complete
        assert run_lines(path) == run_lines(cold)

    def test_killed_cold_run_keeps_recorded_bundles(self, tmp_path):
        # A crash after two cells leaves their traces in the store; the
        # resumed run only re-simulates the missing cells.
        store = TraceStore(tmp_path / "store")

        def hook(done, total, summary):
            if done >= 2:
                raise Killed()

        path = tmp_path / "killed.jsonl"
        with pytest.raises(Killed):
            CampaignRunner(workers=1, store=store).run(
                grid(), hook, out=path
            )
        assert len(store.keys()) >= 2
        resumed = CampaignRunner(workers=1, store=store).resume(path)
        assert resumed.is_complete
        assert len(store.keys()) == 4


@pytest.mark.slow
class TestReplayFromStoreAlone:
    def test_replay_reproduces_campaign_rows(self, warm_store):
        store, cold = warm_store
        campaign = grid()
        plan = ReplayPlan.from_campaign(campaign)
        rows = ReplayService(store=store).run(plan)
        recorded = [json.loads(line) for line in run_lines(cold)]
        assert len(rows) == len(recorded)
        for row, campaign_row in zip(rows, recorded):
            for field, value in campaign_row.items():
                if field == "kind":
                    continue
                assert row[field] == value, field

    def test_replay_variants_change_the_answer(self, warm_store):
        # An online predictor variant genuinely re-estimates: its rows
        # differ from the offline campaign rows on the same traces.
        store, cold = warm_store
        plan = ReplayPlan.from_campaign(
            grid(),
            variants=(
                ReplayVariant(
                    name="cv-online", predictor="cv", aggregator="max"
                ),
            ),
        )
        rows = ReplayService(store=store).run(plan)
        recorded = [json.loads(line) for line in run_lines(cold)]
        assert len(rows) == len(recorded)
        assert all(row["error"] is None for row in rows)
        assert any(
            row["max_fpr"] != campaign_row["max_fpr"]
            for row, campaign_row in zip(rows, recorded)
        )


@pytest.mark.slow
class TestCliStoreWorkflow:
    def _repro(self, *argv, cwd):
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", *argv],
            capture_output=True,
            text=True,
            cwd=cwd,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )

    def test_campaign_store_then_replay(self, tmp_path):
        campaign_args = [
            "campaign", "cut_out",
            "--seeds", "2",
            "--fprs", "30",
            "--stride", "0.5",
            "--store", str(tmp_path / "store"),
            "--quiet",
        ]
        cold = self._repro(
            *campaign_args, "--out", str(tmp_path / "cold.jsonl"),
            cwd=tmp_path,
        )
        assert cold.returncode == 0, cold.stderr
        warm = self._repro(
            *campaign_args, "--out", str(tmp_path / "warm.jsonl"),
            cwd=tmp_path,
        )
        assert warm.returncode == 0, warm.stderr
        assert run_lines(tmp_path / "warm.jsonl") == run_lines(
            tmp_path / "cold.jsonl"
        )

        replay = self._repro(
            "replay",
            "--store", str(tmp_path / "store"),
            "--from-campaign", str(tmp_path / "cold.jsonl"),
            "--out", str(tmp_path / "replay.jsonl"),
            "--quiet",
            cwd=tmp_path,
        )
        assert replay.returncode == 0, replay.stderr
        recorded = [
            json.loads(line)
            for line in run_lines(tmp_path / "cold.jsonl")
        ]
        replayed = [
            json.loads(line)
            for line in run_lines(tmp_path / "replay.jsonl")
        ]
        assert len(replayed) == len(recorded)
        for row, campaign_row in zip(replayed, recorded):
            assert row["max_fpr"] == campaign_row["max_fpr"]
            assert row["variant"] == campaign_row["variant"]
        heartbeat = json.loads(
            (tmp_path / "replay.jsonl.heartbeat").read_text()
        )
        assert heartbeat["rows_done"] == heartbeat["rows_total"] == 2
