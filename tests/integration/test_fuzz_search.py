"""End-to-end fuzz search: deterministic, resumable, archive-portable.

The acceptance bar for ``repro fuzz``: a micro evolutionary search must
(a) find and archive a genome whose fitness strictly exceeds its base
scenario's, (b) reproduce its archive and generation campaigns
byte-identically across worker counts and across a resume over the same
output directory, and (c) emit archive entries that a clean process can
rebuild through ``ensure_scenario`` and run under every campaign
backend with identical results. One shared trace store keeps the whole
module to a handful of unique simulations.
"""

import json

import pytest

from repro.batch import Campaign, CampaignRunner
from repro.core.latency import BACKENDS
from repro.fuzz import FuzzConfig, run_fuzz
from repro.scenarios.catalog import SCENARIOS, ensure_scenario
from repro.scenarios.fuzzed import _FUZZED_RECIPES, RECIPES_ENV
from repro.store import TraceStore

MICRO = dict(
    family="cut_out",
    population=3,
    generations=2,
    elite=1,
    tournament=2,
    seed=5,
    stride=0.5,
)


def run_lines(path):
    # Drop the header (campaign metadata) and footer (wall clock): the
    # determinism contract covers every run line, byte for byte.
    return [
        line
        for line in path.read_text().splitlines()
        if '"kind": "run"' in line
    ]


def search(out_dir, workers, store):
    runner = CampaignRunner(workers=workers, store=store)
    return run_fuzz(FuzzConfig(**MICRO), out_dir=out_dir, runner=runner)


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    return TraceStore(tmp_path_factory.mktemp("fuzz") / "store")


@pytest.fixture(scope="module")
def result(tmp_path_factory, store):
    return search(tmp_path_factory.mktemp("fuzz") / "search", 1, store)


@pytest.mark.slow
class TestFuzzSearch:
    def test_best_strictly_exceeds_the_base(self, result):
        assert result.best is not None
        assert result.base_fitness is not None
        assert result.best["fitness"] > result.base_fitness
        payload = json.loads(result.search_path.read_text())
        assert payload["exceeds_base"] is True

    def test_best_so_far_is_monotone(self, result):
        trajectory = [g["best_so_far"] for g in result.per_generation]
        assert len(trajectory) == MICRO["generations"]
        assert trajectory == sorted(trajectory)

    def test_byte_identical_across_worker_counts(
        self, result, tmp_path, store
    ):
        other = search(tmp_path / "search", 2, store)
        assert (
            other.archive_path.read_bytes()
            == result.archive_path.read_bytes()
        )
        assert (
            other.search_path.read_bytes()
            == result.search_path.read_bytes()
        )
        for mine, theirs in zip(
            result.generation_files, other.generation_files, strict=True
        ):
            assert run_lines(mine) == run_lines(theirs)

    def test_rerun_over_same_directory_reproduces(self, result, store):
        before = result.archive_path.read_bytes()
        again = search(result.archive_path.parent, 1, store)
        assert again.archive_path.read_bytes() == before
        assert [e["name"] for e in again.archive] == [
            e["name"] for e in result.archive
        ]

    def test_archive_rebuilds_and_runs_on_every_backend(
        self, result, store, tmp_path, monkeypatch
    ):
        name = result.best["name"]
        # Forget the in-process registration: a later session only has
        # the archive file, reached through the env-var search path.
        SCENARIOS.pop(name, None)
        _FUZZED_RECIPES.pop(name, None)
        monkeypatch.setenv(RECIPES_ENV, str(result.archive_path))
        assert ensure_scenario(name)

        lines = {}
        for backend in sorted(BACKENDS):
            campaign = Campaign(
                scenarios=(name,),
                seeds=(0,),
                fprs=(30.0,),
                stride=MICRO["stride"],
                backend=backend,
            )
            out = tmp_path / f"{backend}.jsonl"
            run = CampaignRunner(workers=1, store=store).run(
                campaign, out=out
            )
            assert not run.failures()
            lines[backend] = run_lines(out)
        assert lines["scalar"] == lines["batched"]
        assert lines["crosstrace"] == lines["batched"]
