"""Scenario catalog: construction and basic closed-loop sanity."""

import pytest

from repro import SCENARIO_NAMES, build_scenario
from repro.errors import ConfigurationError
from repro.units import mph_to_mps


class TestCatalog:
    def test_all_nine_scenarios_present(self):
        assert len(SCENARIO_NAMES) == 9
        assert set(SCENARIO_NAMES) == {
            "cut_out", "cut_out_fast", "cut_in", "challenging_cut_in",
            "challenging_cut_in_curved", "vehicle_following",
            "front_right_activity_1", "front_right_activity_2",
            "front_right_activity_3",
        }

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            build_scenario("warp_drive")

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_builds_and_has_actors(self, name):
        scenario = build_scenario(name, seed=0)
        actors = scenario.build_actors()
        assert 1 <= len(actors) <= 4
        ids = [actor.actor_id for actor in actors]
        assert len(set(ids)) == len(ids)

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_ego_initial_state_on_road(self, name):
        scenario = build_scenario(name, seed=0)
        state = scenario.ego_initial_state()
        assert scenario.road.on_road(state.position)
        assert state.speed == pytest.approx(
            mph_to_mps(scenario.spec.ego_speed_mph)
        )

    def test_same_seed_same_choreography(self):
        a = build_scenario("cut_in", seed=3).build_actors()
        b = build_scenario("cut_in", seed=3).build_actors()
        assert [x.station for x in a] == [y.station for y in b]
        assert [x.speed for x in a] == [y.speed for y in b]

    def test_different_seed_different_choreography(self):
        a = build_scenario("cut_in", seed=0).build_actors()
        b = build_scenario("cut_in", seed=1).build_actors()
        assert [x.station for x in a] != [y.station for y in b]

    def test_metadata_recorded(self, cut_in_trace_30):
        assert cut_in_trace_30.metadata["ego_speed_mph"] == 70.0
        assert cut_in_trace_30.metadata["paper_mrf"] == "<1"
        assert "activity" in cut_in_trace_30.metadata


class TestClosedLoopAt30:
    def test_cut_in_collision_free(self, cut_in_trace_30):
        assert not cut_in_trace_30.has_collision

    def test_cut_out_collision_free(self, cut_out_trace_30):
        assert not cut_out_trace_30.has_collision

    def test_vehicle_following_collision_free(
        self, vehicle_following_trace_30
    ):
        assert not vehicle_following_trace_30.has_collision

    def test_nominal_fpr_recorded(self, cut_in_trace_30):
        assert cut_in_trace_30.nominal_fpr == 30.0

    def test_cut_in_actor_actually_cuts_in(self, cut_in_trace_30):
        trace = cut_in_trace_30
        road_y = [step.actors["cutter"].position.y for step in trace.steps]
        assert min(road_y) < -3.0  # started in the right lane
        assert abs(road_y[-1]) < 0.5  # ended in the ego's lane

    def test_vehicle_following_lead_stops(self, vehicle_following_trace_30):
        trace = vehicle_following_trace_30
        assert trace.steps[-1].actors["lead"].speed == pytest.approx(0.0, abs=0.1)

    def test_ego_brakes_in_cut_out(self, cut_out_trace_30):
        # At 20 mph the revealed obstacle needs only a moderate stop —
        # but the ego must clearly brake and come to rest behind it.
        accels = [step.ego.accel for step in cut_out_trace_30.steps]
        assert min(accels) < -1.0
        assert cut_out_trace_30.steps[-1].ego.speed < 0.5

    def test_cut_out_obstacle_never_moves(self, cut_out_trace_30):
        xs = [
            step.actors["obstacle"].position.x
            for step in cut_out_trace_30.steps
        ]
        assert max(xs) - min(xs) < 0.01


@pytest.mark.slow
class TestMRFMechanics:
    def test_cut_out_fast_unsafe_at_low_fpr(self):
        trace = build_scenario("cut_out_fast", seed=0).run(fpr=2.0)
        assert trace.has_collision

    def test_cut_out_fast_safe_at_high_fpr(self):
        trace = build_scenario("cut_out_fast", seed=0).run(fpr=10.0)
        assert not trace.has_collision

    def test_vehicle_following_safe_even_at_1_fpr(self):
        trace = build_scenario("vehicle_following", seed=0).run(fpr=1.0)
        assert not trace.has_collision

    def test_activity_scenarios_safe_at_1_fpr(self):
        for name in ("front_right_activity_1", "front_right_activity_2"):
            trace = build_scenario(name, seed=0).run(fpr=1.0)
            assert not trace.has_collision, name
