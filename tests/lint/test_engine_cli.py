"""Engine plumbing, the committed baseline, and the CLI exit-code
contract — including the acceptance property that the shipped source
tree lints clean."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.latency import BACKENDS
from repro.errors import ConfigurationError
from repro.lint import lint_paths
from repro.lint.baseline import (
    load_baseline,
    new_findings,
    write_baseline,
)
from repro.lint.cli import default_scan_root, main
from repro.lint.engine import iter_source_files, package_relpath
from repro.lint.findings import Finding
from repro.lint.rules.parallel import BACKEND_VOCAB

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"

#: One DET002 violation; tmp files lint as layerless top-level modules,
#: where DET002 still applies.
_CLOCK = "import time\n\ndef probe():\n    return time.time()\n"


# ---------------------------------------------------------------- engine


def test_iter_source_files_is_sorted_and_skips_pycache(tmp_path):
    (tmp_path / "b.py").write_text("x = 1\n")
    (tmp_path / "a.py").write_text("x = 1\n")
    cache = tmp_path / "__pycache__"
    cache.mkdir()
    (cache / "a.cpython-311.py").write_text("x = 1\n")
    (tmp_path / "notes.txt").write_text("not python\n")
    names = [p.name for p in iter_source_files(tmp_path)]
    assert names == ["a.py", "b.py"]


def test_package_relpath_walks_to_the_package_root():
    assert package_relpath(SRC / "core" / "rng.py") == "repro/core/rng.py"
    assert package_relpath(SRC / "ioutil.py") == "repro/ioutil.py"


def test_package_relpath_outside_any_package(tmp_path):
    loose = tmp_path / "loose.py"
    loose.write_text("x = 1\n")
    assert package_relpath(loose) == "loose.py"


# -------------------------------------------------------------- baseline


def _finding(line=4, message="wall-clock read"):
    return Finding(path="m.py", line=line, rule="DET002", message=message)


def test_baseline_roundtrip(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, [_finding()])
    assert load_baseline(path) == [_finding()]


def test_baseline_diff_is_line_insensitive(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, [_finding(line=4)])
    baseline = load_baseline(path)
    # Same (path, rule, message) on a shifted line: still baselined.
    assert new_findings([_finding(line=40)], baseline) == []
    # A different message is a new finding.
    fresh = _finding(message="another violation")
    assert new_findings([fresh], baseline) == [fresh]


@pytest.mark.parametrize(
    "payload",
    [
        "not json at all",
        json.dumps({"kind": "something-else", "findings": []}),
        json.dumps(
            {"kind": "reprolint-baseline", "schema": 999, "findings": []}
        ),
    ],
)
def test_damaged_baseline_raises(tmp_path, payload):
    path = tmp_path / "baseline.json"
    path.write_text(payload)
    with pytest.raises(ConfigurationError):
        load_baseline(path)


def test_committed_baseline_is_zero_findings():
    baseline = load_baseline(REPO / "tools" / "reprolint_baseline.json")
    assert baseline == []


# ------------------------------------------------------------------- cli


def test_cli_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "clean.py").write_text("x = 1\n")
    assert main([str(tmp_path)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_violation_exits_one_and_reports_rule(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(_CLOCK)
    assert main(["--strict", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "DET002" in out
    assert "bad.py" in out


def test_cli_missing_path_exits_two(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_cli_damaged_baseline_exits_two(tmp_path, capsys):
    (tmp_path / "clean.py").write_text("x = 1\n")
    damaged = tmp_path / "baseline.json"
    damaged.write_text("{}")
    code = main([str(tmp_path), "--baseline", str(damaged)])
    assert code == 2


def test_cli_baseline_flow(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(_CLOCK)
    baseline = tmp_path / "baseline.json"
    # Record the debt…
    assert main([str(bad), "--write-baseline", str(baseline)]) == 0
    # …existing findings no longer fail…
    assert main([str(bad), "--baseline", str(baseline)]) == 0
    # …strict mode ignores the baseline…
    assert main(["--strict", str(bad), "--baseline", str(baseline)]) == 1
    # …and a new violation fails even with the baseline.
    bad.write_text(_CLOCK + "\ndef again():\n    return time.time_ns()\n")
    capsys.readouterr()
    assert main([str(bad), "--baseline", str(baseline)]) == 1
    assert "beyond baseline" in capsys.readouterr().out


def test_cli_out_artifact_and_json_format(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(_CLOCK)
    artifact = tmp_path / "report.json"
    code = main(
        ["--strict", "--format", "json", "--out", str(artifact), str(bad)]
    )
    assert code == 1
    payload = json.loads(artifact.read_text())
    assert payload["kind"] == "reprolint-report"
    assert payload["strict"] is True
    assert [f["rule"] for f in payload["findings"]] == ["DET002"]
    assert payload["new_findings"] == payload["findings"]
    # stdout carries the same payload in json mode.
    assert json.loads(capsys.readouterr().out) == payload


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "DET002", "DET003", "RNG004", "IO005", "PAR006"):
        assert rule_id in out


# ------------------------------------------------------------ acceptance


def test_shipped_source_tree_lints_clean():
    """The tentpole acceptance property: src/ has zero findings.

    Every invariant violation in the tree is either fixed or carries a
    justified pragma; CI's ``--strict`` run enforces exactly this.
    """
    assert SRC.is_dir()
    assert lint_paths([SRC]) == []


def test_default_scan_root_is_the_shipped_package():
    root = default_scan_root()
    assert root.name == "repro"
    assert (root / "core" / "rng.py").is_file()


def test_backend_vocab_mirrors_the_canonical_table():
    # PAR006 keeps its own static mirror (the linter never imports the
    # code it judges); this pin is what makes the mirror honest.
    assert BACKEND_VOCAB == frozenset(BACKENDS)
