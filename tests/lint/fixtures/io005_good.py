"""IO005 false-positive corpus: durable helpers, reads, and appends."""

import os
from pathlib import Path

from repro import ioutil


def publish(path: Path, text: str) -> None:
    ioutil.atomic_write_text(path, text)


def publish_column(path: Path, blob: bytes) -> None:
    with ioutil.fsynced_file(path, "wb") as handle:
        handle.write(blob)


def append(path: Path):
    # Appends are the resume contract — never truncating, allowed bare.
    return path.open("a")


def read(path: Path) -> str:
    with open(path) as handle:
        return handle.read()


def read_mode(path: Path):
    return path.open("r")


def fd_probe(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    os.close(fd)
