"""DET001 false-positive corpus: counter-based draws stay silent."""

from repro.core.rng import (
    counter_uniform,
    derive_seed,
    stable_key,
    time_key,
)

STREAM = "fixture.good"


def draw(seed: int, camera: str, t: float) -> float:
    return counter_uniform(seed, STREAM, stable_key(camera), time_key(t))


def child_seed(seed: int) -> int:
    return derive_seed(seed, "fixture.child")


def randomish_names_are_fine(random_walk_length: int) -> int:
    # A *variable* named random is data, not the stdlib module.
    random = random_walk_length
    return random + 1
