"""DET003 true-positive corpus: accumulated float grids in loops."""


def time_grid(t0, dt, n):
    times = []
    t = t0
    for _ in range(n):
        times.append(t)
        t += dt  # expect: DET003
    return times


def station_ladder(ds, count):
    out = []
    s = 0.0
    while len(out) < count:
        out.append(s)
        s += ds  # expect: DET003
    return out


def horizon(step):
    total = 0.0
    for _ in range(3):
        total += step  # expect: DET003
    return total


class Gate:
    def sweep(self, n):
        for _ in range(n):
            self.t += self.gate_step  # expect: DET003
