"""DET002 false-positive corpus: simulated time is not a clock."""


def elapsed(ticks):
    # Simulation time is a quantity computed from the trace, never read
    # from the host clock.
    time = ticks[-1] - ticks[0]
    return time


def sample(trace):
    return trace.times.max()


def series_method(series):
    # An attribute called .time() on a non-clock object stays silent.
    return series.time()


def span(config):
    return config.duration / config.dt
