"""DET001 true-positive corpus: stateful RNG constructs.

Never imported — read as text by the fixture tests. Each line that must
fire carries an ``# expect: RULE`` marker.
"""

import random  # expect: DET001

import numpy as np
from numpy.random import default_rng  # expect: DET001


def draws():
    rng = np.random.default_rng(7)  # expect: DET001
    return rng.uniform() + random.random()


def fresh():
    return default_rng(11)


def annotated(rng: np.random.Generator) -> float:  # expect: DET001
    return rng.normal()
