"""RNG004 true-positive corpus: unregistered stream tags.

The fixture test injects a registry containing only ``"good.tag"``.
"""

from repro.core.rng import (
    counter_uniform,
    derive_seed,
    register_stream,
    stable_key,
)

ROGUE = register_stream("rogue.stream")  # expect: RNG004


def draw(seed, t):
    return counter_uniform(seed, "unregistered.tag", t)  # expect: RNG004


def child(seed):
    return derive_seed(seed, "unregistered.child")  # expect: RNG004


ADHOC = stable_key("adhoc.tag")  # expect: RNG004
