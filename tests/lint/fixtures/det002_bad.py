"""DET002 true-positive corpus: wall-clock reads."""

import datetime as dt
import time
from datetime import datetime
from time import perf_counter


def stamp():
    started = time.time()  # expect: DET002
    tick = time.perf_counter_ns()  # expect: DET002
    when = datetime.now()  # expect: DET002
    day = dt.datetime.today()  # expect: DET002
    return started, tick, when, day


def elapsed():
    return perf_counter()  # expect: DET002
