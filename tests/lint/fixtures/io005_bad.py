"""IO005 true-positive corpus: bare truncating writes in store/batch."""

import json
from pathlib import Path


def publish(path: Path, payload: dict) -> None:
    path.write_text(json.dumps(payload))  # expect: IO005


def publish_bytes(path: Path, blob: bytes) -> None:
    path.write_bytes(blob)  # expect: IO005


def create(path: Path):
    return open(path, "w")  # expect: IO005


def create_binary(path: Path) -> None:
    with path.open("wb") as handle:  # expect: IO005
        handle.write(b"")


def exclusive(path: Path):
    return path.open(mode="x")  # expect: IO005
