"""PAR006 false-positive corpus: canonical-table references and dispatch."""

from repro.core.latency import BACKENDS


def add_arguments(parser):
    parser.add_argument("--backend", choices=list(BACKENDS))


def validate(backend):
    if backend not in BACKENDS:
        raise ValueError(backend)


def dispatch(backend):
    # Positive dispatch over a proper subset routes the array-program
    # family; it is not a claim about the full backend set.
    if backend in ("batched", "crosstrace"):
        return "array"
    return "loop"


def single(backend):
    return backend == "scalar"
