"""DET003 false-positive corpus: closed-form grids and honest sums."""

import numpy as np


def time_grid(t0, dt, n):
    return t0 + np.arange(n) * dt


def weigh(items):
    total = 0.0
    for item in items:
        # Accumulating data values is fine; only time/station grids
        # built by repeated step addition drift off the closed form.
        total += item.weight
    return total


def single_advance(t, dt):
    t += dt  # not in a loop: one advance, no compounding drift
    return t
