"""RNG004 false-positive corpus: registered tags and symbolic streams.

The fixture test injects a registry containing only ``"good.tag"``.
"""

from repro.core.rng import KEY_MISS, counter_uniform, stable_key, time_key


def registered(seed, t):
    return counter_uniform(seed, "good.tag", time_key(t))


def symbolic(seed, camera, t):
    # Streams passed as named registry constants are resolved at the
    # registration site, not at the call.
    return counter_uniform(seed, KEY_MISS, stable_key(camera), time_key(t))
