"""PAR006 true-positive corpus: hard-coded backend selectors."""


def add_arguments(parser):
    parser.add_argument(
        "--backend",
        choices=["batched", "scalar", "crosstrace"],  # expect: PAR006
    )


def validate(backend):
    if backend not in ("scalar", "batched"):  # expect: PAR006
        raise ValueError(backend)


LOCAL_TABLE = ("scalar", "batched", "crosstrace")  # expect: PAR006
