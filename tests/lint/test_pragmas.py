"""Pragma machinery: scoped suppression, mandatory justification, and
the unsuppressible hygiene findings (LNT001/LNT002/LNT003)."""

from __future__ import annotations

from repro.lint import lint_source
from repro.lint.pragmas import (
    MALFORMED_PRAGMA,
    UNKNOWN_RULE,
    UNPARSEABLE,
    parse_pragmas,
)

#: A module with exactly one DET002 violation (wall-clock read).
_CLOCK = 'import time\n\ndef probe():\n    return time.time()\n'

RELPATH = "repro/sim/_pragma_fixture.py"


def _rules(findings):
    return [f.rule for f in findings]


def test_unsuppressed_violation_is_reported():
    findings = lint_source(_CLOCK, RELPATH)
    assert _rules(findings) == ["DET002"]
    assert findings[0].line == 4


def test_inline_pragma_with_justification_suppresses():
    source = _CLOCK.replace(
        "return time.time()",
        "return time.time()  # reprolint: disable=DET002 -- reporting "
        "metadata only, no deterministic value derives from it",
    )
    assert lint_source(source, RELPATH) == []


def test_standalone_pragma_guards_the_next_code_line():
    source = _CLOCK.replace(
        "    return time.time()",
        "    # reprolint: disable=DET002 -- reporting metadata only\n"
        "    return time.time()",
    )
    assert lint_source(source, RELPATH) == []


def test_file_pragma_suppresses_module_wide():
    source = (
        "# reprolint: disable-file=DET002 -- timing sidecar module\n"
        + _CLOCK
    )
    assert lint_source(source, RELPATH) == []


def test_one_pragma_may_name_several_rules():
    source = (
        "# reprolint: disable-file=DET002, DET001 -- legacy timing "
        "module with a seeded jitter generator\n"
        + _CLOCK
        + "import random\n"
    )
    assert lint_source(source, RELPATH) == []


def test_unjustified_pragma_is_lnt001_and_suppresses_nothing():
    source = _CLOCK.replace(
        "return time.time()",
        "return time.time()  # reprolint: disable=DET002",
    )
    findings = lint_source(source, RELPATH)
    assert sorted(_rules(findings)) == ["DET002", MALFORMED_PRAGMA]


def test_unknown_rule_in_pragma_is_lnt002():
    source = _CLOCK.replace(
        "return time.time()",
        "return time.time()  # reprolint: disable=NOPE999 -- because",
    )
    findings = lint_source(source, RELPATH)
    assert sorted(_rules(findings)) == ["DET002", UNKNOWN_RULE]


def test_hygiene_findings_cannot_be_suppressed():
    # LNT001 is not a rule id pragmas may name; trying reads as an
    # unknown rule — the hygiene layer polices itself.
    source = (
        "# reprolint: disable-file=LNT001 -- hush\n"
        "x = 1\n"
    )
    findings = lint_source(source, RELPATH)
    assert _rules(findings) == [UNKNOWN_RULE]


def test_pragma_only_covers_its_own_line():
    source = (
        "import time\n"
        "\n"
        "def probe():\n"
        "    a = time.time()  # reprolint: disable=DET002 -- metadata\n"
        "    b = time.time()\n"
        "    return a, b\n"
    )
    findings = lint_source(source, RELPATH)
    assert _rules(findings) == ["DET002"]
    assert findings[0].line == 5


def test_pragma_in_a_string_literal_is_not_a_pragma():
    source = _CLOCK + 'DOC = "# reprolint: disable=DET002 -- nope"\n'
    findings = lint_source(source, RELPATH)
    assert _rules(findings) == ["DET002"]


def test_unparseable_module_is_lnt003():
    findings = lint_source("def broken(:\n", RELPATH)
    assert _rules(findings) == [UNPARSEABLE]


def test_parse_pragmas_collects_scopes():
    source = (
        "# reprolint: disable-file=DET001 -- module-wide legacy\n"
        "x = 1  # reprolint: disable=IO005 -- staged, renamed later\n"
    )
    suppressions = parse_pragmas(source, "m.py", ["DET001", "IO005"])
    assert suppressions.file_rules == {"DET001"}
    assert suppressions.line_rules == {2: {"IO005"}}
    assert suppressions.problems == []
    assert suppressions.suppressed("DET001", 99)
    assert suppressions.suppressed("IO005", 2)
    assert not suppressions.suppressed("IO005", 3)
