"""Per-rule fixture corpora: every rule fires on its known-bad file at
exactly the ``# expect: RULE`` lines and stays silent on its known-good
twin.

The corpus files under ``fixtures/`` are never imported — they are read
as text and linted through :func:`repro.lint.lint_source` with a
synthetic package-relative path, so one file on disk can stand in for
any architecture layer.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.lint import lint_source
from repro.lint.rules import ALL_RULE_IDS, Rule
from repro.lint.rules.determinism import (
    FloatAccumulationRule,
    StatefulRandomRule,
    WallClockRule,
)
from repro.lint.rules.io import DurableWriteRule
from repro.lint.rules.parallel import BackendSelectorRule
from repro.lint.rules.rng import StreamRegistryRule, tag_word

FIXTURES = Path(__file__).parent / "fixtures"

_EXPECT = re.compile(r"#\s*expect:\s*([A-Z]+\d{3})")

#: rule id → (rule factory, synthetic relpath the corpus lints as).
CASES: dict[str, tuple] = {
    "DET001": (StatefulRandomRule, "repro/scenarios/_fixture.py"),
    "DET002": (WallClockRule, "repro/sim/_fixture.py"),
    "DET003": (FloatAccumulationRule, "repro/core/_fixture.py"),
    "RNG004": (
        lambda: StreamRegistryRule(
            registry={"good.tag": tag_word("good.tag")}
        ),
        "repro/perception/_fixture.py",
    ),
    "IO005": (DurableWriteRule, "repro/store/_fixture.py"),
    "PAR006": (BackendSelectorRule, "repro/batch/_fixture.py"),
}


def _corpus(rule_id: str, kind: str) -> str:
    return (FIXTURES / f"{rule_id.lower()}_{kind}.py").read_text()


def _expected_lines(source: str, rule_id: str) -> set[int]:
    expected = set()
    for line_no, line in enumerate(source.splitlines(), start=1):
        match = _EXPECT.search(line)
        if match:
            assert match.group(1) == rule_id, (
                f"fixture marker names {match.group(1)}, "
                f"corpus belongs to {rule_id}"
            )
            expected.add(line_no)
    return expected


def test_cases_cover_every_rule():
    assert set(CASES) == set(ALL_RULE_IDS)


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_bad_corpus_fires_exactly_where_marked(rule_id):
    factory, relpath = CASES[rule_id]
    source = _corpus(rule_id, "bad")
    expected = _expected_lines(source, rule_id)
    assert expected, f"{rule_id} bad corpus has no expect markers"
    findings = lint_source(source, relpath, rules=[factory()])
    assert findings, f"{rule_id} silent on its known-bad corpus"
    assert {f.rule for f in findings} == {rule_id}
    assert {f.line for f in findings} == expected


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_good_corpus_stays_silent(rule_id):
    factory, relpath = CASES[rule_id]
    source = _corpus(rule_id, "good")
    assert not _expected_lines(source, rule_id)
    assert lint_source(source, relpath, rules=[factory()]) == []


@pytest.mark.parametrize(
    ("rule_id", "foreign_relpath"),
    [
        # DET003 is scoped to sim/prediction/core; IO005 to store/batch.
        ("DET003", "repro/batch/_fixture.py"),
        ("IO005", "repro/sim/_fixture.py"),
    ],
)
def test_layer_scoped_rules_skip_foreign_layers(rule_id, foreign_relpath):
    factory, _ = CASES[rule_id]
    source = _corpus(rule_id, "bad")
    assert lint_source(source, foreign_relpath, rules=[factory()]) == []


def test_every_finding_reports_the_fixture_display_path():
    factory, relpath = CASES["IO005"]
    findings = lint_source(_corpus("IO005", "bad"), relpath, rules=[factory()])
    assert all(f.path == relpath for f in findings)


def test_rule_base_check_is_abstract():
    with pytest.raises(NotImplementedError):
        next(Rule().check(None))


def test_register_stream_is_allowed_inside_the_registry_module():
    # The canonical registry module is the one place register_stream
    # literals belong; linting it must not raise "outside the registry".
    source = (
        "from repro.errors import ConfigurationError\n"
        'STREAM_A = register_stream("alpha.stream")\n'
        'STREAM_B = register_stream("beta.stream")\n'
    )
    findings = lint_source(
        source, "repro/core/rng.py", rules=[StreamRegistryRule()]
    )
    assert findings == []
