"""Section 4.2 — the Zhuyi model's own compute demand.

The analytic cap is |A| x |T| x M x L x C = 60 kops for two actors with
one future each; this bench also measures the *actual* constraint
evaluations of the paper-strategy search and the wall-clock time of a
full two-actor estimation tick in this Python implementation.
"""

import time

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.core.compute import ComputeDemandModel
from repro.core.ego_profile import EgoMotion
from repro.core.latency import LatencySearch, SearchStrategy
from repro.core.parameters import ZhuyiParams
from repro.core.threat import FixedGapThreat


def _two_actor_tick(search: LatencySearch, params: ZhuyiParams):
    ego = EgoMotion.from_state(26.8, 0.0, params)
    threats = [
        FixedGapThreat(gap=45.0, actor_speed=17.9),
        FixedGapThreat(gap=80.0, actor_speed=22.0),
    ]
    return [search.tolerable_latency(ego, threat, 1.0 / 30.0)
            for threat in threats]


def test_compute_demand(benchmark, artifact_dir):
    params = ZhuyiParams()
    model = ComputeDemandModel()
    paper_search = LatencySearch(params=params, strategy=SearchStrategy.PAPER)

    results = benchmark.pedantic(
        _two_actor_tick, args=(paper_search, params), rounds=20, iterations=1
    )

    analytic_ops = model.ops(num_actors=2, num_trajectories=1, params=params)
    measured_iterations = sum(result.iterations for result in results)
    measured_ops = model.ops_from_iterations(measured_iterations)

    start = time.perf_counter()
    _two_actor_tick(paper_search, params)
    wall = time.perf_counter() - start

    rows = [
        ("analytic cap |A|*|T|*M*L*C", f"{analytic_ops:,} ops"),
        ("paper claim", "60,000 ops for 2 actors, 1 future"),
        ("measured iterations (early exit)", f"{measured_iterations}"),
        ("measured ops", f"{measured_ops:,}"),
        ("modelled time @10 GOPS", f"{model.execution_time(analytic_ops, 10.0)*1e3:.3f} ms"),
        ("paper claim", "< 2 ms on 10+ GOPS"),
        ("this Python implementation", f"{wall*1e3:.2f} ms wall"),
    ]
    emit(
        artifact_dir,
        "compute_demand",
        format_table(["Quantity", "Value"], rows),
    )

    assert analytic_ops == 60_000
    assert measured_ops <= analytic_ops
    assert model.execution_time(analytic_ops, 10.0) < 2e-3
