"""Figure 1 — expected camera-perception throughput demand vs SoCs."""

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.analysis.throughput import SOC_CATALOG, ThroughputModel


def _report() -> str:
    model = ThroughputModel()
    rows = [
        (label, f"{tops:.1f}")
        for label, tops in model.figure1_rows()
    ]
    table = format_table(["Bar", "TOPS"], rows)
    notes = [
        "",
        f"demand / Xavier = {model.utilization(SOC_CATALOG['xavier']):.1f}x "
        "(paper: demand far exceeds Xavier)",
        f"demand / Orin   = {model.utilization(SOC_CATALOG['orin']):.2f}x "
        "(paper: perception alone consumes most of Orin)",
    ]
    return table + "\n".join(notes)


def test_figure1_throughput(benchmark, artifact_dir):
    report = benchmark.pedantic(_report, rounds=3, iterations=1)
    emit(artifact_dir, "figure1_throughput", report)
    model = ThroughputModel()
    assert model.demand_tops() > SOC_CATALOG["xavier"].tops
    assert model.demand_tops() < SOC_CATALOG["orin"].tops
