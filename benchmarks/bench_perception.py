"""Scalar vs batched trace-level perception benchmark (and CI parity smoke).

Where ``bench_engine.py`` measures the latency-search kernel, this
benchmark measures the *whole* batched evaluation pipeline after the
trace-level perception layer landed: the Equation 5 visibility tables
(:meth:`repro.perception.sensor.CameraRig.visible_actors_trace`) plus the
exact composite-centerline Frenet kernel that lets the corridor mask and
gate table stay vectorized on curved roads. The workload is therefore
curved-road-heavy: the composite (straight+arc) projection used to be
the per-point hot spot on ``challenging_cut_in_curved``, and the dense
variants crowd the arc with queued traffic.

Per scenario the offline evaluator runs once per backend over the same
presampled trace; the two :class:`EvaluationSeries` must be
byte-identical (the fingerprint assert), and the measured end-to-end
speedup is recorded to ``benchmarks/out/perception_speedup.json``.

Targets (1-core container): >= 1.5x asserted end-to-end on every
multi-actor curved scenario; the observed numbers land well above the
floor but shared-host clock noise swings either backend by ~2x, so only
the floor is a hard assert.

With ``--noise`` the comparison flips to stochastic perception: the
same batched pipeline with counter-based miss/position-noise sampling
(:mod:`repro.perception.noise`) enabled vs disabled, asserting noisy
stays within :data:`NOISE_OVERHEAD_CEILING` of noise-free and that the
noisy scalar reference reproduces the noisy batched series exactly;
results go to ``benchmarks/out/perception_noise.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_perception.py           # full run
    PYTHONPATH=src python benchmarks/bench_perception.py --smoke   # CI parity
    PYTHONPATH=src python benchmarks/bench_perception.py --noise   # RNG cost
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"

#: (scenario, is a multi-actor curved showcase with the asserted floor)
FULL_SCENARIOS = [
    ("challenging_cut_in_curved", False),
    ("cut_in_dense8", True),
    ("challenging_cut_in_curved_dense4", True),
    ("challenging_cut_in_curved_dense8", True),
]
SMOKE_SCENARIOS = [
    ("challenging_cut_in_curved", False),
    ("challenging_cut_in_curved_dense4", True),
]

#: Hard end-to-end floor asserted on every multi-actor scenario.
MULTI_ACTOR_FLOOR = 1.5

#: Hard ceiling on the cost of enabling stochastic perception
#: (``--noise``): noisy batched must stay within this factor of
#: noise-free batched, end to end including the counter-based draw
#: sampling at presample time. The draws are a handful of vectorized
#: hash passes over the (tick x actor) grid, so the observed overhead
#: is a few percent; 1.2x is the loud-regression tripwire.
NOISE_OVERHEAD_CEILING = 1.2

#: The --noise workload's stochastic perception setting.
NOISE_SPEC = {"miss_rate": 0.15, "position_noise": 0.3, "seed": 42}


def series_fingerprint(series) -> str:
    """Canonical byte representation of a whole evaluation series."""
    payload = [
        {
            "time": tick.time,
            "cameras": {
                camera: (estimate.fpr, estimate.latency)
                for camera, estimate in sorted(tick.camera_estimates.items())
            },
            "actors": dict(sorted(tick.actor_latencies.items())),
            "ego": (tick.ego_speed, tick.ego_accel),
        }
        for tick in series.ticks
    ]
    return json.dumps(payload)


def run_scenario(name: str, stride: float, rounds: int = 1):
    from repro.core.evaluator import OfflineEvaluator, presample_trace
    from repro.scenarios.catalog import build_scenario

    built = build_scenario(name, seed=0)
    trace = built.run(fpr=30.0)
    if trace.has_collision:
        raise RuntimeError(f"{name}: unexpected collision, cannot benchmark")
    samples = presample_trace(trace, stride)
    timings = {"scalar": [], "batched": []}
    fingerprints = {}
    # Interleaved repeats, best-of-N per backend (least-noisy estimator
    # on drifting shared hosts).
    for _ in range(rounds):
        for backend in ("scalar", "batched"):
            evaluator = OfflineEvaluator(
                road=built.road, stride=stride, backend=backend
            )
            started = time.perf_counter()
            series = evaluator.evaluate(trace, samples=samples)
            timings[backend].append(time.perf_counter() - started)
            fingerprints[backend] = series_fingerprint(series)
    if fingerprints["scalar"] != fingerprints["batched"]:
        raise AssertionError(
            f"{name}: batched series diverged from the scalar reference"
        )
    return {backend: min(values) for backend, values in timings.items()}


def run_noise_scenario(name: str, stride: float, rounds: int = 3):
    """Noise-free vs noisy batched timings (plus noisy parity check).

    The timed region covers presampling too: the counter-based draws
    happen at presample time, so excluding them would hide exactly the
    cost this benchmark exists to bound.
    """
    from repro.core.evaluator import OfflineEvaluator, presample_trace
    from repro.perception.noise import PerceptionNoise
    from repro.scenarios.catalog import build_scenario

    built = build_scenario(name, seed=0)
    trace = built.run(fpr=30.0)
    if trace.has_collision:
        raise RuntimeError(f"{name}: unexpected collision, cannot benchmark")
    noise = PerceptionNoise(**NOISE_SPEC)
    timings = {"clean": [], "noisy": []}
    fingerprints = {}
    for _ in range(rounds):
        for label, spec in (("clean", None), ("noisy", noise)):
            evaluator = OfflineEvaluator(
                road=built.road, stride=stride, backend="batched", noise=spec
            )
            started = time.perf_counter()
            samples = presample_trace(trace, stride, noise=spec)
            series = evaluator.evaluate(trace, samples=samples)
            timings[label].append(time.perf_counter() - started)
            fingerprints[label] = series_fingerprint(series)
    # The order-independence contract, spot-checked under load: the
    # scalar reference must reproduce the noisy batched series exactly.
    scalar = OfflineEvaluator(
        road=built.road, stride=stride, backend="scalar", noise=noise
    ).evaluate(trace, samples=presample_trace(trace, stride, noise=noise))
    if series_fingerprint(scalar) != fingerprints["noisy"]:
        raise AssertionError(
            f"{name}: noisy batched series diverged from the scalar reference"
        )
    return {label: min(values) for label, values in timings.items()}


def run_noise_benchmark(scenarios, stride: float, smoke: bool) -> int:
    rows = []
    for name, _ in scenarios:
        timings = run_noise_scenario(name, stride, rounds=1 if smoke else 3)
        overhead = timings["noisy"] / timings["clean"]
        rows.append(
            {
                "scenario": name,
                "clean_s": round(timings["clean"], 3),
                "noisy_s": round(timings["noisy"], 3),
                "overhead": round(overhead, 3),
                "parity": "identical",
            }
        )
        print(
            f"{name:36s} clean {timings['clean']:6.2f} s   "
            f"noisy {timings['noisy']:6.2f} s   "
            f"{overhead:5.2f}x   parity ok"
        )

    if smoke:
        print("smoke: noisy parity identical on", [r["scenario"] for r in rows])
        return 0

    total_clean = sum(row["clean_s"] for row in rows)
    total_noisy = sum(row["noisy_s"] for row in rows)
    report = {
        "stride": stride,
        "noise": NOISE_SPEC,
        "rows": rows,
        "total_clean_s": round(total_clean, 3),
        "total_noisy_s": round(total_noisy, 3),
        "overall_overhead": round(total_noisy / total_clean, 3),
        "overhead_ceiling": NOISE_OVERHEAD_CEILING,
    }
    OUT_DIR.mkdir(exist_ok=True)
    out = OUT_DIR / "perception_noise.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"overall noise overhead {report['overall_overhead']:.2f}x "
        f"(ceiling <= {NOISE_OVERHEAD_CEILING:.1f}x); written to {out}"
    )
    for row in rows:
        assert row["overhead"] <= NOISE_OVERHEAD_CEILING, (
            f"{row['scenario']}: noisy batched cost {row['overhead']:.2f}x "
            f"noise-free (ceiling {NOISE_OVERHEAD_CEILING}x)"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny grid, parity assert only (the CI job)",
    )
    parser.add_argument(
        "--stride",
        type=float,
        default=None,
        help="evaluation stride override (default: 0.05 full, 0.25 smoke)",
    )
    parser.add_argument(
        "--noise",
        action="store_true",
        help=(
            "benchmark stochastic perception instead: noisy batched vs "
            "noise-free batched (ceiling "
            f"<= {NOISE_OVERHEAD_CEILING}x), with a noisy scalar parity "
            "check; writes benchmarks/out/perception_noise.json"
        ),
    )
    args = parser.parse_args(argv)

    from repro.scenarios.catalog import density_sweep

    density_sweep()
    scenarios = SMOKE_SCENARIOS if args.smoke else FULL_SCENARIOS
    stride = args.stride or (0.25 if args.smoke else 0.05)

    if args.noise:
        return run_noise_benchmark(scenarios, stride, args.smoke)

    rows = []
    for name, multi_actor in scenarios:
        timings = run_scenario(name, stride, rounds=1 if args.smoke else 3)
        speedup = timings["scalar"] / timings["batched"]
        rows.append(
            {
                "scenario": name,
                "multi_actor": multi_actor,
                "scalar_s": round(timings["scalar"], 3),
                "batched_s": round(timings["batched"], 3),
                "speedup": round(speedup, 2),
                "parity": "identical",
            }
        )
        print(
            f"{name:36s} scalar {timings['scalar']:6.2f} s   "
            f"batched {timings['batched']:6.2f} s   "
            f"{speedup:5.2f}x   parity ok"
        )

    if args.smoke:
        print("smoke: parity identical on", [r["scenario"] for r in rows])
        return 0

    multi = [row for row in rows if row["multi_actor"]]
    total_scalar = sum(row["scalar_s"] for row in rows)
    total_batched = sum(row["batched_s"] for row in rows)
    report = {
        "stride": stride,
        "rows": rows,
        "total_scalar_s": round(total_scalar, 3),
        "total_batched_s": round(total_batched, 3),
        "overall_speedup": round(total_scalar / total_batched, 2),
        "best_multi_actor_speedup": max(row["speedup"] for row in multi),
        "multi_actor_floor": MULTI_ACTOR_FLOOR,
    }
    OUT_DIR.mkdir(exist_ok=True)
    out = OUT_DIR / "perception_speedup.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"overall {report['overall_speedup']:.2f}x; best multi-actor "
        f"{report['best_multi_actor_speedup']:.2f}x (floor "
        f">= {MULTI_ACTOR_FLOOR:.1f}x); written to {out}"
    )

    for row in multi:
        assert row["speedup"] >= MULTI_ACTOR_FLOOR, (
            f"{row['scenario']}: only {row['speedup']:.2f}x "
            f"(floor {MULTI_ACTOR_FLOOR}x)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
