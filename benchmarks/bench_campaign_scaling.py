"""Campaign engine scaling — sequential vs parallel sweep throughput.

Runs the same scenario x seed grid through ``CampaignRunner`` with one
worker and with ``PARALLEL_WORKERS`` workers, records both wall times
and the speedup, and checks that parallelism changed nothing but the
clock: the per-run summaries must be byte-identical.

The speedup target (>= 2x with 4 workers) is only asserted on machines
that actually have >= 4 cores; on smaller hosts the benchmark still
runs both paths and records the measured ratio, which is the honest
number for that hardware. ``REPRO_CAMPAIGN_FULL=1`` widens the grid to
the speed-sweep-expanded catalog.
"""

import json
import os

from benchmarks.conftest import emit
from repro.batch import Campaign, CampaignRunner, render_campaign_table
from repro.scenarios.catalog import speed_sweep

PARALLEL_WORKERS = 4


def _campaign(full: bool) -> Campaign:
    if full:
        scenarios = tuple(speed_sweep()) + ("vehicle_following",)
        return Campaign(scenarios=scenarios, seeds=(0, 1), stride=0.1)
    return Campaign(
        scenarios=("cut_out", "cut_in", "vehicle_following"),
        seeds=(0, 1),
        fprs=(30.0,),
        stride=0.1,
    )


def _scaling_report():
    full = os.environ.get("REPRO_CAMPAIGN_FULL", "0") == "1"
    campaign = _campaign(full)
    sequential = CampaignRunner(workers=1).run(campaign)
    parallel = CampaignRunner(workers=PARALLEL_WORKERS).run(campaign)
    speedup = sequential.elapsed / parallel.elapsed
    lines = [
        f"grid: {len(campaign.scenarios)} scenario(s) x "
        f"{len(campaign.seeds)} seed(s) x {len(campaign.fprs)} FPR(s) "
        f"= {campaign.size} runs",
        f"host cores: {os.cpu_count()}",
        f"sequential (1 worker):      {sequential.elapsed:8.2f} s",
        f"parallel ({PARALLEL_WORKERS} workers):       {parallel.elapsed:8.2f} s",
        f"speedup:                    {speedup:8.2f}x",
        "",
        render_campaign_table(sequential),
    ]
    return sequential, parallel, speedup, "\n".join(lines)


def test_campaign_scaling(benchmark, artifact_dir):
    sequential, parallel, speedup, report = benchmark.pedantic(
        _scaling_report, rounds=1, iterations=1
    )
    emit(artifact_dir, "campaign_scaling", report)

    # Parallelism must not change a single byte of any summary.
    assert json.dumps([s.to_dict() for s in sequential.summaries]) == json.dumps(
        [s.to_dict() for s in parallel.summaries]
    )
    assert not sequential.failures() and not parallel.failures()

    cores = os.cpu_count() or 1
    if cores >= PARALLEL_WORKERS:
        # On real multi-core hardware the fan-out must pay for itself.
        assert speedup >= 2.0, f"only {speedup:.2f}x with {cores} cores"
