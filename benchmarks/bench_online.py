"""Scalar vs batched online replay benchmark (and CI parity smoke).

Where ``bench_engine.py`` measures the latency kernel and
``bench_perception.py`` the offline evaluation pipeline, this benchmark
measures the *online* path: ``OnlineEstimator.replay`` — prediction,
threat assessment, the (tick x actor x hypothesis) latency solve and the
Equation 4/5 reductions — end to end, with the multi-hypothesis
:class:`ManeuverPredictor` supplying several futures per actor per tick.
The workload is multi-actor-heavy: the dense variants are where the
per-tick loop pays a full predict + assess + solve cycle for every
future of every queued actor at every tick, and where the batch path
collapses all of it into a handful of array programs.

Per scenario the replay runs once per backend over the same trace; the
two :class:`EvaluationSeries` must be byte-identical (the fingerprint
assert), and the measured end-to-end speedup is recorded to
``benchmarks/out/online_speedup.json``.

Targets (1-core container): >= 1.5x asserted end-to-end on every
multi-actor scenario; observed numbers land around 2-3x but shared-host
clock noise swings either backend, so only the floor is a hard assert.

Usage::

    PYTHONPATH=src python benchmarks/bench_online.py           # full run
    PYTHONPATH=src python benchmarks/bench_online.py --smoke   # CI parity
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"

#: (scenario, is a multi-actor workload with the asserted floor)
FULL_SCENARIOS = [
    ("cut_in", False),
    ("challenging_cut_in_curved", False),
    ("cut_in_dense8", True),
    ("challenging_cut_in_curved_dense4", True),
    ("challenging_cut_in_curved_dense8", True),
]
SMOKE_SCENARIOS = [
    ("cut_in", False),
    ("challenging_cut_in_curved_dense4", True),
]

#: Hard end-to-end floor asserted on every multi-actor scenario.
MULTI_ACTOR_FLOOR = 1.5


def series_fingerprint(series) -> str:
    """Canonical byte representation of a whole evaluation series."""
    payload = [
        {
            "time": tick.time,
            "cameras": {
                camera: (estimate.fpr, estimate.latency)
                for camera, estimate in sorted(tick.camera_estimates.items())
            },
            "actors": dict(sorted(tick.actor_latencies.items())),
            "ego": (tick.ego_speed, tick.ego_accel),
        }
        for tick in series.ticks
    ]
    return json.dumps(payload)


def run_scenario(name: str, period: float, rounds: int = 1):
    from repro.core.online import OnlineEstimator
    from repro.core.parameters import ZhuyiParams
    from repro.prediction.maneuver import ManeuverPredictor
    from repro.scenarios.catalog import build_scenario

    built = build_scenario(name, seed=0)
    trace = built.run(fpr=30.0)
    if trace.has_collision:
        raise RuntimeError(f"{name}: unexpected collision, cannot benchmark")
    timings = {"scalar": [], "batched": []}
    fingerprints = {}
    # Interleaved repeats, best-of-N per backend (least-noisy estimator
    # on drifting shared hosts).
    for _ in range(rounds):
        for backend in ("scalar", "batched"):
            estimator = OnlineEstimator(
                params=ZhuyiParams(),
                predictor=ManeuverPredictor(
                    road=built.road, target_lane=built.spec.ego_lane
                ),
                road=built.road,
                backend=backend,
            )
            started = time.perf_counter()
            series = estimator.replay(trace, period=period)
            timings[backend].append(time.perf_counter() - started)
            fingerprints[backend] = series_fingerprint(series)
    if fingerprints["scalar"] != fingerprints["batched"]:
        raise AssertionError(
            f"{name}: batched replay diverged from the scalar reference"
        )
    return {backend: min(values) for backend, values in timings.items()}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny grid, parity assert only (the CI job)",
    )
    parser.add_argument(
        "--period",
        type=float,
        default=None,
        help="replay cadence override (default: 0.1 full, 0.25 smoke)",
    )
    args = parser.parse_args(argv)

    from repro.scenarios.catalog import density_sweep

    density_sweep()
    scenarios = SMOKE_SCENARIOS if args.smoke else FULL_SCENARIOS
    period = args.period or (0.25 if args.smoke else 0.1)

    rows = []
    for name, multi_actor in scenarios:
        timings = run_scenario(name, period, rounds=1 if args.smoke else 3)
        speedup = timings["scalar"] / timings["batched"]
        rows.append(
            {
                "scenario": name,
                "multi_actor": multi_actor,
                "scalar_s": round(timings["scalar"], 3),
                "batched_s": round(timings["batched"], 3),
                "speedup": round(speedup, 2),
                "parity": "identical",
            }
        )
        print(
            f"{name:36s} scalar {timings['scalar']:6.2f} s   "
            f"batched {timings['batched']:6.2f} s   "
            f"{speedup:5.2f}x   parity ok"
        )

    if args.smoke:
        print("smoke: parity identical on", [r["scenario"] for r in rows])
        return 0

    multi = [row for row in rows if row["multi_actor"]]
    total_scalar = sum(row["scalar_s"] for row in rows)
    total_batched = sum(row["batched_s"] for row in rows)
    report = {
        "period": period,
        "rows": rows,
        "total_scalar_s": round(total_scalar, 3),
        "total_batched_s": round(total_batched, 3),
        "overall_speedup": round(total_scalar / total_batched, 2),
        "best_multi_actor_speedup": max(row["speedup"] for row in multi),
        "multi_actor_floor": MULTI_ACTOR_FLOOR,
    }
    OUT_DIR.mkdir(exist_ok=True)
    out = OUT_DIR / "online_speedup.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"overall {report['overall_speedup']:.2f}x; best multi-actor "
        f"{report['best_multi_actor_speedup']:.2f}x (floor "
        f">= {MULTI_ACTOR_FLOOR:.1f}x); written to {out}"
    )

    for row in multi:
        assert row["speedup"] >= MULTI_ACTOR_FLOOR, (
            f"{row['scenario']}: only {row['speedup']:.2f}x "
            f"(floor {MULTI_ACTOR_FLOOR}x)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
