"""Scalar vs batched latency-engine benchmark (and the CI parity smoke).

Runs the offline evaluator over the standard catalog — the Table 1
scenarios that exercise each threat geometry plus the density-sweep
variants whose queued traffic makes every tick a multi-actor
latency-grid problem — once per backend, asserts the two
:class:`EvaluationSeries` are byte-identical, and records the measured
speedup under ``benchmarks/out/``.

Targets (1-core container): >= 3x on the heaviest multi-actor density
scenario, >= 1.5x asserted as the hard floor across the multi-actor set
(wall-clock noise on shared 1-core hosts swings either backend by 2x
between moments — observed multi-actor ratios span 1.8-3.3x — so the
3x target is advisory; the recorded artifact carries the measured
numbers).

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py           # full run
    PYTHONPATH=src python benchmarks/bench_engine.py --smoke   # CI parity

``--smoke`` runs a coarse-stride subset and only asserts parity — it
exists so backend drift fails CI rather than benchmarks.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"

#: (scenario, is the multi-actor engine showcase)
FULL_SCENARIOS = [
    ("cut_out", False),
    ("cut_in", False),
    ("vehicle_following", False),
    ("challenging_cut_in_curved", False),
    ("cut_out_dense8", True),
    ("cut_in_dense8", True),
    ("vehicle_following_dense8", True),
]
SMOKE_SCENARIOS = [("cut_out", False), ("cut_in_dense4", True)]

#: Hard floor asserted on every multi-actor scenario in the full run.
MULTI_ACTOR_FLOOR = 1.5
#: The headline target, recorded (and reported) rather than asserted.
MULTI_ACTOR_TARGET = 3.0


def series_fingerprint(series) -> str:
    """Canonical byte representation of a whole evaluation series."""
    payload = [
        {
            "time": tick.time,
            "cameras": {
                camera: (estimate.fpr, estimate.latency)
                for camera, estimate in sorted(tick.camera_estimates.items())
            },
            "actors": dict(sorted(tick.actor_latencies.items())),
            "ego": (tick.ego_speed, tick.ego_accel),
        }
        for tick in series.ticks
    ]
    return json.dumps(payload)


def run_scenario(name: str, stride: float, rounds: int = 1):
    from repro.core.evaluator import OfflineEvaluator, presample_trace
    from repro.scenarios.catalog import build_scenario

    built = build_scenario(name, seed=0)
    trace = built.run(fpr=30.0)
    if trace.has_collision:
        raise RuntimeError(f"{name}: unexpected collision, cannot benchmark")
    samples = presample_trace(trace, stride)
    timings = {"scalar": [], "batched": []}
    fingerprints = {}
    # Interleaved repeats, best-of-N per backend: the shared 1-core
    # containers this runs on drift by 2x between moments, and the
    # minimum is the least-noisy estimator of the true cost.
    for _ in range(rounds):
        for backend in ("scalar", "batched"):
            evaluator = OfflineEvaluator(
                road=built.road, stride=stride, backend=backend
            )
            started = time.perf_counter()
            series = evaluator.evaluate(trace, samples=samples)
            timings[backend].append(time.perf_counter() - started)
            fingerprints[backend] = series_fingerprint(series)
    if fingerprints["scalar"] != fingerprints["batched"]:
        raise AssertionError(
            f"{name}: batched series diverged from the scalar reference"
        )
    return {backend: min(values) for backend, values in timings.items()}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny grid, parity assert only (the CI job)",
    )
    parser.add_argument(
        "--stride",
        type=float,
        default=None,
        help="evaluation stride override (default: 0.05 full, 0.25 smoke)",
    )
    args = parser.parse_args(argv)

    from repro.scenarios.catalog import density_sweep

    density_sweep()
    scenarios = SMOKE_SCENARIOS if args.smoke else FULL_SCENARIOS
    stride = args.stride or (0.25 if args.smoke else 0.05)

    rows = []
    for name, multi_actor in scenarios:
        timings = run_scenario(name, stride, rounds=1 if args.smoke else 3)
        speedup = timings["scalar"] / timings["batched"]
        rows.append(
            {
                "scenario": name,
                "multi_actor": multi_actor,
                "scalar_s": round(timings["scalar"], 3),
                "batched_s": round(timings["batched"], 3),
                "speedup": round(speedup, 2),
                "parity": "identical",
            }
        )
        print(
            f"{name:28s} scalar {timings['scalar']:6.2f} s   "
            f"batched {timings['batched']:6.2f} s   "
            f"{speedup:5.2f}x   parity ok"
        )

    if args.smoke:
        print("smoke: parity identical on", [r["scenario"] for r in rows])
        return 0

    multi = [row for row in rows if row["multi_actor"]]
    best = max(row["speedup"] for row in multi)
    total_scalar = sum(row["scalar_s"] for row in rows)
    total_batched = sum(row["batched_s"] for row in rows)
    report = {
        "stride": stride,
        "rows": rows,
        "total_scalar_s": round(total_scalar, 3),
        "total_batched_s": round(total_batched, 3),
        "overall_speedup": round(total_scalar / total_batched, 2),
        "best_multi_actor_speedup": best,
        "multi_actor_floor": MULTI_ACTOR_FLOOR,
        "multi_actor_target": MULTI_ACTOR_TARGET,
    }
    OUT_DIR.mkdir(exist_ok=True)
    out = OUT_DIR / "engine_speedup.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"overall {report['overall_speedup']:.2f}x; best multi-actor "
        f"{best:.2f}x (target >= {MULTI_ACTOR_TARGET:.0f}x, floor "
        f">= {MULTI_ACTOR_FLOOR:.1f}x); written to {out}"
    )

    for row in multi:
        assert row["speedup"] >= MULTI_ACTOR_FLOOR, (
            f"{row['scenario']}: only {row['speedup']:.2f}x "
            f"(floor {MULTI_ACTOR_FLOOR}x)"
        )
    if best < MULTI_ACTOR_TARGET:
        print(
            f"warning: best multi-actor speedup {best:.2f}x is below the "
            f"{MULTI_ACTOR_TARGET:.0f}x target on this host",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
