"""Figures 4-6 — per-camera latency estimates over three scenarios.

Each figure: the left/front/right camera tolerable-latency series plus
the ego's acceleration for one 30-FPR run, and the paper's observation
that the front camera's requirement tracks ego deceleration.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.figures import decel_correlation, offline_figure_series
from repro.analysis.report import render_series

FIGURES = {
    "figure4_cut_out_fast": "cut_out_fast",
    "figure5_curved_cut_in": "challenging_cut_in_curved",
    "figure6_cut_in": "cut_in",
}


def _report(scenario: str):
    series = offline_figure_series(scenario, seed=0)
    blocks = [f"scenario: {scenario} (30 FPR, seed 0)"]
    for camera in ("left", "front_120", "right"):
        blocks.append(
            render_series(
                series.latency(camera),
                label=f"{camera} tolerable latency [s]",
            )
        )
    blocks.append(
        render_series(series.ego_accel, label="ego acceleration [m/s^2]")
    )
    correlation = decel_correlation(series)
    blocks.append(
        f"front-camera demand vs ego braking correlation: {correlation:.2f}"
    )
    return series, correlation, "\n\n".join(blocks)


@pytest.mark.parametrize("name,scenario", sorted(FIGURES.items()))
def test_figure_series(benchmark, artifact_dir, name, scenario):
    series, correlation, report = benchmark.pedantic(
        _report, args=(scenario,), rounds=1, iterations=1
    )
    emit(artifact_dir, name, report)
    assert not series.collided
    # Shape: the front camera binds hardest and the sides stay permissive.
    assert series.min_latency("front_120") <= series.min_latency("left")
    assert series.min_latency("front_120") <= series.min_latency("right")
    # "A strong correlation between the front camera FPR requirements
    # and ego deceleration" (Zhuyi leads the braking).
    assert correlation > 0.4
