"""Cross-variant trace cache — N-variant campaigns at ~1-simulation cost.

A campaign sweeping N ``ZhuyiParams`` variants over the same
(scenario, seed, fpr) cells used to simulate every cell N times, once
per variant. The closed loop never reads the Zhuyi constants, so the
runner now simulates each cell once, presamples its trajectories once,
and re-evaluates the cached trace per variant.

This benchmark runs the same 4-variant grid both ways — the cached
cell path (``CampaignRunner``) and the old per-run path
(``execute_run`` per spec) — asserts the summaries are byte-identical,
and records the speedup. Unlike process-level parallelism the cache
owes nothing to core count, so the >= 2x target is asserted on every
host, including 1-core containers.
"""

import json

from benchmarks.conftest import emit
from repro.batch import Campaign, CampaignRunner, ParamVariant, execute_run
from repro.core.parameters import ZhuyiParams

#: The >= target for a 4-variant grid (acceptance: well under N x).
SPEEDUP_TARGET = 2.0

VARIANTS = (
    ParamVariant("default"),
    ParamVariant("strict", ZhuyiParams(c1=0.8, c2=0.8)),
    ParamVariant("loose", ZhuyiParams(c1=1.0, c2=1.0)),
    ParamVariant("soft_brake", ZhuyiParams(c3=4.0)),
)


def _campaign() -> Campaign:
    # Coarse stride: at fine strides the offline evaluation rivals the
    # simulation and dilutes the cached-simulation win; campaign sweeps
    # over many variants run coarse first and refine interesting cells.
    return Campaign(
        scenarios=("cut_out", "cut_in", "vehicle_following"),
        seeds=(0,),
        fprs=(30.0,),
        variants=VARIANTS,
        stride=0.5,
    )


def _compare():
    import time

    campaign = _campaign()

    started = time.perf_counter()
    cached = CampaignRunner(workers=1).run(campaign)
    cached_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    uncached = [execute_run(spec) for spec in campaign.runs()]
    uncached_elapsed = time.perf_counter() - started

    speedup = uncached_elapsed / cached_elapsed
    cells = campaign.size // len(VARIANTS)
    lines = [
        f"grid: {cells} (scenario, seed, fpr) cell(s) x "
        f"{len(VARIANTS)} variants = {campaign.size} runs",
        f"per-run (1 sim per run):    {uncached_elapsed:8.2f} s",
        f"cached  (1 sim per cell):   {cached_elapsed:8.2f} s",
        f"speedup:                    {speedup:8.2f}x "
        f"(target >= {SPEEDUP_TARGET:.1f}x for {len(VARIANTS)} variants)",
    ]
    return cached, uncached, speedup, "\n".join(lines)


def test_variant_cache(benchmark, artifact_dir):
    cached, uncached, speedup, report = benchmark.pedantic(
        _compare, rounds=1, iterations=1
    )
    emit(artifact_dir, "variant_cache", report)

    # The cache must change nothing but the clock.
    assert json.dumps([s.to_dict() for s in cached.summaries]) == json.dumps(
        [s.to_dict() for s in uncached]
    )
    assert not cached.failures()

    # And the variants must genuinely differ (the cache isn't
    # collapsing them into one evaluation).
    by_variant = {
        (s.scenario, s.variant): s.max_fpr for s in cached.summaries
    }
    assert by_variant[("cut_out", "default")] != by_variant[
        ("cut_out", "strict")
    ]

    assert speedup >= SPEEDUP_TARGET, f"only {speedup:.2f}x"
