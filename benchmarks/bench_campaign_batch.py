"""Per-cell vs cross-trace campaign benchmark (and the CI parity smoke).

Runs the same multi-scenario, multi-seed, multi-variant campaign twice —
``backend="batched"`` (one evaluator pass per run) and
``backend="crosstrace"`` (whole super-cells of traces and variants
solved through shared array programs) — asserts the streamed JSONL
files are byte-identical line for line (header ``backend`` tag and
footer wall-clock normalized, since those *should* differ), and records
the measured wall-clock speedup under ``benchmarks/out/``.

Target (1-core container): >= 1.5x asserted as the hard floor on the
multi-variant campaign at ``workers=1`` — the cross-trace win comes
from amortizing candidate grids, threat sampling, visibility passes and
per-tick ego profiles across every (trace, actor, variant) of a block,
so the speedup grows with actor and variant counts. The timed grid
therefore sweeps the 8-actor density variants: multi-actor traffic is
exactly the workload whole-shard campaigns exist for, while the
simulation side (identical work in both backends) caps what any
evaluator can show on near-empty roads.

Usage::

    PYTHONPATH=src python benchmarks/bench_campaign_batch.py           # full
    PYTHONPATH=src python benchmarks/bench_campaign_batch.py --smoke   # CI

``--smoke`` runs a coarse-stride grid and only asserts JSONL parity —
it exists so backend drift fails CI rather than benchmarks.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"

#: Hard floor asserted on the full multi-variant campaign.
CAMPAIGN_FLOOR = 1.5

FULL_SCENARIOS = (
    "cut_in_dense8",
    "cut_out_dense8",
    "vehicle_following_dense8",
)
FULL_SEEDS = (0, 1)
SMOKE_SCENARIOS = ("cut_in", "cut_out")
SMOKE_SEEDS = (0,)


def build_variants(count: int):
    """``count`` c1/c2-only variants: one solver-grid-compatible group."""
    from repro.batch import ParamVariant
    from repro.core.parameters import ZhuyiParams

    base = ZhuyiParams()
    pool = [
        ParamVariant("paper"),
        ParamVariant("c1_085", replace(base, c1=0.85)),
        ParamVariant("c2_085", replace(base, c2=0.85)),
        ParamVariant("c1c2_085", replace(base, c1=0.85, c2=0.85)),
        ParamVariant("c1_095", replace(base, c1=0.95)),
        ParamVariant("c2_095", replace(base, c2=0.95)),
    ]
    return tuple(pool[:count])


def run_campaign(backend: str, scenarios, seeds, variants, stride: float):
    """One timed campaign execution; returns (elapsed_s, jsonl_lines)."""
    from repro.batch import Campaign, CampaignRunner

    campaign = Campaign(
        scenarios=scenarios,
        seeds=seeds,
        fprs=(30.0,),
        variants=variants,
        stride=stride,
        backend=backend,
    )
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "campaign.jsonl"
        runner = CampaignRunner(workers=1)
        started = time.perf_counter()
        result = runner.run(campaign, out=out)
        elapsed = time.perf_counter() - started
        lines = out.read_text().splitlines()
    if result.failures():
        raise RuntimeError(
            f"{backend}: campaign runs failed: "
            + "; ".join(s.error for s in result.failures())
        )
    return elapsed, lines


def normalize(lines: list[str]) -> list[str]:
    """JSONL lines with the fields that *should* differ zeroed out.

    The header's grid carries the backend selector and the footer
    carries the run's wall clock; every run line must already be
    byte-identical and is passed through untouched.
    """
    normalized = []
    for line in lines:
        record = json.loads(line)
        if record.get("kind") == "campaign":
            record["grid"]["backend"] = "<normalized>"
            normalized.append(json.dumps(record))
        elif record.get("kind") == "completed":
            record["elapsed"] = 0.0
            normalized.append(json.dumps(record))
        else:
            normalized.append(line)
    return normalized


def assert_jsonl_identical(batched: list[str], crosstrace: list[str]) -> int:
    """Byte-compare the two campaign files; returns the run-line count."""
    norm_b, norm_c = normalize(batched), normalize(crosstrace)
    if len(norm_b) != len(norm_c):
        raise AssertionError(
            f"line counts diverged: {len(norm_b)} batched vs "
            f"{len(norm_c)} crosstrace"
        )
    for number, (line_b, line_c) in enumerate(zip(norm_b, norm_c)):
        if line_b != line_c:
            raise AssertionError(
                f"line {number} diverged:\n  batched:    {line_b}\n"
                f"  crosstrace: {line_c}"
            )
    return sum(1 for line in batched if '"kind": "run"' in line)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny grid, JSONL parity assert only (the CI job)",
    )
    parser.add_argument(
        "--stride",
        type=float,
        default=None,
        help="evaluation stride override (default: 0.05 full, 0.25 smoke)",
    )
    args = parser.parse_args(argv)

    scenarios = SMOKE_SCENARIOS if args.smoke else FULL_SCENARIOS
    seeds = SMOKE_SEEDS if args.smoke else FULL_SEEDS
    variants = build_variants(3 if args.smoke else 6)
    stride = args.stride or (0.25 if args.smoke else 0.05)
    rounds = 1 if args.smoke else 2

    # Interleaved repeats, best-of-N per backend: shared 1-core hosts
    # drift by 2x between moments; the minimum is the least-noisy
    # estimator of the true cost.
    timings = {"batched": [], "crosstrace": []}
    lines = {}
    for _ in range(rounds):
        for backend in ("batched", "crosstrace"):
            elapsed, jsonl = run_campaign(
                backend, scenarios, seeds, variants, stride
            )
            timings[backend].append(elapsed)
            lines[backend] = jsonl
    runs = assert_jsonl_identical(lines["batched"], lines["crosstrace"])
    best = {backend: min(values) for backend, values in timings.items()}
    speedup = best["batched"] / best["crosstrace"]
    print(
        f"{len(scenarios)} scenarios x {len(seeds)} seeds x "
        f"{len(variants)} variants ({runs} runs, stride {stride:g}):  "
        f"batched {best['batched']:6.2f} s   "
        f"crosstrace {best['crosstrace']:6.2f} s   "
        f"{speedup:5.2f}x   JSONL identical"
    )

    if args.smoke:
        print(f"smoke: campaign JSONL byte-identical over {runs} runs")
        return 0

    report = {
        "stride": stride,
        "scenarios": list(scenarios),
        "seeds": list(seeds),
        "variants": [variant.name for variant in variants],
        "runs": runs,
        "workers": 1,
        "batched_s": round(best["batched"], 3),
        "crosstrace_s": round(best["crosstrace"], 3),
        "speedup": round(speedup, 2),
        "floor": CAMPAIGN_FLOOR,
        "parity": "identical",
    }
    OUT_DIR.mkdir(exist_ok=True)
    out = OUT_DIR / "campaign_batch_speedup.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"campaign speedup {speedup:.2f}x at workers=1 "
        f"(floor >= {CAMPAIGN_FLOOR:.1f}x); written to {out}"
    )
    assert speedup >= CAMPAIGN_FLOOR, (
        f"only {speedup:.2f}x (floor {CAMPAIGN_FLOOR}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
