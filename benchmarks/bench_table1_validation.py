"""Table 1 — scenario validation: MRF, Zhuyi estimates, peak fraction.

The quick default runs two seeds over a reduced FPR grid (about two
minutes); set ``REPRO_TABLE1_FULL=1`` for the paper's ten-seed, full-grid
protocol.
"""

from benchmarks.conftest import emit
from repro.analysis.table1 import Table1Config, generate_table1, render_table1


def _config(full: bool) -> Table1Config:
    if full:
        return Table1Config(
            seeds=tuple(range(10)),
        )
    return Table1Config(
        fpr_grid=(1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 15.0, 30.0),
        seeds=(0, 1),
    )


def test_table1_validation(benchmark, artifact_dir, full_table1):
    config = _config(full_table1)
    rows = benchmark.pedantic(
        generate_table1, args=(config,), rounds=1, iterations=1
    )
    report = render_table1(rows, config)

    summary = ["", "Validation checks:"]
    worst_fraction = max(row.fraction for row in rows)
    summary.append(
        f"  peak fraction of a 3x30-FPR provision: {worst_fraction:.2f} "
        "(paper headline: 0.36)"
    )
    for row in rows:
        if row.mrf.mrf is None or not row.mrf.collision_fprs:
            continue
        estimates = [v for v in row.mean_estimates.values() if v is not None]
        floor = min(estimates) if estimates else float("nan")
        summary.append(
            f"  {row.scenario}: MRF {row.mrf.label} (paper {row.paper_mrf}), "
            f"lowest estimate {floor:.1f} -> conservative: "
            f"{floor >= row.mrf.mrf}"
        )
    emit(artifact_dir, "table1_validation", report + "\n".join(summary))

    # Safety: wherever a real MRF exists, every estimate stays above it.
    for row in rows:
        if row.mrf.mrf is None or not row.mrf.collision_fprs:
            continue
        for estimate in row.mean_estimates.values():
            if estimate is not None:
                assert estimate >= row.mrf.mrf - 1e-6, row.scenario
    assert worst_fraction <= 0.37
