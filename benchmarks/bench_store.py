"""Cold vs warm trace-store campaign benchmark (and the CI parity smoke).

Runs the same multi-actor campaign twice against one
:class:`~repro.store.TraceStore` — cold (empty store: every cell
simulates and records) and warm (every cell loads its memory-mapped
bundle and skips the closed loop) — asserts the streamed JSONL files
are byte-identical line for line (footer wall-clock aside) and records
the measured wall-clock speedup under ``benchmarks/out/``.

Target (1-core container): >= 2x asserted as the hard floor on the
dense-traffic trio at ``workers=1``. Simulation dominates those cells
— an 8-actor closed loop steps planners, dynamics and collision
checks for every background vehicle at 20 Hz — while the warm path
pays only road construction plus the (shared) evaluation, so the
measured split is typically far above the floor.

Usage::

    PYTHONPATH=src python benchmarks/bench_store.py           # full
    PYTHONPATH=src python benchmarks/bench_store.py --smoke   # CI

``--smoke`` runs a coarse-stride grid and only asserts cold/warm JSONL
parity — it exists so store drift fails CI rather than benchmarks.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"

#: Hard floor asserted on the full dense-trio campaign.
STORE_FLOOR = 2.0

FULL_SCENARIOS = (
    "cut_in_dense8",
    "cut_out_dense8",
    "vehicle_following_dense8",
)
FULL_SEEDS = (0, 1)
SMOKE_SCENARIOS = ("cut_in", "cut_out")
SMOKE_SEEDS = (0,)


def run_campaign(store_dir: Path, scenarios, seeds, stride: float):
    """One timed campaign against the store; returns (elapsed, lines)."""
    from repro.batch import Campaign, CampaignRunner
    from repro.store import TraceStore

    campaign = Campaign(
        scenarios=scenarios, seeds=seeds, fprs=(30.0,), stride=stride
    )
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "campaign.jsonl"
        runner = CampaignRunner(workers=1, store=TraceStore(store_dir))
        started = time.perf_counter()
        result = runner.run(campaign, out=out)
        elapsed = time.perf_counter() - started
        lines = out.read_text().splitlines()
    if result.failures():
        raise RuntimeError(
            "campaign runs failed: "
            + "; ".join(s.error for s in result.failures())
        )
    return elapsed, lines


def assert_jsonl_identical(cold: list[str], warm: list[str]) -> int:
    """Byte-compare the two campaign files; returns the run-line count.

    Only the footer's wall clock may differ; the header carries the
    same grid in both runs and every run line must match exactly.
    """
    if len(cold) != len(warm):
        raise AssertionError(
            f"line counts diverged: {len(cold)} cold vs {len(warm)} warm"
        )
    for number, (line_c, line_w) in enumerate(zip(cold, warm)):
        if json.loads(line_c).get("kind") == "completed":
            continue
        if line_c != line_w:
            raise AssertionError(
                f"line {number} diverged:\n  cold: {line_c}\n"
                f"  warm: {line_w}"
            )
    return sum(1 for line in cold if '"kind": "run"' in line)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny grid, JSONL parity assert only (the CI job)",
    )
    parser.add_argument(
        "--stride",
        type=float,
        default=None,
        help="evaluation stride override (default: 0.05 full, 0.25 smoke)",
    )
    args = parser.parse_args(argv)

    scenarios = SMOKE_SCENARIOS if args.smoke else FULL_SCENARIOS
    seeds = SMOKE_SEEDS if args.smoke else FULL_SEEDS
    stride = args.stride or (0.25 if args.smoke else 0.05)

    with tempfile.TemporaryDirectory() as store_tmp:
        store_dir = Path(store_tmp) / "store"
        cold_s, cold_lines = run_campaign(
            store_dir, scenarios, seeds, stride
        )
        warm_s, warm_lines = run_campaign(
            store_dir, scenarios, seeds, stride
        )
    runs = assert_jsonl_identical(cold_lines, warm_lines)
    speedup = cold_s / warm_s
    print(
        f"{len(scenarios)} scenarios x {len(seeds)} seeds "
        f"({runs} runs, stride {stride:g}):  "
        f"cold {cold_s:6.2f} s   warm {warm_s:6.2f} s   "
        f"{speedup:5.2f}x   JSONL identical"
    )

    if args.smoke:
        print(f"smoke: warm campaign JSONL byte-identical over {runs} runs")
        return 0

    report = {
        "stride": stride,
        "scenarios": list(scenarios),
        "seeds": list(seeds),
        "runs": runs,
        "workers": 1,
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "speedup": round(speedup, 2),
        "floor": STORE_FLOOR,
        "parity": "identical",
    }
    OUT_DIR.mkdir(exist_ok=True)
    out = OUT_DIR / "store_speedup.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"warm-store speedup {speedup:.2f}x at workers=1 "
        f"(floor >= {STORE_FLOOR:.1f}x); written to {out}"
    )
    assert speedup >= STORE_FLOOR, (
        f"only {speedup:.2f}x (floor {STORE_FLOOR}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
