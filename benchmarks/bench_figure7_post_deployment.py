"""Figure 7 — post-deployment (online) latency estimate for Cut-in.

The online estimator consumes the perceived world model and predicted
trajectories; the paper attributes the variance against Figure 6c mainly
to prediction differences.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.figures import offline_figure_series, online_figure_series
from repro.analysis.report import render_series


def _report():
    online = online_figure_series("cut_in", seed=0)
    offline = offline_figure_series("cut_in", seed=0)
    blocks = [
        "scenario: cut_in (30 FPR, seed 0), front camera",
        render_series(
            online.latency("front_120"),
            label="online (world model + predictions) latency [s]",
        ),
        render_series(
            offline.latency("front_120"),
            label="offline (ground-truth trace) latency [s]",
        ),
    ]
    online_var = float(np.var(online.latency("front_120")))
    offline_var = float(np.var(offline.latency("front_120")))
    blocks.append(
        f"variance online={online_var:.4f} offline={offline_var:.4f} "
        "(paper: online varies more due to prediction differences)"
    )
    return online, offline, "\n\n".join(blocks)


def test_figure7_post_deployment(benchmark, artifact_dir):
    online, offline, report = benchmark.pedantic(
        _report, rounds=1, iterations=1
    )
    emit(artifact_dir, "figure7_post_deployment", report)
    assert not online.collided
    # The online estimates must remain achievable by the running system —
    # "the estimates are low-enough for safe operations".
    assert online.max_fpr("front_120") <= 30.0 + 1e-6
    # And the event binds online too.
    assert online.min_latency("front_120") < 0.5
