"""Ablation — Equation 4 aggregation functions on the online estimator.

Max / mean / percentile aggregation over the manoeuvre predictor's
hypotheses, evaluated on one Cut-in tick: the paper's qualitative
ordering (max most pessimistic, mean most permissive, percentile
between) must emerge.
"""

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.core.aggregation import (
    MaxAggregator,
    MeanAggregator,
    PercentileAggregator,
)
from repro.core.online import OnlineEstimator
from repro.core.parameters import ZhuyiParams
from repro.prediction.maneuver import ManeuverPredictor
from repro.scenarios.catalog import build_scenario


def _run():
    scenario = build_scenario("cut_in", seed=0)
    trace = scenario.run(fpr=30.0)
    params = ZhuyiParams()
    predictor = ManeuverPredictor(road=scenario.road, target_lane=1)

    # Reconstruct a mid-event world-model snapshot from the trace's
    # ground truth (ideal perception) at the cut-in moment.
    from repro.perception.world_model import PerceivedActor, WorldModel

    tick_time = trace.duration * 0.45
    step = trace.step_at(tick_time)
    world = WorldModel()
    for actor_id, state in step.actors.items():
        world.upsert(
            PerceivedActor(
                actor_id=actor_id,
                position=state.position,
                velocity=state.velocity(),
                heading=state.heading,
                speed=state.speed,
                accel=state.accel,
                timestamp=step.time,
            )
        )

    rows = []
    for label, aggregator in (
        ("max (most pessimistic)", MaxAggregator()),
        ("percentile-99", PercentileAggregator(99.0)),
        ("percentile-90", PercentileAggregator(90.0)),
        ("mean (probability-weighted)", MeanAggregator()),
    ):
        estimator = OnlineEstimator(
            params=params,
            predictor=predictor,
            road=scenario.road,
            aggregator=aggregator,
        )
        tick = estimator.estimate(
            now=step.time,
            ego_state=step.ego,
            ego_spec=trace.ego_spec,
            world_model=world,
            l0=1.0 / 30.0,
        )
        rows.append((label, tick.latency("front_120"), tick.fpr("front_120")))
    return rows


def test_ablation_aggregation(benchmark, artifact_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["Aggregator", "front latency [s]", "front FPR"],
        [(label, f"{lat:.3f}", f"{fpr:.1f}") for label, lat, fpr in rows],
    )
    emit(artifact_dir, "ablation_aggregation", table)

    by_label = {label: lat for label, lat, _ in rows}
    # Pessimism ordering: max <= p99 <= p90 <= mean in latency space.
    assert by_label["max (most pessimistic)"] <= by_label["percentile-99"] + 1e-9
    assert by_label["percentile-99"] <= by_label["percentile-90"] + 1e-9
    assert by_label["percentile-90"] <= (
        by_label["mean (probability-weighted)"] + 1e-9
    )
