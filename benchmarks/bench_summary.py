"""Consolidate every per-benchmark speedup artifact into one summary.

Each performance benchmark writes its own machine-readable report under
``benchmarks/out/`` (``engine_speedup.json``, ``online_speedup.json``,
``perception_speedup.json``, ``campaign_batch_speedup.json``,
``store_speedup.json``, ``perception_noise.json``, ...). This script
merges them into ``benchmarks/out/BENCH_summary.json`` — one headline
row per artifact: the measured speedup (or overhead), the asserted
floor where the benchmark has one, and the parity status — so a single
file answers "what does each optimization buy, and is it still exact?".

Usage::

    PYTHONPATH=src python benchmarks/bench_summary.py

Artifacts are read as-is; run the individual benchmarks first to
refresh stale numbers. Unknown shapes are carried through with their
raw top-level scalars rather than dropped.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"
SUMMARY = OUT_DIR / "BENCH_summary.json"


def headline(name: str, data: dict) -> dict:
    """One summary row for an artifact, tolerant of the three shapes.

    Per-scenario benchmarks carry ``rows`` plus overall/best speedups;
    single-measurement benchmarks carry a flat ``speedup``; the noise
    benchmark reports ``overhead`` ratios instead.
    """
    row: dict = {"artifact": f"{name}.json"}
    if "rows" in data:
        row["scenarios"] = len(data["rows"])
        for key in (
            "overall_speedup",
            "best_multi_actor_speedup",
            "multi_actor_floor",
        ):
            if key in data:
                row[key] = data[key]
        overheads = [
            r["overhead"] for r in data["rows"] if "overhead" in r
        ]
        if overheads:
            row["max_overhead"] = max(overheads)
        parities = {r.get("parity") for r in data["rows"]}
        row["parity"] = (
            "identical" if parities == {"identical"} else sorted(parities)
        )
    else:
        for key in ("speedup", "floor", "parity", "runs", "workers"):
            if key in data:
                row[key] = data[key]
    if len(row) == 1:
        # Unknown shape: keep its scalars so nothing silently vanishes.
        row.update(
            {
                key: value
                for key, value in data.items()
                if isinstance(value, (int, float, str))
            }
        )
    return row


def main(argv=None) -> int:
    artifacts = sorted(
        path
        for path in OUT_DIR.glob("*.json")
        if path.name != SUMMARY.name
    )
    if not artifacts:
        print(f"no artifacts under {OUT_DIR}; run the benchmarks first")
        return 1
    rows = []
    for path in artifacts:
        try:
            data = json.loads(path.read_text())
        except ValueError as exc:
            print(f"skipping unreadable {path.name}: {exc}")
            continue
        rows.append(headline(path.stem, data))
    summary = {"artifacts": len(rows), "benchmarks": rows}
    SUMMARY.write_text(json.dumps(summary, indent=2) + "\n")
    width = max(len(row["artifact"]) for row in rows)
    for row in rows:
        gain = row.get("speedup") or row.get("overall_speedup")
        note = (
            f"{gain:.2f}x"
            if isinstance(gain, (int, float))
            else f"overhead <= {row['max_overhead']:.2f}x"
            if "max_overhead" in row
            else "-"
        )
        print(f"  {row['artifact']:<{width}}  {note}")
    print(f"{len(rows)} artifacts merged into {SUMMARY}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
