"""Benchmark support: artifact directory and shared knobs.

Every benchmark regenerates one of the paper's tables or figures,
printing the rows/series and writing a copy under ``benchmarks/out/``.
``REPRO_TABLE1_FULL=1`` switches the Table 1 harness to the paper's full
protocol (ten seeds, full FPR grid) instead of the quick default.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def full_table1() -> bool:
    return os.environ.get("REPRO_TABLE1_FULL", "0") == "1"


def emit(artifact_dir: Path, name: str, text: str) -> None:
    """Print a report and archive it under benchmarks/out/."""
    print()
    print(f"===== {name} =====")
    print(text)
    (artifact_dir / f"{name}.txt").write_text(text + "\n")
