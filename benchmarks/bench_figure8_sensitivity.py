"""Figure 8 — estimated minimum FPR over (v_e0, v_an) at fixed s_n.

Two panels (30 m and 100 m), rendered as character heatmaps: '@' is the
paper's gray 30+ FPR region, blank the white unavoidable region.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.report import render_heatmap
from repro.analysis.sensitivity import sweep_min_fpr


def _panel(gap: float):
    grid = sweep_min_fpr(
        gap=gap,
        ego_speeds_mph=np.linspace(0.0, 70.0, 24),
        actor_speeds_mph=np.linspace(0.0, 70.0, 24),
    )
    text = (
        f"s_n = {gap:g} m  (x: v_e0 0->70 mph, y: v_an 0->70 mph)\n"
        f"glyphs: .<=2  :<=5  +<=10  *<=15  #<=30  @>30  blank=unavoidable\n"
        + render_heatmap(grid.min_fpr)
        + f"\nunavoidable fraction: {grid.region_fraction(grid.white_mask()):.2f}"
        + f"  max finite FPR: {grid.max_finite_fpr():.1f}"
        + f"  max FPR below 25 mph: {grid.band_max(0.0, 25.0):.1f}"
    )
    return grid, text


def _report():
    grid30, text30 = _panel(30.0)
    grid100, text100 = _panel(100.0)
    return grid30, grid100, text30 + "\n\n" + text100


def test_figure8_sensitivity(benchmark, artifact_dir):
    grid30, grid100, report = benchmark.pedantic(_report, rounds=1, iterations=1)
    emit(artifact_dir, "figure8_sensitivity", report)

    # The paper's bands: streets (0-25 mph) need <= 2 FPR in both panels;
    # the short gap has a substantial unavoidable wedge, the long gap
    # almost none.
    assert grid30.band_max(0.0, 25.0) <= 2.0
    assert grid100.band_max(0.0, 25.0) <= 2.0
    assert grid30.region_fraction(grid30.white_mask()) > 0.15
    assert grid100.region_fraction(grid100.white_mask()) < 0.08
