"""Ablation — Eq 3 accelerated search vs the dense reference scan.

The paper proposes the M-bounded adaptive stepping as a performance
optimization over "increment t_n by one timestep and re-check". This
bench quantifies the speedup and the conservatism gap on a grid of
situations, and sweeps K (the confirmation-frame count).
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.core.ego_profile import EgoMotion
from repro.core.latency import LatencySearch, SearchStrategy
from repro.core.parameters import ZhuyiParams
from repro.core.threat import FixedGapThreat

PARAMS = ZhuyiParams()

CASES = [
    (speed, gap, actor_speed)
    for speed in (5.0, 15.0, 25.0, 35.0)
    for gap in (15.0, 40.0, 90.0, 200.0)
    for actor_speed in (0.0, 10.0, 20.0)
]


def _solve_all(search: LatencySearch):
    results = []
    for speed, gap, actor_speed in CASES:
        ego = EgoMotion.from_state(speed, 0.0, PARAMS)
        results.append(
            search.tolerable_latency(
                ego, FixedGapThreat(gap, actor_speed), 1.0 / 30.0
            )
        )
    return results


def test_ablation_search_strategy(benchmark, artifact_dir):
    paper = LatencySearch(params=PARAMS, strategy=SearchStrategy.PAPER)
    exact = LatencySearch(params=PARAMS, strategy=SearchStrategy.EXACT)

    paper_results = benchmark.pedantic(
        _solve_all, args=(paper,), rounds=10, iterations=1
    )
    exact_results = _solve_all(exact)

    paper_iterations = sum(result.iterations for result in paper_results)
    exact_iterations = sum(result.iterations for result in exact_results)
    agree = sum(
        1
        for a, b in zip(paper_results, exact_results)
        if abs(a.latency_or_zero() - b.latency_or_zero()) < 1e-9
    )
    more_conservative = sum(
        1
        for a, b in zip(paper_results, exact_results)
        if a.latency_or_zero() < b.latency_or_zero() - 1e-9
    )
    rows = [
        ("situations", len(CASES)),
        ("paper-search constraint evaluations", paper_iterations),
        ("exact-scan constraint evaluations", exact_iterations),
        ("evaluation ratio (exact/paper)",
         f"{exact_iterations / max(paper_iterations, 1):.1f}x"),
        ("identical latency verdicts", agree),
        ("paper search more conservative", more_conservative),
        ("paper search less conservative", 0),
    ]
    emit(
        artifact_dir,
        "ablation_search_strategy",
        format_table(["Quantity", "Value"], rows),
    )
    # The accelerated search must never be less safe than the reference.
    for a, b in zip(paper_results, exact_results):
        assert a.latency_or_zero() <= b.latency_or_zero() + 1e-9


def test_ablation_k_sweep(benchmark, artifact_dir):
    def sweep():
        rows = []
        for k in (0, 1, 3, 5, 8):
            params = ZhuyiParams(k=k)
            search = LatencySearch(params=params)
            ego = EgoMotion.from_state(26.8, 0.0, params)
            threat = FixedGapThreat(gap=60.0, actor_speed=0.0)
            result = search.tolerable_latency(ego, threat, 1.0 / 30.0)
            fpr = (
                float("nan")
                if result.latency is None
                else 1.0 / result.latency
            )
            rows.append((k, result.latency_or_zero(), fpr))
        return rows

    rows = benchmark.pedantic(sweep, rounds=5, iterations=1)
    table = format_table(
        ["K", "tolerable latency [s]", "required FPR"],
        [(k, f"{lat:.3f}", f"{fpr:.1f}") for k, lat, fpr in rows],
    )
    emit(artifact_dir, "ablation_k_sweep", table)
    # More confirmation frames -> tighter latency -> higher FPR demand.
    latencies = [lat for _, lat, _ in rows]
    assert latencies == sorted(latencies, reverse=True)
