"""Fuzz-search determinism benchmark (and the CI fuzz smoke).

Runs the same micro evolutionary search twice against one shared
:class:`~repro.store.TraceStore` — once at ``workers=1`` and once at
``workers=2`` — and asserts the determinism contract end to end:
byte-identical ``archive.json`` / ``search.json``, identical run lines
in every generation campaign file, a monotone ``best_so_far``
trajectory (elitism makes regression impossible), and a best genome
whose fitness strictly exceeds the base scenario's. Records the search
summary under ``benchmarks/out/fuzz_search.json`` and copies the
archive to ``benchmarks/out/fuzz_archive.json`` so the worst genomes
found by CI are themselves an artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_fuzz.py           # full
    PYTHONPATH=src python benchmarks/bench_fuzz.py --smoke   # CI

``--smoke`` shrinks the search to the 2-generation micro grid the
integration suite uses; the assertions are identical — it exists so
fuzz drift fails CI rather than benchmarks.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"

SMOKE = dict(population=4, generations=2, elite=1, tournament=2, stride=0.5)
FULL = dict(population=8, generations=4, elite=2, tournament=3, stride=0.25)


def run_search(out_dir: Path, workers: int, store_dir: Path, knobs):
    """One timed search; returns (elapsed, result)."""
    from repro.batch import CampaignRunner
    from repro.fuzz import FuzzConfig, run_fuzz
    from repro.store import TraceStore

    config = FuzzConfig(family="cut_out", seed=7, **knobs)
    runner = CampaignRunner(workers=workers, store=TraceStore(store_dir))
    started = time.perf_counter()
    result = run_fuzz(config, out_dir=out_dir, runner=runner)
    return time.perf_counter() - started, result


def run_lines(path: Path) -> list[str]:
    return [
        line
        for line in path.read_text().splitlines()
        if '"kind": "run"' in line
    ]


def assert_deterministic(first, second) -> None:
    if first.archive_path.read_bytes() != second.archive_path.read_bytes():
        raise AssertionError("archive.json diverged across worker counts")
    if first.search_path.read_bytes() != second.search_path.read_bytes():
        raise AssertionError("search.json diverged across worker counts")
    for mine, theirs in zip(
        first.generation_files, second.generation_files, strict=True
    ):
        if run_lines(mine) != run_lines(theirs):
            raise AssertionError(f"run lines diverged: {mine.name}")


def assert_search_quality(result) -> None:
    trajectory = [g["best_so_far"] for g in result.per_generation]
    if trajectory != sorted(trajectory):
        raise AssertionError(f"best_so_far not monotone: {trajectory}")
    if result.best is None or result.base_fitness is None:
        raise AssertionError("search produced no scored genome")
    if result.best["fitness"] <= result.base_fitness:
        raise AssertionError(
            f"best fitness {result.best['fitness']} does not exceed "
            f"base {result.base_fitness}"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="micro search, same assertions (the CI job)",
    )
    args = parser.parse_args(argv)
    knobs = SMOKE if args.smoke else FULL

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        store_dir = root / "store"
        solo_s, solo = run_search(root / "solo", 1, store_dir, knobs)
        duo_s, duo = run_search(root / "duo", 2, store_dir, knobs)
        assert_deterministic(solo, duo)
        assert_search_quality(solo)

        OUT_DIR.mkdir(exist_ok=True)
        shutil.copy(solo.archive_path, OUT_DIR / "fuzz_archive.json")
        report = {
            "mode": "smoke" if args.smoke else "full",
            "config": solo.config.to_dict(),
            "base_fitness": solo.base_fitness,
            "best": solo.best,
            "per_generation": solo.per_generation,
            "workers_1_s": round(solo_s, 3),
            "workers_2_s": round(duo_s, 3),
            "determinism": "identical",
        }
    out = OUT_DIR / "fuzz_search.json"
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    best = solo.best
    print(
        f"fuzz {report['mode']}: {knobs['population']} genomes x "
        f"{knobs['generations']} generations   "
        f"workers=1 {solo_s:6.2f} s   workers=2 {duo_s:6.2f} s   "
        "archives identical"
    )
    print(
        f"best {best['name']} fitness {best['fitness']:.3f} "
        f"(base {solo.base_fitness:.3f}); written to {out}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
