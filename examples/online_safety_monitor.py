"""Post-deployment online safety check + work prioritization (Section 3.2).

Runs the Cut-out-fast scenario with the Zhuyi block wired into the AV
(Figure 3's green path): every 100 ms the online estimator reads the
perceived world model, the safety checker compares each camera's
operating rate against the estimate, and the prioritizer redistributes a
fixed 36-frames/s budget across the three analyzed cameras.

Run:  python examples/online_safety_monitor.py
"""

from repro import build_scenario
from repro.core.aggregation import PercentileAggregator
from repro.core.online import OnlineEstimator
from repro.core.parameters import ZhuyiParams
from repro.prediction.maneuver import ManeuverPredictor
from repro.system import SafetyChecker, WorkPrioritizer, ZhuyiOnlineSystem


def main() -> None:
    scenario = build_scenario("cut_out_fast", seed=0)
    system = ZhuyiOnlineSystem(
        estimator=OnlineEstimator(
            params=ZhuyiParams(),
            predictor=ManeuverPredictor(
                road=scenario.road, target_lane=scenario.spec.ego_lane
            ),
            road=scenario.road,
            aggregator=PercentileAggregator(90.0),
        ),
        checker=SafetyChecker(),
        prioritizer=WorkPrioritizer(
            total_budget=36.0, cameras=("front_120", "left", "right")
        ),
        period=0.1,
    )

    print("Running cut_out_fast with a 36 frames/s budget (3 cameras) ...")
    trace = scenario.run(fpr=12.0, hooks=[system])
    print(f"  collision: {trace.has_collision}")
    print(f"  estimation ticks: {len(system.records)}")
    print(f"  safety alarms: {len(system.alarms())}")

    # Show how the budget moved during the reveal.
    front = [step.camera_fprs["front_120"] for step in trace.steps]
    left = [step.camera_fprs["left"] for step in trace.steps]
    print()
    print("Camera rate ranges under prioritization:")
    print(f"  front_120: {min(front):5.1f} .. {max(front):5.1f} FPR")
    print(f"  left:      {min(left):5.1f} .. {max(left):5.1f} FPR")
    print()
    for verdict in system.alarms()[:5]:
        for alarm in verdict.alarms:
            print(
                f"  ALARM t={alarm.time:5.1f}s {alarm.camera}: operating "
                f"{alarm.operating_fpr:.1f} < required {alarm.required_fpr:.1f}"
            )
    print(
        "\nWork prioritization kept the drive safe by boosting the front "
        "camera exactly when Zhuyi demanded it."
    )


if __name__ == "__main__":
    main()
