"""Figure 8 style sensitivity exploration.

Sweeps ego speed x actor end-speed at a fixed tolerable distance and
prints the minimum-FPR heatmap — the tool an architect would use to
provision per-ODD camera rates ("scenarios where ... a different
resource allocation can provide a safer drive").

Run:  python examples/sensitivity_explorer.py [gap_metres]
"""

import sys

import numpy as np

from repro.analysis.report import render_heatmap
from repro.analysis.sensitivity import sweep_min_fpr


def main(gap: float = 30.0) -> None:
    print(f"Sweeping v_e0 x v_an at fixed s_n = {gap:g} m ...")
    grid = sweep_min_fpr(
        gap=gap,
        ego_speeds_mph=np.linspace(0.0, 70.0, 24),
        actor_speeds_mph=np.linspace(0.0, 70.0, 24),
    )
    print()
    print("x: ego speed 0 -> 70 mph   y: actor end speed 0 -> 70 mph")
    print("glyphs: . <=2   : <=5   + <=10   * <=15   # <=30   blank = unavoidable")
    print()
    print(render_heatmap(grid.min_fpr))
    print()
    print(f"max finite FPR on grid: {grid.max_finite_fpr():.1f}")
    print(
        "unavoidable-collision fraction: "
        f"{grid.region_fraction(grid.white_mask()):.0%}"
    )
    print(
        f"street driving (<=25 mph) needs at most "
        f"{grid.band_max(0.0, 25.0):.1f} FPR"
    )


if __name__ == "__main__":
    gap = float(sys.argv[1]) if len(sys.argv) > 1 else 30.0
    main(gap)
