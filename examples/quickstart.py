"""Quickstart: run one scenario and ask Zhuyi what it demanded.

Builds the paper's Cut-in scenario, drives it closed-loop at the default
30 FPR, then runs the offline (pre-deployment) Zhuyi evaluator over the
recorded trace and prints the per-camera processing-rate requirements.

Run:  python examples/quickstart.py
"""

from repro import OfflineEvaluator, build_scenario
from repro.analysis.report import format_table
from repro.perception.sensor import ANALYZED_CAMERAS


def main() -> None:
    scenario = build_scenario("cut_in", seed=0)
    print(f"Running {scenario.name!r} at 30 FPR ...")
    trace = scenario.run(fpr=30.0)
    print(
        f"  simulated {trace.duration:.1f} s, "
        f"collision: {trace.has_collision}"
    )

    evaluator = OfflineEvaluator(road=scenario.road)
    series = evaluator.evaluate(trace)

    rows = []
    for camera in ANALYZED_CAMERAS:
        latencies = series.camera_latency_series(camera)
        rows.append(
            (
                camera,
                f"{min(latencies) * 1000:.0f} ms",
                f"{series.max_fpr(camera):.1f}",
            )
        )
    print()
    print(format_table(["Camera", "tightest latency", "max FPR"], rows))
    print()
    print(
        f"Peak total demand: {series.max_total_fpr():.1f} frames/s "
        f"= {series.fraction_of_provision():.0%} of a 3x30-FPR provision"
    )
    print("(The paper's headline: 36% or less across all scenarios.)")


if __name__ == "__main__":
    main()
