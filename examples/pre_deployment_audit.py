"""Pre-deployment safety audit (Section 3.1 use case).

For one scenario: sweep the fixed camera rate across the validation
grid, find the minimum required FPR (the lowest collision-free rate),
evaluate the Zhuyi model on every safe trace, and verify the paper's
validation property — the estimated FPR stays above the MRF.

Run:  python examples/pre_deployment_audit.py [scenario] [seed]
"""

import sys

from repro import OfflineEvaluator, build_scenario
from repro.analysis.report import format_table
from repro.system.mrf import find_minimum_required_fpr


def main(scenario_name: str = "cut_out", seed: int = 0) -> None:
    grid = (1.0, 2.0, 3.0, 4.0, 6.0, 10.0, 30.0)
    scenario = build_scenario(scenario_name, seed=seed)
    evaluator = OfflineEvaluator(road=scenario.road)

    print(f"Auditing {scenario_name!r} (seed {seed}) across {grid} FPR ...")
    rows = []
    outcomes = {}
    for rate in grid:
        trace = build_scenario(scenario_name, seed=seed).run(fpr=rate)
        outcomes[(rate, seed)] = trace.has_collision
        if trace.has_collision:
            rows.append((f"{rate:g}", "COLLISION", "N/A"))
            continue
        series = evaluator.evaluate(trace)
        rows.append(
            (f"{rate:g}", "safe", f"{series.max_fpr():.1f}")
        )

    mrf = find_minimum_required_fpr(
        scenario_name, fpr_grid=grid, seeds=(seed,), collision_cache=outcomes
    )
    print()
    print(format_table(["run FPR", "outcome", "max Zhuyi estimate"], rows))
    print()
    print(f"Minimum required FPR: {mrf.label}")
    print(f"Paper's MRF for this scenario: {scenario.spec.paper_mrf}")
    safe_estimates = [
        float(row[2]) for row in rows if row[2] != "N/A"
    ]
    if mrf.mrf is not None and mrf.collision_fprs and safe_estimates:
        conservative = min(safe_estimates) >= mrf.mrf
        print(f"Estimates conservative (>= MRF): {conservative}")


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "cut_out"
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    main(name, seed)
