"""Setuptools shim.

The execution environment has no ``wheel`` package and no network, so
PEP 517 editable installs (which build a wheel) fail. This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` — and plain
``pip install -e .`` on machines with wheel — work from the settings in
``pyproject.toml``.
"""

from setuptools import setup

setup()
