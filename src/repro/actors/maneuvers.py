"""The manoeuvre library: the behaviours the nine scenarios are built of.

Each behaviour is a small dataclass; composition happens through the
``then`` hand-off (a behaviour that finishes delegates to its successor)
and through triggers that decide when a manoeuvre starts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.actors.behavior import (
    ActorCommand,
    Behavior,
    ScenarioContext,
    Trigger,
)
from repro.actors.vehicle import Actor
from repro.errors import ConfigurationError
from repro.planning.idm import IDMParams, idm_acceleration

#: Proportional gain of the speed-hold loop (1/s).
_SPEED_GAIN = 1.5


@dataclass
class Cruise:
    """Hold a target speed (proportional control on speed error)."""

    target_speed: float
    accel_limit: float = 2.0

    def __post_init__(self) -> None:
        if self.target_speed < 0.0:
            raise ConfigurationError("cruise speed must be non-negative")
        if self.accel_limit <= 0.0:
            raise ConfigurationError("accel limit must be positive")

    def update(
        self, now: float, actor: Actor, context: ScenarioContext
    ) -> ActorCommand:
        error = self.target_speed - actor.speed
        accel = min(max(error * _SPEED_GAIN, -self.accel_limit), self.accel_limit)
        return ActorCommand(accel=accel)


@dataclass
class SuddenBrake:
    """Cruise until the trigger fires, then brake hard to a stop.

    The Vehicle-following scenario's lead "applies sudden braking,
    reducing its speed to zero".
    """

    trigger: Trigger
    decel: float = 6.0
    cruise_speed: float | None = None

    def __post_init__(self) -> None:
        if self.decel <= 0.0:
            raise ConfigurationError("braking deceleration must be positive")

    def update(
        self, now: float, actor: Actor, context: ScenarioContext
    ) -> ActorCommand:
        if self.trigger.fired(now, actor, context):
            return ActorCommand(accel=-self.decel if actor.speed > 0.0 else 0.0)
        target = (
            self.cruise_speed if self.cruise_speed is not None else actor.speed
        )
        return ActorCommand(accel=(target - actor.speed) * _SPEED_GAIN)


@dataclass
class TriggeredLaneChange:
    """Cruise until the trigger fires, change lanes, then hand off.

    Covers both cut-ins (into the ego's lane) and cut-outs (away from
    it); ``then`` runs after the change completes (default: keep
    cruising at the current speed).
    """

    trigger: Trigger
    target_lane: int
    duration: float = 3.0
    cruise_speed: float | None = None
    then: Behavior | None = None
    _started: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.duration <= 0.0:
            raise ConfigurationError("lane-change duration must be positive")

    def update(
        self, now: float, actor: Actor, context: ScenarioContext
    ) -> ActorCommand:
        if self._started and not actor.changing_lanes and self.then is not None:
            return self.then.update(now, actor, context)

        target = (
            self.cruise_speed if self.cruise_speed is not None else actor.speed
        )
        accel = (target - actor.speed) * _SPEED_GAIN
        if not self._started and self.trigger.fired(now, actor, context):
            self._started = True
            return ActorCommand(
                accel=accel,
                change_to_lane=self.target_lane,
                lane_change_duration=self.duration,
            )
        return ActorCommand(accel=accel)


@dataclass
class Follow:
    """IDM car-following behind another actor (or the ego).

    ``lead_id`` of ``None`` follows the ego. Uses ground truth — scripted
    actors are choreography, not perception consumers.
    """

    lead_id: Hashable | None = None
    idm: IDMParams = field(default_factory=IDMParams)

    def update(
        self, now: float, actor: Actor, context: ScenarioContext
    ) -> ActorCommand:
        if self.lead_id is None:
            lead_state = context.ego_state
        else:
            lead_state = context.actor_states.get(self.lead_id)
        if lead_state is None:
            return ActorCommand(
                accel=(self.idm.desired_speed - actor.speed) * _SPEED_GAIN
            )
        lead_frenet = context.road.to_frenet(lead_state.position)
        gap = (lead_frenet.s - actor.station) - actor.spec.length
        if gap <= 0.0:
            # The lead is beside or behind us (e.g. after it changed
            # lanes); drive free-road.
            return ActorCommand(
                accel=idm_acceleration(actor.speed, self.idm)
            )
        return ActorCommand(
            accel=idm_acceleration(
                actor.speed, self.idm, gap=gap, lead_speed=lead_state.speed
            )
        )


@dataclass
class PaceBeside:
    """Hold a station offset relative to the ego at matched speed.

    The Front-&-right-activity-2 scenario's actor "matches its position
    side to side to the ego with similar speed". PD control on the
    station error keeps the actor locked alongside.
    """

    station_offset: float = 0.0
    position_gain: float = 0.3
    speed_gain: float = 1.0
    accel_limit: float = 2.5

    def update(
        self, now: float, actor: Actor, context: ScenarioContext
    ) -> ActorCommand:
        ego_s = context.ego_station()
        ego_speed = context.ego_state.speed
        error = (ego_s + self.station_offset) - actor.station
        accel = error * self.position_gain + (ego_speed - actor.speed) * (
            self.speed_gain
        )
        accel = min(max(accel, -self.accel_limit), self.accel_limit)
        return ActorCommand(accel=accel)
