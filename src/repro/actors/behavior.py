"""Behaviour and trigger interfaces for scripted actors.

A behaviour sees the whole ground-truth scene (actors are scripted
choreography, not perception consumers) and returns a longitudinal
acceleration plus, optionally, a lane-change request. Triggers are small
predicates that fire once and stay fired — "when the ego is 40 m behind
me", "at t = 3 s" — used to time manoeuvres.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, Mapping, Protocol, runtime_checkable

from repro.dynamics.state import VehicleState
from repro.errors import ConfigurationError
from repro.road.track import Road

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.actors.vehicle import Actor


@dataclass(frozen=True)
class ScenarioContext:
    """Ground-truth view handed to behaviours every step."""

    road: Road
    ego_state: VehicleState
    actor_states: Mapping[Hashable, VehicleState]

    def ego_station(self) -> float:
        """Ego station along the road."""
        return self.road.to_frenet(self.ego_state.position).s


@dataclass(frozen=True)
class ActorCommand:
    """A behaviour's decision for one step.

    Attributes:
        accel: longitudinal acceleration along the lane (m/s^2).
        change_to_lane: lane index to start changing into, or ``None``.
            Ignored while a lane change is already in progress.
        lane_change_duration: manoeuvre time if a change starts (s).
    """

    accel: float = 0.0
    change_to_lane: int | None = None
    lane_change_duration: float = 3.0


@runtime_checkable
class Behavior(Protocol):
    """Per-step decision function of a scripted actor."""

    def update(
        self, now: float, actor: "Actor", context: ScenarioContext
    ) -> ActorCommand:
        """The actor's command for this step."""
        ...


class Trigger(Protocol):
    """A latching condition used to time manoeuvres."""

    def fired(
        self, now: float, actor: "Actor", context: ScenarioContext
    ) -> bool:
        """True once the condition has been met (stays true after)."""
        ...


@dataclass
class _LatchingTrigger:
    """Base: evaluates a condition until it first fires, then latches."""

    _latched: bool = field(default=False, init=False)

    def fired(self, now: float, actor: "Actor", context: ScenarioContext) -> bool:
        if not self._latched and self._condition(now, actor, context):
            self._latched = True
        return self._latched

    def _condition(
        self, now: float, actor: "Actor", context: ScenarioContext
    ) -> bool:
        raise NotImplementedError


@dataclass
class Immediately(_LatchingTrigger):
    """Fires on the first evaluation."""

    def _condition(self, now: float, actor, context) -> bool:
        return True


@dataclass
class Never(_LatchingTrigger):
    """Never fires."""

    def _condition(self, now: float, actor, context) -> bool:
        return False


@dataclass
class AtTime(_LatchingTrigger):
    """Fires at a fixed simulation time."""

    time: float = 0.0

    def _condition(self, now: float, actor, context) -> bool:
        return now >= self.time


@dataclass
class WhenEgoGapBelow(_LatchingTrigger):
    """Fires when the ego's along-road gap to this actor drops below a bound.

    The gap is ``actor station - ego station`` (positive while the actor
    is ahead); cut-in and cut-out scripts key off the ego's approach.
    """

    gap: float = 30.0

    def __post_init__(self) -> None:
        if self.gap <= 0.0:
            raise ConfigurationError(f"trigger gap must be positive: {self.gap}")

    def _condition(self, now: float, actor, context) -> bool:
        ego_s = context.ego_station()
        return (actor.station - ego_s) <= self.gap


@dataclass
class WhenEgoWithin(_LatchingTrigger):
    """Fires when the straight-line distance to the ego drops below a bound."""

    distance: float = 30.0

    def __post_init__(self) -> None:
        if self.distance <= 0.0:
            raise ConfigurationError(
                f"trigger distance must be positive: {self.distance}"
            )

    def _condition(self, now: float, actor, context) -> bool:
        return (
            context.ego_state.position.distance_to(actor.state.position)
            <= self.distance
        )


@dataclass
class WhenActorGapBelow(_LatchingTrigger):
    """Fires when the along-road gap to another actor drops below a bound.

    The gap is ``target station - own station``. The Cut-out lead uses
    this to bail out of its lane before reaching the static obstacle.
    """

    target_id: Hashable = ""
    gap: float = 30.0

    def __post_init__(self) -> None:
        if self.gap <= 0.0:
            raise ConfigurationError(f"trigger gap must be positive: {self.gap}")

    def _condition(self, now: float, actor, context) -> bool:
        target = context.actor_states.get(self.target_id)
        if target is None:
            return False
        target_s = context.road.to_frenet(target.position).s
        return (target_s - actor.station) <= self.gap
