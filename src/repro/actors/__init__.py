"""Scripted traffic actors.

Every Table 1 scenario is a choreography of a few actors: vehicles that
cruise, follow, brake suddenly, cut in or cut out, triggered by time or
by the ego's approach. Actors move kinematically along road Frenet
coordinates; behaviours are small composable scripts.
"""

from repro.actors.behavior import (
    ActorCommand,
    AtTime,
    Behavior,
    Immediately,
    Never,
    ScenarioContext,
    Trigger,
    WhenActorGapBelow,
    WhenEgoGapBelow,
    WhenEgoWithin,
)
from repro.actors.maneuvers import (
    Cruise,
    Follow,
    PaceBeside,
    SuddenBrake,
    TriggeredLaneChange,
)
from repro.actors.vehicle import Actor

__all__ = [
    "ScenarioContext",
    "ActorCommand",
    "Behavior",
    "Trigger",
    "AtTime",
    "Immediately",
    "Never",
    "WhenEgoGapBelow",
    "WhenEgoWithin",
    "WhenActorGapBelow",
    "Cruise",
    "Follow",
    "SuddenBrake",
    "TriggeredLaneChange",
    "PaceBeside",
    "Actor",
]
