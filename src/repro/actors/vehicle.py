"""The scripted actor vehicle.

Actors move kinematically in road Frenet coordinates: a behaviour sets a
longitudinal acceleration every step and may request a lane change, which
then runs as a smoothstep lateral profile. World pose (position, heading)
is reconstructed from the Frenet state, including the lateral-velocity
component of heading during a lane change.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable

from repro.actors.behavior import ActorCommand, Behavior, ScenarioContext
from repro.dynamics.longitudinal import clamp
from repro.dynamics.profiles import smoothstep, smoothstep_slope
from repro.dynamics.state import VehicleSpec, VehicleState
from repro.errors import ConfigurationError
from repro.road.lane import FrenetPoint
from repro.road.track import Road
from repro.units import wrap_angle


@dataclass
class _LaneChange:
    """An in-progress lateral manoeuvre."""

    start_time: float
    duration: float
    start_d: float
    target_d: float

    def offset_at(self, now: float) -> float:
        progress = (now - self.start_time) / self.duration
        return self.start_d + (self.target_d - self.start_d) * smoothstep(progress)

    def rate_at(self, now: float) -> float:
        progress = (now - self.start_time) / self.duration
        return (
            (self.target_d - self.start_d)
            * smoothstep_slope(progress)
            / self.duration
        )

    def done(self, now: float) -> bool:
        return now >= self.start_time + self.duration


class Actor:
    """One scripted traffic participant."""

    def __init__(
        self,
        actor_id: Hashable,
        road: Road,
        behavior: Behavior,
        lane: int,
        station: float,
        speed: float,
        spec: VehicleSpec | None = None,
    ):
        if speed < 0.0:
            raise ConfigurationError(f"actor speed must be non-negative: {speed}")
        if not 0.0 <= station <= road.length:
            raise ConfigurationError(
                f"actor station {station} outside road [0, {road.length}]"
            )
        self.actor_id = actor_id
        self.road = road
        self.behavior = behavior
        self.spec = spec if spec is not None else VehicleSpec()
        self._station = station
        self._offset = road.lane_offset(lane)
        self._speed = speed
        self._accel = 0.0
        self._lateral_rate = 0.0
        self._lane_change: _LaneChange | None = None

    # ------------------------------------------------------------------
    # read-only state
    # ------------------------------------------------------------------

    @property
    def station(self) -> float:
        """Current station along the road (m)."""
        return self._station

    @property
    def lateral_offset(self) -> float:
        """Current lateral offset from the road centerline (m)."""
        return self._offset

    @property
    def speed(self) -> float:
        """Current longitudinal speed (m/s)."""
        return self._speed

    @property
    def lane(self) -> int:
        """Index of the lane currently occupied."""
        return self.road.lane_of_offset(self._offset)

    @property
    def changing_lanes(self) -> bool:
        """Whether a lane change is in progress."""
        return self._lane_change is not None

    @property
    def state(self) -> VehicleState:
        """World-frame state reconstructed from the Frenet state."""
        position = self.road.to_world(FrenetPoint(self._station, self._offset))
        heading = self.road.heading_at(self._station)
        if self._speed > 1e-6 and self._lateral_rate != 0.0:
            heading = wrap_angle(
                heading + math.atan2(self._lateral_rate, self._speed)
            )
        # Total speed includes the lateral component during a lane change.
        total_speed = math.hypot(self._speed, self._lateral_rate)
        return VehicleState(
            position=position,
            heading=heading,
            speed=total_speed,
            accel=self._accel,
        )

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------

    def step(self, now: float, dt: float, context: ScenarioContext) -> None:
        """Advance the actor by one simulation step."""
        if dt <= 0.0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        command = self.behavior.update(now, self, context)
        self._maybe_start_lane_change(now, command)

        accel = clamp(command.accel, -self.spec.max_decel, self.spec.max_accel)
        new_speed = clamp(self._speed + accel * dt, 0.0, self.spec.max_speed)
        self._accel = (new_speed - self._speed) / dt
        self._station = min(
            self._station + 0.5 * (self._speed + new_speed) * dt,
            self.road.length,
        )
        self._speed = new_speed

        next_time = now + dt
        if self._lane_change is not None:
            self._offset = self._lane_change.offset_at(next_time)
            self._lateral_rate = self._lane_change.rate_at(next_time)
            if self._lane_change.done(next_time):
                self._offset = self._lane_change.target_d
                self._lateral_rate = 0.0
                self._lane_change = None

    def _maybe_start_lane_change(self, now: float, command: ActorCommand) -> None:
        if command.change_to_lane is None or self._lane_change is not None:
            return
        target_d = self.road.lane_offset(command.change_to_lane)
        if abs(target_d - self._offset) < 1e-9:
            return
        if command.lane_change_duration <= 0.0:
            raise ConfigurationError("lane-change duration must be positive")
        self._lane_change = _LaneChange(
            start_time=now,
            duration=command.lane_change_duration,
            start_d=self._offset,
            target_d=target_d,
        )
