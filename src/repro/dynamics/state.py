"""Vehicle state containers shared by the simulator, perception and Zhuyi.

The world reference frame follows the paper (Figure 2): a 2-D top view.
``speed`` is the scalar speed along the vehicle heading (never negative —
the scenarios contain no reversing) and ``accel`` is the signed
longitudinal acceleration (negative = braking).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.geometry.boxes import OrientedBox
from repro.geometry.transforms import Frame2
from repro.geometry.vec import Vec2


@dataclass(frozen=True)
class VehicleSpec:
    """Physical description of a vehicle.

    Defaults model a mid-size passenger car; the limits bound what the
    integrators will accept, not what controllers request.
    """

    length: float = 4.8
    width: float = 1.9
    wheelbase: float = 2.9
    max_accel: float = 4.0
    max_decel: float = 9.0
    max_speed: float = 70.0

    def __post_init__(self) -> None:
        if self.length <= 0.0 or self.width <= 0.0:
            raise ConfigurationError("vehicle dimensions must be positive")
        if self.wheelbase <= 0.0 or self.wheelbase > self.length:
            raise ConfigurationError(
                f"wheelbase {self.wheelbase} inconsistent with length {self.length}"
            )
        if self.max_accel <= 0.0 or self.max_decel <= 0.0:
            raise ConfigurationError("acceleration limits must be positive")
        if self.max_speed <= 0.0:
            raise ConfigurationError("max speed must be positive")


@dataclass(frozen=True)
class VehicleState:
    """Kinematic state of one vehicle at an instant."""

    position: Vec2
    heading: float
    speed: float
    accel: float = 0.0

    def __post_init__(self) -> None:
        if self.speed < 0.0:
            raise SimulationError(f"speed must be non-negative, got {self.speed}")

    def velocity(self) -> Vec2:
        """Velocity vector in the world frame."""
        return Vec2.unit(self.heading) * self.speed

    def frame(self) -> Frame2:
        """Body frame anchored at the vehicle centre."""
        return Frame2(self.position, self.heading)

    def footprint(self, spec: VehicleSpec) -> OrientedBox:
        """Top-view rectangle occupied by the vehicle."""
        return OrientedBox(
            center=self.position,
            heading=self.heading,
            length=spec.length,
            width=spec.width,
        )

    def with_accel(self, accel: float) -> "VehicleState":
        """Copy of this state with a different longitudinal acceleration."""
        return replace(self, accel=accel)


@dataclass(frozen=True)
class TimedState:
    """A vehicle state stamped with simulation time (seconds)."""

    time: float
    state: VehicleState


class StateTrajectory:
    """A time-ordered sequence of vehicle states with interpolation.

    Used both for recorded ground-truth motion (pre-deployment traces)
    and for predicted futures (post-deployment). Queries outside the
    recorded span clamp to the endpoints, which models "the actor keeps
    its last state" without extrapolating into nonsense.
    """

    def __init__(self, samples: Iterable[TimedState]):
        ordered = sorted(samples, key=lambda ts: ts.time)
        if not ordered:
            raise ConfigurationError("a trajectory needs at least one sample")
        for earlier, later in zip(ordered, ordered[1:]):
            if later.time - earlier.time <= 0.0:
                raise ConfigurationError("trajectory timestamps must be distinct")
        self._times = [ts.time for ts in ordered]
        self._states_cache = [ts.state for ts in ordered]
        # Array views for vectorized interpolation (the latency search
        # samples thousands of points per evaluation tick).
        self._t = np.array(self._times)
        self._x = np.array([s.position.x for s in self._states_cache])
        self._y = np.array([s.position.y for s in self._states_cache])
        self._speed = np.array([s.speed for s in self._states_cache])
        self._accel = np.array([s.accel for s in self._states_cache])
        # Unwrapped headings interpolate along the shorter arc between
        # consecutive samples, matching the scalar ``state_at``.
        self._heading_raw = np.array([s.heading for s in self._states_cache])
        self._heading = np.unwrap(self._heading_raw)
        last = self._states_cache[-1]
        self._end_velocity = (
            np.cos(last.heading) * last.speed,
            np.sin(last.heading) * last.speed,
        )

    @classmethod
    def from_arrays(
        cls,
        times: np.ndarray,
        xs: np.ndarray,
        ys: np.ndarray,
        headings: np.ndarray,
        speeds: np.ndarray,
        accels: np.ndarray,
    ) -> "StateTrajectory":
        """Adopt column arrays as a trajectory without copying them.

        The zero-copy path of the trace store: memory-mapped bundle
        columns become the interpolation knots directly — no per-sample
        :class:`TimedState` objects are built, and the per-sample
        :class:`VehicleState` list materializes lazily only if a scalar
        query (``state_at`` / ``samples``) asks for it. ``headings``
        are the *raw* recorded values (wrapping happens here, exactly
        as the sample-based constructor does), so interpolation and
        lazily materialized states are bit-identical to a trajectory
        built from the equivalent samples.

        Args:
            times: strictly ascending timestamps (seconds).
            xs / ys / headings / speeds / accels: per-sample columns,
                same length as ``times``. Adopted, not copied — callers
                must not mutate them.
        """
        t = np.asarray(times, dtype=float)
        if t.ndim != 1 or t.size == 0:
            raise ConfigurationError("a trajectory needs at least one sample")
        if t.size > 1 and not np.all(np.diff(t) > 0.0):
            raise ConfigurationError("trajectory timestamps must be distinct")
        columns = [np.asarray(col, dtype=float) for col in (xs, ys, headings, speeds, accels)]
        for col in columns:
            if col.shape != t.shape:
                raise ConfigurationError(
                    f"trajectory column shape {col.shape} != time shape {t.shape}"
                )
        self = cls.__new__(cls)
        # The ndarray doubles as the bisect sequence ``state_at`` uses.
        self._times = t
        self._states_cache = None
        self._t = t
        self._x, self._y, self._heading_raw, self._speed, self._accel = columns
        self._heading = np.unwrap(self._heading_raw)
        last_heading = float(self._heading_raw[-1])
        last_speed = float(self._speed[-1])
        self._end_velocity = (
            np.cos(last_heading) * last_speed,
            np.sin(last_heading) * last_speed,
        )
        return self

    @property
    def _states(self) -> Sequence[VehicleState]:
        """Per-sample states; array-adopted trajectories build lazily."""
        if self._states_cache is None:
            self._states_cache = [
                VehicleState(
                    position=Vec2(float(x), float(y)),
                    heading=float(h),
                    speed=float(v),
                    accel=float(a),
                )
                for x, y, h, v, a in zip(
                    self._x, self._y, self._heading_raw, self._speed, self._accel
                )
            ]
        return self._states_cache

    @property
    def start_time(self) -> float:
        """Timestamp of the first sample (seconds)."""
        return self._times[0]

    @property
    def end_time(self) -> float:
        """Timestamp of the last sample (seconds)."""
        return self._times[-1]

    @property
    def duration(self) -> float:
        """Time covered by the samples (seconds)."""
        return self.end_time - self.start_time

    def __len__(self) -> int:
        return len(self._times)

    def samples(self) -> Sequence[TimedState]:
        """All samples in time order."""
        return [
            TimedState(t, s) for t, s in zip(self._times, self._states)
        ]

    def extrapolated_state_at(self, time: float) -> VehicleState:
        """Like :meth:`state_at`, but coasting past the final sample.

        Beyond the last sample the vehicle continues at its final speed
        along its final heading (zero acceleration). Freezing the
        position while keeping the speed — what plain clamping does —
        would describe a physically impossible ghost; threat evaluation
        near the end of a recorded trace needs the coasting behaviour.
        """
        if time <= self._times[-1]:
            return self.state_at(time)
        last = self._states[-1]
        dt = time - self._times[-1]
        return VehicleState(
            position=last.position + Vec2.unit(last.heading) * (last.speed * dt),
            heading=last.heading,
            speed=last.speed,
            accel=0.0,
        )

    def state_at(self, time: float) -> VehicleState:
        """State at ``time``, linearly interpolated (clamped at the ends)."""
        if time <= self._times[0]:
            return self._states[0]
        if time >= self._times[-1]:
            return self._states[-1]
        hi = bisect.bisect_right(self._times, time)
        lo = hi - 1
        t0, t1 = self._times[lo], self._times[hi]
        w = (time - t0) / (t1 - t0)
        s0, s1 = self._states[lo], self._states[hi]
        return VehicleState(
            position=s0.position.lerp(s1.position, w),
            heading=_lerp_angle(s0.heading, s1.heading, w),
            speed=s0.speed + (s1.speed - s0.speed) * w,
            accel=s0.accel + (s1.accel - s0.accel) * w,
        )

    def _interp_clamped(
        self, times: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Clamped linear interpolation of ``(times, x, y, speed)``."""
        times = np.asarray(times, dtype=float)
        return (
            times,
            np.interp(times, self._t, self._x),
            np.interp(times, self._t, self._y),
            np.interp(times, self._t, self._speed),
        )

    def sample_extrapolated(
        self, times: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized ``(x, y, speed)`` at many query times.

        Linear interpolation inside the recorded span; constant-velocity
        coasting beyond the final sample (matching
        :meth:`extrapolated_state_at`); clamped before the first sample.
        """
        times, xs, ys, speeds = self._interp_clamped(times)
        overrun = times > self._t[-1]
        if np.any(overrun):
            dt = times[overrun] - self._t[-1]
            xs[overrun] = self._x[-1] + self._end_velocity[0] * dt
            ys[overrun] = self._y[-1] + self._end_velocity[1] * dt
            speeds[overrun] = self._speed[-1]
        return xs, ys, speeds

    def sample_positions(
        self, times: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized clamped ``(x, y)`` arrays at many query times.

        Exactly the position floats :meth:`sample_states` wraps in
        ``Vec2`` objects (the identical ``np.interp`` call on the same
        knots), kept as arrays so trace-level consumers — the batched
        Equation 5 visibility tables — can stay in array form without
        re-extracting coordinates from state objects. Callers needing
        both forms use :meth:`sample_ticks` and interpolate once.
        """
        _, xs, ys, _ = self._interp_clamped(times)
        return xs, ys

    def sample_ticks(
        self, times: np.ndarray
    ) -> tuple[list[VehicleState], tuple[np.ndarray, np.ndarray]]:
        """States *and* position arrays from one interpolation pass.

        What :func:`repro.core.evaluator.presample_trace` consumes: the
        per-tick :class:`VehicleState` objects plus the raw ``(x, y)``
        arrays they wrap, without interpolating the trajectory twice.
        """
        from repro.units import wrap_angle

        times, xs, ys, speeds = self._interp_clamped(times)
        accels = np.interp(times, self._t, self._accel)
        headings = np.interp(times, self._t, self._heading)
        states = [
            VehicleState(
                position=Vec2(float(x), float(y)),
                heading=wrap_angle(float(h)),
                speed=float(v),
                accel=float(a),
            )
            for x, y, h, v, a in zip(xs, ys, headings, speeds, accels)
        ]
        return states, (xs, ys)

    def sample_states(self, times: np.ndarray) -> list[VehicleState]:
        """Vectorized :meth:`state_at` over many query times.

        One batched interpolation replaces per-query bisection — the
        offline evaluator presamples every evaluation tick of a trace in
        a single call. Queries outside the recorded span clamp to the
        endpoints, exactly like :meth:`state_at`.
        """
        states, _ = self.sample_ticks(times)
        return states

    def shifted(self, offset: float) -> "StateTrajectory":
        """Copy with all timestamps shifted by ``offset`` seconds."""
        return StateTrajectory(
            TimedState(t + offset, s)
            for t, s in zip(self._times, self._states)
        )

    def knot_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, tuple[float, float]]:
        """``(times, xs, ys, speeds, end_velocity)`` backing arrays.

        The raw interpolation knots :meth:`sample_extrapolated` reads —
        what :func:`repro.prediction.base.predict_trace_via_loop` stacks
        into :class:`RolloutArrays` rows so per-tick predictions can
        batch. Views, not copies: callers must not mutate them.
        """
        return self._t, self._x, self._y, self._speed, self._end_velocity


@dataclass(frozen=True)
class RolloutArrays:
    """Many trajectories in array form: one rollout per row.

    The batch counterpart of a list of per-tick
    :class:`StateTrajectory` objects built over equally-sized sample
    grids — the shape every predictor batch rollout produces (one row
    per estimation tick, ``S`` samples per row). Row ``r`` of
    :meth:`sample_extrapolated` is **bit-identical** to
    ``StateTrajectory.sample_extrapolated`` on that row's knots: the
    interpolation replays ``np.interp``'s exact arithmetic (bracket by
    ``searchsorted`` semantics, ``slope * (t - t_lo) + y_lo``, exact
    knot hits returned verbatim) and queries beyond the final knot
    coast at the row's end velocity, exactly like the scalar class.

    Attributes:
        times: ``(R, S)`` knot timestamps, strictly ascending per row.
        xs / ys / speeds: ``(R, S)`` knot values.
        end_vx / end_vy: ``(R,)`` coasting velocity past the last knot
            (``cos(heading) * speed`` of each row's final sample).
    """

    times: np.ndarray
    xs: np.ndarray
    ys: np.ndarray
    speeds: np.ndarray
    end_vx: np.ndarray
    end_vy: np.ndarray

    def __post_init__(self) -> None:
        if self.times.ndim != 2 or self.times.shape[1] < 1:
            raise ConfigurationError(
                "rollout arrays need a (rows, samples) time grid"
            )

    @property
    def rows(self) -> int:
        """Number of rollouts."""
        return self.times.shape[0]

    def take(self, indices: np.ndarray) -> "RolloutArrays":
        """The sub-batch at ``indices`` (row selection)."""
        return RolloutArrays(
            times=self.times[indices],
            xs=self.xs[indices],
            ys=self.ys[indices],
            speeds=self.speeds[indices],
            end_vx=self.end_vx[indices],
            end_vy=self.end_vy[indices],
        )

    def sample_extrapolated(
        self, queries: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized ``(x, y, speed)`` at per-row query times.

        ``queries`` has shape ``(R, Q)`` — row ``r`` is sampled at its
        own query instants, exactly as a per-row
        ``StateTrajectory.sample_extrapolated(queries[r])`` loop would,
        but in one array program for the whole batch.
        """
        queries = np.asarray(queries, dtype=float)
        n_rows, n_knots = self.times.shape
        first = self.times[:, :1]
        last = self.times[:, -1:]
        beyond = queries > last

        if n_knots == 1:
            xs = np.broadcast_to(self.xs[:, :1], queries.shape).copy()
            ys = np.broadcast_to(self.ys[:, :1], queries.shape).copy()
            speeds = np.broadcast_to(self.speeds[:, :1], queries.shape).copy()
        else:
            # Bracket index per (row, query): the count of knots <= q,
            # clipped to the last interior interval — np.interp's
            # bracket. One C-level searchsorted per row beats the
            # branchless (rows x queries x knots) comparison cube by a
            # wide margin on replay-sized batches.
            counts = np.empty(queries.shape, dtype=np.int64)
            for row in range(n_rows):
                counts[row] = np.searchsorted(
                    self.times[row], queries[row], side="right"
                )
            lo = np.clip(counts - 1, 0, n_knots - 2)
            # Flat gather indices shared by the value arrays (cheaper
            # than repeated take_along_axis index bookkeeping).
            flat_lo = lo + (np.arange(n_rows) * n_knots)[:, None]
            flat_hi = flat_lo + 1
            t_lo = self.times.ravel()[flat_lo]
            span = self.times.ravel()[flat_hi] - t_lo
            offset = queries - t_lo
            on_knot = queries == t_lo

            def interp(values: np.ndarray) -> np.ndarray:
                flat = values.ravel()
                v_lo = flat[flat_lo]
                v_hi = flat[flat_hi]
                slope = (v_hi - v_lo) / span
                out = slope * offset + v_lo
                # np.interp returns knot values verbatim on exact hits.
                return np.where(on_knot, v_lo, out)

            xs = interp(self.xs)
            ys = interp(self.ys)
            speeds = interp(self.speeds)

        for values, out in (
            (self.xs, xs),
            (self.ys, ys),
            (self.speeds, speeds),
        ):
            np.copyto(out, values[:, :1], where=queries <= first)
            np.copyto(out, values[:, -1:], where=queries == last)

        # Coasting past the final sample, matching the scalar class.
        if np.any(beyond):
            dt = queries - last
            np.copyto(xs, self.xs[:, -1:] + self.end_vx[:, None] * dt, where=beyond)
            np.copyto(ys, self.ys[:, -1:] + self.end_vy[:, None] * dt, where=beyond)
            np.copyto(speeds, np.broadcast_to(self.speeds[:, -1:], queries.shape), where=beyond)
        return xs, ys, speeds


def _lerp_angle(a: float, b: float, w: float) -> float:
    """Interpolate angles along the shorter arc."""
    from repro.units import wrap_angle

    return wrap_angle(a + wrap_angle(b - a) * w)
