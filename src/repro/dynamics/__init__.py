"""Vehicle-dynamics substrate: states, longitudinal closed forms, bicycle.

The Zhuyi model is purely kinematic (Section 2 of the paper), so the
simulator uses matching kinematics: clamped constant-acceleration
longitudinal motion and a kinematic bicycle for the ego's steering.
"""

from repro.dynamics.state import StateTrajectory, TimedState, VehicleSpec, VehicleState
from repro.dynamics.longitudinal import (
    braking_distance,
    time_to_stop,
    travel,
)
from repro.dynamics.bicycle import KinematicBicycle

__all__ = [
    "VehicleSpec",
    "VehicleState",
    "TimedState",
    "StateTrajectory",
    "travel",
    "braking_distance",
    "time_to_stop",
    "KinematicBicycle",
]
