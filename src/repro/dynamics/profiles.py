"""Smooth motion profiles shared by actor scripts and prediction.

Lane changes use the classic smoothstep: zero lateral velocity at both
ends, peak lateral velocity at mid-manoeuvre. The array forms evaluate
the same clamped polynomial elementwise (the lane-change prediction
rollout eases whole sample grids at once); keep the two in lockstep.
"""

from __future__ import annotations

import numpy as np


def smoothstep(progress: float) -> float:
    """Smoothstep easing, clamped to [0, 1]."""
    clamped = min(max(progress, 0.0), 1.0)
    return clamped * clamped * (3.0 - 2.0 * clamped)


def smoothstep_slope(progress: float) -> float:
    """Derivative of :func:`smoothstep` with respect to progress."""
    clamped = min(max(progress, 0.0), 1.0)
    return 6.0 * clamped * (1.0 - clamped)


def smoothstep_arrays(progress: np.ndarray) -> np.ndarray:
    """Vectorized :func:`smoothstep` (same arithmetic per element)."""
    clamped = np.clip(np.asarray(progress, dtype=float), 0.0, 1.0)
    return clamped * clamped * (3.0 - 2.0 * clamped)


def smoothstep_slope_arrays(progress: np.ndarray) -> np.ndarray:
    """Vectorized :func:`smoothstep_slope` (same arithmetic per element)."""
    clamped = np.clip(np.asarray(progress, dtype=float), 0.0, 1.0)
    return 6.0 * clamped * (1.0 - clamped)
