"""Closed-form longitudinal kinematics with a stop at zero speed.

These are the building blocks of the paper's Equations 1-3: distance
covered during the reaction window (``d_e1``), braking distance
(``d_e2``) and end speed (``v_en``). Vehicles never reverse, so constant
acceleration integration is clamped at zero speed.
"""

from __future__ import annotations

import math

import numpy as np


def travel(
    speed: float, accel: float, duration: float, max_speed: float | None = None
) -> tuple[float, float]:
    """Distance travelled and end speed under constant acceleration.

    Speed is clamped at zero (the vehicle stops, it does not reverse) and
    optionally at ``max_speed`` (the vehicle stops accelerating at its
    top speed). Returns ``(distance, end_speed)``.

    Raises:
        ValueError: on negative inputs that have no physical meaning.
    """
    if speed < 0.0:
        raise ValueError(f"speed must be non-negative, got {speed}")
    if duration < 0.0:
        raise ValueError(f"duration must be non-negative, got {duration}")
    if duration == 0.0:
        return 0.0, speed

    distance = 0.0
    remaining = duration
    current = speed

    if accel < 0.0:
        time_to_zero = current / -accel
        if time_to_zero <= remaining:
            distance += current * time_to_zero + 0.5 * accel * time_to_zero**2
            return distance, 0.0
        distance += current * remaining + 0.5 * accel * remaining**2
        return distance, current + accel * remaining

    if accel > 0.0 and max_speed is not None and current < max_speed:
        time_to_cap = (max_speed - current) / accel
        if time_to_cap < remaining:
            distance += current * time_to_cap + 0.5 * accel * time_to_cap**2
            remaining -= time_to_cap
            current = max_speed
            return distance + current * remaining, current
    elif accel > 0.0 and max_speed is not None and current >= max_speed:
        return current * remaining, current

    distance += current * remaining + 0.5 * accel * remaining**2
    return distance, current + accel * remaining


def travel_arrays(
    speed,
    accel,
    duration,
    max_speed: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`travel` over broadcastable array inputs.

    Evaluates the same clamped constant-acceleration closed forms as the
    scalar function, branch for branch and operation for operation, so a
    single element of the returned ``(distance, end_speed)`` arrays is
    the value a scalar :func:`travel` call at that element's inputs
    would produce (the predictor batch rollouts rely on this: the same
    kernel serves one tick and a whole trace of ticks).

    Raises:
        ValueError: on negative speeds or durations anywhere in the
            batch, mirroring the scalar validation.
    """
    v0, a, t = np.broadcast_arrays(
        np.asarray(speed, dtype=float),
        np.asarray(accel, dtype=float),
        np.asarray(duration, dtype=float),
    )
    if np.any(v0 < 0.0):
        raise ValueError("speed must be non-negative")
    if np.any(t < 0.0):
        raise ValueError("duration must be non-negative")

    # Unclamped constant-acceleration integration — the default branch.
    distance = v0 * t + 0.5 * a * t**2
    end_speed = v0 + a * t

    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        # Braking: stop (do not reverse) at v = 0.
        braking = a < 0.0
        time_to_zero = np.where(
            braking, v0 / np.where(braking, -a, 1.0), np.inf
        )
        stopped = braking & (time_to_zero <= t)
        stop_distance = v0 * time_to_zero + 0.5 * a * time_to_zero**2
        distance = np.where(stopped, stop_distance, distance)
        end_speed = np.where(stopped, 0.0, end_speed)

        if max_speed is not None:
            # Accelerating into the cap: integrate to the crossing, then
            # coast at the cap. Already at/over the cap: hold speed.
            rising = a > 0.0
            below = rising & (v0 < max_speed)
            time_to_cap = np.where(
                below, (max_speed - v0) / np.where(rising, a, 1.0), np.inf
            )
            crossed = below & (time_to_cap < t)
            cap_distance = (
                v0 * time_to_cap
                + 0.5 * a * time_to_cap**2
                + max_speed * (t - time_to_cap)
            )
            distance = np.where(crossed, cap_distance, distance)
            end_speed = np.where(crossed, max_speed, end_speed)
            over = rising & (v0 >= max_speed)
            distance = np.where(over, v0 * t, distance)
            end_speed = np.where(over, v0, end_speed)
    return distance, end_speed


def braking_distance(speed: float, decel: float) -> float:
    """Distance to a full stop from ``speed`` at constant ``decel`` > 0."""
    if decel <= 0.0:
        raise ValueError(f"deceleration must be positive, got {decel}")
    if speed < 0.0:
        raise ValueError(f"speed must be non-negative, got {speed}")
    return speed * speed / (2.0 * decel)


def time_to_stop(speed: float, decel: float) -> float:
    """Time to a full stop from ``speed`` at constant ``decel`` > 0."""
    if decel <= 0.0:
        raise ValueError(f"deceleration must be positive, got {decel}")
    if speed < 0.0:
        raise ValueError(f"speed must be non-negative, got {speed}")
    return speed / decel


def speed_after_distance(speed: float, accel: float, distance: float) -> float:
    """Speed after covering ``distance`` under constant acceleration.

    Returns 0 if the vehicle stops before covering the distance.
    """
    if distance < 0.0:
        raise ValueError(f"distance must be non-negative, got {distance}")
    radicand = speed * speed + 2.0 * accel * distance
    if radicand <= 0.0:
        return 0.0
    return math.sqrt(radicand)


def clamp(value: float, lower: float, upper: float) -> float:
    """Clamp ``value`` into ``[lower, upper]``."""
    if lower > upper:
        raise ValueError(f"empty clamp interval [{lower}, {upper}]")
    return min(max(value, lower), upper)
