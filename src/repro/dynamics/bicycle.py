"""Kinematic bicycle model used to integrate the ego vehicle.

Scripted actors move along Frenet profiles (see :mod:`repro.actors`); the
ego, whose behaviour emerges from its planner, is integrated with the
standard kinematic bicycle: yaw rate = speed / wheelbase * tan(steer).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dynamics.longitudinal import clamp
from repro.dynamics.state import VehicleSpec, VehicleState
from repro.geometry.vec import Vec2
from repro.units import wrap_angle

#: Physical steering limit (radians) — about 31 degrees at the road wheels.
MAX_STEER_ANGLE = 0.55


@dataclass(frozen=True)
class KinematicBicycle:
    """Integrator for one vehicle following the kinematic bicycle model."""

    spec: VehicleSpec

    def step(
        self,
        state: VehicleState,
        accel_command: float,
        steer_angle: float,
        dt: float,
    ) -> VehicleState:
        """Advance the state by ``dt`` seconds.

        The acceleration command is clamped to the vehicle's limits and
        speed is clamped to ``[0, max_speed]``. Heading integrates the
        bicycle yaw rate at the *average* speed over the step, which keeps
        the integration second-order accurate in speed transients.
        """
        if dt <= 0.0:
            raise ValueError(f"dt must be positive, got {dt}")
        accel = clamp(accel_command, -self.spec.max_decel, self.spec.max_accel)
        steer = clamp(steer_angle, -MAX_STEER_ANGLE, MAX_STEER_ANGLE)

        new_speed = clamp(state.speed + accel * dt, 0.0, self.spec.max_speed)
        # Effective acceleration after clamping (hits 0 exactly at a stop).
        effective_accel = (new_speed - state.speed) / dt
        mean_speed = 0.5 * (state.speed + new_speed)

        yaw_rate = mean_speed / self.spec.wheelbase * math.tan(steer)
        new_heading = wrap_angle(state.heading + yaw_rate * dt)
        mean_heading = wrap_angle(state.heading + 0.5 * yaw_rate * dt)

        displacement = Vec2.unit(mean_heading) * (mean_speed * dt)
        return VehicleState(
            position=state.position + displacement,
            heading=new_heading,
            speed=new_speed,
            accel=effective_accel,
        )
