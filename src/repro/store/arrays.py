"""Columnar traces: exact ``ScenarioTrace`` <-> array conversion.

A :class:`TraceArrays` holds one recorded run as a handful of numpy
columns — the representation the trace store persists (and memory-maps
back) — plus the JSON-sized remainder (specs, metadata, collisions,
vocabularies). The conversion is *exact* in both directions: every
float keeps its bit pattern, every mapping keeps its iteration order,
so a trace evaluated from its columns produces byte-identical summaries
to the freshly simulated original. That exactness is what lets warm
store-backed campaigns honor the campaign engine's byte-parity
contract.

:class:`ColumnarTrace` is the zero-copy consumer: a ``ScenarioTrace``
whose trajectories adopt the columns directly
(:meth:`StateTrajectory.from_arrays`) and whose step objects
materialize only if something scalar asks for them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.dynamics.state import StateTrajectory, VehicleSpec, VehicleState
from repro.errors import TraceError
from repro.geometry.vec import Vec2
from repro.sim.collision import CollisionEvent
from repro.sim.trace import ScenarioTrace, TraceStep

#: Ego column row order (and the per-actor column row order).
STATE_ROWS = ("x", "y", "heading", "speed", "accel")


def _state_columns(states: Sequence[VehicleState]) -> np.ndarray:
    return np.array(
        [
            [s.position.x for s in states],
            [s.position.y for s in states],
            [s.heading for s in states],
            [s.speed for s in states],
            [s.accel for s in states],
        ],
        dtype=float,
    )


def _state_at(columns: np.ndarray, col: int) -> VehicleState:
    return VehicleState(
        position=Vec2(float(columns[0, col]), float(columns[1, col])),
        heading=float(columns[2, col]),
        speed=float(columns[3, col]),
        accel=float(columns[4, col]),
    )


@dataclass(frozen=True)
class TraceArrays:
    """One scenario trace in columnar form.

    Attributes:
        scenario / dt / nominal_fpr / seed / ego_spec / actor_specs /
            metadata / collisions: the trace's scalar payload, verbatim.
        times: ``(S,)`` step timestamps.
        ego: ``(5, S)`` ego state columns in :data:`STATE_ROWS` order.
        actor_order: actor ids in first-appearance order — the per-step
            mapping iteration order (validated at conversion).
        actor_masks: ``(A, S)`` bool, actor ``a`` present at step ``s``.
        actor_columns: ``(5, total)`` per-actor state columns for the
            *present* steps only, actors concatenated in order.
        actor_offsets: ``(A + 1,)`` slice bounds into ``actor_columns``.
        mode_vocab / mode_codes: planner modes as a vocabulary plus an
            ``(S,)`` code column.
        camera_vocab / camera_codes / camera_values / camera_offsets:
            per-step camera FPR mappings in ragged form — step ``s``
            owns ``codes/values[camera_offsets[s]:camera_offsets[s+1]]``
            in the step's own key order.
    """

    scenario: str
    dt: float
    nominal_fpr: float | None
    seed: int | None
    ego_spec: VehicleSpec
    actor_specs: dict[str, VehicleSpec]
    metadata: dict
    collisions: tuple[CollisionEvent, ...]
    times: np.ndarray
    ego: np.ndarray
    actor_order: tuple[str, ...]
    actor_masks: np.ndarray
    actor_columns: np.ndarray
    actor_offsets: tuple[int, ...]
    mode_vocab: tuple[str, ...]
    mode_codes: np.ndarray
    camera_vocab: tuple[str, ...]
    camera_codes: np.ndarray
    camera_values: np.ndarray
    camera_offsets: np.ndarray

    # ------------------------------------------------------------------
    # conversion: trace -> arrays
    # ------------------------------------------------------------------

    @classmethod
    def from_trace(cls, trace: ScenarioTrace) -> "TraceArrays":
        """Columnarize a trace, exactly.

        Raises:
            TraceError: when the trace is not representable losslessly —
                per-step actor iteration order inconsistent with the
                global first-appearance order (nothing the simulator
                produces; the guard keeps the conversion honest).
        """
        steps = trace.steps
        times = np.array([step.time for step in steps], dtype=float)
        ego = _state_columns([step.ego for step in steps])

        order: dict[str, int] = {}
        for step in steps:
            for actor_id in step.actors:
                order.setdefault(actor_id, len(order))
        actor_order = tuple(order)
        masks = np.zeros((len(actor_order), len(steps)), dtype=bool)
        per_actor: dict[str, list[VehicleState]] = {a: [] for a in actor_order}
        for pos, step in enumerate(steps):
            last_rank = -1
            for actor_id, state in step.actors.items():
                rank = order[actor_id]
                if rank <= last_rank:
                    raise TraceError(
                        "trace step actor order is inconsistent with "
                        "first-appearance order; the columnar form "
                        "cannot represent it losslessly"
                    )
                last_rank = rank
                masks[rank, pos] = True
                per_actor[actor_id].append(state)
        offsets = [0]
        blocks = []
        for actor_id in actor_order:
            states = per_actor[actor_id]
            offsets.append(offsets[-1] + len(states))
            if states:
                blocks.append(_state_columns(states))
        actor_columns = (
            np.concatenate(blocks, axis=1)
            if blocks
            else np.zeros((5, 0), dtype=float)
        )

        mode_index: dict[str, int] = {}
        mode_codes = np.empty(len(steps), dtype=np.int32)
        for pos, step in enumerate(steps):
            mode_codes[pos] = mode_index.setdefault(
                step.planner_mode, len(mode_index)
            )

        camera_index: dict[str, int] = {}
        camera_codes: list[int] = []
        camera_values: list[float] = []
        camera_offsets = np.zeros(len(steps) + 1, dtype=np.int64)
        for pos, step in enumerate(steps):
            for camera, value in step.camera_fprs.items():
                camera_codes.append(
                    camera_index.setdefault(camera, len(camera_index))
                )
                camera_values.append(value)
            camera_offsets[pos + 1] = len(camera_codes)

        return cls(
            scenario=trace.scenario,
            dt=trace.dt,
            nominal_fpr=trace.nominal_fpr,
            seed=trace.seed,
            ego_spec=trace.ego_spec,
            actor_specs=dict(trace.actor_specs),
            metadata=dict(trace.metadata),
            collisions=tuple(trace.collisions),
            times=times,
            ego=ego,
            actor_order=actor_order,
            actor_masks=masks,
            actor_columns=actor_columns,
            actor_offsets=tuple(offsets),
            mode_vocab=tuple(mode_index),
            mode_codes=mode_codes,
            camera_vocab=tuple(camera_index),
            camera_codes=np.array(camera_codes, dtype=np.int32),
            camera_values=np.array(camera_values, dtype=float),
            camera_offsets=camera_offsets,
        )

    # ------------------------------------------------------------------
    # conversion: arrays -> trace
    # ------------------------------------------------------------------

    def build_steps(self) -> list[TraceStep]:
        """Materialize the per-step objects (the expensive direction)."""
        steps: list[TraceStep] = []
        cursors = list(self.actor_offsets[:-1])
        cam_codes = self.camera_codes
        cam_values = self.camera_values
        for pos in range(self.times.shape[0]):
            actors: dict[str, VehicleState] = {}
            for rank, actor_id in enumerate(self.actor_order):
                if self.actor_masks[rank, pos]:
                    actors[actor_id] = _state_at(
                        self.actor_columns, cursors[rank]
                    )
                    cursors[rank] += 1
            lo, hi = self.camera_offsets[pos], self.camera_offsets[pos + 1]
            camera_fprs = {
                self.camera_vocab[cam_codes[i]]: float(cam_values[i])
                for i in range(lo, hi)
            }
            steps.append(
                TraceStep(
                    time=float(self.times[pos]),
                    ego=_state_at(self.ego, pos),
                    actors=actors,
                    planner_mode=self.mode_vocab[self.mode_codes[pos]],
                    camera_fprs=camera_fprs,
                )
            )
        return steps

    def to_trace(self) -> ScenarioTrace:
        """The fully materialized inverse of :meth:`from_trace`."""
        return ScenarioTrace(
            scenario=self.scenario,
            dt=self.dt,
            steps=self.build_steps(),
            collisions=self.collisions,
            nominal_fpr=self.nominal_fpr,
            seed=self.seed,
            ego_spec=self.ego_spec,
            actor_specs=self.actor_specs,
            metadata=self.metadata,
        )

    def lazy_trace(
        self, closer: Callable[[], None] | None = None
    ) -> "ColumnarTrace":
        """The zero-copy view: trajectories adopt the columns directly."""
        return ColumnarTrace(self, closer=closer)

    # ------------------------------------------------------------------
    # column access
    # ------------------------------------------------------------------

    def ego_trajectory(self) -> StateTrajectory:
        """The ego trajectory over the adopted columns (no copies)."""
        x, y, heading, speed, accel = self.ego
        return StateTrajectory.from_arrays(
            self.times, x, y, heading, speed, accel
        )

    def actor_trajectory(self, actor_id: str) -> StateTrajectory:
        """One actor's trajectory over its column slice.

        Dense actors (present at every step — the simulator's case)
        adopt the shared time column as a view; sparse actors gather
        their present-step times once.
        """
        try:
            rank = self.actor_order.index(actor_id)
        except ValueError:
            raise TraceError(
                f"actor {actor_id!r} does not appear in trace"
            ) from None
        lo, hi = self.actor_offsets[rank], self.actor_offsets[rank + 1]
        if hi == lo:
            raise TraceError(f"actor {actor_id!r} does not appear in trace")
        mask = self.actor_masks[rank]
        times = self.times if bool(mask.all()) else self.times[mask]
        x, y, heading, speed, accel = self.actor_columns[:, lo:hi]
        return StateTrajectory.from_arrays(times, x, y, heading, speed, accel)


class ColumnarTrace(ScenarioTrace):
    """A :class:`ScenarioTrace` served from columns, steps on demand.

    Everything the evaluation layers touch — trajectories, the time
    span, actor ids, specs, collisions, metadata — answers straight
    from the (possibly memory-mapped) columns; the per-step
    ``TraceStep`` objects exist only if code explicitly walks
    ``trace.steps``. :meth:`close` releases the column references (and
    the underlying memmap handles, via the store's ``closer``)
    deterministically; a closed trace raises on further column access.
    """

    def __init__(
        self,
        arrays: TraceArrays,
        closer: Callable[[], None] | None = None,
    ):
        # Deliberately no super().__init__: the parent constructor
        # demands materialized steps (and validates them); the columns
        # were validated when the bundle was recorded.
        self._arrays: TraceArrays | None = arrays
        self._closer = closer
        self.scenario = arrays.scenario
        self.dt = arrays.dt
        self.collisions = list(arrays.collisions)
        self.nominal_fpr = arrays.nominal_fpr
        self.seed = arrays.seed
        self.ego_spec = arrays.ego_spec
        self.actor_specs = dict(arrays.actor_specs)
        self.metadata = dict(arrays.metadata)
        self._ego_trajectory = None
        self._actor_trajectories = {}
        self._steps: list[TraceStep] | None = None

    @property
    def columns(self) -> TraceArrays:
        """The backing columns; :class:`TraceError` once closed."""
        if self._arrays is None:
            raise TraceError("columnar trace is closed")
        return self._arrays

    @property
    def steps(self) -> list[TraceStep]:  # type: ignore[override]
        if self._steps is None:
            self._steps = self.columns.build_steps()
        return self._steps

    def time_span(self) -> tuple[float, float]:
        times = self.columns.times
        return float(times[0]), float(times[-1])

    def actor_ids(self) -> list[str]:
        return list(self.columns.actor_order)

    def ego_trajectory(self) -> StateTrajectory:
        if self._ego_trajectory is None:
            self._ego_trajectory = self.columns.ego_trajectory()
        return self._ego_trajectory

    def actor_trajectory(self, actor_id: str) -> StateTrajectory:
        if actor_id not in self._actor_trajectories:
            self._actor_trajectories[actor_id] = self.columns.actor_trajectory(
                actor_id
            )
        return self._actor_trajectories[actor_id]

    def close(self) -> None:
        """Release column references (and memmap handles) now.

        Safe to call more than once. The evaluation results built from
        this trace (summaries, series) carry no views into the columns,
        so closing after a cell completes cannot invalidate them.
        """
        self._arrays = None
        self._ego_trajectory = None
        self._actor_trajectories = {}
        self._steps = None
        closer, self._closer = self._closer, None
        if closer is not None:
            closer()


def trace_arrays_equal(a: TraceArrays, b: TraceArrays) -> bool:
    """Bit-exact equality of two columnar traces (test helper)."""

    def eq(x: np.ndarray, y: np.ndarray) -> bool:
        return x.shape == y.shape and bool(
            np.array_equal(x, y)
        )

    return (
        a.scenario == b.scenario
        and a.dt == b.dt
        and a.nominal_fpr == b.nominal_fpr
        and a.seed == b.seed
        and a.ego_spec == b.ego_spec
        and a.actor_specs == b.actor_specs
        and a.metadata == b.metadata
        and a.collisions == b.collisions
        and a.actor_order == b.actor_order
        and a.actor_offsets == b.actor_offsets
        and a.mode_vocab == b.mode_vocab
        and a.camera_vocab == b.camera_vocab
        and eq(a.times, b.times)
        and eq(a.ego, b.ego)
        and eq(a.actor_masks, b.actor_masks)
        and eq(a.actor_columns, b.actor_columns)
        and eq(np.asarray(a.mode_codes), np.asarray(b.mode_codes))
        and eq(np.asarray(a.camera_codes), np.asarray(b.camera_codes))
        and eq(a.camera_values, b.camera_values)
        and eq(np.asarray(a.camera_offsets), np.asarray(b.camera_offsets))
    )
