"""``repro replay``: re-estimate recorded traces, never re-simulate.

The fleet side of the simulate-once story. A :class:`TraceStore` (or a
recorded campaign's grid) names the traces; a :class:`ReplayPlan` says
which cells to visit and which estimation variants to run on each —
offline re-evaluations under alternative :class:`ZhuyiParams`, or
post-deployment :class:`~repro.core.online.OnlineEstimator` replays
under named predictor/aggregator combinations. :class:`ReplayService`
streams the resulting rows to a resumable, shardable JSONL file with a
per-shard heartbeat sidecar, using the same kill-safe write protocol as
campaign files.

Offline variants reproduce campaign estimation rows exactly: the plan's
cell-major x variant expansion order equals :meth:`Campaign.runs`, and
the evaluation math is the runner's (:func:`presample_trace` once per
cell, one :class:`OfflineEvaluator` per variant), so a replay of a
recorded campaign's grid over a warm store emits the same summary
values the campaign wrote — from the store alone, simulator untouched.
"""

# reprolint: disable-file=DET002 -- wall-clock here feeds only the
# heartbeat sidecar and the completed-footer elapsed metadata; no
# estimation value, run line or aggregate ever derives from it.

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping, Sequence, TYPE_CHECKING

from repro import ioutil
from repro.batch.campaign import Campaign
from repro.batch.results import CampaignWriter, RunSummary
from repro.core.aggregation import (
    Aggregator,
    MaxAggregator,
    MeanAggregator,
    PercentileAggregator,
)
from repro.core.evaluator import OfflineEvaluator, presample_trace
from repro.core.online import OnlineEstimator
from repro.core.parameters import ZhuyiParams
from repro.errors import ConfigurationError, TraceError
from repro.perception.noise import PerceptionNoise
from repro.perception.sensor import ANALYZED_CAMERAS

if TYPE_CHECKING:  # runtime receives the object, never the class
    from repro.store.store import TraceStore

#: Bumped when a replay line's field set changes incompatibly.
REPLAY_SCHEMA = 1

#: A (scenario, seed, fpr) coordinate — the store's cell identity.
Cell = tuple[str, int, float]

#: Called after each completed row with (done, total, row_dict).
ReplayProgress = Callable[[int, int, dict], None]

#: Named predictors an online variant may request. ``maneuver`` takes
#: the cell's road so lane-change hypotheses bend with the geometry.
PREDICTORS = ("cv", "ca", "maneuver")


def _build_predictor(spec: str, road):
    from repro.prediction.constant_accel import ConstantAccelerationPredictor
    from repro.prediction.constant_velocity import ConstantVelocityPredictor
    from repro.prediction.maneuver import ManeuverPredictor

    if spec == "cv":
        return ConstantVelocityPredictor()
    if spec == "ca":
        return ConstantAccelerationPredictor()
    if spec == "maneuver":
        return ManeuverPredictor(road=road)
    raise ConfigurationError(
        f"unknown predictor {spec!r}; choose from {PREDICTORS}"
    )


def _build_aggregator(spec: str | None) -> Aggregator:
    """Aggregator from a spec string: ``max``, ``mean``,
    ``percentile`` or ``percentile:Q`` (default: the paper's 99th
    percentile)."""
    if spec is None or spec == "percentile":
        return PercentileAggregator()
    if spec == "max":
        return MaxAggregator()
    if spec == "mean":
        return MeanAggregator()
    if spec.startswith("percentile:"):
        try:
            return PercentileAggregator(n=float(spec.split(":", 1)[1]))
        except ValueError as exc:
            raise ConfigurationError(
                f"bad percentile in aggregator spec {spec!r}"
            ) from exc
    raise ConfigurationError(
        f"unknown aggregator {spec!r}; use max, mean, percentile "
        "or percentile:Q"
    )


@dataclass(frozen=True)
class ReplayVariant:
    """One estimation configuration a replay runs per stored trace.

    ``predictor=None`` is an *offline* variant: the campaign runner's
    exact math (:class:`OfflineEvaluator` under ``params``), which is
    what reproduces recorded campaign rows. A named ``predictor`` makes
    it an *online* variant: :meth:`OnlineEstimator.replay` with that
    predictor and the ``aggregator`` spec (Equation 4's reduction).
    """

    name: str
    params: ZhuyiParams | None = None
    predictor: str | None = None
    aggregator: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a replay variant needs a name")
        if self.predictor is not None and self.predictor not in PREDICTORS:
            raise ConfigurationError(
                f"unknown predictor {self.predictor!r}; "
                f"choose from {PREDICTORS}"
            )
        if self.aggregator is not None and self.predictor is None:
            raise ConfigurationError(
                "aggregator specs apply to online variants only "
                "(offline evaluation has no Equation 4 hypothesis set "
                "to reduce)"
            )
        _build_aggregator(self.aggregator)  # validate the spec eagerly

    def resolved_params(self) -> ZhuyiParams:
        return self.params if self.params is not None else ZhuyiParams()

    def to_dict(self) -> dict:
        from dataclasses import asdict

        return {
            "name": self.name,
            "params": None if self.params is None else asdict(self.params),
            "predictor": self.predictor,
            "aggregator": self.aggregator,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ReplayVariant":
        return cls(
            name=data["name"],
            params=(
                None
                if data.get("params") is None
                else ZhuyiParams(**data["params"])
            ),
            predictor=data.get("predictor"),
            aggregator=data.get("aggregator"),
        )


@dataclass(frozen=True)
class ReplayPlan:
    """Which stored cells to replay, under which estimation variants.

    Expansion (:meth:`jobs`) is cell-major then variant — the same
    (scenario, seed, fpr, variant) order :meth:`Campaign.runs` uses —
    and each job is stamped with its index, so replay files resume and
    shard exactly like campaign files (cell ``j`` of the plan goes to
    shard ``j % count``, a shard owns all of its cells' variants).
    """

    cells: tuple[Cell, ...]
    variants: tuple[ReplayVariant, ...]
    stride: float = 0.05
    provisioned_fpr: float = 30.0
    cameras: tuple[str, ...] = ANALYZED_CAMERAS
    backend: str = "batched"
    noise: PerceptionNoise | None = None

    def __post_init__(self) -> None:
        if not self.cells:
            raise ConfigurationError("a replay plan needs at least one cell")
        if not self.variants:
            raise ConfigurationError(
                "a replay plan needs at least one variant"
            )
        names = [variant.name for variant in self.variants]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"duplicate replay variant names: {names}"
            )
        if len(set(self.cells)) != len(self.cells):
            raise ConfigurationError("duplicate cells in replay plan")
        if self.stride <= 0.0:
            raise ConfigurationError(
                f"stride must be positive, got {self.stride}"
            )

    @property
    def size(self) -> int:
        return len(self.cells) * len(self.variants)

    def jobs(self) -> list[tuple[int, Cell, ReplayVariant]]:
        """``(index, cell, variant)`` in deterministic expansion order."""
        out = []
        for cell in self.cells:
            for variant in self.variants:
                out.append((len(out), cell, variant))
        return out

    def shard(self, index: int, count: int) -> list[tuple[int, Cell, ReplayVariant]]:
        """Jobs of shard ``index`` of ``count`` (cell-striped)."""
        if count < 1:
            raise ConfigurationError(
                f"shard count must be at least 1, got {count}"
            )
        if count > len(self.cells):
            raise ConfigurationError(
                f"cannot split {len(self.cells)} cells into {count} shards"
            )
        if not 0 <= index < count:
            raise ConfigurationError(
                f"shard index must be in [0, {count}), got {index}"
            )
        variants = len(self.variants)
        return [
            job
            for job in self.jobs()
            if (job[0] // variants) % count == index
        ]

    def to_dict(self) -> dict:
        return {
            "cells": [
                {"scenario": s, "seed": seed, "fpr": fpr}
                for s, seed, fpr in self.cells
            ],
            "variants": [variant.to_dict() for variant in self.variants],
            "stride": self.stride,
            "provisioned_fpr": self.provisioned_fpr,
            "cameras": list(self.cameras),
            "backend": self.backend,
            "noise": None if self.noise is None else self.noise.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ReplayPlan":
        return cls(
            cells=tuple(
                (raw["scenario"], int(raw["seed"]), float(raw["fpr"]))
                for raw in data["cells"]
            ),
            variants=tuple(
                ReplayVariant.from_dict(raw) for raw in data["variants"]
            ),
            stride=float(data["stride"]),
            provisioned_fpr=float(data["provisioned_fpr"]),
            cameras=tuple(data["cameras"]),
            backend=data.get("backend", "batched"),
            noise=(
                None
                if data.get("noise") is None
                else PerceptionNoise.from_dict(data["noise"])
            ),
        )

    @classmethod
    def from_store(
        cls,
        store: "TraceStore",
        variants: Sequence[ReplayVariant],
        **settings,
    ) -> "ReplayPlan":
        """A plan over every cell the store currently holds.

        Cells come from the store index (validated against the bundle
        directories), sorted by (scenario, seed, fpr) so two processes
        reading the same store agree on every job's index.
        """
        cells = tuple(key.cell for key in store.keys())
        if not cells:
            raise ConfigurationError(
                f"trace store {store.root} holds no replayable bundles "
                "(run a campaign with --store first, or rebuild-index)"
            )
        return cls(cells=cells, variants=tuple(variants), **settings)

    @classmethod
    def from_campaign(
        cls,
        campaign: Campaign,
        variants: Sequence[ReplayVariant] | None = None,
    ) -> "ReplayPlan":
        """Adopt a campaign's grid, expansion order and settings.

        With ``variants=None`` the campaign's own parameter variants
        become offline replay variants, making job ``i`` of the plan
        the same (scenario, seed, fpr, variant) as run ``i`` of the
        campaign — the configuration that reproduces its estimation
        rows from the store alone.
        """
        if variants is None:
            variants = tuple(
                ReplayVariant(name=v.name, params=v.params)
                for v in campaign.variants
            )
        cells = tuple(
            (scenario, int(seed), float(fpr))
            for scenario in campaign.scenarios
            for seed in campaign.seeds
            for fpr in campaign.fprs
        )
        return cls(
            cells=cells,
            variants=tuple(variants),
            stride=campaign.stride,
            provisioned_fpr=campaign.provisioned_fpr,
            cameras=tuple(campaign.cameras),
            backend=campaign.backend,
            noise=campaign.noise,
        )


def _row_dict(summary: RunSummary, variant: ReplayVariant) -> dict:
    """A replay line: the campaign run fields + estimator identity."""
    return {
        "kind": "run",
        **summary.to_dict(),
        "predictor": variant.predictor,
        "aggregator": variant.aggregator,
    }


def execute_replay_cell(
    cell: Cell,
    jobs: Sequence[tuple[int, ReplayVariant]],
    plan: ReplayPlan,
    store: "TraceStore",
) -> list[dict]:
    """Replay one stored cell under each of its ``(index, variant)`` jobs.

    Pure re-estimation: a store miss is a failure row (``TraceError``),
    never a simulation — the service's contract is that it can run on a
    machine with the store and the code, nothing else. Never raises;
    failures fold into rows exactly like campaign cells. The loaded
    trace's memmap handles are released before returning.
    """
    from repro.batch.runner import _close_trace
    from repro.scenarios.catalog import build_scenario

    cell_noise = (
        None
        if plan.noise is None
        else plan.noise.for_cell(cell[0], int(cell[1]), float(cell[2]))
    )

    def failure(index: int, variant: ReplayVariant, error: str) -> dict:
        return _row_dict(
            RunSummary(
                index=index,
                scenario=cell[0],
                seed=cell[1],
                fpr=cell[2],
                variant=variant.name,
                collided=False,
                error=error,
            ),
            variant,
        )

    try:
        built = build_scenario(cell[0], seed=cell[1])
        trace = store.get(store.key(*cell))
    except Exception as exc:  # noqa: BLE001 - service-level failure capture
        error = f"{type(exc).__name__}: {exc}"
        return [failure(index, variant, error) for index, variant in jobs]
    if trace is None:
        error = (
            f"TraceError: cell ({cell[0]!r}, seed={cell[1]}, "
            f"fpr={cell[2]:g}) is not in the trace store (replay never "
            "simulates; record it with a campaign --store run)"
        )
        return [failure(index, variant, error) for index, variant in jobs]

    try:
        if trace.has_collision:
            return [
                _row_dict(
                    RunSummary(
                        index=index,
                        scenario=cell[0],
                        seed=cell[1],
                        fpr=cell[2],
                        variant=variant.name,
                        collided=True,
                        collision_time=trace.first_collision_time,
                        duration=trace.duration,
                    ),
                    variant,
                )
                for index, variant in jobs
            ]
        rows = []
        samples = None  # one presampling serves every offline variant
        for index, variant in jobs:
            try:
                if variant.predictor is None:
                    if samples is None:
                        samples = presample_trace(
                            trace, plan.stride, noise=cell_noise
                        )
                    evaluator = OfflineEvaluator(
                        params=variant.resolved_params(),
                        road=built.road,
                        stride=plan.stride,
                        backend=plan.backend,
                        noise=cell_noise,
                    )
                    series = evaluator.evaluate(trace, samples=samples)
                else:
                    estimator = OnlineEstimator(
                        params=variant.resolved_params(),
                        predictor=_build_predictor(
                            variant.predictor, built.road
                        ),
                        aggregator=_build_aggregator(variant.aggregator),
                        road=built.road,
                        # crosstrace is a cross-cell batching strategy;
                        # a single replayed trace runs its equal-output
                        # whole-trace array program.
                        backend=(
                            "batched"
                            if plan.backend == "crosstrace"
                            else plan.backend
                        ),
                        noise=cell_noise,
                    )
                    series = estimator.replay(trace, period=plan.stride)
                rows.append(
                    _row_dict(
                        RunSummary(
                            index=index,
                            scenario=cell[0],
                            seed=cell[1],
                            fpr=cell[2],
                            variant=variant.name,
                            collided=False,
                            max_fpr=series.max_fpr(),
                            max_total_fpr=series.max_total_fpr(
                                plan.cameras
                            ),
                            fraction_of_provision=(
                                series.fraction_of_provision(
                                    plan.provisioned_fpr, plan.cameras
                                )
                            ),
                            camera_max_fpr={
                                camera: series.max_fpr(camera)
                                for camera in plan.cameras
                            },
                            ticks=len(series.ticks),
                            duration=trace.duration,
                        ),
                        variant,
                    )
                )
            except Exception as exc:  # noqa: BLE001 - per-variant capture
                rows.append(
                    failure(index, variant, f"{type(exc).__name__}: {exc}")
                )
        return rows
    finally:
        _close_trace(trace)


def _write_heartbeat(
    path: Path,
    done: int,
    total: int,
    last_index: int | None,
    started: float,
    shard: tuple[int, int] | None,
) -> None:
    """Atomically refresh the shard's heartbeat sidecar.

    A monitoring process (or a human with ``cat``) reads progress
    without touching — or racing — the JSONL stream itself. Atomic
    replace means the sidecar is always one complete JSON object.
    """
    # One instant for both fields: computing them from separate
    # time.time() calls let `updated - elapsed` drift from the true
    # start, confusing staleness monitors that subtract them.
    now = time.time()
    payload = {
        "kind": "heartbeat",
        "rows_done": done,
        "rows_total": total,
        "last_index": last_index,
        "elapsed": now - started,
        "updated": now,
        "shard": (
            None if shard is None else {"index": shard[0], "count": shard[1]}
        ),
    }
    ioutil.atomic_write_text(path, json.dumps(payload) + "\n")


def load_replay_rows(path: str | Path) -> tuple[ReplayPlan, list[dict], bool]:
    """Reload a replay JSONL file.

    Returns ``(plan, rows, completed)``; a torn final line (kill
    mid-write) is dropped, mirroring campaign loading.
    """
    text = Path(path).read_text()
    torn = bool(text) and not text.endswith("\n")
    raw_lines = [line for line in text.splitlines() if line.strip()]
    if not raw_lines:
        raise TraceError(f"empty replay file: {path}")
    records = []
    for number, line in enumerate(raw_lines):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if torn and number == len(raw_lines) - 1 and number > 0:
                break
            raise TraceError(f"invalid replay JSONL in {path}: {exc}") from exc
    header = records[0]
    if header.get("kind") != "replay":
        raise TraceError(
            f"replay file {path} does not start with a replay header"
        )
    if header.get("schema") != REPLAY_SCHEMA:
        raise TraceError(
            f"replay schema {header.get('schema')!r} unsupported "
            f"(expected {REPLAY_SCHEMA})"
        )
    plan = ReplayPlan.from_dict(header["plan"])
    rows = [r for r in records[1:] if r.get("kind") == "run"]
    completed = any(r.get("kind") == "completed" for r in records[1:])
    return plan, rows, completed


@dataclass
class ReplayService:
    """Streams a replay plan's rows to a resumable, shardable JSONL file.

    The write protocol is the campaign writer's: header before the
    first row, each row flushed as it lands, an fsynced ``completed``
    footer only when the (shard's) whole plan ran — so a killed replay
    keeps its finished rows and :meth:`run` with ``resume=True``
    executes exactly the remainder. Alongside the stream lives a
    ``<out>.heartbeat`` sidecar, atomically refreshed every
    :attr:`heartbeat_every` rows, which is what a fleet scheduler polls
    to tell a slow shard from a dead one.

    Attributes:
        store: the trace store rows are re-estimated from.
        heartbeat_every: rows between heartbeat refreshes.
    """

    store: "TraceStore"
    heartbeat_every: int = 8

    def run(
        self,
        plan: ReplayPlan,
        out: str | Path | None = None,
        shard: tuple[int, int] | None = None,
        progress: ReplayProgress | None = None,
        resume: bool = False,
    ) -> list[dict]:
        """Execute the plan (or one shard of it), streaming to ``out``.

        Args:
            plan: cells x variants to replay.
            out: JSONL path (``None`` collects rows in memory only —
                no heartbeat either).
            shard: ``(index, count)`` to run only that cell-stripe.
            progress: called per finished row with
                ``(done, total, row)``.
            resume: reuse the rows already present in ``out`` (which
                must have been written for the same plan and shard)
                and execute only the missing indices. A clean-prefix
                partial is appended to; anything else is rewritten
                canonically via an atomic temp-and-rename.

        Returns:
            Every row of the (shard's) plan, ascending by index.
        """
        jobs = plan.jobs() if shard is None else plan.shard(*shard)
        kept: dict[int, dict] = {}
        writer = None
        appending = False
        started = time.time()
        heartbeat = None if out is None else Path(str(out) + ".heartbeat")

        if out is not None and resume:
            existing_plan, rows, completed = load_replay_rows(out)
            if existing_plan.to_dict() != plan.to_dict():
                raise ConfigurationError(
                    f"replay file {out} was written for a different plan; "
                    "resume needs the same store/variants/settings"
                )
            kept = {int(row["index"]): row for row in rows}
            if completed and all(index in kept for index, _, _ in jobs):
                return [kept[index] for index, _, _ in jobs]

        if out is not None:
            header = {
                "kind": "replay",
                "schema": REPLAY_SCHEMA,
                "plan": plan.to_dict(),
                "store": str(self.store.root),
            }
            if shard is not None:
                header["shard"] = {"index": shard[0], "count": shard[1]}
            expected = [index for index, _, _ in jobs]
            prefix = expected[: len(kept)]
            if resume and kept and sorted(kept) == prefix:
                # The normal kill case: a clean prefix, append in place
                # (kept rows are already on disk — only fresh rows are
                # emitted below).
                writer = CampaignWriter.append_to(out)
                appending = True
            else:
                # Fresh file, or an out-of-order/torn partial: write
                # canonically. Atomic staging protects an existing
                # partial from a crash mid-rewrite.
                writer = CampaignWriter.create_raw(
                    out, header, atomic=resume and bool(kept)
                )

        by_cell: dict[Cell, list[tuple[int, ReplayVariant]]] = {}
        for index, cell, variant in jobs:
            by_cell.setdefault(cell, []).append((index, variant))

        results: dict[int, dict] = {}
        done = 0
        try:
            for cell, cell_jobs in by_cell.items():
                fresh = [
                    (index, variant)
                    for index, variant in cell_jobs
                    if index not in kept
                ]
                rows = (
                    execute_replay_cell(cell, fresh, plan, self.store)
                    if fresh
                    else []
                )
                produced = {int(row["index"]): row for row in rows}
                for index, _ in cell_jobs:
                    was_kept = index in kept
                    row = kept.get(index, produced.get(index))
                    results[index] = row
                    if writer is not None and not (appending and was_kept):
                        writer.write_row(row)
                    done += 1
                    if progress is not None:
                        progress(done, len(jobs), row)
                    if heartbeat is not None and (
                        done % self.heartbeat_every == 0
                    ):
                        _write_heartbeat(
                            heartbeat, done, len(jobs), index,
                            started, shard,
                        )
            if writer is not None:
                writer.finish(
                    workers=1, elapsed=time.time() - started
                )
            if heartbeat is not None:
                last = jobs[-1][0] if jobs else None
                _write_heartbeat(
                    heartbeat, done, len(jobs), last, started, shard
                )
        finally:
            if writer is not None:
                writer.close()
        return [results[index] for index, _, _ in jobs]
