"""Simulate-once trace store: columnar traces, memmap bundles, replay.

The store turns the simulator's dominant cost — running the closed
loop — into a one-time expense. Traces are converted to flat float64
columns (:class:`TraceArrays`), persisted as ``.npz``-style bundles
keyed by ``(scenario, seed, fpr, sim_version, code fingerprint)``
(:class:`TraceStore`), and reopened read-only through numpy memmaps as
zero-copy :class:`ColumnarTrace` objects that the evaluation engines
consume directly. :mod:`repro.store.replay` re-estimates recorded
traces under arbitrary parameter/predictor/aggregator variants without
ever touching the simulator.
"""

from repro.store.arrays import ColumnarTrace, TraceArrays, trace_arrays_equal
from repro.store.fingerprint import code_fingerprint
from repro.store.replay import (
    ReplayPlan,
    ReplayService,
    ReplayVariant,
    execute_replay_cell,
    load_replay_rows,
)
from repro.store.store import SIM_VERSION, STORE_SCHEMA, StoreKey, TraceStore

__all__ = [
    "ColumnarTrace",
    "ReplayPlan",
    "ReplayService",
    "ReplayVariant",
    "SIM_VERSION",
    "STORE_SCHEMA",
    "StoreKey",
    "TraceArrays",
    "TraceStore",
    "code_fingerprint",
    "execute_replay_cell",
    "load_replay_rows",
    "trace_arrays_equal",
]
