"""The persistent trace store: versioned, memory-mapped, race-safe.

Layout under the store root::

    <root>/
      index.jsonl          # one {"key", "bundle"} line per record
      bundles/<digest>/    # one bundle per (scenario, seed, fpr,
        meta.json          #   sim_version, code fingerprint) key
        times.npy ego.npy actor_masks.npy actor_columns.npy
        mode_codes.npy camera_codes.npy camera_values.npy
        camera_offsets.npy

Durability follows :class:`repro.batch.results.CampaignWriter`'s
contract: a bundle is staged in a temp directory, every file fsynced,
then atomically renamed into place (and the parent directory synced) —
readers never observe a half-written bundle. Two workers recording the
same key race safely: the first rename wins, the loser discards its
staging and reuses the winner's bundle. ``meta.json`` records a sha256
per column file; a corrupt or truncated bundle fails verification on
open and reads as a miss (the caller re-simulates — and the next
``put`` replaces the damaged bundle).

The index file is an *advisory* append-only log used for enumeration
(``repro replay`` iterates it); lookups never trust it — a key's bundle
path is a pure function of the key — and :meth:`TraceStore.rebuild_index`
regenerates it from the bundle directories at any time.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from repro import ioutil
from repro.dynamics.state import VehicleSpec
from repro.sim.collision import CollisionEvent
from repro.sim.trace import ScenarioTrace
from repro.store.arrays import ColumnarTrace, TraceArrays
from repro.store.fingerprint import code_fingerprint

#: Bundle layout version — bumped when the on-disk column set changes.
STORE_SCHEMA = 1

#: Trace *semantics* version — bumped when simulation output changes
#: meaning without a source diff (e.g. a recording convention change).
#: Part of every key, so stale bundles read as misses, never as data.
SIM_VERSION = 1

#: Column files of a bundle, in write order.
_COLUMN_FILES = (
    "times",
    "ego",
    "actor_masks",
    "actor_columns",
    "mode_codes",
    "camera_codes",
    "camera_values",
    "camera_offsets",
)

_tmp_counter = itertools.count()


@dataclass(frozen=True)
class StoreKey:
    """Identity of one stored trace."""

    scenario: str
    seed: int
    fpr: float
    sim_version: int
    fingerprint: str

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "fpr": self.fpr,
            "sim_version": self.sim_version,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StoreKey":
        return cls(
            scenario=data["scenario"],
            seed=int(data["seed"]),
            fpr=float(data["fpr"]),
            sim_version=int(data["sim_version"]),
            fingerprint=data["fingerprint"],
        )

    @property
    def cell(self) -> tuple[str, int, float]:
        """The campaign cell this key records."""
        return (self.scenario, self.seed, self.fpr)

    def digest(self) -> str:
        """The bundle directory name — a pure function of the key."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:32]


def _spec_dict(spec: VehicleSpec) -> dict:
    return {
        "length": spec.length,
        "width": spec.width,
        "wheelbase": spec.wheelbase,
        "max_accel": spec.max_accel,
        "max_decel": spec.max_decel,
        "max_speed": spec.max_speed,
    }


def _spec_from(data: dict) -> VehicleSpec:
    return VehicleSpec(**data)


class TraceStore:
    """Record-once / re-analyze-many storage for scenario traces.

    Picklable (plain configuration, no open handles), so a
    :class:`~repro.batch.runner.CampaignRunner` can carry one into its
    worker processes; each worker opens bundle memmaps read-only on
    demand and the store never pickles trace payloads through the pool.

    Attributes:
        root: store directory (created on first record).
        sim_version: trace-semantics version participating in keys.
        fingerprint: simulation-code digest participating in keys
            (default: the running tree's
            :func:`~repro.store.fingerprint.code_fingerprint`).
        verify: checksum every column file on open (cheap — traces are
            megabytes — and what turns corruption into a clean miss).
    """

    def __init__(
        self,
        root: str | Path,
        sim_version: int = SIM_VERSION,
        fingerprint: str | None = None,
        verify: bool = True,
    ):
        self.root = Path(root)
        self.sim_version = int(sim_version)
        self.fingerprint = (
            code_fingerprint() if fingerprint is None else fingerprint
        )
        self.verify = bool(verify)

    # ------------------------------------------------------------------
    # keys and paths
    # ------------------------------------------------------------------

    def key(self, scenario: str, seed: int, fpr: float) -> StoreKey:
        """The store key of a campaign cell under this store's version."""
        return StoreKey(
            scenario=scenario,
            seed=int(seed),
            fpr=float(fpr),
            sim_version=self.sim_version,
            fingerprint=self.fingerprint,
        )

    def bundle_dir(self, key: StoreKey) -> Path:
        return self.root / "bundles" / key.digest()

    @property
    def index_path(self) -> Path:
        return self.root / "index.jsonl"

    def __contains__(self, key: StoreKey) -> bool:
        return (self.bundle_dir(key) / "meta.json").is_file()

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def get(self, key: StoreKey) -> ColumnarTrace | None:
        """The stored trace for ``key``, or ``None`` on a miss.

        A miss is a miss whatever its cause: no bundle, a bundle from a
        different sim_version/fingerprint (different key → different
        directory), or a bundle that fails schema, size or checksum
        verification. Callers re-simulate; nothing here raises for
        damaged data.
        """
        bundle = self.bundle_dir(key)
        try:
            meta = json.loads((bundle / "meta.json").read_text())
            if meta.get("schema") != STORE_SCHEMA:
                return None
            if meta.get("key") != key.to_dict():
                return None
            arrays, mmaps = self._open_columns(bundle, meta)
        except (OSError, ValueError, KeyError, TypeError):
            return None

        def closer() -> None:
            for array in mmaps:
                mm = getattr(array, "_mmap", None)
                if mm is not None:
                    try:
                        mm.close()
                    except (BufferError, ValueError):
                        # Views still alive; refcounting closes the fd
                        # as soon as they go unreachable.
                        pass

        return arrays.lazy_trace(closer=closer)

    def _open_columns(
        self, bundle: Path, meta: dict
    ) -> tuple[TraceArrays, list[np.ndarray]]:
        trace_meta = meta["trace"]
        columns: dict[str, np.ndarray] = {}
        mmaps: list[np.ndarray] = []
        for name in _COLUMN_FILES:
            spec = meta["arrays"][name]
            path = bundle / spec["file"]
            raw = path.read_bytes()
            if len(raw) != int(spec["bytes"]):
                raise ValueError(f"truncated column {name}")
            if self.verify:
                if hashlib.sha256(raw).hexdigest() != spec["sha256"]:
                    raise ValueError(f"checksum mismatch on column {name}")
            array = np.load(path, mmap_mode="r", allow_pickle=False)
            if list(array.shape) != list(spec["shape"]):
                raise ValueError(f"shape mismatch on column {name}")
            columns[name] = array
            mmaps.append(array)
        arrays = TraceArrays(
            scenario=trace_meta["scenario"],
            dt=float(trace_meta["dt"]),
            nominal_fpr=trace_meta["nominal_fpr"],
            seed=trace_meta["seed"],
            ego_spec=_spec_from(trace_meta["ego_spec"]),
            actor_specs={
                actor_id: _spec_from(spec)
                for actor_id, spec in trace_meta["actor_specs"].items()
            },
            metadata=trace_meta["metadata"],
            collisions=tuple(
                CollisionEvent(time=raw["time"], actor_id=raw["actor_id"])
                for raw in trace_meta["collisions"]
            ),
            times=columns["times"],
            ego=columns["ego"],
            actor_order=tuple(meta["actors"]["order"]),
            actor_masks=columns["actor_masks"],
            actor_columns=columns["actor_columns"],
            actor_offsets=tuple(meta["actors"]["offsets"]),
            mode_vocab=tuple(meta["modes"]),
            mode_codes=columns["mode_codes"],
            camera_vocab=tuple(meta["cameras"]),
            camera_codes=columns["camera_codes"],
            camera_values=columns["camera_values"],
            camera_offsets=columns["camera_offsets"],
        )
        return arrays, mmaps

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def put(self, key: StoreKey, trace: ScenarioTrace) -> Path:
        """Record a trace under ``key``; returns the bundle directory.

        Stages the bundle in a temp directory, fsyncs, then renames —
        the :class:`~repro.batch.results.CampaignWriter` durability
        contract. Losing a rename race to another recorder is success:
        the winner's (verified) bundle is reused. A pre-existing bundle
        that fails verification is replaced.
        """
        arrays = TraceArrays.from_trace(trace)
        final = self.bundle_dir(key)
        final.parent.mkdir(parents=True, exist_ok=True)
        staging = final.parent / (
            f"{final.name}.tmp-{os.getpid()}-{next(_tmp_counter)}"
        )
        try:
            self._write_bundle(staging, key, arrays)
            self._commit(staging, final)
        finally:
            if staging.exists():
                shutil.rmtree(staging, ignore_errors=True)
        ioutil.fsync_dir(final.parent)
        self._append_index(key)
        return final

    def _write_bundle(
        self, staging: Path, key: StoreKey, arrays: TraceArrays
    ) -> None:
        staging.mkdir(parents=True)
        files_meta: dict[str, dict] = {}
        columns = {
            "times": arrays.times,
            "ego": arrays.ego,
            "actor_masks": arrays.actor_masks,
            "actor_columns": arrays.actor_columns,
            "mode_codes": arrays.mode_codes,
            "camera_codes": arrays.camera_codes,
            "camera_values": arrays.camera_values,
            "camera_offsets": arrays.camera_offsets,
        }
        for name, column in columns.items():
            path = staging / f"{name}.npy"
            with ioutil.fsynced_file(path, "wb") as handle:
                np.save(handle, np.ascontiguousarray(column))
            raw = path.read_bytes()
            files_meta[name] = {
                "file": path.name,
                "bytes": len(raw),
                "sha256": hashlib.sha256(raw).hexdigest(),
                "shape": list(column.shape),
                "dtype": str(np.asarray(column).dtype),
            }
        meta = {
            "kind": "trace-bundle",
            "schema": STORE_SCHEMA,
            "key": key.to_dict(),
            "trace": {
                "scenario": arrays.scenario,
                "dt": arrays.dt,
                "nominal_fpr": arrays.nominal_fpr,
                "seed": arrays.seed,
                "ego_spec": _spec_dict(arrays.ego_spec),
                "actor_specs": {
                    actor_id: _spec_dict(spec)
                    for actor_id, spec in arrays.actor_specs.items()
                },
                "metadata": arrays.metadata,
                "collisions": [
                    {"time": event.time, "actor_id": event.actor_id}
                    for event in arrays.collisions
                ],
            },
            "actors": {
                "order": list(arrays.actor_order),
                "offsets": list(arrays.actor_offsets),
            },
            "modes": list(arrays.mode_vocab),
            "cameras": list(arrays.camera_vocab),
            "arrays": files_meta,
        }
        meta_path = staging / "meta.json"
        with ioutil.fsynced_file(meta_path, "w") as handle:
            json.dump(meta, handle)
        ioutil.fsync_dir(staging)

    def _commit(self, staging: Path, final: Path) -> None:
        try:
            os.rename(staging, final)
        except OSError:
            # Another recorder won the rename (or a previous bundle
            # exists). A verifiable winner is reused; a damaged one is
            # swept aside and replaced.
            if self._verifiable(final):
                return
            stale = final.parent / (
                f"{final.name}.stale-{os.getpid()}-{next(_tmp_counter)}"
            )
            try:
                os.rename(final, stale)
            except OSError:
                pass
            else:
                shutil.rmtree(stale, ignore_errors=True)
            os.rename(staging, final)

    def _verifiable(self, bundle: Path) -> bool:
        """Whether an existing bundle passes this store's verification."""
        try:
            meta = json.loads((bundle / "meta.json").read_text())
            if meta.get("schema") != STORE_SCHEMA:
                return False
            _, mmaps = self._open_columns(bundle, meta)
        except (OSError, ValueError, KeyError, TypeError):
            return False
        del mmaps
        return True

    # ------------------------------------------------------------------
    # index
    # ------------------------------------------------------------------

    def _append_index(self, key: StoreKey) -> None:
        line = json.dumps({"key": key.to_dict(), "bundle": key.digest()})
        self.root.mkdir(parents=True, exist_ok=True)
        # O_APPEND keeps concurrent recorders from interleaving lines;
        # duplicates (two recorders of one key) dedupe on read.
        with self.index_path.open("a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def keys(self) -> list[StoreKey]:
        """Recorded keys matching this store's version and fingerprint.

        Reads the index log (deduplicated, existence-checked) — keys
        whose bundles a crash orphaned out of the index appear after
        :meth:`rebuild_index`.
        """
        seen: dict[str, StoreKey] = {}
        for key in self._index_entries():
            if (
                key.sim_version == self.sim_version
                and key.fingerprint == self.fingerprint
                and key in self
            ):
                seen.setdefault(key.digest(), key)
        return sorted(seen.values(), key=lambda k: k.cell)

    def _index_entries(self) -> Iterator[StoreKey]:
        try:
            text = self.index_path.read_text()
        except OSError:
            return
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                yield StoreKey.from_dict(json.loads(line)["key"])
            except (ValueError, KeyError, TypeError):
                continue  # torn tail / foreign line: enumeration only

    def rebuild_index(self) -> int:
        """Regenerate ``index.jsonl`` from the bundle directories.

        Returns the number of bundles indexed. Atomic (temp file +
        rename), so readers never observe a half-written index.
        """
        bundles_dir = self.root / "bundles"
        entries = []
        if bundles_dir.is_dir():
            for bundle in sorted(bundles_dir.iterdir()):
                meta_path = bundle / "meta.json"
                if not meta_path.is_file():
                    continue
                try:
                    meta = json.loads(meta_path.read_text())
                    key = StoreKey.from_dict(meta["key"])
                except (ValueError, KeyError, TypeError, OSError):
                    continue
                entries.append(
                    json.dumps({"key": key.to_dict(), "bundle": bundle.name})
                )
        self.root.mkdir(parents=True, exist_ok=True)
        ioutil.atomic_write_text(
            self.index_path, "".join(line + "\n" for line in entries)
        )
        return len(entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceStore(root={str(self.root)!r}, "
            f"sim_version={self.sim_version}, "
            f"fingerprint={self.fingerprint!r})"
        )
