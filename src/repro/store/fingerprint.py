"""Code fingerprinting: which source tree produced a stored trace.

A trace is a pure function of ``(scenario, seed, fpr)`` *and* of the
simulation code: the catalog choreography, the closed-loop simulator,
the integrators, perception sampling, planning. The store keys bundles
by a digest of exactly those modules, so editing any of them silently
invalidates every recorded trace (a lookup under the new fingerprint
misses and re-simulates) while estimation-side changes — evaluator,
engine, batch, CLI — keep the cache warm.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from pathlib import Path

import repro

#: Packages / modules (relative to ``repro``) whose source participates
#: in the closed-loop simulation and therefore in the trace bytes.
#: Estimation layers (core engine/evaluator, batch, analysis) are
#: deliberately absent: they consume traces, they never shape them.
SIM_SOURCES = (
    "actors",
    "dynamics",
    "geometry",
    "perception",
    "planning",
    "road",
    "scenarios",
    "sim",
    "core/rng.py",
    "errors.py",
    "units.py",
)


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hex digest of the simulation-shaping source files.

    Deterministic across processes and machines running the same tree:
    files are hashed in sorted relative-path order, content-only (no
    mtimes, no absolute paths).
    """
    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for entry in SIM_SOURCES:
        path = root / entry
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            if not file.is_file():
                continue
            digest.update(file.relative_to(root).as_posix().encode())
            digest.update(b"\x00")
            digest.update(file.read_bytes())
            digest.update(b"\x00")
    return digest.hexdigest()[:16]
