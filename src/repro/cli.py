"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run <scenario>`` — one closed-loop run + offline Zhuyi evaluation.
* ``mrf <scenario>`` — minimum-required-FPR search.
* ``sweep [gap]`` — Figure 8 style sensitivity heatmap.
* ``scenarios`` — list the catalog.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import OfflineEvaluator, SCENARIO_NAMES, build_scenario
from repro.analysis.report import format_table, render_heatmap
from repro.analysis.sensitivity import sweep_min_fpr
from repro.perception.sensor import ANALYZED_CAMERAS
from repro.system.mrf import find_minimum_required_fpr


def _cmd_scenarios(_: argparse.Namespace) -> int:
    from repro.scenarios.catalog import SCENARIOS

    rows = [
        (spec.name, f"{spec.ego_speed_mph:g}", spec.paper_mrf, spec.description)
        for spec in SCENARIOS.values()
    ]
    print(format_table(["Scenario", "mph", "paper MRF", "Description"], rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = build_scenario(args.scenario, seed=args.seed)
    print(f"Running {args.scenario!r} seed={args.seed} fpr={args.fpr} ...")
    trace = scenario.run(fpr=args.fpr)
    print(f"  duration {trace.duration:.1f} s, collision: {trace.has_collision}")
    if trace.has_collision:
        print("  (collision: Zhuyi evaluation skipped, as in the paper)")
        return 1
    series = OfflineEvaluator(road=scenario.road).evaluate(trace)
    rows = [
        (camera, f"{series.max_fpr(camera):.1f}")
        for camera in ANALYZED_CAMERAS
    ]
    print(format_table(["Camera", "max estimated FPR"], rows))
    print(
        f"peak total demand {series.max_total_fpr():.1f} frames/s "
        f"({series.fraction_of_provision():.0%} of 3x30 FPR)"
    )
    if args.save_trace:
        trace.save_json(args.save_trace)
        print(f"trace written to {args.save_trace}")
    return 0


def _cmd_mrf(args: argparse.Namespace) -> int:
    grid = tuple(float(x) for x in args.grid.split(","))
    seeds = tuple(range(args.seeds))
    print(
        f"Searching MRF for {args.scenario!r} over FPR {grid} "
        f"with {len(seeds)} seed(s) ..."
    )
    result = find_minimum_required_fpr(args.scenario, fpr_grid=grid, seeds=seeds)
    print(f"minimum required FPR: {result.label}")
    print(f"collision rates: {list(result.collision_fprs) or 'none'}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    grid = sweep_min_fpr(
        gap=args.gap,
        ego_speeds_mph=np.linspace(0.0, 70.0, args.resolution),
        actor_speeds_mph=np.linspace(0.0, 70.0, args.resolution),
    )
    print(f"s_n = {args.gap:g} m (x: v_e0, y: v_an, 0->70 mph)")
    print(render_heatmap(grid.min_fpr))
    print(f"max finite FPR: {grid.max_finite_fpr():.1f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Zhuyi (DAC 2022) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("scenarios", help="list the scenario catalog")

    run = sub.add_parser("run", help="closed-loop run + Zhuyi evaluation")
    run.add_argument("scenario", choices=SCENARIO_NAMES)
    run.add_argument("--fpr", type=float, default=30.0)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--save-trace", default=None, metavar="PATH")

    mrf = sub.add_parser("mrf", help="minimum-required-FPR search")
    mrf.add_argument("scenario", choices=SCENARIO_NAMES)
    mrf.add_argument("--grid", default="1,2,3,4,5,6,8,10,15,30")
    mrf.add_argument("--seeds", type=int, default=1)

    sweep = sub.add_parser("sweep", help="Figure 8 sensitivity heatmap")
    sweep.add_argument("gap", type=float, nargs="?", default=30.0)
    sweep.add_argument("--resolution", type=int, default=24)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "scenarios": _cmd_scenarios,
        "run": _cmd_run,
        "mrf": _cmd_mrf,
        "sweep": _cmd_sweep,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
