"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run <scenario>`` — one closed-loop run + offline Zhuyi evaluation.
* ``mrf <scenario>`` — minimum-required-FPR search.
* ``sweep [gap]`` — Figure 8 style sensitivity heatmap.
* ``campaign [scenarios ...]`` — batch scenario x seed x FPR sweep,
  with streaming ``--out``, ``--resume``, ``--shard I/N``, the
  simulate-once ``--store DIR`` and ``--fuzz-archive`` genome loading.
* ``fuzz <family>`` — evolutionary worst-case scenario search; each
  generation runs as a campaign, worst genomes are archived as
  reproducible catalog entries.
* ``replay`` — re-estimate recorded traces from a store under new
  parameter/predictor/aggregator variants, without simulating.
* ``campaign-merge <parts ...>`` — recombine shard JSONL files.
* ``scenarios`` — list the catalog.

See docs/CAMPAIGNS.md for campaign workflows and exit codes.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro import OfflineEvaluator, SCENARIO_NAMES, build_scenario
from repro.core.latency import BACKENDS
from repro.analysis.report import format_table, render_heatmap
from repro.analysis.sensitivity import sweep_min_fpr
from repro.errors import ConfigurationError
from repro.perception.sensor import ANALYZED_CAMERAS
from repro.system.mrf import find_minimum_required_fpr


def _cmd_scenarios(_: argparse.Namespace) -> int:
    from repro.scenarios.catalog import SCENARIOS

    rows = [
        (spec.name, f"{spec.ego_speed_mph:g}", spec.paper_mrf, spec.description)
        for spec in SCENARIOS.values()
    ]
    print(format_table(["Scenario", "mph", "paper MRF", "Description"], rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = build_scenario(args.scenario, seed=args.seed)
    print(f"Running {args.scenario!r} seed={args.seed} fpr={args.fpr} ...")
    trace = scenario.run(fpr=args.fpr)
    print(f"  duration {trace.duration:.1f} s, collision: {trace.has_collision}")
    if trace.has_collision:
        print("  (collision: Zhuyi evaluation skipped, as in the paper)")
        return 1
    series = OfflineEvaluator(road=scenario.road).evaluate(trace)
    rows = [
        (camera, f"{series.max_fpr(camera):.1f}")
        for camera in ANALYZED_CAMERAS
    ]
    print(format_table(["Camera", "max estimated FPR"], rows))
    print(
        f"peak total demand {series.max_total_fpr():.1f} frames/s "
        f"({series.fraction_of_provision():.0%} of 3x30 FPR)"
    )
    if args.save_trace:
        trace.save_json(args.save_trace)
        print(f"trace written to {args.save_trace}")
    return 0


def _cmd_mrf(args: argparse.Namespace) -> int:
    grid = tuple(float(x) for x in args.grid.split(","))
    seeds = tuple(range(args.seeds))
    print(
        f"Searching MRF for {args.scenario!r} over FPR {grid} "
        f"with {len(seeds)} seed(s) ..."
    )
    result = find_minimum_required_fpr(args.scenario, fpr_grid=grid, seeds=seeds)
    print(f"minimum required FPR: {result.label}")
    print(f"collision rates: {list(result.collision_fprs) or 'none'}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    grid = sweep_min_fpr(
        gap=args.gap,
        ego_speeds_mph=np.linspace(0.0, 70.0, args.resolution),
        actor_speeds_mph=np.linspace(0.0, 70.0, args.resolution),
    )
    print(f"s_n = {args.gap:g} m (x: v_e0, y: v_an, 0->70 mph)")
    print(render_heatmap(grid.min_fpr))
    print(f"max finite FPR: {grid.max_finite_fpr():.1f}")
    return 0


def _parse_shard(text: str) -> tuple[int, int]:
    """Parse ``I/N`` (e.g. ``2/8``) into a (shard index, count) pair."""
    try:
        index, count = text.split("/", 1)
        return int(index), int(count)
    except ValueError as exc:
        raise ConfigurationError(
            f"--shard wants I/N (e.g. 2/8), got {text!r}"
        ) from exc


def _campaign_progress(args: argparse.Namespace):
    def progress(done: int, total: int, summary) -> None:
        if args.quiet:
            return
        outcome = (
            "FAILED" if not summary.ok
            else "collision" if summary.collided
            else f"max FPR {summary.max_fpr:.1f}"
        )
        print(
            f"  [{done}/{total}] {summary.scenario} seed={summary.seed} "
            f"fpr={summary.fpr:g}: {outcome}"
        )

    return progress


def _print_campaign_result(
    result, render, summarize_failures, executed: int | None = None
) -> int:
    """Print the table and summary line; returns the exit code.

    ``executed`` is how many runs this invocation actually ran (resume
    reuses cached summaries, so the wall clock only covers the fresh
    ones); defaults to all of them.
    """
    print(render(result))
    if executed is None:
        executed = len(result)
    note = "" if executed == len(result) else f" ({executed} executed)"
    print(
        f"{len(result)} runs{note} in {result.elapsed:.1f} s "
        f"({result.elapsed / max(executed, 1):.2f} s/run, "
        f"{result.workers} worker(s)); "
        f"{len(result.collisions())} collision(s)"
    )
    failures = summarize_failures(result)
    if failures:
        print(failures, file=sys.stderr)
    return 1 if result.failures() else 0


def _store(args: argparse.Namespace):
    """The campaign's :class:`~repro.store.TraceStore`, if one was asked
    for. Constructed lazily so ``repro campaign`` without ``--store``
    never imports (or fingerprints) the store package. An executor
    setting like ``--workers``, so it composes with ``--resume``."""
    if not getattr(args, "store", None):
        return None
    from repro.store import TraceStore

    return TraceStore(args.store)


def _load_fuzz_archives(paths) -> int | None:
    """Register ``--fuzz-archive`` genomes; an exit code on failure.

    Also exports ``REPRO_FUZZ_RECIPES`` so spawn-method workers (and any
    process re-validating the grid from a JSONL header) can resolve the
    fuzzed names themselves.
    """
    from repro.scenarios.fuzzed import RECIPES_ENV, load_fuzzed_archive

    names: list[str] = []
    try:
        for path in paths:
            names.extend(load_fuzzed_archive(path))
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    os.environ[RECIPES_ENV] = os.pathsep.join(str(p) for p in paths)
    print(f"fuzz archive: {len(names)} scenario(s) registered")
    return None


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.batch import (
        Campaign,
        CampaignResult,
        CampaignRunner,
        render_campaign_table,
        summarize_failures,
    )
    from repro.errors import TraceError
    from repro.scenarios.catalog import SCENARIOS, speed_sweep

    if args.expand_speeds:
        added = speed_sweep()
        print(f"speed sweep: {len(added)} variant scenario(s) registered")

    if args.fuzz_archive:
        code = _load_fuzz_archives(args.fuzz_archive)
        if code is not None:
            return code

    if args.retry_failed and not args.resume:
        print(
            "error: --retry-failed only makes sense with --resume "
            "(a fresh campaign has no failures to retry)",
            file=sys.stderr,
        )
        return 2

    if args.resume:
        parser_defaults = build_parser().parse_args(["campaign"])
        grid_flags_given = (
            args.seeds != parser_defaults.seeds
            or args.fprs != parser_defaults.fprs
            or args.stride != parser_defaults.stride
            or args.backend != parser_defaults.backend
            or args.miss_rate != parser_defaults.miss_rate
            or args.position_noise != parser_defaults.position_noise
            or args.noise_seed != parser_defaults.noise_seed
        )
        if args.scenarios or args.shard or args.out or grid_flags_given:
            print(
                "error: --resume takes the whole grid (scenarios, "
                "seeds, FPRs, stride, backend, noise, shard) and the "
                "output path from the existing file; drop those "
                "arguments",
                file=sys.stderr,
            )
            return 2
        try:
            runner = CampaignRunner(workers=args.workers, store=_store(args))
            partial = CampaignResult.load_jsonl(args.resume)
            reusable = len(partial.resume_cache(retry_failed=args.retry_failed))
            todo = len(partial.expected_runs()) - reusable
            print(
                f"Resuming {args.resume}: {reusable} of "
                f"{len(partial.expected_runs())} runs already recorded, "
                f"{todo} to go with {args.workers} worker(s) ..."
            )
            result = runner.resume(
                args.resume,
                _campaign_progress(args),
                partial=partial,
                retry_failed=args.retry_failed,
            )
        except (ConfigurationError, TraceError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        code = _print_campaign_result(
            result, render_campaign_table, summarize_failures, executed=todo
        )
        print(f"campaign written to {args.resume}")
        return code

    scenarios = tuple(args.scenarios) if args.scenarios else tuple(SCENARIOS)
    try:
        from repro.perception.noise import PerceptionNoise

        shard = _parse_shard(args.shard) if args.shard else None
        noise = PerceptionNoise(
            miss_rate=args.miss_rate,
            position_noise=args.position_noise,
            seed=args.noise_seed,
        )
        campaign = Campaign(
            scenarios=scenarios,
            seeds=tuple(range(args.seeds)),
            fprs=tuple(float(x) for x in args.fprs.split(",")),
            stride=args.stride,
            backend=args.backend,
            noise=noise if noise.enabled else None,
        )
        # Validates the shard index/count before any run executes.
        total = (
            campaign.size if shard is None else len(campaign.shard(*shard))
        )
        runner = CampaignRunner(workers=args.workers, store=_store(args))
    except (ConfigurationError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    shard_note = "" if shard is None else f" (shard {shard[0]}/{shard[1]})"
    print(
        f"Campaign: {len(campaign.scenarios)} scenario(s) x "
        f"{len(campaign.seeds)} seed(s) x {len(campaign.fprs)} FPR(s) = "
        f"{campaign.size} runs{shard_note}, {total} to execute "
        f"with {args.workers} worker(s) ..."
    )

    try:
        result = runner.run(
            campaign, _campaign_progress(args), out=args.out, shard=shard
        )
    except OSError as exc:
        if args.out is None:
            raise  # not an output-file problem; don't misattribute it
        print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
        return 2
    code = _print_campaign_result(
        result, render_campaign_table, summarize_failures
    )
    if args.out:
        print(f"campaign written to {args.out}")
    return code


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.batch import CampaignRunner
    from repro.fuzz import FuzzConfig, run_fuzz

    # --smoke is a CI-sized preset: any explicitly given flag wins.
    def preset(value, smoke_default, full_default):
        if value is not None:
            return value
        return smoke_default if args.smoke else full_default

    try:
        config = FuzzConfig(
            family=args.family,
            population=preset(args.population, 4, 16),
            generations=preset(args.generations, 2, 8),
            elite=preset(args.elite, 1, 2),
            tournament=preset(args.tournament, 2, 3),
            mutation_scale=args.mutation_scale,
            seed=args.seed,
            fitness=args.fitness,
            sim_seeds=tuple(range(args.seeds)),
            fprs=tuple(float(x) for x in args.fprs.split(",")),
            stride=preset(args.stride, 0.5, 0.05),
            backend=args.backend,
            archive_size=args.archive_size,
        )
        runner = CampaignRunner(workers=args.workers, store=_store(args))
    except (ConfigurationError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(
        f"Fuzz search: family {config.family!r}, {config.population} "
        f"genome(s) x {config.generations} generation(s), fitness "
        f"{config.fitness!r}, backend {config.backend!r}, seed "
        f"{config.seed} -> {args.out}"
    )
    try:
        result = run_fuzz(
            config,
            args.out,
            runner=runner,
            progress=None if args.quiet else print,
        )
    except (ConfigurationError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    best = result.best
    if best is None:
        print(
            "error: no genome produced a usable fitness "
            "(every run failed)",
            file=sys.stderr,
        )
        return 1
    base = (
        "unknown"
        if result.base_fitness is None
        else f"{result.base_fitness:.3f}"
    )
    verdict = (
        "exceeds"
        if result.base_fitness is not None
        and best["fitness"] > result.base_fitness
        else "does not exceed"
    )
    print(
        f"best: {best['name']} fitness {best['fitness']:.3f} "
        f"({verdict} base {base})"
    )
    print(f"archive written to {result.archive_path}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.batch import CampaignResult
    from repro.errors import TraceError
    from repro.perception.noise import PerceptionNoise
    from repro.store import (
        ReplayPlan,
        ReplayService,
        ReplayVariant,
        TraceStore,
    )

    if args.resume and not args.out:
        print("error: --resume needs --out", file=sys.stderr)
        return 2

    try:
        store = TraceStore(args.store)
        variants = tuple(
            ReplayVariant(
                name=spec,
                predictor=spec.split(":", 1)[0],
                aggregator=(
                    spec.split(":", 1)[1] if ":" in spec else None
                ),
            )
            for spec in (args.online or ())
        )
        if args.from_campaign:
            campaign = CampaignResult.load_jsonl(args.from_campaign).campaign
            plan = ReplayPlan.from_campaign(
                campaign, variants=variants or None
            )
        else:
            noise = PerceptionNoise(
                miss_rate=args.miss_rate,
                position_noise=args.position_noise,
                seed=args.noise_seed,
            )
            plan = ReplayPlan.from_store(
                store,
                variants=variants or (ReplayVariant(name="default"),),
                stride=args.stride,
                backend=args.backend,
                noise=noise if noise.enabled else None,
            )
        shard = _parse_shard(args.shard) if args.shard else None
        total = plan.size if shard is None else len(plan.shard(*shard))
        shard_note = "" if shard is None else f" (shard {shard[0]}/{shard[1]})"
        print(
            f"Replay: {len(plan.cells)} stored cell(s) x "
            f"{len(plan.variants)} variant(s){shard_note}, "
            f"{total} row(s) from {args.store} ..."
        )

        def progress(done: int, count: int, row: dict) -> None:
            if args.quiet:
                return
            outcome = (
                "FAILED" if row.get("error")
                else "collision" if row.get("collided")
                else f"max FPR {row['max_fpr']:.1f}"
            )
            print(
                f"  [{done}/{count}] {row['scenario']} seed={row['seed']} "
                f"fpr={row['fpr']:g} [{row['variant']}]: {outcome}"
            )

        rows = ReplayService(store=store).run(
            plan,
            out=args.out,
            shard=shard,
            progress=progress,
            resume=args.resume,
        )
    except (ConfigurationError, TraceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    failures = [row for row in rows if row.get("error")]
    print(f"{len(rows)} row(s) replayed; {len(failures)} failure(s)")
    if failures:
        for row in failures[:5]:
            print(
                f"  {row['scenario']} seed={row['seed']} "
                f"fpr={row['fpr']:g} [{row['variant']}]: {row['error']}",
                file=sys.stderr,
            )
    if args.out:
        print(f"replay written to {args.out}")
    return 1 if failures else 0


def _cmd_campaign_merge(args: argparse.Namespace) -> int:
    from repro.batch import (
        CampaignResult,
        render_campaign_table,
        summarize_failures,
    )
    from repro.errors import TraceError

    try:
        parts = [CampaignResult.load_jsonl(path) for path in args.parts]
        merged = CampaignResult.merge(parts)
    except (ConfigurationError, TraceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"Merged {len(parts)} part(s): {len(merged)} of "
        f"{merged.campaign.size} runs present"
    )
    code = _print_campaign_result(
        merged, render_campaign_table, summarize_failures
    )
    if not merged.is_complete:
        missing = [spec.index for spec in merged.missing_runs()]
        print(
            f"incomplete merge: {len(missing)} run(s) missing "
            f"(indices {missing[:10]}{'...' if len(missing) > 10 else ''})",
            file=sys.stderr,
        )
        code = max(code, 1)
    if args.out:
        try:
            merged.save_jsonl(args.out)
        except OSError as exc:
            print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
            return 2
        print(f"merged campaign written to {args.out}")
    return code


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run_lint

    return run_lint(args)


def _fuzz_family_names() -> list[str]:
    from repro.scenarios.fuzzed import FUZZ_FAMILIES

    return list(FUZZ_FAMILIES)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Zhuyi (DAC 2022) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("scenarios", help="list the scenario catalog")

    run = sub.add_parser("run", help="closed-loop run + Zhuyi evaluation")
    run.add_argument("scenario", choices=SCENARIO_NAMES)
    run.add_argument("--fpr", type=float, default=30.0)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--save-trace", default=None, metavar="PATH")

    mrf = sub.add_parser("mrf", help="minimum-required-FPR search")
    mrf.add_argument("scenario", choices=SCENARIO_NAMES)
    mrf.add_argument("--grid", default="1,2,3,4,5,6,8,10,15,30")
    mrf.add_argument("--seeds", type=int, default=1)

    sweep = sub.add_parser("sweep", help="Figure 8 sensitivity heatmap")
    sweep.add_argument("gap", type=float, nargs="?", default=30.0)
    sweep.add_argument("--resolution", type=int, default=24)

    campaign = sub.add_parser(
        "campaign", help="batch scenario x seed x FPR sweep"
    )
    campaign.add_argument(
        "scenarios",
        nargs="*",
        metavar="SCENARIO",
        help="scenario names (default: the whole catalog)",
    )
    campaign.add_argument(
        "--seeds", type=int, default=1, help="jitter seeds 0..N-1 (default 1)"
    )
    campaign.add_argument(
        "--fprs",
        default="30",
        help="comma-separated fixed FPR settings (default 30)",
    )
    campaign.add_argument(
        "--workers", type=int, default=1, help="parallel worker processes"
    )
    campaign.add_argument(
        "--stride", type=float, default=0.05, help="evaluation stride (s)"
    )
    campaign.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="stream results to a JSONL file as runs finish",
    )
    campaign.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default="batched",
        help="latency-solver backend: the batched array kernel "
        "(default), the scalar reference loop, or crosstrace — "
        "whole blocks of cells solved through shared cross-trace "
        "kernels — identical results",
    )
    campaign.add_argument(
        "--miss-rate",
        type=float,
        default=0.0,
        help="evaluation-time detection miss probability per actor "
        "tick, in [0, 1) (default 0: noise-free)",
    )
    campaign.add_argument(
        "--position-noise",
        type=float,
        default=0.0,
        help="evaluation-time perceived-position jitter sigma in "
        "metres (default 0: noise-free)",
    )
    campaign.add_argument(
        "--noise-seed",
        type=int,
        default=0,
        help="root seed of the counter-based noise draws (each cell "
        "derives its own child seed; default 0)",
    )
    campaign.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help="finish a partial campaign JSONL in place (grid comes "
        "from the file; incompatible with scenario/--shard/--out)",
    )
    campaign.add_argument(
        "--retry-failed",
        action="store_true",
        help="with --resume: also re-execute deterministic 'error' "
        "summaries (WorkerError crashes always re-execute)",
    )
    campaign.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help="run only shard I of N (e.g. 2/8); merge parts later "
        "with campaign-merge",
    )
    campaign.add_argument(
        "--expand-speeds",
        action="store_true",
        help="register cut-out/cut-in ego-speed variants first",
    )
    campaign.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="simulate-once trace store: cells load their recorded "
        "trace from DIR instead of re-simulating, and record it there "
        "on a miss (composes with --resume and --shard)",
    )
    campaign.add_argument(
        "--fuzz-archive",
        action="append",
        default=None,
        metavar="FILE",
        help="register the fuzzed genomes recorded in a repro-fuzz "
        "archive/recipes JSON first, so its fuzzed_<family>_<digest> "
        "scenario names are runnable (repeatable; composes with "
        "--resume and --shard)",
    )
    campaign.add_argument(
        "--quiet", action="store_true", help="suppress per-run progress lines"
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="evolutionary worst-case scenario search "
        "(generations run as campaigns)",
    )
    fuzz.add_argument(
        "family",
        choices=sorted(_fuzz_family_names()),
        help="fuzzable scenario family",
    )
    fuzz.add_argument(
        "--out",
        required=True,
        metavar="DIR",
        help="output directory: gen_<NNN>.jsonl generation campaigns, "
        "recipe sidecars, archive.json and search.json; re-running "
        "with the same seed/config resumes and reproduces byte-"
        "identically",
    )
    fuzz.add_argument(
        "--population",
        type=int,
        default=None,
        help="genomes per generation (default 16; 4 with --smoke)",
    )
    fuzz.add_argument(
        "--generations",
        type=int,
        default=None,
        help="generations to run (default 8; 2 with --smoke)",
    )
    fuzz.add_argument(
        "--elite",
        type=int,
        default=None,
        help="top genomes copied unchanged each generation "
        "(default 2; 1 with --smoke)",
    )
    fuzz.add_argument(
        "--tournament",
        type=int,
        default=None,
        help="tournament selection size (default 3; 2 with --smoke)",
    )
    fuzz.add_argument(
        "--mutation-scale",
        type=float,
        default=0.15,
        help="Gaussian mutation sigma as a fraction of each gene's "
        "range (default 0.15)",
    )
    fuzz.add_argument(
        "--seed",
        type=int,
        default=0,
        help="root seed of the whole search trajectory (default 0)",
    )
    fuzz.add_argument(
        "--fitness",
        choices=["latency", "mrf_margin", "disagreement"],
        default="latency",
        help="fitness function: peak estimated FPR demand (default), "
        "demand margin above the provisioned rate, or peak "
        "backend-vs-scalar disagreement (parity bug hunt)",
    )
    fuzz.add_argument(
        "--seeds",
        type=int,
        default=1,
        help="scenario jitter seeds 0..N-1 per genome (default 1)",
    )
    fuzz.add_argument(
        "--fprs",
        default="30",
        help="comma-separated fixed FPR settings per genome (default 30)",
    )
    fuzz.add_argument(
        "--stride",
        type=float,
        default=None,
        help="evaluation stride in seconds (default 0.05; 0.5 with "
        "--smoke)",
    )
    fuzz.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default="batched",
        help="latency backend generations evaluate under",
    )
    fuzz.add_argument(
        "--workers", type=int, default=1, help="parallel worker processes"
    )
    fuzz.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="simulate-once trace store: elites and re-discovered "
        "genomes re-evaluate from recorded traces (see campaign "
        "--store)",
    )
    fuzz.add_argument(
        "--archive-size",
        type=int,
        default=5,
        help="worst-case genomes kept in archive.json (default 5)",
    )
    fuzz.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized preset: 4 genomes x 2 generations at stride "
        "0.5 (explicit flags still win)",
    )
    fuzz.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-generation progress lines",
    )

    replay = sub.add_parser(
        "replay",
        help="re-estimate recorded traces from a store (no simulation)",
    )
    replay.add_argument(
        "--store",
        required=True,
        metavar="DIR",
        help="trace store to replay from (see campaign --store)",
    )
    replay.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="stream rows to a JSONL file (with a PATH.heartbeat "
        "sidecar refreshed as rows finish)",
    )
    replay.add_argument(
        "--from-campaign",
        default=None,
        metavar="FILE",
        help="adopt the grid, variants and settings of a recorded "
        "campaign JSONL: the replay reproduces its estimation rows "
        "from the store alone",
    )
    replay.add_argument(
        "--online",
        action="append",
        default=None,
        metavar="PREDICTOR[:AGGREGATOR]",
        help="add an online-estimator variant: cv, ca or maneuver, "
        "optionally with max, mean, percentile or percentile:Q "
        "(repeatable; default without --online/--from-campaign is one "
        "offline default-parameter variant)",
    )
    replay.add_argument(
        "--stride", type=float, default=0.05, help="estimation cadence (s)"
    )
    replay.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default="batched",
        help="evaluation backend (identical results)",
    )
    replay.add_argument(
        "--miss-rate", type=float, default=0.0,
        help="replay-time detection miss probability (default 0)",
    )
    replay.add_argument(
        "--position-noise", type=float, default=0.0,
        help="replay-time position jitter sigma in metres (default 0)",
    )
    replay.add_argument(
        "--noise-seed", type=int, default=0,
        help="root seed of the counter-based noise draws (default 0)",
    )
    replay.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help="replay only cell-stripe I of N (each shard heartbeats "
        "and resumes independently)",
    )
    replay.add_argument(
        "--resume",
        action="store_true",
        help="reuse the rows already present in --out and execute "
        "only the remainder",
    )
    replay.add_argument(
        "--quiet", action="store_true", help="suppress per-row progress lines"
    )

    merge = sub.add_parser(
        "campaign-merge",
        help="merge campaign shard JSONL parts into one result",
    )
    merge.add_argument(
        "parts", nargs="+", metavar="PART", help="shard JSONL files"
    )
    merge.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the merged result as JSONL",
    )

    lint = sub.add_parser(
        "lint",
        help="determinism & contract linter (rules DET001-PAR006)",
        description=(
            "AST-based static analysis enforcing the repo's "
            "determinism and durability contracts; see docs/TESTING.md "
            "'Determinism contract — lint rules'"
        ),
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "scenarios": _cmd_scenarios,
        "run": _cmd_run,
        "mrf": _cmd_mrf,
        "sweep": _cmd_sweep,
        "campaign": _cmd_campaign,
        "campaign-merge": _cmd_campaign_merge,
        "fuzz": _cmd_fuzz,
        "replay": _cmd_replay,
        "lint": _cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
