"""The closed-loop simulator.

Per 100 Hz step: perception advances (captures due camera frames and
applies frames whose processing latency elapsed), the planner decides
from the perceived world model, the ego integrates one bicycle step,
scripted actors advance their choreography, and collisions are checked.
Hooks (e.g. the Zhuyi-based online safety system) run after perception
so they can both read the world model and retune camera rates.

Stochastic perception (miss sampling, position noise) draws through the
counter-based generator of :mod:`repro.core.rng`, keyed on the frame's
capture time rather than consumed from a stateful stream — so a run is a
pure function of its inputs, two simulators built alike agree bit for
bit, and re-simulating from any recorded instant reproduces the draws
the original run made from that instant on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

from repro.actors.behavior import ScenarioContext
from repro.actors.vehicle import Actor
from repro.dynamics.bicycle import KinematicBicycle
from repro.dynamics.state import VehicleSpec, VehicleState
from repro.errors import ConfigurationError
from repro.perception.pipeline import PerceptionSystem
from repro.planning.planner import Planner
from repro.road.track import Road
from repro.sim.collision import CollisionChecker, CollisionEvent
from repro.sim.trace import ScenarioTrace, TraceStep


@runtime_checkable
class SimHook(Protocol):
    """Extension point run every step after perception and planning."""

    def on_step(self, now: float, simulator: "Simulator") -> None:
        """Observe and/or steer the running simulation."""
        ...


@dataclass(frozen=True)
class SimulationConfig:
    """Run-level settings."""

    dt: float = 0.01
    duration: float = 30.0
    stop_on_collision: bool = True
    settle_after_stop: float = 3.0

    def __post_init__(self) -> None:
        if self.dt <= 0.0:
            raise ConfigurationError(f"dt must be positive, got {self.dt}")
        if self.duration <= self.dt:
            raise ConfigurationError("duration must exceed one step")


class Simulator:
    """One closed-loop scenario run."""

    def __init__(
        self,
        scenario_name: str,
        road: Road,
        ego_initial: VehicleState,
        ego_spec: VehicleSpec,
        planner: Planner,
        perception: PerceptionSystem,
        actors: Sequence[Actor],
        config: SimulationConfig | None = None,
        hooks: Sequence[SimHook] = (),
        seed: int | None = None,
    ):
        self.scenario_name = scenario_name
        self.road = road
        self.ego_state = ego_initial
        self.ego_spec = ego_spec
        self.planner = planner
        self.perception = perception
        self.actors = list(actors)
        self.config = config if config is not None else SimulationConfig()
        self.hooks = list(hooks)
        self.seed = seed
        self.time = 0.0
        self._integrator = KinematicBicycle(ego_spec)
        self._collision_checker = CollisionChecker(ego_spec)
        self._collisions: list[CollisionEvent] = []
        self._steps: list[TraceStep] = []
        self._last_mode = "cruise"
        self._initial_fprs = perception.fprs()

        ids = [actor.actor_id for actor in self.actors]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate actor ids: {ids}")

    # ------------------------------------------------------------------
    # state snapshots
    # ------------------------------------------------------------------

    def actor_states(self) -> dict[str, VehicleState]:
        """Ground-truth states of all actors right now."""
        return {actor.actor_id: actor.state for actor in self.actors}

    def actor_map(self) -> dict[str, tuple[VehicleState, VehicleSpec]]:
        """(state, spec) pairs keyed by actor id — the perception input."""
        return {
            actor.actor_id: (actor.state, actor.spec) for actor in self.actors
        }

    @property
    def collisions(self) -> list[CollisionEvent]:
        """Collisions recorded so far."""
        return list(self._collisions)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self) -> ScenarioTrace:
        """Run to completion and return the recorded trace."""
        config = self.config
        steps_total = int(round(config.duration / config.dt))
        stopped_since: float | None = None

        for _ in range(steps_total):
            now = self.time
            actor_map = self.actor_map()

            self.perception.step(now, self.ego_state, actor_map)
            plan = self.planner.plan(
                now, self.ego_state, self.perception.world_model
            )
            self._last_mode = plan.mode.value

            for hook in self.hooks:
                hook.on_step(now, self)

            self._record(now)

            # Integrate the ego and advance the choreography.
            context = ScenarioContext(
                road=self.road,
                ego_state=self.ego_state,
                actor_states={
                    actor_id: state for actor_id, (state, _) in actor_map.items()
                },
            )
            self.ego_state = self._integrator.step(
                self.ego_state, plan.accel, plan.steer, config.dt
            )
            for actor in self.actors:
                actor.step(now, config.dt, context)
            self.time = now + config.dt

            events = self._collision_checker.check(
                self.time, self.ego_state, self.actor_map()
            )
            self._collisions.extend(events)
            if events and config.stop_on_collision:
                self._record(self.time)
                break

            # End early once everything has settled to a stop.
            if config.settle_after_stop > 0.0:
                moving = self.ego_state.speed > 0.05 or any(
                    actor.state.speed > 0.05 for actor in self.actors
                )
                if moving:
                    stopped_since = None
                elif stopped_since is None:
                    stopped_since = self.time
                elif self.time - stopped_since >= config.settle_after_stop:
                    self._record(self.time)
                    break

        if not self._steps or self._steps[-1].time < self.time - 1e-9:
            self._record(self.time)

        return ScenarioTrace(
            scenario=self.scenario_name,
            dt=config.dt,
            steps=self._steps,
            collisions=self._collisions,
            nominal_fpr=self._nominal_fpr(),
            seed=self.seed,
            ego_spec=self.ego_spec,
            actor_specs={actor.actor_id: actor.spec for actor in self.actors},
        )

    def _record(self, now: float) -> None:
        self._steps.append(
            TraceStep(
                time=now,
                ego=self.ego_state,
                actors=self.actor_states(),
                planner_mode=self._last_mode,
                camera_fprs=self.perception.fprs(),
            )
        )

    def _nominal_fpr(self) -> float | None:
        """The run's fixed FPR setting, or ``None`` when per-camera."""
        rates = set(self._initial_fprs.values())
        if len(rates) == 1:
            return rates.pop()
        return None
