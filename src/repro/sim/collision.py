"""Collision detection between the ego and scripted actors.

Safety in the paper is binary: "no collision between the ego and
surrounding actors". The checker reports each ego-actor pair at most
once so a continuing overlap does not flood the event list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.dynamics.state import VehicleSpec, VehicleState
from repro.geometry.boxes import boxes_overlap


@dataclass(frozen=True)
class CollisionEvent:
    """One ego-actor collision."""

    time: float
    actor_id: Hashable


class CollisionChecker:
    """Stateful per-run collision detector."""

    def __init__(self, ego_spec: VehicleSpec):
        self._ego_spec = ego_spec
        self._already_hit: set[Hashable] = set()

    @property
    def collided_actors(self) -> frozenset:
        """Actors the ego has already collided with this run."""
        return frozenset(self._already_hit)

    def check(
        self,
        time: float,
        ego_state: VehicleState,
        actors: Mapping[Hashable, tuple[VehicleState, VehicleSpec]],
    ) -> list[CollisionEvent]:
        """New collisions at this instant (each actor reported once)."""
        ego_box = ego_state.footprint(self._ego_spec)
        events: list[CollisionEvent] = []
        for actor_id, (state, spec) in actors.items():
            if actor_id in self._already_hit:
                continue
            if boxes_overlap(ego_box, state.footprint(spec)):
                self._already_hit.add(actor_id)
                events.append(CollisionEvent(time=time, actor_id=actor_id))
        return events
