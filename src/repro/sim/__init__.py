"""Simulator core: the closed loop of ego, actors, perception, planner.

Replaces the paper's NVIDIA DriveSim + AV stack combination with a
deterministic 100 Hz kinematic loop that records a full scenario trace —
"the states of the ego and all the actors at all the time-steps"
(Section 3.1) — plus collision events and planner telemetry.
"""

from repro.sim.collision import CollisionChecker, CollisionEvent
from repro.sim.trace import ScenarioTrace, TraceStep
from repro.sim.simulator import SimulationConfig, Simulator, SimHook

__all__ = [
    "CollisionEvent",
    "CollisionChecker",
    "TraceStep",
    "ScenarioTrace",
    "SimulationConfig",
    "Simulator",
    "SimHook",
]
