"""Scenario traces: the record the pre-deployment evaluator consumes.

"For each AV tested scenario, the scenario trace is collected which
includes the states of the ego and all the actors at all the time-steps"
(Section 3.1). Traces serialize to JSON for archival and are queried as
interpolated :class:`StateTrajectory` objects by the Zhuyi evaluator.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from repro.dynamics.state import (
    StateTrajectory,
    TimedState,
    VehicleSpec,
    VehicleState,
)
from repro.errors import EstimationError, TraceError
from repro.geometry.vec import Vec2
from repro.sim.collision import CollisionEvent
from repro.units import seconds_to_ms


@dataclass(frozen=True)
class TraceStep:
    """The scene at one simulation step."""

    time: float
    ego: VehicleState
    actors: Mapping[str, VehicleState]
    planner_mode: str = "cruise"
    camera_fprs: Mapping[str, float] = field(default_factory=dict)

    @property
    def time_ms(self) -> int:
        """Timestamp in milliseconds (the unit of the paper's figures)."""
        return seconds_to_ms(self.time)


class ScenarioTrace:
    """A full recorded run of one scenario."""

    def __init__(
        self,
        scenario: str,
        dt: float,
        steps: Sequence[TraceStep],
        collisions: Sequence[CollisionEvent] = (),
        nominal_fpr: float | None = None,
        seed: int | None = None,
        ego_spec: VehicleSpec | None = None,
        actor_specs: Mapping[str, VehicleSpec] | None = None,
        metadata: Mapping[str, object] | None = None,
    ):
        if not steps:
            raise TraceError("a trace needs at least one step")
        self.scenario = scenario
        self.dt = dt
        self.steps = list(steps)
        self.collisions = list(collisions)
        self.nominal_fpr = nominal_fpr
        self.seed = seed
        self.ego_spec = ego_spec if ego_spec is not None else VehicleSpec()
        self.actor_specs = dict(actor_specs) if actor_specs else {}
        # Serialization is lossless only for what JSON can key and
        # value: non-string actor ids would be silently stringified by
        # ``json.dumps`` (diverging from the collision payloads, which
        # keep their native type), and metadata holding tuples or numpy
        # scalars would come back as different types. Rejecting ids and
        # canonicalizing metadata here makes the in-memory trace equal
        # its own round trip, bit for bit.
        for step in self.steps:
            _check_actor_ids(step.actors)
            _check_actor_ids(step.camera_fprs, kind="camera id")
        _check_actor_ids(self.actor_specs)
        for event in self.collisions:
            if not isinstance(event.actor_id, str):
                raise TraceError(
                    "collision actor ids must be strings, got "
                    f"{event.actor_id!r}"
                )
        self.metadata = (
            _canonical_metadata(metadata, where="metadata")
            if metadata
            else {}
        )
        self._ego_trajectory: StateTrajectory | None = None
        self._actor_trajectories: dict[str, StateTrajectory] = {}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def duration(self) -> float:
        """Simulated time covered (seconds)."""
        start, end = self.time_span()
        return end - start

    def time_span(self) -> tuple[float, float]:
        """``(first, last)`` recorded step times.

        The evaluation layers read the trace span through this hook
        instead of ``steps[0]``/``steps[-1]`` so column-backed traces
        (:class:`repro.store.ColumnarTrace`) can answer without
        materializing their step objects.
        """
        return self.steps[0].time, self.steps[-1].time

    @property
    def has_collision(self) -> bool:
        """Whether any ego-actor collision occurred."""
        return bool(self.collisions)

    @property
    def first_collision_time(self) -> float | None:
        """Time of the first collision, or ``None``."""
        if not self.collisions:
            return None
        return min(event.time for event in self.collisions)

    def actor_ids(self) -> list[str]:
        """All actor ids appearing anywhere in the trace."""
        ids: dict[str, None] = {}
        for step in self.steps:
            for actor_id in step.actors:
                ids.setdefault(actor_id, None)
        return list(ids)

    def actor_spec(self, actor_id: str) -> VehicleSpec:
        """The actor's physical spec (default spec when unrecorded)."""
        return self.actor_specs.get(actor_id, VehicleSpec())

    def default_l0(self) -> float:
        """The default processing latency for evaluating this trace.

        One frame period of the trace's recorded FPR setting — the
        ``l0`` both the offline evaluator and the online replay fall
        back to when none is given.

        Raises:
            EstimationError: if the trace has no recorded nominal FPR
                (it is the estimation layers that need the fallback).
        """
        if self.nominal_fpr is None:
            raise EstimationError(
                "trace has no nominal FPR; pass l0 explicitly"
            )
        return 1.0 / self.nominal_fpr

    def ego_trajectory(self) -> StateTrajectory:
        """The ego's motion as an interpolated trajectory (cached)."""
        if self._ego_trajectory is None:
            self._ego_trajectory = StateTrajectory(
                TimedState(step.time, step.ego) for step in self.steps
            )
        return self._ego_trajectory

    def actor_trajectory(self, actor_id: str) -> StateTrajectory:
        """One actor's motion as an interpolated trajectory (cached)."""
        if actor_id not in self._actor_trajectories:
            samples = [
                TimedState(step.time, step.actors[actor_id])
                for step in self.steps
                if actor_id in step.actors
            ]
            if not samples:
                raise TraceError(f"actor {actor_id!r} does not appear in trace")
            self._actor_trajectories[actor_id] = StateTrajectory(samples)
        return self._actor_trajectories[actor_id]

    def step_at(self, time: float) -> TraceStep:
        """The recorded step closest to ``time``."""
        return min(self.steps, key=lambda step: abs(step.time - time))

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "scenario": self.scenario,
            "dt": self.dt,
            "nominal_fpr": self.nominal_fpr,
            "seed": self.seed,
            "ego_spec": _spec_to_dict(self.ego_spec),
            "actor_specs": {
                actor_id: _spec_to_dict(spec)
                for actor_id, spec in self.actor_specs.items()
            },
            "metadata": self.metadata,
            "collisions": [
                {"time": event.time, "actor_id": event.actor_id}
                for event in self.collisions
            ],
            "steps": [
                {
                    "time": step.time,
                    "ego": _state_to_dict(step.ego),
                    "actors": {
                        actor_id: _state_to_dict(state)
                        for actor_id, state in step.actors.items()
                    },
                    "planner_mode": step.planner_mode,
                    "camera_fprs": dict(step.camera_fprs),
                }
                for step in self.steps
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioTrace":
        """Inverse of :meth:`to_dict`."""
        try:
            steps = [
                TraceStep(
                    time=raw["time"],
                    ego=_state_from_dict(raw["ego"]),
                    actors={
                        actor_id: _state_from_dict(state)
                        for actor_id, state in raw["actors"].items()
                    },
                    planner_mode=raw.get("planner_mode", "cruise"),
                    camera_fprs=raw.get("camera_fprs", {}),
                )
                for raw in data["steps"]
            ]
            collisions = [
                CollisionEvent(time=raw["time"], actor_id=raw["actor_id"])
                for raw in data.get("collisions", [])
            ]
            return cls(
                scenario=data["scenario"],
                dt=data["dt"],
                steps=steps,
                collisions=collisions,
                nominal_fpr=data.get("nominal_fpr"),
                seed=data.get("seed"),
                ego_spec=_spec_from_dict(data["ego_spec"]),
                actor_specs={
                    actor_id: _spec_from_dict(spec)
                    for actor_id, spec in data.get("actor_specs", {}).items()
                },
                metadata=data.get("metadata", {}),
            )
        except (KeyError, TypeError) as exc:
            raise TraceError(f"malformed trace data: {exc}") from exc

    def save_json(self, path: str | Path) -> None:
        """Write the trace to a JSON file."""
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load_json(cls, path: str | Path) -> "ScenarioTrace":
        """Read a trace from a JSON file."""
        try:
            data = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise TraceError(f"invalid trace JSON in {path}: {exc}") from exc
        return cls.from_dict(data)


def _check_actor_ids(mapping: Mapping, kind: str = "actor id") -> None:
    """Reject non-string keys before JSON would silently stringify them."""
    for key in mapping:
        if not isinstance(key, str):
            raise TraceError(
                f"trace {kind}s must be strings, got {key!r} "
                f"({type(key).__name__}); JSON round-trips would "
                "silently convert it"
            )


def _canonical_metadata(value: object, where: str) -> object:
    """``value`` in JSON-canonical form, or :class:`TraceError`.

    JSON-canonical means the value survives ``json.dumps`` →
    ``json.loads`` as an *equal object*: dicts with string keys, lists
    (tuples are converted — that is the canonicalization), strings,
    bools, ints, floats (numpy scalars collapse to their Python
    equivalents) and ``None``. Anything else — sets, arrays, arbitrary
    objects — fails loudly here instead of silently mutating (or
    crashing) at save time.
    """
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        return value
    # Numpy scalars json-fail (or worse, change type); collapse them.
    item = getattr(value, "item", None)
    if item is not None and getattr(value, "shape", None) == ():
        return _canonical_metadata(item(), where)
    if isinstance(value, (list, tuple)):
        return [
            _canonical_metadata(entry, f"{where}[{pos}]")
            for pos, entry in enumerate(value)
        ]
    if isinstance(value, Mapping):
        out = {}
        for key, entry in value.items():
            if not isinstance(key, str):
                raise TraceError(
                    f"trace {where} keys must be strings, got {key!r}"
                )
            out[key] = _canonical_metadata(entry, f"{where}[{key!r}]")
        return out
    raise TraceError(
        f"trace {where} value {value!r} ({type(value).__name__}) "
        "does not survive a JSON round trip"
    )


def _state_to_dict(state: VehicleState) -> dict:
    return {
        "x": state.position.x,
        "y": state.position.y,
        "heading": state.heading,
        "speed": state.speed,
        "accel": state.accel,
    }


def _state_from_dict(data: Mapping) -> VehicleState:
    return VehicleState(
        position=Vec2(data["x"], data["y"]),
        heading=data["heading"],
        speed=data["speed"],
        accel=data.get("accel", 0.0),
    )


def _spec_to_dict(spec: VehicleSpec) -> dict:
    return {
        "length": spec.length,
        "width": spec.width,
        "wheelbase": spec.wheelbase,
        "max_accel": spec.max_accel,
        "max_decel": spec.max_decel,
        "max_speed": spec.max_speed,
    }


def _spec_from_dict(data: Mapping) -> VehicleSpec:
    return VehicleSpec(
        length=data["length"],
        width=data["width"],
        wheelbase=data["wheelbase"],
        max_accel=data["max_accel"],
        max_decel=data["max_decel"],
        max_speed=data["max_speed"],
    )
