"""Road-network substrate: centerlines, Frenet frames and lane layouts.

The paper's scenarios all take place on a 3-lane road, straight or curved
(Section 4.1). Scenario scripts and the Zhuyi threat extraction both work
in Frenet coordinates (station ``s`` along the road, lateral offset ``d``),
which these classes provide for straight, arc and composite centerlines.
"""

from repro.road.lane import (
    ArcCenterline,
    Centerline,
    CompositeCenterline,
    FrenetPoint,
    StraightCenterline,
)
from repro.road.track import Road, three_lane_curved_road, three_lane_straight_road

__all__ = [
    "Centerline",
    "StraightCenterline",
    "ArcCenterline",
    "CompositeCenterline",
    "FrenetPoint",
    "Road",
    "three_lane_straight_road",
    "three_lane_curved_road",
]
