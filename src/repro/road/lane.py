"""Centerline primitives with exact Frenet <-> world conversions.

A centerline is an arc-length parameterized planar curve. The library
uses three kinds: straight segments, circular arcs, and composites built
by chaining the two. Lateral offsets (``d``) are positive to the *left*
of the direction of travel, matching the paper's ego-centric Y axis.

Every ``to_frenet_batch`` is *bit-identical* per element to the scalar
``to_frenet`` — a hard contract the threat corridor mask and gate table
rely on (a corridor-edge tick must land on the same side in the scalar
and batched backends). The two paths therefore share their arithmetic
exactly: distances are ``sqrt(dx*dx + dy*dy)`` (the square root is
correctly rounded, so ``math.sqrt`` and ``numpy.sqrt`` agree to the
bit, which ``math.hypot`` and ``numpy.hypot`` do not), angle wrapping
is the exact ``fmod`` formula on both sides, bearings go through
``numpy.arctan2`` in both paths, and the composite's nearest-segment
selection breaks ties bit-stably (first segment in chain order wins).
``tests/property/test_prop_frenet.py`` pins the contract.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import GeometryError
from repro.geometry.vec import Vec2
from repro.units import wrap_angle


def _wrap_angles(angles: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.units.wrap_angle` (same formula)."""
    wrapped = np.fmod(angles + math.pi, 2.0 * math.pi)
    return np.where(wrapped <= 0.0, wrapped + 2.0 * math.pi, wrapped) - math.pi


@dataclass(frozen=True)
class FrenetPoint:
    """Frenet coordinates on a centerline.

    Attributes:
        s: station — arc length along the centerline (metres).
        d: lateral offset, positive to the left of travel (metres).
    """

    s: float
    d: float


@runtime_checkable
class Centerline(Protocol):
    """Arc-length parameterized curve with Frenet conversions."""

    @property
    def length(self) -> float:
        """Total arc length (metres)."""
        ...

    def point_at(self, s: float) -> Vec2:
        """World position of the centerline at station ``s``."""
        ...

    def heading_at(self, s: float) -> float:
        """Tangent heading (radians) at station ``s``."""
        ...

    def curvature_at(self, s: float) -> float:
        """Signed curvature at ``s`` (positive = turning left)."""
        ...

    def to_world(self, frenet: FrenetPoint) -> Vec2:
        """World position of a Frenet point."""
        ...

    def to_frenet(self, point: Vec2) -> FrenetPoint:
        """Frenet coordinates of the closest centerline point."""
        ...

    def to_frenet_batch(
        self, xs: np.ndarray, ys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`to_frenet`: ``(s, d)`` arrays of many points.

        The per-point projection is the interpreter hot spot of threat
        gating and corridor masking; every centerline provides a pure
        array version so those layers never loop in Python.
        """
        ...

    def to_world_batch(
        self, stations: np.ndarray, offsets: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`to_world`: ``(x, y)`` arrays of many points.

        The inverse batch kernel: the lane-change prediction rollout
        maps whole (station, offset) grids back to world coordinates.
        Elementwise-pure, so one evaluation over a trace of ticks equals
        a per-tick loop bit for bit (the scalar predictor path calls
        the same kernel on single-row grids).
        """
        ...

    def heading_at_batch(self, stations: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`heading_at` over an array of stations."""
        ...


@dataclass(frozen=True)
class StraightCenterline:
    """A straight segment starting at ``start`` with constant ``heading``."""

    start: Vec2
    heading: float
    segment_length: float

    def __post_init__(self) -> None:
        if self.segment_length <= 0.0:
            raise GeometryError(
                f"centerline length must be positive, got {self.segment_length}"
            )

    @property
    def length(self) -> float:
        return self.segment_length

    def point_at(self, s: float) -> Vec2:
        return self.start + Vec2.unit(self.heading) * s

    def heading_at(self, s: float) -> float:
        return self.heading

    def curvature_at(self, s: float) -> float:
        return 0.0

    def to_world(self, frenet: FrenetPoint) -> Vec2:
        tangent = Vec2.unit(self.heading)
        return self.start + tangent * frenet.s + tangent.perp() * frenet.d

    def to_frenet(self, point: Vec2) -> FrenetPoint:
        tangent = Vec2.unit(self.heading)
        delta = point - self.start
        return FrenetPoint(s=delta.dot(tangent), d=delta.dot(tangent.perp()))

    def to_frenet_batch(
        self, xs: np.ndarray, ys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        cos_h, sin_h = math.cos(self.heading), math.sin(self.heading)
        dx = np.asarray(xs, dtype=float) - self.start.x
        dy = np.asarray(ys, dtype=float) - self.start.y
        return dx * cos_h + dy * sin_h, dx * -sin_h + dy * cos_h

    def to_world_batch(
        self, stations: np.ndarray, offsets: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        cos_h, sin_h = math.cos(self.heading), math.sin(self.heading)
        s = np.asarray(stations, dtype=float)
        d = np.asarray(offsets, dtype=float)
        # start + tangent * s + perp * d with tangent (cos, sin) and
        # perp (-sin, cos), in the scalar to_world's operation order.
        return (
            self.start.x + cos_h * s + -sin_h * d,
            self.start.y + sin_h * s + cos_h * d,
        )

    def heading_at_batch(self, stations: np.ndarray) -> np.ndarray:
        return np.full(np.shape(np.asarray(stations, dtype=float)), self.heading)


@dataclass(frozen=True)
class ArcCenterline:
    """A circular arc.

    Attributes:
        center: centre of the circle (world frame).
        radius: circle radius (metres), strictly positive.
        start_angle: polar angle (radians) of the arc's start point as seen
            from ``center``.
        arc_length: arc length (metres), strictly positive.
        turn_left: True for a counter-clockwise arc (curving left).
    """

    center: Vec2
    radius: float
    start_angle: float
    arc_length: float
    turn_left: bool = True

    def __post_init__(self) -> None:
        if self.radius <= 0.0:
            raise GeometryError(f"arc radius must be positive, got {self.radius}")
        if self.arc_length <= 0.0:
            raise GeometryError(
                f"arc length must be positive, got {self.arc_length}"
            )

    @property
    def length(self) -> float:
        return self.arc_length

    def _angle_at(self, s: float) -> float:
        sweep = s / self.radius
        return self.start_angle + (sweep if self.turn_left else -sweep)

    def point_at(self, s: float) -> Vec2:
        return self.center + Vec2.from_polar(self.radius, self._angle_at(s))

    def heading_at(self, s: float) -> float:
        angle = self._angle_at(s)
        offset = math.pi / 2.0 if self.turn_left else -math.pi / 2.0
        return wrap_angle(angle + offset)

    def curvature_at(self, s: float) -> float:
        return (1.0 if self.turn_left else -1.0) / self.radius

    def to_world(self, frenet: FrenetPoint) -> Vec2:
        # For a left turn the leftward normal points toward the centre, so
        # a positive d shrinks the radius; for a right turn it grows it.
        angle = self._angle_at(frenet.s)
        if self.turn_left:
            effective_radius = self.radius - frenet.d
        else:
            effective_radius = self.radius + frenet.d
        if effective_radius <= 0.0:
            raise GeometryError(
                f"lateral offset {frenet.d} exceeds arc radius {self.radius}"
            )
        return self.center + Vec2.from_polar(effective_radius, angle)

    def to_frenet(self, point: Vec2) -> FrenetPoint:
        dx = point.x - self.center.x
        dy = point.y - self.center.y
        # sqrt-of-squares and a numpy bearing, matching to_frenet_batch
        # operation for operation (see the module docstring).
        distance = math.sqrt(dx * dx + dy * dy)
        if distance == 0.0:
            raise GeometryError("cannot project the arc centre onto the arc")
        angle = float(np.arctan2(dy, dx))
        if self.turn_left:
            sweep = wrap_angle(angle - self.start_angle)
            d = self.radius - distance
        else:
            sweep = wrap_angle(self.start_angle - angle)
            d = distance - self.radius
        return FrenetPoint(s=sweep * self.radius, d=d)

    def to_frenet_batch(
        self, xs: np.ndarray, ys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        dx = np.asarray(xs, dtype=float) - self.center.x
        dy = np.asarray(ys, dtype=float) - self.center.y
        distance = np.sqrt(dx * dx + dy * dy)
        angle = np.arctan2(dy, dx)
        if self.turn_left:
            sweep = _wrap_angles(angle - self.start_angle)
            d = self.radius - distance
        else:
            sweep = _wrap_angles(self.start_angle - angle)
            d = distance - self.radius
        return sweep * self.radius, d

    def to_world_batch(
        self, stations: np.ndarray, offsets: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        s = np.asarray(stations, dtype=float)
        d = np.asarray(offsets, dtype=float)
        sweep = s / self.radius
        angles = self.start_angle + (sweep if self.turn_left else -sweep)
        if self.turn_left:
            effective_radius = self.radius - d
        else:
            effective_radius = self.radius + d
        if np.any(effective_radius <= 0.0):
            raise GeometryError(
                f"lateral offset exceeds arc radius {self.radius}"
            )
        return (
            self.center.x + effective_radius * np.cos(angles),
            self.center.y + effective_radius * np.sin(angles),
        )

    def heading_at_batch(self, stations: np.ndarray) -> np.ndarray:
        s = np.asarray(stations, dtype=float)
        sweep = s / self.radius
        angles = self.start_angle + (sweep if self.turn_left else -sweep)
        offset = math.pi / 2.0 if self.turn_left else -math.pi / 2.0
        return _wrap_angles(angles + offset)


class CompositeCenterline:
    """Centerline built by chaining segments end to end.

    Each appended segment must start where the previous one ends (within a
    small tolerance) with a matching heading, so station is continuous.
    """

    _JOIN_TOLERANCE = 1e-6

    def __init__(self, segments: Sequence[Centerline]):
        if not segments:
            raise GeometryError("composite centerline needs at least one segment")
        self._segments = list(segments)
        self._offsets: list[float] = []
        running = 0.0
        for index, segment in enumerate(self._segments):
            if index > 0:
                prev = self._segments[index - 1]
                gap = prev.point_at(prev.length).distance_to(segment.point_at(0.0))
                if gap > self._JOIN_TOLERANCE:
                    raise GeometryError(
                        f"segment {index} does not join the previous one "
                        f"(gap {gap:.3g} m)"
                    )
                heading_gap = abs(
                    wrap_angle(
                        prev.heading_at(prev.length) - segment.heading_at(0.0)
                    )
                )
                if heading_gap > 1e-6:
                    raise GeometryError(
                        f"segment {index} heading mismatch ({heading_gap:.3g} rad)"
                    )
            self._offsets.append(running)
            running += segment.length
        self._total_length = running

    @property
    def length(self) -> float:
        return self._total_length

    def _locate(self, s: float) -> tuple[Centerline, float]:
        """The segment containing station ``s`` and the local station."""
        clamped = min(max(s, 0.0), self._total_length)
        for segment, offset in zip(
            reversed(self._segments), reversed(self._offsets)
        ):
            if clamped >= offset:
                return segment, clamped - offset
        return self._segments[0], clamped

    def point_at(self, s: float) -> Vec2:
        segment, local_s = self._locate(s)
        return segment.point_at(local_s)

    def heading_at(self, s: float) -> float:
        segment, local_s = self._locate(s)
        return segment.heading_at(local_s)

    def curvature_at(self, s: float) -> float:
        segment, local_s = self._locate(s)
        return segment.curvature_at(local_s)

    def to_world(self, frenet: FrenetPoint) -> Vec2:
        segment, local_s = self._locate(frenet.s)
        return segment.to_world(FrenetPoint(local_s, frenet.d))

    def to_frenet(self, point: Vec2) -> FrenetPoint:
        best: FrenetPoint | None = None
        best_cost = math.inf
        for segment, offset in zip(self._segments, self._offsets):
            local = segment.to_frenet(point)
            clamped_s = min(max(local.s, 0.0), segment.length)
            # The on-curve point comes from the same routine (and hence
            # the same trig calls) the batch kernel uses — on arcs,
            # numpy's cos/sin and libm's are not guaranteed to agree to
            # the last bit, and a one-ulp cost difference could crown a
            # different nearest segment at a joint.
            on_x, on_y = _centerline_points(
                segment, np.array([clamped_s])
            )
            dx = point.x - float(on_x[0])
            dy = point.y - float(on_y[0])
            cost = math.sqrt(dx * dx + dy * dy)
            # Penalize projections that fall outside the segment so interior
            # matches win over endpoint extrapolations.
            if local.s < 0.0 or local.s > segment.length:
                cost += abs(local.s - clamped_s)
            # Strict < keeps the earliest segment on an exact cost tie
            # (a point equidistant from two segments near a joint): the
            # bit-stable tie-break the batch kernel replays.
            if cost < best_cost:
                best_cost = cost
                best = FrenetPoint(offset + clamped_s, local.d)
        assert best is not None
        return best

    def to_frenet_batch(
        self, xs: np.ndarray, ys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        best_cost = np.full(xs.shape, math.inf)
        best_s = np.zeros(xs.shape)
        best_d = np.zeros(xs.shape)
        for segment, offset in zip(self._segments, self._offsets):
            s, d = segment.to_frenet_batch(xs, ys)
            clamped = np.clip(s, 0.0, segment.length)
            on_x, on_y = _centerline_points(segment, clamped)
            dx = xs - on_x
            dy = ys - on_y
            cost = np.sqrt(dx * dx + dy * dy)
            outside = (s < 0.0) | (s > segment.length)
            cost = cost + np.where(outside, np.abs(s - clamped), 0.0)
            # Same strict comparison, same segment order as the scalar
            # loop: ties resolve to the earliest segment in both paths.
            take = cost < best_cost
            best_cost = np.where(take, cost, best_cost)
            best_s = np.where(take, offset + clamped, best_s)
            best_d = np.where(take, d, best_d)
        return best_s, best_d

    def _locate_batch(
        self, stations: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`_locate`: ``(local clamped station, segment index)``.

        Same membership rule as the scalar reversed scan: a station
        lands on the last segment whose offset does not exceed it.
        """
        clamped = np.clip(
            np.asarray(stations, dtype=float), 0.0, self._total_length
        )
        index = (
            np.searchsorted(np.array(self._offsets), clamped, side="right") - 1
        )
        return clamped, index

    def to_world_batch(
        self, stations: np.ndarray, offsets: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        s, d = np.broadcast_arrays(
            np.asarray(stations, dtype=float), np.asarray(offsets, dtype=float)
        )
        clamped, index = self._locate_batch(s)
        xs = np.empty(s.shape)
        ys = np.empty(s.shape)
        for k, (segment, offset) in enumerate(
            zip(self._segments, self._offsets)
        ):
            member = index == k
            if not member.any():
                continue
            xs[member], ys[member] = segment.to_world_batch(
                clamped[member] - offset, d[member]
            )
        return xs, ys

    def heading_at_batch(self, stations: np.ndarray) -> np.ndarray:
        s = np.asarray(stations, dtype=float)
        clamped, index = self._locate_batch(s)
        headings = np.empty(s.shape)
        for k, (segment, offset) in enumerate(
            zip(self._segments, self._offsets)
        ):
            member = index == k
            if not member.any():
                continue
            headings[member] = segment.heading_at_batch(clamped[member] - offset)
        return headings


def _centerline_points(
    segment: Centerline, stations: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized ``point_at`` over an array of stations."""
    if isinstance(segment, StraightCenterline):
        return (
            segment.start.x + math.cos(segment.heading) * stations,
            segment.start.y + math.sin(segment.heading) * stations,
        )
    if isinstance(segment, ArcCenterline):
        sweep = stations / segment.radius
        angles = segment.start_angle + (
            sweep if segment.turn_left else -sweep
        )
        return (
            segment.center.x + segment.radius * np.cos(angles),
            segment.center.y + segment.radius * np.sin(angles),
        )
    points = [segment.point_at(float(s)) for s in np.ravel(stations)]
    return (
        np.array([p.x for p in points]).reshape(np.shape(stations)),
        np.array([p.y for p in points]).reshape(np.shape(stations)),
    )
