"""Multi-lane roads built on a centerline.

A :class:`Road` is a centerline plus a lane layout. Lane 0 is the
rightmost lane; lateral offsets grow to the left, matching the Frenet
convention of :mod:`repro.road.lane`. The paper's scenarios use 3 lanes
of standard 3.5 m width on straight and curved highways.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.geometry.vec import Vec2
from repro.road.lane import (
    ArcCenterline,
    Centerline,
    CompositeCenterline,
    FrenetPoint,
    StraightCenterline,
)

#: Standard highway lane width used by the scenario catalog (metres).
DEFAULT_LANE_WIDTH = 3.5


@dataclass(frozen=True)
class Road:
    """A directed road: centerline, number of lanes and lane width."""

    centerline: Centerline
    lane_count: int = 3
    lane_width: float = DEFAULT_LANE_WIDTH

    def __post_init__(self) -> None:
        if self.lane_count < 1:
            raise ConfigurationError(
                f"a road needs at least one lane, got {self.lane_count}"
            )
        if self.lane_width <= 0.0:
            raise ConfigurationError(
                f"lane width must be positive, got {self.lane_width}"
            )

    @property
    def length(self) -> float:
        """Drivable length (metres)."""
        return self.centerline.length

    @property
    def width(self) -> float:
        """Total paved width (metres)."""
        return self.lane_count * self.lane_width

    def lane_offset(self, lane: int) -> float:
        """Lateral offset of a lane centre from the road centerline.

        Lane 0 is the rightmost lane (most negative offset).
        """
        self._check_lane(lane)
        return (lane - (self.lane_count - 1) / 2.0) * self.lane_width

    def lane_center(self, lane: int, s: float) -> Vec2:
        """World position of a lane centre at station ``s``."""
        return self.centerline.to_world(FrenetPoint(s, self.lane_offset(lane)))

    def lane_of_offset(self, d: float) -> int:
        """Index of the lane containing lateral offset ``d`` (clamped)."""
        raw = d / self.lane_width + (self.lane_count - 1) / 2.0
        return min(max(int(round(raw)), 0), self.lane_count - 1)

    def heading_at(self, s: float) -> float:
        """Road tangent heading at station ``s``."""
        return self.centerline.heading_at(s)

    def to_world(self, frenet: FrenetPoint) -> Vec2:
        """World position of a Frenet point on this road."""
        return self.centerline.to_world(frenet)

    def to_frenet(self, point: Vec2) -> FrenetPoint:
        """Frenet coordinates of a world point on this road."""
        return self.centerline.to_frenet(point)

    def to_frenet_batch(self, xs, ys):
        """Vectorized :meth:`to_frenet`: ``(s, d)`` arrays of many points."""
        return self.centerline.to_frenet_batch(xs, ys)

    def to_world_batch(self, stations, offsets):
        """Vectorized :meth:`to_world`: ``(x, y)`` arrays of many points."""
        return self.centerline.to_world_batch(stations, offsets)

    def heading_at_batch(self, stations):
        """Vectorized :meth:`heading_at` over an array of stations."""
        return self.centerline.heading_at_batch(stations)

    def on_road(self, point: Vec2, margin: float = 0.0) -> bool:
        """Whether a world point lies on the paved surface."""
        frenet = self.to_frenet(point)
        half_width = self.width / 2.0 + margin
        return (
            -1e-9 <= frenet.s <= self.length + 1e-9
            and abs(frenet.d) <= half_width
        )

    def _check_lane(self, lane: int) -> None:
        if not 0 <= lane < self.lane_count:
            raise ConfigurationError(
                f"lane {lane} out of range for a {self.lane_count}-lane road"
            )


def three_lane_straight_road(length: float = 2000.0) -> Road:
    """The straight 3-lane highway used by most catalog scenarios."""
    centerline = StraightCenterline(
        start=Vec2(0.0, 0.0), heading=0.0, segment_length=length
    )
    return Road(centerline=centerline, lane_count=3)


def three_lane_curved_road(
    entry_length: float = 200.0,
    radius: float = 400.0,
    arc_length: float = 1200.0,
    turn_left: bool = True,
) -> Road:
    """A 3-lane road with a straight entry followed by a constant curve.

    Used by the "Challenging cut-in on a curved road" scenario. The default
    400 m radius is a comfortable highway curve (~0.14 g lateral at 60 mph).
    """
    entry = StraightCenterline(
        start=Vec2(0.0, 0.0), heading=0.0, segment_length=entry_length
    )
    if turn_left:
        arc = ArcCenterline(
            center=Vec2(entry_length, radius),
            radius=radius,
            start_angle=-3.141592653589793 / 2.0,
            arc_length=arc_length,
            turn_left=True,
        )
    else:
        arc = ArcCenterline(
            center=Vec2(entry_length, -radius),
            radius=radius,
            start_angle=3.141592653589793 / 2.0,
            arc_length=arc_length,
            turn_left=False,
        )
    return Road(centerline=CompositeCenterline([entry, arc]), lane_count=3)
