"""Intelligent Driver Model (IDM) longitudinal control.

The standard IDM (Treiber et al.) produces smooth car-following: free
acceleration toward the desired speed, tempered by a quadratic penalty on
the ratio between the desired and the actual gap to the lead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class IDMParams:
    """IDM tuning.

    Attributes:
        desired_speed: cruise speed when unobstructed (m/s).
        time_headway: desired time gap to the lead (s).
        min_gap: standstill gap (m).
        max_accel: comfortable acceleration bound (m/s^2).
        comfortable_decel: comfortable deceleration bound (m/s^2).
        exponent: free-road acceleration exponent (4 in the literature).
    """

    desired_speed: float = 30.0
    time_headway: float = 1.5
    min_gap: float = 3.5
    max_accel: float = 2.0
    comfortable_decel: float = 3.0
    exponent: float = 4.0

    def __post_init__(self) -> None:
        if self.desired_speed <= 0.0:
            raise ConfigurationError("desired speed must be positive")
        if self.time_headway <= 0.0 or self.min_gap <= 0.0:
            raise ConfigurationError("headway and min gap must be positive")
        if self.max_accel <= 0.0 or self.comfortable_decel <= 0.0:
            raise ConfigurationError("IDM acceleration bounds must be positive")

    def with_desired_speed(self, desired_speed: float) -> "IDMParams":
        """Copy with a different cruise speed."""
        return IDMParams(
            desired_speed=desired_speed,
            time_headway=self.time_headway,
            min_gap=self.min_gap,
            max_accel=self.max_accel,
            comfortable_decel=self.comfortable_decel,
            exponent=self.exponent,
        )


def idm_acceleration(
    speed: float,
    params: IDMParams,
    gap: float | None = None,
    lead_speed: float | None = None,
) -> float:
    """IDM acceleration command.

    Args:
        speed: ego speed (m/s).
        params: IDM tuning.
        gap: bumper-to-bumper distance to the lead (m); ``None`` = free road.
        lead_speed: lead speed (m/s); required when ``gap`` is given.

    Returns:
        Longitudinal acceleration command (m/s^2), unbounded below —
        the caller clamps to vehicle limits.
    """
    if speed < 0.0:
        raise ConfigurationError(f"speed must be non-negative, got {speed}")
    free_term = 1.0 - (speed / params.desired_speed) ** params.exponent
    if gap is None:
        return params.max_accel * free_term
    if lead_speed is None:
        raise ConfigurationError("lead_speed is required when gap is given")

    effective_gap = max(gap, 0.1)
    closing = speed - lead_speed
    desired_gap = params.min_gap + speed * params.time_headway
    desired_gap += (speed * closing) / (
        2.0 * math.sqrt(params.max_accel * params.comfortable_decel)
    )
    desired_gap = max(desired_gap, params.min_gap)
    interaction = (desired_gap / effective_gap) ** 2
    return params.max_accel * (free_term - interaction)
