"""The ego planner: perceived world model in, (accel, steer) out.

Pipeline per control tick:

1. extrapolate every confirmed actor to "now" with its estimated velocity
   (standard practice; the estimate itself is stale at low FPR),
2. select the most binding lead — the nearest actor ahead that laterally
   overlaps the ego's corridor,
3. ask the AEB monitor whether the comfortable envelope is broken; if so
   command the full braking authority, otherwise follow with IDM,
4. hold the lane with pure pursuit.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Hashable

from repro.dynamics.state import VehicleSpec, VehicleState
from repro.errors import ConfigurationError
from repro.perception.world_model import PerceivedActor, WorldModel
from repro.planning.aeb import AEBMonitor, AEBParams
from repro.planning.idm import IDMParams, idm_acceleration
from repro.planning.lateral import LaneKeeper
from repro.road.track import Road
from repro.units import wrap_angle


class PlannerMode(enum.Enum):
    """What drove the longitudinal command this tick."""

    CRUISE = "cruise"
    FOLLOW = "follow"
    EMERGENCY = "emergency"


@dataclass(frozen=True)
class PlanOutput:
    """One control decision."""

    accel: float
    steer: float
    mode: PlannerMode
    lead_id: Hashable | None = None
    lead_gap: float | None = None


@dataclass(frozen=True)
class PlannerConfig:
    """Static planner configuration for a scenario run.

    Attributes:
        road: the road being driven.
        target_lane: ego lane to hold.
        desired_speed: cruise speed (m/s).
        corridor_margin: extra lateral clearance when deciding whether an
            actor occupies the ego's corridor (m).
        assumed_actor_width: width attributed to perceived actors (the
            world model carries no extent information) (m).
    """

    road: Road
    target_lane: int
    desired_speed: float
    idm: IDMParams = field(default_factory=IDMParams)
    aeb: AEBParams = field(default_factory=AEBParams)
    corridor_margin: float = 0.3
    assumed_actor_width: float = 1.9
    assumed_actor_length: float = 4.8

    def __post_init__(self) -> None:
        if self.desired_speed <= 0.0:
            raise ConfigurationError("desired speed must be positive")
        if self.corridor_margin < 0.0:
            raise ConfigurationError("corridor margin must be non-negative")


class Planner:
    """Stateful planner for one scenario run."""

    def __init__(self, config: PlannerConfig, spec: VehicleSpec):
        self.config = config
        self.spec = spec
        self._idm = config.idm.with_desired_speed(config.desired_speed)
        self._aeb = AEBMonitor(config.aeb)
        self._lane_keeper = LaneKeeper(
            road=config.road, target_lane=config.target_lane
        )

    @property
    def aeb_engaged(self) -> bool:
        """Whether the emergency brake is currently held."""
        return self._aeb.engaged

    def plan(
        self, now: float, ego_state: VehicleState, world_model: WorldModel
    ) -> PlanOutput:
        """One control decision from the perceived world."""
        lead = self._select_lead(now, ego_state, world_model)
        steer = self._lane_keeper.steer(ego_state, self.spec)

        if lead is None:
            self._aeb.update(ego_state.speed, None, None)
            accel = idm_acceleration(ego_state.speed, self._idm)
            return PlanOutput(accel=accel, steer=steer, mode=PlannerMode.CRUISE)

        lead_id, gap, lead_speed, lead_accel = lead
        emergency = self._aeb.update(
            ego_state.speed, gap, lead_speed, lead_accel
        )
        if emergency is not None:
            return PlanOutput(
                accel=-emergency,
                steer=steer,
                mode=PlannerMode.EMERGENCY,
                lead_id=lead_id,
                lead_gap=gap,
            )
        accel = idm_acceleration(
            ego_state.speed, self._idm, gap=gap, lead_speed=lead_speed
        )
        return PlanOutput(
            accel=accel,
            steer=steer,
            mode=PlannerMode.FOLLOW,
            lead_id=lead_id,
            lead_gap=gap,
        )

    # ------------------------------------------------------------------

    def _select_lead(
        self, now: float, ego_state: VehicleState, world_model: WorldModel
    ) -> tuple[Hashable, float, float, float] | None:
        """(id, bumper gap, longitudinal speed, accel) of the binding lead."""
        road = self.config.road
        ego_frenet = road.to_frenet(ego_state.position)
        corridor = (
            (self.spec.width + self.config.assumed_actor_width) / 2.0
            + self.config.corridor_margin
        )
        half_lengths = (self.spec.length + self.config.assumed_actor_length) / 2.0

        best: tuple[Hashable, float, float, float] | None = None
        for actor in world_model:
            position = actor.extrapolated_position(now)
            frenet = road.to_frenet(position)
            if abs(frenet.d - ego_frenet.d) > corridor:
                continue
            ahead = frenet.s - ego_frenet.s
            if ahead <= 0.0:
                continue
            gap = ahead - half_lengths
            longitudinal_speed = self._longitudinal_speed(actor, frenet.s, now)
            if best is None or gap < best[1]:
                best = (actor.actor_id, gap, longitudinal_speed, actor.accel)
        return best

    def _longitudinal_speed(
        self, actor: PerceivedActor, station: float, now: float
    ) -> float:
        """The actor's current speed projected along the road tangent."""
        road_heading = self.config.road.heading_at(
            min(max(station, 0.0), self.config.road.length)
        )
        relative = wrap_angle(actor.heading - road_heading)
        return actor.extrapolated_speed(now) * max(0.0, math.cos(relative))
