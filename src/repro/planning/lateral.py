"""Lane keeping via pure pursuit on the lane centerline."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dynamics.bicycle import MAX_STEER_ANGLE
from repro.dynamics.state import VehicleSpec, VehicleState
from repro.errors import ConfigurationError
from repro.road.lane import FrenetPoint
from repro.road.track import Road
from repro.units import wrap_angle


@dataclass(frozen=True)
class LaneKeeper:
    """Pure-pursuit steering toward a lookahead point on the target lane.

    Attributes:
        road: the road being driven.
        target_lane: lane index to hold.
        lookahead_time: speed-proportional lookahead (s).
        min_lookahead: lookahead floor at low speed (m).
    """

    road: Road
    target_lane: int
    lookahead_time: float = 1.2
    min_lookahead: float = 6.0

    def __post_init__(self) -> None:
        if self.lookahead_time <= 0.0 or self.min_lookahead <= 0.0:
            raise ConfigurationError("lookahead settings must be positive")
        # Validate the lane index eagerly.
        self.road.lane_offset(self.target_lane)

    def steer(self, state: VehicleState, spec: VehicleSpec) -> float:
        """Steering angle (radians) for the current state."""
        frenet = self.road.to_frenet(state.position)
        lookahead = max(self.min_lookahead, state.speed * self.lookahead_time)
        target_s = min(frenet.s + lookahead, self.road.length)
        target = self.road.to_world(
            FrenetPoint(target_s, self.road.lane_offset(self.target_lane))
        )
        local = state.frame().to_local(target)
        distance_sq = local.norm_sq()
        if distance_sq < 1e-6:
            return 0.0
        # Pure pursuit: curvature = 2*y / L^2 in the body frame.
        curvature = 2.0 * local.y / distance_sq
        steer = math.atan(spec.wheelbase * curvature)
        return min(max(steer, -MAX_STEER_ANGLE), MAX_STEER_ANGLE)

    def heading_error(self, state: VehicleState) -> float:
        """Ego heading error w.r.t. the road tangent (diagnostics)."""
        frenet = self.road.to_frenet(state.position)
        return wrap_angle(state.heading - self.road.heading_at(frenet.s))
