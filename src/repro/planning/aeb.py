"""Automatic emergency braking (AEB).

The safety procedure the paper assumes is hard braking. This monitor
triggers it when the deceleration required to avoid the perceived lead
exceeds the comfortable envelope (or time-to-collision collapses), and
holds it — with hysteresis — until the situation is clearly resolved.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


def required_deceleration(
    speed: float, lead_speed: float, gap: float
) -> float:
    """Deceleration needed to avoid reaching a lead moving at ``lead_speed``.

    Constant-deceleration bound in relative coordinates: braking from
    ``speed`` down to ``lead_speed`` consumes ``(v - v_lead)^2 / (2*a)``
    of the gap, so avoiding contact needs
    ``a >= (v - v_lead)^2 / (2 * gap)``. (For a lead that is itself
    braking, continuous re-evaluation tightens the demand each tick.)
    Zero when the ego is not closing; infinity when the gap is already
    gone while closing.
    """
    if speed <= lead_speed:
        return 0.0
    if gap <= 0.0:
        return float("inf")
    closing = speed - lead_speed
    return closing * closing / (2.0 * gap)


@dataclass(frozen=True)
class AEBParams:
    """AEB tuning.

    Attributes:
        trigger_decel: required deceleration (m/s^2) above which the
            emergency brake engages.
        release_decel: required deceleration below which it may release.
        hard_decel: commanded deceleration while engaged (m/s^2).
        ttc_trigger: time-to-collision (s) below which it engages
            regardless of the deceleration heuristic.
        min_release_gap: gap (m) below which the brake never releases.
        reaction_horizon: how far ahead (s) the lead's estimated
            deceleration is projected when judging the threat — a braking
            lead is treated as already being at the speed it will reach
            this many seconds from now.
    """

    trigger_decel: float = 2.8
    release_decel: float = 1.0
    hard_decel: float = 8.0
    ttc_trigger: float = 1.5
    min_release_gap: float = 5.0
    reaction_horizon: float = 1.5

    def __post_init__(self) -> None:
        if self.trigger_decel <= 0.0 or self.hard_decel <= 0.0:
            raise ConfigurationError("AEB decelerations must be positive")
        if not 0.0 <= self.release_decel < self.trigger_decel:
            raise ConfigurationError(
                "release threshold must be below the trigger threshold"
            )
        if self.ttc_trigger <= 0.0:
            raise ConfigurationError("TTC trigger must be positive")
        if self.min_release_gap < 0.0:
            raise ConfigurationError("release gap must be non-negative")


class AEBMonitor:
    """Stateful AEB trigger with hysteresis."""

    def __init__(self, params: AEBParams | None = None):
        self.params = params if params is not None else AEBParams()
        self._engaged = False

    @property
    def engaged(self) -> bool:
        """Whether the emergency brake is currently held."""
        return self._engaged

    def reset(self) -> None:
        """Return to the disengaged state."""
        self._engaged = False

    def update(
        self,
        speed: float,
        gap: float | None,
        lead_speed: float | None,
        lead_accel: float = 0.0,
    ) -> float | None:
        """One control-tick decision.

        Args:
            speed: ego speed (m/s).
            gap: bumper-to-bumper gap to the most binding lead (m), or
                ``None`` when no lead is perceived.
            lead_speed: that lead's speed (m/s).
            lead_accel: the lead's estimated longitudinal acceleration
                (m/s^2); only deceleration is acted on.

        Returns:
            The commanded deceleration (positive, m/s^2) while engaged,
            or ``None`` when the normal controller should drive.
        """
        if gap is None or lead_speed is None:
            # Nothing perceived ahead; the emergency is over.
            self._engaged = False
            return None

        # A braking lead is judged at the speed it will reach within the
        # reaction horizon — this compensates the lag of finite-differenced
        # speed estimates at low frame rates.
        projected_brake = min(0.0, lead_accel)
        effective_lead_speed = max(
            0.0, lead_speed + projected_brake * self.params.reaction_horizon
        )
        needed = required_deceleration(speed, effective_lead_speed, gap)
        if projected_brake < -0.5:
            # The lead is stopping: the ego must be able to stop within
            # the gap plus the lead's remaining stopping distance.
            lead_stop_distance = lead_speed**2 / (2.0 * -projected_brake)
            needed = max(
                needed, speed**2 / (2.0 * max(gap + lead_stop_distance, 0.1))
            )
        closing = speed - effective_lead_speed
        ttc = gap / closing if closing > 1e-6 else float("inf")

        if not self._engaged:
            if needed >= self.params.trigger_decel or ttc <= self.params.ttc_trigger:
                self._engaged = True
        else:
            resolved = (
                closing <= 0.25
                and needed <= self.params.release_decel
                and gap >= self.params.min_release_gap
            )
            if resolved or speed <= 0.01:
                self._engaged = False

        return self.params.hard_decel if self._engaged else None
