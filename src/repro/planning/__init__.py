"""Ego planner substrate: IDM cruise control, AEB, lane keeping.

The paper's scenarios are engineered so that "hard braking is the only
option" — the planner therefore keeps its lane and controls speed: an
Intelligent Driver Model follows confirmed leads comfortably, and an
automatic-emergency-braking (AEB) monitor overrides with the vehicle's
full braking authority when the comfortable envelope is exceeded. All
decisions consume the *perceived* world model, never ground truth, so
perception rate directly shapes safety.
"""

from repro.planning.idm import IDMParams, idm_acceleration
from repro.planning.aeb import AEBParams, AEBMonitor, required_deceleration
from repro.planning.lateral import LaneKeeper
from repro.planning.planner import Planner, PlannerConfig, PlanOutput, PlannerMode

__all__ = [
    "IDMParams",
    "idm_acceleration",
    "AEBParams",
    "AEBMonitor",
    "required_deceleration",
    "LaneKeeper",
    "Planner",
    "PlannerConfig",
    "PlanOutput",
    "PlannerMode",
]
