"""K-frame confirmation tracking.

A new actor must be seen in ``K`` consecutive frames before the tracker
confirms it to the world model — the smoothing behaviour the paper folds
into the confirmation delay ``alpha = K * (l - l0)``. Track velocity is
estimated over a sliding time window of frame positions (endpoint slope),
and acceleration from consecutive velocity estimates; at low frame rates
both are stale and laggy, which is the physical mechanism that makes low
FPR unsafe in closed loop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Iterable

from repro.errors import ConfigurationError
from repro.geometry.vec import Vec2
from repro.perception.detection import Detection


@dataclass
class Track:
    """Internal tracker state for one actor."""

    actor_id: Hashable
    position: Vec2
    last_update: float
    hits: int = 1
    misses: int = 0
    confirmed: bool = False
    velocity: Vec2 = field(default_factory=lambda: Vec2(0.0, 0.0))
    heading: float = 0.0
    speed: float = 0.0
    accel: float = 0.0
    has_velocity: bool = False
    history: deque = field(default_factory=deque)


class ConfirmationTracker:
    """Tracks actors across frames with K-frame confirmation.

    Args:
        confirmation_hits: consecutive detections needed to confirm (the
            paper's ``K``).
        max_misses: consecutive frame misses before a track is dropped.
        velocity_window: time span (s) over which positions are
            differenced for the velocity estimate. A longer window
            suppresses measurement noise at high frame rates; at low
            frame rates the window degenerates to the last two frames.
        accel_smoothing: exponential smoothing factor for the
            acceleration estimate (differenced velocity).
        max_age: tracks not refreshed for this long (s) are dropped even
            without counted misses — an actor that left every camera's
            coverage must not haunt the world model forever.
    """

    def __init__(
        self,
        confirmation_hits: int = 5,
        max_misses: int = 3,
        velocity_window: float = 1.0,
        accel_smoothing: float = 0.4,
        max_age: float = 3.0,
    ):
        if confirmation_hits < 1:
            raise ConfigurationError(
                f"confirmation hits must be >= 1, got {confirmation_hits}"
            )
        if max_misses < 1:
            raise ConfigurationError(f"max misses must be >= 1, got {max_misses}")
        if velocity_window <= 0.0:
            raise ConfigurationError(
                f"velocity window must be positive, got {velocity_window}"
            )
        if not 0.0 <= accel_smoothing < 1.0:
            raise ConfigurationError(
                f"accel smoothing must be in [0, 1), got {accel_smoothing}"
            )
        if max_age <= 0.0:
            raise ConfigurationError(f"max age must be positive, got {max_age}")
        self._confirmation_hits = confirmation_hits
        self._max_misses = max_misses
        self._window = velocity_window
        self._accel_smoothing = accel_smoothing
        self._max_age = max_age
        self._tracks: dict[Hashable, Track] = {}

    @property
    def confirmation_hits(self) -> int:
        """The configured ``K``."""
        return self._confirmation_hits

    @property
    def tracks(self) -> dict[Hashable, Track]:
        """Live tracks by actor id (confirmed and tentative)."""
        return dict(self._tracks)

    def confirmed_tracks(self) -> dict[Hashable, Track]:
        """Only the confirmed tracks."""
        return {
            actor_id: track
            for actor_id, track in self._tracks.items()
            if track.confirmed
        }

    def update(
        self,
        time: float,
        detections: Iterable[Detection],
        expected: Iterable[Hashable] | None = None,
    ) -> None:
        """Fold one frame batch's detections into the tracks.

        Args:
            time: capture time of the frame batch (seconds).
            detections: the batch's detections. When several cameras see
                the same actor at the same instant, only the first
                detection updates the track (one hit per instant).
            expected: actor ids this batch *could* have seen (union of
                FOV coverage). Tracks in ``expected`` but not detected
                accrue a miss; tracks outside coverage are left untouched
                rather than penalized.
        """
        seen: set[Hashable] = set()
        for detection in detections:
            if detection.actor_id in seen:
                continue
            seen.add(detection.actor_id)
            self._update_track(time, detection)

        if expected is None:
            missable = set(self._tracks)
        else:
            missable = set(expected) & set(self._tracks)
        for actor_id in missable - seen:
            track = self._tracks[actor_id]
            track.misses += 1
            track.hits = 0
            if track.misses >= self._max_misses:
                del self._tracks[actor_id]

        for actor_id, track in list(self._tracks.items()):
            if time - track.last_update > self._max_age:
                del self._tracks[actor_id]

    def _update_track(self, time: float, detection: Detection) -> None:
        track = self._tracks.get(detection.actor_id)
        if track is None:
            track = Track(
                actor_id=detection.actor_id,
                position=detection.position,
                last_update=time,
                heading=detection.true_heading,
            )
            track.history.append((time, detection.position))
            track.confirmed = track.hits >= self._confirmation_hits
            self._tracks[detection.actor_id] = track
            return
        if time - track.last_update <= 0.0:
            # A second camera seeing the actor at the same instant adds no
            # temporal evidence: K counts consecutive *frames*, not views.
            return

        track.history.append((time, detection.position))
        self._trim_history(track, time)
        self._estimate_motion(track, detection)
        track.position = detection.position
        track.last_update = time
        track.misses = 0
        track.hits += 1
        if track.hits >= self._confirmation_hits:
            track.confirmed = True

    def _trim_history(self, track: Track, now: float) -> None:
        """Keep the window span plus one sample (at least two total)."""
        history = track.history
        while len(history) > 2 and now - history[1][0] >= self._window:
            history.popleft()

    def _estimate_motion(self, track: Track, detection: Detection) -> None:
        """Velocity from window endpoints; acceleration from velocity."""
        history = track.history
        if len(history) < 2:
            return
        (t0, p0) = history[0]
        (t1, p1) = history[-1]
        span = t1 - t0
        if span <= 0.0:
            return
        new_velocity = (p1 - p0) / span
        new_speed = new_velocity.norm()
        if track.has_velocity:
            dt = t1 - track.last_update
            if dt > 0.0:
                raw_accel = (new_speed - track.speed) / dt
                w = self._accel_smoothing
                track.accel = w * track.accel + (1.0 - w) * raw_accel
        else:
            track.has_velocity = True
            track.accel = 0.0
        track.velocity = new_velocity
        track.speed = new_speed
        if new_speed > 0.3:
            track.heading = new_velocity.angle()
        else:
            track.heading = detection.true_heading
