"""The perceived world model.

The planner and the online Zhuyi estimator consume this — never the
ground truth. It holds the latest confirmed actor estimates with their
timestamps, so consumers can reason about staleness explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator

from repro.geometry.vec import Vec2


@dataclass(frozen=True)
class PerceivedActor:
    """A confirmed actor as the AV believes it to be.

    Attributes:
        actor_id: stable identity from the tracker.
        position: last measured position (world frame, metres).
        velocity: smoothed velocity estimate (m/s).
        heading: estimated heading (radians).
        speed: estimated scalar speed (m/s).
        accel: estimated longitudinal acceleration (m/s^2).
        timestamp: capture time of the measurement (seconds).
    """

    actor_id: Hashable
    position: Vec2
    velocity: Vec2
    heading: float
    speed: float
    accel: float
    timestamp: float

    def extrapolated_position(self, time: float) -> Vec2:
        """Extrapolation to ``time``, honouring estimated *braking*.

        Linear extrapolation of a stale velocity badly overestimates how
        far a braking lead travels, which inflates the perceived gap —
        the dominant failure at low frame rates. Only deceleration is
        honoured (never projecting the actor forward faster), and the
        actor is stopped, not reversed, when the estimate says it halts.
        """
        dt = time - self.timestamp
        if dt <= 0.0:
            return self.position
        brake = min(0.0, self.accel)
        if brake < 0.0 and self.speed > 0.0:
            time_to_stop = self.speed / -brake
            dt_effective = min(dt, time_to_stop)
            distance = (
                self.speed * dt_effective + 0.5 * brake * dt_effective**2
            )
            if self.speed > 1e-9:
                return self.position + self.velocity * (distance / self.speed)
            return self.position
        return self.position + self.velocity * dt

    def extrapolated_speed(self, time: float) -> float:
        """Speed estimate at ``time``, honouring estimated braking.

        The measured speed is stale by the processing latency plus the
        frame age; for a braking actor that staleness systematically
        overestimates the current speed, so the estimated (braking-only)
        acceleration is integrated forward, clamped at zero speed.
        """
        dt = time - self.timestamp
        if dt <= 0.0:
            return self.speed
        brake = min(0.0, self.accel)
        return max(0.0, self.speed + brake * dt)


class WorldModel:
    """Latest confirmed actor estimates, keyed by actor id."""

    def __init__(self) -> None:
        self._actors: dict[Hashable, PerceivedActor] = {}

    def __len__(self) -> int:
        return len(self._actors)

    def __iter__(self) -> Iterator[PerceivedActor]:
        return iter(self._actors.values())

    def __contains__(self, actor_id: Hashable) -> bool:
        return actor_id in self._actors

    def get(self, actor_id: Hashable) -> PerceivedActor | None:
        """The actor's latest estimate, or ``None`` if unconfirmed."""
        return self._actors.get(actor_id)

    def actors(self) -> dict[Hashable, PerceivedActor]:
        """Snapshot of all confirmed actors."""
        return dict(self._actors)

    def upsert(self, actor: PerceivedActor) -> None:
        """Insert or refresh one actor estimate."""
        self._actors[actor.actor_id] = actor

    def remove(self, actor_id: Hashable) -> None:
        """Drop an actor (track lost)."""
        self._actors.pop(actor_id, None)

    def staleness(self, actor_id: Hashable, now: float) -> float | None:
        """Seconds since the actor's last measurement, or ``None``."""
        actor = self._actors.get(actor_id)
        if actor is None:
            return None
        return now - actor.timestamp
