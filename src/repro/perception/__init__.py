"""Simulated perception substrate.

The paper's AV runs a DNN perception stack per camera at a configurable
frame processing rate (FPR). For the safety loop only the *timing* of
perception matters: when a frame is captured, how long processing takes
(``l0 = 1/FPR``), and how many consecutive frames (``K``) the tracker
needs before it confirms a new actor. This package models exactly those
quantities over ideal-geometry cameras, plus optional occlusion and
measurement noise.
"""

from repro.perception.sensor import (
    ANALYZED_CAMERAS,
    Camera,
    CameraRig,
    default_rig,
)
from repro.perception.detection import Detection, DetectionModel
from repro.perception.noise import PerceptionNoise
from repro.perception.tracker import ConfirmationTracker, Track
from repro.perception.world_model import PerceivedActor, WorldModel
from repro.perception.pipeline import PerceptionSystem

__all__ = [
    "Camera",
    "CameraRig",
    "default_rig",
    "ANALYZED_CAMERAS",
    "Detection",
    "DetectionModel",
    "PerceptionNoise",
    "Track",
    "ConfirmationTracker",
    "PerceivedActor",
    "WorldModel",
    "PerceptionSystem",
]
