"""Per-frame actor detection for one camera.

Detection here is geometric: an actor is detected when its centre lies in
the camera's FOV sector, is not occluded by another actor (optional — the
paper lists occlusion handling as future work, so it defaults off), and
survives a configurable miss probability. Measured position carries
Gaussian noise; downstream velocity estimation differentiates positions,
so noise and frame rate interact exactly as in a real stack.

The geometric stages run as array programs: the FOV gate goes through the
same :meth:`repro.geometry.fov.AngularSector.contains_local_batch` kernel
the trace-level visibility tables use, and the occlusion test solves the
slab intersection against every potential blocker at once
(:func:`occlusion_mask`). The random stages (miss sampling, position
noise) draw through the counter-based generator of
:mod:`repro.core.rng`: every draw is a pure function of ``(seed, stream,
camera, capture time, actor id)``, so a frame's verdicts do not depend
on how many frames any camera captured before it — the whole frame's
draws compute as one vectorized call, and re-simulating from any point
of a run reproduces them bit for bit. (Traces recorded before this
counter-keyed scheme consumed a stateful ``np.random.Generator`` in
iteration order and drew different streams; see docs/TESTING.md's RNG
determinism contract for the deliberate break.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.core.rng import (
    STREAM_MISS,
    STREAM_NOISE_X,
    STREAM_NOISE_Y,
    counter_normal,
    counter_uniform,
    stable_key,
    time_key,
)
from repro.dynamics.state import VehicleSpec, VehicleState
from repro.errors import ConfigurationError
from repro.geometry.boxes import PARALLEL_EPS
from repro.geometry.vec import Vec2
from repro.perception.sensor import Camera

#: The sight ray is shortened by this much at the target end so the
#: target's own footprint never "occludes" itself (metres).
_TARGET_CLEARANCE = 2.8


@dataclass(frozen=True)
class Detection:
    """One detected actor in one camera frame."""

    actor_id: Hashable
    camera: str
    time: float
    position: Vec2
    true_speed: float
    true_heading: float


def occlusion_mask(
    eye: Vec2,
    targets: Sequence[tuple[int, Vec2]],
    actors: Sequence[tuple[VehicleState, VehicleSpec]],
) -> np.ndarray:
    """Which targets' sight rays are blocked by another actor's footprint.

    The vectorized counterpart of looping
    :func:`repro.geometry.boxes.segment_intersects_box` over blockers:
    for each target the (clearance-shortened) sight ray is tested against
    every actor's oriented box with the slab method, all blockers at
    once. The slab arithmetic mirrors the scalar test operation for
    operation, so box verdicts on a given ray are identical; the ray
    shortening itself uses the kernels' sqrt-of-squares distance (not
    ``math.hypot``), which clearance-boundary cases can feel at the
    last ulp.

    Args:
        eye: the camera origin (world frame).
        targets: ``(actor_index, position)`` pairs to test; the index
            identifies the target within ``actors`` so its own footprint
            is excluded.
        actors: every actor's ``(state, spec)`` in a fixed order.

    Returns:
        Boolean array aligned with ``targets``.
    """
    blocker_count = len(actors)
    occluded = np.zeros(len(targets), dtype=bool)
    if blocker_count < 2 or not targets:
        return occluded
    center_x = np.empty(blocker_count)
    center_y = np.empty(blocker_count)
    fwd_x = np.empty(blocker_count)
    fwd_y = np.empty(blocker_count)
    half_len = np.empty(blocker_count)
    half_wid = np.empty(blocker_count)
    for b, (state, spec) in enumerate(actors):
        center_x[b] = state.position.x
        center_y[b] = state.position.y
        # The box axes OrientedBox.axes() derives: forward = unit(heading),
        # left = forward.perp() = (-fwd_y, fwd_x).
        fwd_x[b] = math.cos(state.heading)
        fwd_y[b] = math.sin(state.heading)
        half_len[b] = spec.length / 2.0
        half_wid[b] = spec.width / 2.0
    # The ray start in each blocker's frame is target-independent.
    eye_dx = eye.x - center_x
    eye_dy = eye.y - center_y
    start_x = eye_dx * fwd_x + eye_dy * fwd_y
    start_y = eye_dx * -fwd_y + eye_dy * fwd_x

    for row, (target_index, target) in enumerate(targets):
        ray_x = target.x - eye.x
        ray_y = target.y - eye.y
        distance = math.sqrt(ray_x * ray_x + ray_y * ray_y)
        if distance <= _TARGET_CLEARANCE:
            continue
        scale = (distance - _TARGET_CLEARANCE) / distance
        end_x = eye.x + ray_x * scale
        end_y = eye.y + ray_y * scale
        end_dx = end_x - center_x
        end_dy = end_y - center_y
        local_end_x = end_dx * fwd_x + end_dy * fwd_y
        local_end_y = end_dx * -fwd_y + end_dy * fwd_x

        t_min = np.zeros(blocker_count)
        t_max = np.ones(blocker_count)
        parallel_miss = np.zeros(blocker_count, dtype=bool)
        for start, end, half in (
            (start_x, local_end_x, half_len),
            (start_y, local_end_y, half_wid),
        ):
            direction = end - start
            parallel = np.abs(direction) < PARALLEL_EPS
            parallel_miss |= parallel & (np.abs(start) > half)
            safe = np.where(parallel, 1.0, direction)
            t1 = (-half - start) / safe
            t2 = (half - start) / safe
            lo = np.minimum(t1, t2)
            hi = np.maximum(t1, t2)
            t_min = np.where(parallel, t_min, np.maximum(t_min, lo))
            t_max = np.where(parallel, t_max, np.minimum(t_max, hi))
        intersects = ~parallel_miss & (t_min <= t_max)
        intersects[target_index] = False
        occluded[row] = bool(np.any(intersects))
    return occluded


@dataclass(frozen=True)
class DetectionModel:
    """Detection characteristics shared by all cameras.

    Attributes:
        position_noise: standard deviation of the measured position (m).
        miss_rate: probability that a visible actor is missed in a frame.
        occlusion: whether actors hidden behind other actors are dropped
            (an extension beyond the paper; defaults off).
    """

    position_noise: float = 0.1
    miss_rate: float = 0.0
    occlusion: bool = False

    def __post_init__(self) -> None:
        if self.position_noise < 0.0:
            raise ConfigurationError("position noise must be non-negative")
        if not 0.0 <= self.miss_rate < 1.0:
            raise ConfigurationError(
                f"miss rate must be in [0, 1), got {self.miss_rate}"
            )

    def detect(
        self,
        camera: Camera,
        ego_state: VehicleState,
        time: float,
        actors: Mapping[Hashable, tuple[VehicleState, VehicleSpec]],
        seed: int,
        in_fov: np.ndarray | None = None,
    ) -> list[Detection]:
        """Detections produced by one camera frame captured at ``time``.

        Miss sampling and position noise are counter-keyed on
        ``(seed, stream, camera name, time, actor id)`` — order-free:
        the frame draws the same values no matter which cameras fired
        before it or where along a run the simulation (re)started.

        ``in_fov`` optionally supplies the camera's FOV membership for
        this frame, aligned with ``actors`` iteration order — callers
        that already ran the batch membership kernel for this exact
        (camera, ego state, actors) frame pass it to avoid recomputing
        the geometry; omitted, it is computed here.
        """
        if not actors:
            return []
        camera_frame = camera.world_frame(ego_state)
        ids = list(actors)
        states = [actors[actor_id][0] for actor_id in ids]
        if in_fov is None:
            xs = np.array([state.position.x for state in states])
            ys = np.array([state.position.y for state in states])
            local_x, local_y = camera_frame.to_local_batch(xs, ys)
            in_fov = camera.fov.contains_local_batch(local_x, local_y)
        occluded = np.zeros(len(ids), dtype=bool)
        if self.occlusion:
            target_rows = [
                (index, states[index].position)
                for index in np.flatnonzero(in_fov)
            ]
            blocked = occlusion_mask(
                camera_frame.origin,
                target_rows,
                [actors[actor_id] for actor_id in ids],
            )
            for (index, _), hit in zip(target_rows, blocked):
                occluded[index] = hit

        keep = np.flatnonzero(np.asarray(in_fov, dtype=bool) & ~occluded)
        if keep.size == 0:
            return []

        # One vectorized draw batch per frame, keyed per actor — the
        # values are independent of the candidate set, so geometric
        # pre-filtering cannot shift any survivor's draws.
        camera_word = stable_key(camera.name)
        time_word = time_key(time)
        if self.miss_rate > 0.0 or self.position_noise > 0.0:
            actor_words = np.array(
                [stable_key(ids[int(index)]) for index in keep],
                dtype=np.uint64,
            )
        if self.miss_rate > 0.0:
            missed = (
                counter_uniform(
                    seed, STREAM_MISS, camera_word, time_word, actor_words
                )
                < self.miss_rate
            )
        else:
            missed = np.zeros(keep.size, dtype=bool)
        if self.position_noise > 0.0:
            noise_x = self.position_noise * counter_normal(
                seed, STREAM_NOISE_X, camera_word, time_word, actor_words
            )
            noise_y = self.position_noise * counter_normal(
                seed, STREAM_NOISE_Y, camera_word, time_word, actor_words
            )

        detections: list[Detection] = []
        for row, index in enumerate(keep):
            if missed[row]:
                continue
            state = states[index]
            noise = (
                Vec2(float(noise_x[row]), float(noise_y[row]))
                if self.position_noise > 0.0
                else Vec2(0.0, 0.0)
            )
            detections.append(
                Detection(
                    actor_id=ids[int(index)],
                    camera=camera.name,
                    time=time,
                    position=state.position + noise,
                    true_speed=state.speed,
                    true_heading=state.heading,
                )
            )
        return detections
