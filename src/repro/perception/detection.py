"""Per-frame actor detection for one camera.

Detection here is geometric: an actor is detected when its centre lies in
the camera's FOV sector, is not occluded by another actor (optional — the
paper lists occlusion handling as future work, so it defaults off), and
survives a configurable miss probability. Measured position carries
Gaussian noise; downstream velocity estimation differentiates positions,
so noise and frame rate interact exactly as in a real stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

import numpy as np

from repro.dynamics.state import VehicleSpec, VehicleState
from repro.errors import ConfigurationError
from repro.geometry.boxes import segment_intersects_box
from repro.geometry.vec import Vec2
from repro.perception.sensor import Camera

#: The sight ray is shortened by this much at the target end so the
#: target's own footprint never "occludes" itself (metres).
_TARGET_CLEARANCE = 2.8


@dataclass(frozen=True)
class Detection:
    """One detected actor in one camera frame."""

    actor_id: Hashable
    camera: str
    time: float
    position: Vec2
    true_speed: float
    true_heading: float


@dataclass(frozen=True)
class DetectionModel:
    """Detection characteristics shared by all cameras.

    Attributes:
        position_noise: standard deviation of the measured position (m).
        miss_rate: probability that a visible actor is missed in a frame.
        occlusion: whether actors hidden behind other actors are dropped
            (an extension beyond the paper; defaults off).
    """

    position_noise: float = 0.1
    miss_rate: float = 0.0
    occlusion: bool = False

    def __post_init__(self) -> None:
        if self.position_noise < 0.0:
            raise ConfigurationError("position noise must be non-negative")
        if not 0.0 <= self.miss_rate < 1.0:
            raise ConfigurationError(
                f"miss rate must be in [0, 1), got {self.miss_rate}"
            )

    def detect(
        self,
        camera: Camera,
        ego_state: VehicleState,
        time: float,
        actors: Mapping[Hashable, tuple[VehicleState, VehicleSpec]],
        rng: np.random.Generator,
    ) -> list[Detection]:
        """Detections produced by one camera frame captured at ``time``."""
        camera_frame = camera.world_frame(ego_state)
        detections: list[Detection] = []
        for actor_id, (state, _spec) in actors.items():
            if not camera.fov.contains_local(
                camera_frame.to_local(state.position)
            ):
                continue
            if self.occlusion and self._occluded(
                camera_frame.origin, actor_id, state.position, actors
            ):
                continue
            if self.miss_rate > 0.0 and rng.random() < self.miss_rate:
                continue
            noise = (
                Vec2(
                    rng.normal(0.0, self.position_noise),
                    rng.normal(0.0, self.position_noise),
                )
                if self.position_noise > 0.0
                else Vec2(0.0, 0.0)
            )
            detections.append(
                Detection(
                    actor_id=actor_id,
                    camera=camera.name,
                    time=time,
                    position=state.position + noise,
                    true_speed=state.speed,
                    true_heading=state.heading,
                )
            )
        return detections

    def _occluded(
        self,
        eye: Vec2,
        target_id: Hashable,
        target: Vec2,
        actors: Mapping[Hashable, tuple[VehicleState, VehicleSpec]],
    ) -> bool:
        """Whether the sight ray from ``eye`` to ``target`` is blocked."""
        ray = target - eye
        distance = ray.norm()
        if distance <= _TARGET_CLEARANCE:
            return False
        # Shorten the ray so the target's own footprint is excluded.
        end = eye + ray * ((distance - _TARGET_CLEARANCE) / distance)
        for actor_id, (state, spec) in actors.items():
            if actor_id == target_id:
                continue
            if segment_intersects_box(eye, end, state.footprint(spec)):
                return True
        return False
