"""Trace-level stochastic perception injection.

The whole-trace engines (offline evaluation, online replay, the
cross-trace campaign kernels) consume *recorded* ground truth — there is
no frame pipeline to miss a detection or jitter a position. This module
injects those failure modes at the trace level, in the fault-injection
style of perception-monitoring work (Antonante et al.): per evaluation
tick and actor, one fused detected/missed verdict and one position
perturbation, drawn through the counter-based generator of
:mod:`repro.core.rng`.

Because every draw is keyed on ``(seed, stream, tick time, actor id)``
— the time by its float64 bit pattern — the injected noise is a pure
function of the trace grid: scalar per-tick loops, whole-trace batch
programs, cross-trace super-cells, campaign shards and replays resumed
from any tick all see bit-identical detections. The channel is *fused*
(one verdict per actor per tick, no per-camera key): the trace-level
world model carries one perceived state per actor, the product the
camera pipeline's tracker would have fused anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.rng import (
    STREAM_MISS,
    STREAM_NOISE_X,
    STREAM_NOISE_Y,
    counter_normal,
    counter_uniform,
    derive_seed,
    stable_key,
    time_key,
)
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PerceptionNoise:
    """Counter-seeded stochastic perception for trace-level evaluation.

    Attributes:
        miss_rate: probability that an actor goes undetected at a tick
            (the tick then contributes neither a threat nor a visible
            actor, as if perception never saw it).
        position_noise: standard deviation of the perceived position
            jitter (metres, isotropic), applied to the actor states the
            evaluators and predictors consume.
        seed: root seed of the draw keys. Two equal
            :class:`PerceptionNoise` values always inject identical
            noise; :meth:`for_cell` derives decorrelated per-cell seeds
            for campaign grids.
    """

    miss_rate: float = 0.0
    position_noise: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.position_noise < 0.0:
            raise ConfigurationError("position noise must be non-negative")
        if not 0.0 <= self.miss_rate < 1.0:
            raise ConfigurationError(
                f"miss rate must be in [0, 1), got {self.miss_rate}"
            )

    @property
    def enabled(self) -> bool:
        """Whether this configuration perturbs anything at all."""
        return self.miss_rate > 0.0 or self.position_noise > 0.0

    def for_cell(self, scenario: str, seed: int, fpr: float) -> "PerceptionNoise":
        """The same noise model re-seeded for one campaign cell.

        The child seed is a pure hash of the root seed and the cell
        coordinates, so cells never share draws while any shard
        partition, worker count or execution order reproduces the same
        per-cell streams.
        """
        return replace(
            self,
            seed=derive_seed(
                self.seed, stable_key(scenario), int(seed), time_key(fpr)
            ),
        )

    def sample_actor(
        self, actor_id: object, times: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw one actor's injection over a tick grid.

        Args:
            actor_id: the actor's id (any :func:`repro.core.rng.stable_key`
                compatible value).
            times: tick timestamps (seconds); draws key on their float64
                bit patterns, so any subset of a grid draws the subset
                of the grid's values.

        Returns:
            ``(detected, dx, dy)`` arrays aligned with ``times``:
            detection mask and position perturbation components
            (already scaled by ``position_noise``).
        """
        actor_word = stable_key(actor_id)
        time_words = time_key(np.asarray(times, dtype=np.float64))
        if self.miss_rate > 0.0:
            detected = (
                counter_uniform(self.seed, STREAM_MISS, time_words, actor_word)
                >= self.miss_rate
            )
        else:
            detected = np.ones(np.shape(times), dtype=bool)
        if self.position_noise > 0.0:
            dx = self.position_noise * counter_normal(
                self.seed, STREAM_NOISE_X, time_words, actor_word
            )
            dy = self.position_noise * counter_normal(
                self.seed, STREAM_NOISE_Y, time_words, actor_word
            )
        else:
            dx = np.zeros(np.shape(times))
            dy = np.zeros(np.shape(times))
        return detected, dx, dy

    def to_dict(self) -> dict:
        """JSON-ready form (campaign JSONL headers)."""
        return {
            "miss_rate": self.miss_rate,
            "position_noise": self.position_noise,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PerceptionNoise":
        """Inverse of :meth:`to_dict`."""
        return cls(
            miss_rate=float(data["miss_rate"]),
            position_noise=float(data["position_noise"]),
            seed=int(data["seed"]),
        )
