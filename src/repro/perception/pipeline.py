"""The FPR-scheduled perception system.

Each camera captures frames at its own processing rate; a frame's
detections reach the tracker (and hence the world model) only after the
processing latency ``l0 = 1 / FPR``. Changing a camera's rate at runtime
— what Zhuyi-based work prioritization does — simply reschedules its next
capture.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Hashable, Mapping

import numpy as np

from repro.dynamics.state import VehicleSpec, VehicleState
from repro.errors import ConfigurationError
from repro.perception.detection import Detection, DetectionModel
from repro.perception.sensor import CameraRig, default_rig
from repro.perception.tracker import ConfirmationTracker
from repro.perception.world_model import PerceivedActor, WorldModel

#: Lowest accepted camera rate (frames per second).
MIN_FPR = 0.5
#: Highest accepted camera rate (frames per second).
MAX_FPR = 120.0


@dataclass(frozen=True)
class _PendingFrame:
    """A captured frame waiting out its processing latency."""

    ready_time: float
    capture_time: float
    detections: tuple[Detection, ...]
    expected: frozenset


class PerceptionSystem:
    """Multi-camera perception with per-camera processing rates.

    Args:
        rig: the camera rig (defaults to the paper's five-camera layout).
        detection_model: shared detection characteristics.
        fpr: initial rate for every camera — a scalar applied to all, or
            a per-camera mapping.
        confirmation_hits: the tracker's ``K``.
        latency_factor: processing latency as a multiple of the frame
            period (1.0 reproduces the paper's ``l0 = 1/FPR``).
        seed: root seed for detection noise. Draws are counter-keyed
            (:mod:`repro.core.rng`) on ``(seed, camera, capture time,
            actor)`` — no generator state lives here, so equal inputs
            always draw equal noise; :meth:`reset` restores the
            scheduling/tracking state for a bit-identical re-run.
    """

    def __init__(
        self,
        rig: CameraRig | None = None,
        detection_model: DetectionModel | None = None,
        fpr: float | Mapping[str, float] = 30.0,
        confirmation_hits: int = 5,
        latency_factor: float = 1.0,
        max_misses: int = 3,
        seed: int = 0,
    ):
        if latency_factor < 0.0:
            raise ConfigurationError("latency factor must be non-negative")
        self.rig = rig if rig is not None else default_rig()
        self.detection_model = (
            detection_model if detection_model is not None else DetectionModel()
        )
        self.tracker = ConfirmationTracker(
            confirmation_hits=confirmation_hits, max_misses=max_misses
        )
        self.world_model = WorldModel()
        self._latency_factor = latency_factor
        self.seed = int(seed)
        self._confirmation_hits = confirmation_hits
        self._max_misses = max_misses
        self._fpr: dict[str, float] = {}
        self._next_capture: dict[str, float] = {}
        self._frames_captured: dict[str, int] = {
            name: 0 for name in self.rig.names
        }
        self._pending: list[tuple[float, int, _PendingFrame]] = []
        self._sequence = itertools.count()
        if isinstance(fpr, Mapping):
            rates = dict(fpr)
            missing = set(self.rig.names) - set(rates)
            if missing:
                raise ConfigurationError(f"no FPR given for cameras {missing}")
        else:
            rates = {name: float(fpr) for name in self.rig.names}
        for name, rate in rates.items():
            self.set_fpr(name, rate)
            self._next_capture[name] = 0.0
        self._initial_fpr = dict(self._fpr)

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------

    def fpr(self, camera: str) -> float:
        """Current processing rate of a camera (frames/second)."""
        self._check_camera(camera)
        return self._fpr[camera]

    def fprs(self) -> dict[str, float]:
        """Current processing rate of every camera."""
        return dict(self._fpr)

    def set_fpr(self, camera: str, rate: float) -> None:
        """Change a camera's processing rate (clamped to sane bounds)."""
        self._check_camera(camera)
        self._fpr[camera] = min(max(rate, MIN_FPR), MAX_FPR)

    def processing_latency(self, camera: str) -> float:
        """The camera's ``l0`` — one frame period times the factor."""
        return self._latency_factor / self.fpr(camera)

    def frames_captured(self, camera: str | None = None) -> int:
        """Frames captured so far (one camera, or all when ``None``)."""
        if camera is None:
            return sum(self._frames_captured.values())
        self._check_camera(camera)
        return self._frames_captured[camera]

    def _check_camera(self, camera: str) -> None:
        if camera not in self.rig:
            raise ConfigurationError(f"unknown camera {camera!r}")

    def reset(self) -> None:
        """Return the pipeline to its just-constructed state.

        Clears the capture schedule, pending frames, tracker and world
        model, and restores the construction-time camera rates. Because
        detection draws are counter-keyed on the capture times rather
        than consumed from a stateful generator, a reset pipeline
        stepped through the same inputs reproduces every detection bit
        for bit — the regression the old ``self._rng`` design could not
        satisfy (its draw stream carried across runs).
        """
        self.tracker = ConfirmationTracker(
            confirmation_hits=self._confirmation_hits,
            max_misses=self._max_misses,
        )
        self.world_model = WorldModel()
        self._fpr = dict(self._initial_fpr)
        self._next_capture = {name: 0.0 for name in self._fpr}
        self._frames_captured = {name: 0 for name in self.rig.names}
        self._pending = []
        self._sequence = itertools.count()

    # ------------------------------------------------------------------
    # simulation hook
    # ------------------------------------------------------------------

    def step(
        self,
        now: float,
        ego_state: VehicleState,
        actors: Mapping[Hashable, tuple[VehicleState, VehicleSpec]],
    ) -> None:
        """Advance perception to ``now``.

        Captures any camera frames that are due, then applies every
        pending frame whose processing has finished.
        """
        self._capture_due_frames(now, ego_state, actors)
        self._apply_ready_frames(now)

    def _capture_due_frames(
        self,
        now: float,
        ego_state: VehicleState,
        actors: Mapping[Hashable, tuple[VehicleState, VehicleSpec]],
    ) -> None:
        actor_ids: list | None = None
        for camera in self.rig.cameras:
            if now + 1e-9 < self._next_capture[camera.name]:
                continue
            if actor_ids is None:
                # Built lazily on the first due camera: most sim steps
                # capture nothing and must stay allocation-free.
                actor_ids = list(actors)
                actor_xs = np.array(
                    [actors[a][0].position.x for a in actor_ids]
                )
                actor_ys = np.array(
                    [actors[a][0].position.y for a in actor_ids]
                )
            frame_camera = camera
            camera_frame = frame_camera.world_frame(ego_state)
            if actor_ids:
                local_x, local_y = camera_frame.to_local_batch(
                    actor_xs, actor_ys
                )
                in_fov = frame_camera.fov.contains_local_batch(
                    local_x, local_y
                )
                expected = frozenset(
                    actor_id
                    for actor_id, visible in zip(actor_ids, in_fov)
                    if visible
                )
            else:
                in_fov = None
                expected = frozenset()
            # The frame's FOV membership is handed down so detection
            # does not recompute the same geometry.
            detections = tuple(
                self.detection_model.detect(
                    frame_camera, ego_state, now, actors, self.seed,
                    in_fov=in_fov,
                )
            )
            ready = now + self.processing_latency(camera.name)
            heapq.heappush(
                self._pending,
                (
                    ready,
                    next(self._sequence),
                    _PendingFrame(
                        ready_time=ready,
                        capture_time=now,
                        detections=detections,
                        expected=expected,
                    ),
                ),
            )
            self._frames_captured[camera.name] += 1
            self._next_capture[camera.name] = now + 1.0 / self._fpr[camera.name]

    def _apply_ready_frames(self, now: float) -> None:
        while self._pending and self._pending[0][0] <= now + 1e-9:
            _, _, frame = heapq.heappop(self._pending)
            self.tracker.update(
                frame.capture_time, frame.detections, frame.expected
            )
            self._refresh_world_model()

    def _refresh_world_model(self) -> None:
        confirmed = self.tracker.confirmed_tracks()
        for actor_id in list(self.world_model.actors()):
            if actor_id not in confirmed:
                self.world_model.remove(actor_id)
        for actor_id, track in confirmed.items():
            self.world_model.upsert(
                PerceivedActor(
                    actor_id=actor_id,
                    position=track.position,
                    velocity=track.velocity,
                    heading=track.heading,
                    speed=track.speed,
                    accel=track.accel,
                    timestamp=track.last_update,
                )
            )
