"""Camera rig geometry.

The experimental vehicle carries five cameras (Section 4.1): two front
cameras with 60 and 120 degree FOV, two side cameras and a rear camera.
The paper analyzes the 120-degree front camera and the two side cameras;
:data:`ANALYZED_CAMERAS` names those three in the ``c1, c2, c3`` order of
Table 1's ``max(F_c1 + F_c2 + F_c3)`` column.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping, Sequence

import numpy as np

from repro.dynamics.state import VehicleState
from repro.errors import ConfigurationError
from repro.geometry.fov import AngularSector
from repro.geometry.transforms import Frame2
from repro.geometry.vec import Vec2

#: The three cameras whose estimates Table 1 reports (c1, c2, c3).
ANALYZED_CAMERAS: tuple[str, str, str] = ("front_120", "left", "right")


@dataclass(frozen=True)
class Camera:
    """One camera: a mounting frame on the ego body plus an FOV sector."""

    name: str
    mount: Frame2
    fov: AngularSector

    def world_frame(self, ego_state: VehicleState) -> Frame2:
        """The camera frame in world coordinates for a given ego state."""
        return ego_state.frame().compose(self.mount)

    def sees(self, ego_state: VehicleState, point: Vec2) -> bool:
        """Whether a world point is inside this camera's FOV."""
        return self.fov.contains(self.world_frame(ego_state), point)


class CameraRig:
    """An ordered collection of cameras mounted on the ego."""

    def __init__(self, cameras: Iterable[Camera]):
        self._cameras = list(cameras)
        if not self._cameras:
            raise ConfigurationError("a camera rig needs at least one camera")
        names = [camera.name for camera in self._cameras]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate camera names: {names}")
        self._by_name = {camera.name: camera for camera in self._cameras}

    @property
    def cameras(self) -> Sequence[Camera]:
        """All cameras in mounting order."""
        return tuple(self._cameras)

    @property
    def names(self) -> tuple[str, ...]:
        """Camera names in mounting order."""
        return tuple(camera.name for camera in self._cameras)

    def __getitem__(self, name: str) -> Camera:
        if name not in self._by_name:
            raise ConfigurationError(
                f"no camera named {name!r}; rig has {sorted(self._by_name)}"
            )
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._cameras)

    def visible_actors(
        self,
        ego_state: VehicleState,
        actor_positions: Mapping[Hashable, Vec2],
    ) -> dict[str, list[Hashable]]:
        """Which actors fall in which camera FOV (an actor may be in many)."""
        visibility: dict[str, list[Hashable]] = {
            camera.name: [] for camera in self._cameras
        }
        frames = {
            camera.name: camera.world_frame(ego_state)
            for camera in self._cameras
        }
        for actor_id, position in actor_positions.items():
            for camera in self._cameras:
                if camera.fov.contains_local(
                    frames[camera.name].to_local(position)
                ):
                    visibility[camera.name].append(actor_id)
        return visibility

    def visibility_trace(
        self,
        ego_states: Sequence[VehicleState],
        actor_positions: Mapping[Hashable, tuple[np.ndarray, np.ndarray]],
    ) -> dict[str, np.ndarray]:
        """Per-camera FOV membership over a whole trace, as bit tables.

        The Equation 5 grouping question — "which actors are in which
        camera's field of view" — answered for every tick of a trace in
        one array program per camera. The per-tick camera frames are
        composed exactly as :meth:`visible_actors` composes them (the
        same scalar trigonometry per tick), and the per-point membership
        runs through
        :meth:`repro.geometry.fov.AngularSector.contains_local_batch`,
        so each table entry is bit-identical to the corresponding
        per-tick :meth:`visible_actors` verdict.

        Args:
            ego_states: the ego state at each tick.
            actor_positions: per actor, the ``(xs, ys)`` world position
                arrays over the same ticks.

        Returns:
            Per camera, a boolean array of shape
            ``(len(ego_states), len(actor_positions))`` whose columns
            follow the mapping's iteration order.
        """
        return self.visibility_traces([(ego_states, actor_positions)])[0]

    def visibility_traces(
        self,
        blocks: Sequence[
            tuple[
                Sequence[VehicleState],
                Mapping[Hashable, tuple[np.ndarray, np.ndarray]],
            ]
        ],
    ) -> list[dict[str, np.ndarray]]:
        """:meth:`visibility_trace` for a stack of traces at once.

        The cross-trace lift of the Equation 5 grouping kernel: the
        per-camera frame constants are derived in one pass over the
        *concatenated* tick axis of every block — with each tick's ego
        body frame composed once and shared by all cameras — and each
        trace's membership table is then one
        :meth:`~repro.geometry.fov.AngularSector.contains_local_batch`
        call against its own actor arrays (actor sets differ per trace,
        so the tables cannot share columns). Per tick and per camera
        the scalar trigonometry is exactly :meth:`visible_actors`'s
        frame composition, so every table entry is bit-identical to a
        single-trace :meth:`visibility_trace` build.

        Args:
            blocks: per trace, the ``(ego_states, actor_positions)``
                pair :meth:`visibility_trace` takes.

        Returns:
            One per-camera table dict per block, in block order.
        """
        offsets = [0]
        for ego_states, _ in blocks:
            offsets.append(offsets[-1] + len(ego_states))
        total = offsets[-1]
        # Frame constants for every (camera, tick) pair: the tick's ego
        # body frame composes once, each camera mounts into it — the
        # same Frame2 arithmetic world_frame() runs per camera.
        origin_x = {camera.name: np.empty(total) for camera in self._cameras}
        origin_y = {camera.name: np.empty(total) for camera in self._cameras}
        rot_c = {camera.name: np.empty(total) for camera in self._cameras}
        rot_s = {camera.name: np.empty(total) for camera in self._cameras}
        i = 0
        for ego_states, _ in blocks:
            for ego_state in ego_states:
                base = ego_state.frame()
                for camera in self._cameras:
                    frame = base.compose(camera.mount)
                    origin_x[camera.name][i] = frame.origin.x
                    origin_y[camera.name][i] = frame.origin.y
                    # The constants Frame2.to_local derives per point.
                    rot_c[camera.name][i] = math.cos(-frame.heading)
                    rot_s[camera.name][i] = math.sin(-frame.heading)
                i += 1

        out: list[dict[str, np.ndarray]] = []
        for block_index, (ego_states, actor_positions) in enumerate(blocks):
            lo, hi = offsets[block_index], offsets[block_index + 1]
            tick_count = hi - lo
            ids = list(actor_positions)
            if not ids:
                out.append(
                    {
                        camera.name: np.zeros((tick_count, 0), dtype=bool)
                        for camera in self._cameras
                    }
                )
                continue
            xs = np.stack(
                [np.asarray(actor_positions[a][0], dtype=float) for a in ids],
                axis=1,
            )
            ys = np.stack(
                [np.asarray(actor_positions[a][1], dtype=float) for a in ids],
                axis=1,
            )
            tables: dict[str, np.ndarray] = {}
            for camera in self._cameras:
                dx = xs - origin_x[camera.name][lo:hi, None]
                dy = ys - origin_y[camera.name][lo:hi, None]
                local_x = (
                    rot_c[camera.name][lo:hi, None] * dx
                    - rot_s[camera.name][lo:hi, None] * dy
                )
                local_y = (
                    rot_s[camera.name][lo:hi, None] * dx
                    + rot_c[camera.name][lo:hi, None] * dy
                )
                tables[camera.name] = camera.fov.contains_local_batch(
                    local_x, local_y
                )
            out.append(tables)
        return out

    def visible_actors_trace(
        self,
        ego_states: Sequence[VehicleState],
        actor_positions: Mapping[Hashable, tuple[np.ndarray, np.ndarray]],
        detected: Mapping[Hashable, np.ndarray] | None = None,
    ) -> list[dict[str, list[Hashable]]]:
        """Batched :meth:`visible_actors` over every tick of a trace.

        Semantically ``[visible_actors(ego_states[i], {a: (xs[i], ys[i])
        ...}) for i in ticks]`` — identical groupings, identical ordering
        (camera lists carry actors in the mapping's iteration order) —
        computed through the :meth:`visibility_trace` array kernel
        instead of a per-tick Python loop. An optional ``detected``
        mask (per actor, one bool per tick) drops undetected actors
        from the groupings, exactly as if they had been removed from
        that tick's ``actor_positions`` mapping.
        """
        ids = list(actor_positions)
        tables = self.visibility_trace(ego_states, actor_positions)
        return self._group_tables(ids, len(ego_states), tables, detected)

    def visible_actors_traces(
        self,
        blocks: Sequence[
            tuple[
                Sequence[VehicleState],
                Mapping[Hashable, tuple[np.ndarray, np.ndarray]],
            ]
        ],
        detected: Sequence[Mapping[Hashable, np.ndarray] | None] | None = None,
    ) -> list[list[dict[str, list[Hashable]]]]:
        """:meth:`visible_actors_trace` for a stack of traces at once.

        One :meth:`visibility_traces` pass, then each block's tables
        unpack into the per-tick grouping dicts — groupings identical
        to running :meth:`visible_actors_trace` per block, including
        its optional per-block ``detected`` masking.
        """
        all_tables = self.visibility_traces(blocks)
        if detected is None:
            detected = [None] * len(blocks)
        return [
            self._group_tables(
                list(actor_positions), len(ego_states), tables, block_detected
            )
            for (ego_states, actor_positions), tables, block_detected in zip(
                blocks, all_tables, detected
            )
        ]

    def _group_tables(
        self,
        ids: list[Hashable],
        tick_count: int,
        tables: Mapping[str, np.ndarray],
        detected: Mapping[Hashable, np.ndarray] | None = None,
    ) -> list[dict[str, list[Hashable]]]:
        """Bit tables to per-tick camera groupings (mapping order kept)."""
        if detected is not None and ids:
            # Detection masks AND into every camera's column — an
            # undetected actor is indistinguishable from one outside
            # the FOV for the Equation 5 grouping.
            mask = np.stack(
                [np.asarray(detected[actor_id], dtype=bool) for actor_id in ids],
                axis=1,
            )
            tables = {
                name: table & mask for name, table in tables.items()
            }
        return [
            {
                camera.name: [
                    ids[j] for j in np.flatnonzero(tables[camera.name][i])
                ]
                for camera in self._cameras
            }
            for i in range(tick_count)
        ]


def default_rig(
    front_range: float = 200.0,
    side_range: float = 100.0,
    rear_range: float = 120.0,
) -> CameraRig:
    """The paper's five-camera layout.

    Front cameras mount at the windshield (+1.5 m), side cameras at the
    mirrors (offset laterally, looking 90 degrees outwards) and the rear
    camera at the tailgate. Side and rear use 120-degree optics.
    """
    deg = math.radians
    return CameraRig(
        [
            Camera(
                name="front_60",
                mount=Frame2(Vec2(1.5, 0.0), 0.0),
                fov=AngularSector(0.0, deg(60.0), front_range),
            ),
            Camera(
                name="front_120",
                mount=Frame2(Vec2(1.5, 0.0), 0.0),
                fov=AngularSector(0.0, deg(120.0), front_range),
            ),
            Camera(
                name="left",
                mount=Frame2(Vec2(0.5, 0.9), deg(90.0)),
                fov=AngularSector(0.0, deg(120.0), side_range),
            ),
            Camera(
                name="right",
                mount=Frame2(Vec2(0.5, -0.9), deg(-90.0)),
                fov=AngularSector(0.0, deg(120.0), side_range),
            ),
            Camera(
                name="rear",
                mount=Frame2(Vec2(-2.0, 0.0), deg(180.0)),
                fov=AngularSector(0.0, deg(120.0), rear_range),
            ),
        ]
    )
