"""Counter-based random draws for stochastic perception.

Every draw here is a pure function of its *key* — ``(root seed, stream
tag, ...component keys)`` — with no generator state anywhere. That is
the property the whole-trace batch engines need: a draw's value cannot
depend on how many draws happened before it, so miss sampling and
position noise are identical whether a trace is walked tick by tick,
solved as one array program, split across campaign shards, or replayed
from an arbitrary tick (the counter-based construction of Salmon et
al.'s Philox/Threefry family, realized with the splitmix64 finalizer).

Key components are 64-bit words. :func:`stable_key` maps the id-like
values the perception stack keys on (actor ids, camera names, seeds) to
words via bit patterns and FNV-1a — *never* Python's ``hash()``, which
is salted per process and would break cross-process campaign
reproducibility. Times key by their float64 bit pattern
(:func:`time_key`): two ticks draw identically exactly when their
timestamps are bit-equal, which the closed-form evaluation grids
(``start + i * stride``) guarantee across stride-aligned engines.

Everything computes with numpy's elementwise uint64 ops (wraparound
arithmetic, no Python-int round trips), so a scalar call and a
vectorized call over an array of keys produce bit-identical values —
the parity the order-independence test layer pins. Intermediate
operands stay ndarrays (0-d or bigger) because numpy's *scalar* uint64
arithmetic emits overflow warnings where the array path wraps silently.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

# splitmix64 finalizer constants (Steele, Lea & Flood; also xxhash/
# murmur-style avalanche multipliers) and the 2^64 / golden-ratio
# sequence increment.
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)

# FNV-1a 64-bit parameters for string/bytes keys.
_FNV_OFFSET = np.uint64(0xCBF29CE484222325)
_FNV_PRIME = np.uint64(0x00000100000001B3)

#: Exactly representable reciprocal of 2^53: the top 53 hash bits map
#: to the standard [0, 1) double grid.
_UNIFORM_SCALE = float(2.0**-53)

#: Salts decorrelating the two Box-Muller sub-draws of one normal key.
_NORMAL_SALT_R = np.uint64(0x9F4A7C15F39CC060)
_NORMAL_SALT_T = np.uint64(0x2545F4914F6CDD1D)


def _mix64(h: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer: full-avalanche 64-bit diffusion."""
    h = np.asarray(h, dtype=np.uint64)
    # Wraparound multiplies are the construction; scalar-shaped keys
    # would otherwise warn where the array path wraps silently.
    with np.errstate(over="ignore"):
        h = (h ^ (h >> np.uint64(30))) * _MIX_1
        h = (h ^ (h >> np.uint64(27))) * _MIX_2
        return h ^ (h >> np.uint64(31))


def _absorb(state: np.ndarray, key: np.ndarray) -> np.ndarray:
    """Fold one key word into the hash state (broadcasting).

    The key is diffused before entering the state and the combined word
    is diffused again, so single-bit differences in any absorbed word
    avalanche across the final state; the golden-ratio increment keeps
    absorbing the same word twice from fixing the state.
    """
    state = np.asarray(state, dtype=np.uint64)
    with np.errstate(over="ignore"):
        return _mix64((state + _GOLDEN) ^ _mix64(key))


def stable_key(value: object) -> np.uint64:
    """A process-stable 64-bit key word for an id-like value.

    Integers key by their two's-complement bit pattern, floats by their
    IEEE-754 bit pattern, strings and bytes by FNV-1a over their UTF-8
    encoding. Python's randomized ``hash()`` is deliberately not used:
    campaign shards run in separate processes and must agree on every
    key.

    Args:
        value: an ``int``, ``float``, ``str`` or ``bytes`` identifier.

    Returns:
        The value's key word.

    Raises:
        ConfigurationError: on types with no stable encoding.
    """
    if isinstance(value, bool):
        raise ConfigurationError(
            "booleans are not id-like; key on an int or string instead"
        )
    if isinstance(value, (int, np.integer)):
        return np.uint64(int(value) & 0xFFFFFFFFFFFFFFFF)
    if isinstance(value, (float, np.floating)):
        return np.asarray(value, dtype=np.float64).view(np.uint64)[()]
    if isinstance(value, str):
        value = value.encode("utf-8")
    if isinstance(value, bytes):
        h = np.array([_FNV_OFFSET], dtype=np.uint64)
        with np.errstate(over="ignore"):
            for byte in value:
                h = (h ^ np.uint64(byte)) * _FNV_PRIME
        return h[0]
    raise ConfigurationError(
        f"no stable 64-bit key for {type(value).__name__!r} values"
    )


def time_key(times: object) -> np.uint64 | np.ndarray:
    """Key word(s) for simulation timestamps — their float64 bit pattern.

    Two instants draw identically exactly when their timestamps are
    bit-equal; the closed-form tick grids (``start + i * stride``)
    guarantee that across engines, strides into the same instants, and
    replays starting anywhere. Accepts a scalar or an array (keys align
    elementwise).
    """
    return np.asarray(times, dtype=np.float64).view(np.uint64)[()]


def counter_hash(seed: int, stream: object, *keys: object) -> np.ndarray:
    """The raw 64-bit hash of one draw key (broadcasting over arrays).

    Args:
        seed: the root seed (any Python int; reduced mod 2^64).
        stream: the stream tag separating independent channels (one of
            the ``STREAM_*`` words, or any :func:`stable_key`-able id).
        *keys: the remaining key components — pre-built ``uint64``
            word(s) (scalar or array, broadcast together) or any value
            :func:`stable_key` accepts.

    Returns:
        uint64 word(s) in the keys' broadcast shape.
    """
    state = _mix64(stable_key(seed))
    state = _absorb(state, _as_words(stream))
    for key in keys:
        state = _absorb(state, _as_words(key))
    return state


def _as_words(key: object) -> np.ndarray:
    """A key component as uint64 word(s), scalar or array."""
    if isinstance(key, np.ndarray) or isinstance(key, np.uint64):
        return np.asarray(key, dtype=np.uint64)
    return np.asarray(stable_key(key), dtype=np.uint64)


def _to_uniform(words: np.ndarray) -> np.ndarray:
    """Top 53 hash bits onto the standard [0, 1) double grid."""
    return (words >> np.uint64(11)).astype(np.float64) * _UNIFORM_SCALE


def counter_uniform(seed: int, stream: object, *keys: object) -> np.ndarray:
    """A uniform [0, 1) draw per key (broadcasting over array keys).

    Pure function of the full key: any iteration order, partitioning or
    batching of the same keys yields bit-identical values.
    """
    return _to_uniform(counter_hash(seed, stream, *keys))


def counter_normal(seed: int, stream: object, *keys: object) -> np.ndarray:
    """A standard-normal draw per key (broadcasting over array keys).

    Box-Muller over two salted sub-draws of the same key:
    ``sqrt(-2 ln(1 - u_r)) * cos(2 pi u_t)``. ``1 - u_r`` lies in
    (0, 1], so the log never sees zero; both sub-draws inherit the
    counter construction, so normals are exactly as order-free as
    uniforms.
    """
    base = counter_hash(seed, stream, *keys)
    u_r = _to_uniform(_mix64(base ^ _NORMAL_SALT_R))
    u_t = _to_uniform(_mix64(base ^ _NORMAL_SALT_T))
    radius = np.sqrt(-2.0 * np.log1p(-u_r))
    return radius * np.cos((2.0 * np.pi) * u_t)


def derive_seed(seed: int, *keys: object) -> int:
    """A decorrelated child seed for a sub-experiment.

    Campaign cells derive their trace-level noise seed from the
    campaign's root seed and the cell coordinates, so draws never
    correlate across cells while remaining independent of shard
    partitioning and execution order.
    """
    return int(counter_hash(seed, STREAM_DERIVE, *keys)[()])


#: The central stream-tag registry: every named draw channel and seed-
#: derivation key used anywhere in the codebase, tag → key word. The
#: RNG004 lint rule (``repro.lint``) statically checks that every
#: stream/derivation literal in ``src/`` resolves here, and
#: :func:`register_stream` hard-errors if two distinct tags ever hash
#: to the same key word — a collision would silently correlate two
#: channels that every recorded result assumes are independent.
STREAM_REGISTRY: dict[str, np.uint64] = {}


def register_stream(name: str) -> np.uint64:
    """Register a named draw channel; returns its key word.

    The single place stream tags come from. Registration is idempotent
    for a given name; registering a *different* name whose FNV-1a word
    collides with an existing tag raises — the two channels would share
    every draw, which no test could tell apart from correct behavior.

    Args:
        name: the channel's descriptive dotted name (e.g.
            ``"perception.miss"``).

    Returns:
        The tag's key word, as :func:`stable_key` computes it.

    Raises:
        ConfigurationError: on a non-string/empty name or a key-word
            collision with a previously registered tag.
    """
    if not isinstance(name, str) or not name:
        raise ConfigurationError(
            f"stream tags are non-empty strings, got {name!r}"
        )
    word = stable_key(name)
    if name in STREAM_REGISTRY:
        return STREAM_REGISTRY[name]
    for other, other_word in STREAM_REGISTRY.items():
        if other_word == word:
            raise ConfigurationError(
                f"stream tag {name!r} collides with {other!r}: both hash "
                f"to key word {int(word):#018x}"
            )
    STREAM_REGISTRY[name] = word
    return word


def registered_streams() -> dict[str, int]:
    """A snapshot of the registry, tag → key word as a Python int."""
    return {name: int(word) for name, word in STREAM_REGISTRY.items()}


#: Stream tags — FNV-1a words of descriptive channel names. Distinct
#: streams over the same (seed, keys) never share draws.
STREAM_MISS = register_stream("perception.miss")
STREAM_NOISE_X = register_stream("perception.noise.x")
STREAM_NOISE_Y = register_stream("perception.noise.y")
STREAM_DERIVE = register_stream("seed.derive")
# The evolutionary scenario search draws its whole trajectory from
# these three channels keyed by (generation, slot, gene) coordinates,
# so a fuzz run is a pure function of its root seed — independent of
# worker counts, resume points and evaluation order.
STREAM_FUZZ_INIT = register_stream("fuzz.init")
STREAM_FUZZ_SELECT = register_stream("fuzz.select")
STREAM_FUZZ_MUTATE = register_stream("fuzz.mutate")
# Seed-derivation keys (the string literals handed to derive_seed):
# "perception" roots a scenario's counter-keyed perception draws off
# its choreography seed (see BuiltScenario.perception_seed).
KEY_PERCEPTION = register_stream("perception")
