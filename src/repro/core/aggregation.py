"""Equation 4 — aggregating per-trajectory latencies into one per actor.

During operation the trajectory predictor emits several futures per
actor, each with a probability. Each future yields one tolerable latency;
Zhuyi reduces the set to a single per-actor value. The paper names three
reductions: *maximum* pessimism (the smallest latency — the largest FPR
requirement), probability-weighted *average*, and an *n-th percentile*
"cautious but not too pessimistic" compromise.

Percentile convention: the paper's ``PR_n`` (n = 99) selects a value that
is as demanding as all but the most extreme 1% of futures. Since demand
is the *reciprocal* of latency, the 99th percentile of required rate is
the 1st percentile of latency; :class:`PercentileAggregator` therefore
takes the ``(100 - n)``-th weighted percentile of the latency values.
Unavoidable-collision verdicts enter as latency 0 and thus dominate, as
they must.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import EstimationError


def _validated_weights(
    latencies: Sequence[float], probabilities: Sequence[float] | None
) -> list[float]:
    """Normalized trajectory probabilities (uniform when omitted)."""
    if not latencies:
        raise EstimationError("cannot aggregate an empty latency set")
    if any(value < 0.0 for value in latencies):
        raise EstimationError("latencies must be non-negative")
    if probabilities is None:
        return [1.0 / len(latencies)] * len(latencies)
    if len(probabilities) != len(latencies):
        raise EstimationError(
            f"{len(probabilities)} probabilities for {len(latencies)} latencies"
        )
    if any(weight < 0.0 for weight in probabilities):
        raise EstimationError("probabilities must be non-negative")
    total = sum(probabilities)
    if total <= 0.0:
        raise EstimationError("probabilities must not all be zero")
    return [weight / total for weight in probabilities]


def _validated_row_weights(
    latencies: np.ndarray, probabilities: np.ndarray, active: np.ndarray
) -> np.ndarray:
    """Row-normalized weights over the active entries of each row.

    The batch counterpart of :func:`_validated_weights` for ``(rows,
    hypotheses)`` matrices: the same validation, and per-row totals
    accumulated in entry order exactly like the scalar ``sum`` (inactive
    entries contribute an exact ``0.0``, which leaves every partial sum
    bit-identical), so normalized weights match the scalar path's bit
    for bit.
    """
    if latencies.ndim != 2 or latencies.shape != probabilities.shape:
        raise EstimationError("latency and probability rows must align")
    if not active.any(axis=1).all():
        raise EstimationError("cannot aggregate an empty latency set")
    if np.any(active & (latencies < 0.0)):
        raise EstimationError("latencies must be non-negative")
    if np.any(active & (probabilities < 0.0)):
        raise EstimationError("probabilities must be non-negative")
    masked = np.where(active, probabilities, 0.0)
    totals = np.zeros(latencies.shape[0])
    for column in range(latencies.shape[1]):
        totals = totals + masked[:, column]
    if np.any(totals <= 0.0):
        raise EstimationError("probabilities must not all be zero")
    return np.where(active, probabilities / totals[:, None], 0.0)


@runtime_checkable
class Aggregator(Protocol):
    """Reduces per-trajectory latencies to one per-actor latency.

    Implementations may additionally provide ``aggregate_rows`` — the
    Equation 4 reduction vectorized over a ``(rows, hypotheses)`` batch
    with an ``active`` mask (the batched replay's whole-trace
    aggregation). The three built-in aggregators do; consumers fall
    back to a per-row :meth:`aggregate` loop otherwise.
    """

    def aggregate(
        self,
        latencies: Sequence[float],
        probabilities: Sequence[float] | None = None,
    ) -> float:
        """The aggregated tolerable latency in seconds."""
        ...


@dataclass(frozen=True)
class MaxAggregator:
    """Most pessimistic reduction: the worst (smallest) latency.

    "Maximum" in the paper refers to the maximum *requirement*; in
    latency space that is the minimum over trajectories.
    """

    def aggregate(
        self,
        latencies: Sequence[float],
        probabilities: Sequence[float] | None = None,
    ) -> float:
        _validated_weights(latencies, probabilities)
        return min(latencies)

    def aggregate_rows(
        self,
        latencies: np.ndarray,
        probabilities: np.ndarray,
        active: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`aggregate` over ``(rows, hypotheses)``."""
        _validated_row_weights(latencies, probabilities, active)
        return np.min(np.where(active, latencies, np.inf), axis=1)


@dataclass(frozen=True)
class MeanAggregator:
    """Probability-weighted average latency.

    "Average gives more weight to the most likely future trajectory"
    when the trajectory probabilities are used as weights.
    """

    def aggregate(
        self,
        latencies: Sequence[float],
        probabilities: Sequence[float] | None = None,
    ) -> float:
        weights = _validated_weights(latencies, probabilities)
        return sum(w * l for w, l in zip(weights, latencies))

    def aggregate_rows(
        self,
        latencies: np.ndarray,
        probabilities: np.ndarray,
        active: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`aggregate` over ``(rows, hypotheses)``.

        The weighted sum accumulates in entry order (inactive entries
        add an exact ``0.0``), reproducing the scalar sum bit for bit.
        """
        weights = _validated_row_weights(latencies, probabilities, active)
        terms = np.where(active, weights * latencies, 0.0)
        out = np.zeros(latencies.shape[0])
        for column in range(latencies.shape[1]):
            out = out + terms[:, column]
        return out


@dataclass(frozen=True)
class PercentileAggregator:
    """The paper's ``PR_n``: n-th percentile of the requirement (Eq 4).

    ``n = 99`` keeps the estimate within the most demanding 1% of futures
    without letting a single extreme hypothesis dictate it.
    """

    n: float = 99.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.n <= 100.0:
            raise EstimationError(f"percentile must be in [0, 100], got {self.n}")

    def aggregate(
        self,
        latencies: Sequence[float],
        probabilities: Sequence[float] | None = None,
    ) -> float:
        weights = _validated_weights(latencies, probabilities)
        # n-th percentile of demand == (100-n)-th weighted percentile of
        # latency: walk the latency-sorted values until the cumulative
        # probability *exceeds* the quantile. The exclusive comparison
        # makes the convention exact at both ends: n=100 returns the
        # most pessimistic atom, n=0 the most permissive, and n=90 skips
        # a hypothesis carrying exactly 10% probability.
        quantile = (100.0 - self.n) / 100.0
        pairs = sorted(zip(latencies, weights), key=lambda pair: pair[0])
        cumulative = 0.0
        for latency, weight in pairs:
            cumulative += weight
            if cumulative > quantile + 1e-12:
                return latency
        return pairs[-1][0]

    def aggregate_rows(
        self,
        latencies: np.ndarray,
        probabilities: np.ndarray,
        active: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`aggregate` over ``(rows, hypotheses)``.

        Per row: the same stable latency sort, the same sequential
        cumulative-weight walk (``np.cumsum`` is a sequential scan) and
        the same exclusive quantile comparison as the scalar loop.
        Inactive entries sort to the front with zero weight, where they
        can neither trip the comparison (the quantile is non-negative)
        nor displace the all-weights-exhausted fallback (the largest
        active latency sits at the row's end).
        """
        weights = _validated_row_weights(latencies, probabilities, active)
        quantile = (100.0 - self.n) / 100.0
        keyed = np.where(active, latencies, -np.inf)
        order = np.argsort(keyed, axis=1, kind="stable")
        sorted_latencies = np.take_along_axis(keyed, order, axis=1)
        sorted_weights = np.take_along_axis(weights, order, axis=1)
        cumulative = np.cumsum(sorted_weights, axis=1)
        exceeds = cumulative > quantile + 1e-12
        rows = np.arange(latencies.shape[0])
        chosen = np.where(
            exceeds.any(axis=1), exceeds.argmax(axis=1), latencies.shape[1] - 1
        )
        return sorted_latencies[rows, chosen]


def aggregate_latencies(
    latencies: Sequence[float],
    probabilities: Sequence[float] | None = None,
    aggregator: Aggregator | None = None,
) -> float:
    """Convenience wrapper: aggregate with the paper's default (PR_99)."""
    chosen = aggregator if aggregator is not None else PercentileAggregator()
    return chosen.aggregate(latencies, probabilities)
