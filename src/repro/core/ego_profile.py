"""Closed-form ego motion during the reaction and braking windows.

The paper splits the ego's travel into ``d_e1`` (distance covered during
the reaction time ``t_r`` with acceleration unchanged) and ``d_e2``
(distance covered while hard-braking at ``a_b`` until the check time
``t_n``). Both are clamped constant-acceleration segments, built from
:func:`repro.dynamics.longitudinal.travel`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.parameters import ZhuyiParams
from repro.dynamics.longitudinal import time_to_stop, travel
from repro.errors import EstimationError


def braking_deceleration(current_accel: float, params: ZhuyiParams) -> float:
    """The paper's ``a_b = max(C3, C4 * a0)``.

    ``a0`` in the paper is the ego's current *deceleration*; a currently
    accelerating ego does not weaken its braking authority, so only the
    decelerating component scales.
    """
    current_decel = max(0.0, -current_accel)
    return max(params.c3, params.c4 * current_decel)


@dataclass(frozen=True)
class EgoMotion:
    """Ego longitudinal state at ``t0`` plus the derived braking authority.

    Attributes:
        speed: ego speed at ``t0`` (m/s).
        accel: signed ego acceleration at ``t0`` (m/s^2); held constant
            through the reaction window per the paper.
        braking_decel: hard-braking deceleration ``a_b`` (m/s^2).
    """

    speed: float
    accel: float
    braking_decel: float

    def __post_init__(self) -> None:
        if self.speed < 0.0:
            raise EstimationError(f"ego speed must be non-negative: {self.speed}")
        if self.braking_decel <= 0.0:
            raise EstimationError(
                f"braking deceleration must be positive: {self.braking_decel}"
            )

    @staticmethod
    def from_state(
        speed: float, accel: float, params: ZhuyiParams
    ) -> "EgoMotion":
        """Build from the ego's current speed/accel using the paper's a_b."""
        return EgoMotion(
            speed=speed,
            accel=accel,
            braking_decel=braking_deceleration(accel, params),
        )

    def reaction_travel(
        self, reaction_time: float, speed_cap: float | None = None
    ) -> tuple[float, float]:
        """``(d_e1, v_e(t_r))``: travel during the reaction window.

        The ego holds its current acceleration for ``reaction_time``
        seconds (speed clamped at zero and optionally at ``speed_cap``).
        """
        if reaction_time < 0.0:
            raise EstimationError(
                f"reaction time must be non-negative: {reaction_time}"
            )
        return travel(self.speed, self.accel, reaction_time, speed_cap)

    def braking_travel(
        self, speed_at_reaction: float, braking_time: float
    ) -> tuple[float, float]:
        """``(d_e2, v_en)``: travel while hard-braking for ``braking_time``."""
        if braking_time < 0.0:
            raise EstimationError(
                f"braking time must be non-negative: {braking_time}"
            )
        return travel(speed_at_reaction, -self.braking_decel, braking_time)

    def total_travel(
        self,
        reaction_time: float,
        check_time: float,
        speed_cap: float | None = None,
    ) -> tuple[float, float]:
        """``(d_e1 + d_e2, v_en)`` for a check at ``check_time >= t_r``."""
        if check_time < reaction_time:
            raise EstimationError(
                f"check time {check_time} precedes reaction time {reaction_time}"
            )
        d_e1, v_tr = self.reaction_travel(reaction_time, speed_cap)
        d_e2, v_en = self.braking_travel(v_tr, check_time - reaction_time)
        return d_e1 + d_e2, v_en

    def stop_time_after(
        self, reaction_time: float, speed_cap: float | None = None
    ) -> float:
        """Absolute time at which the ego reaches zero speed.

        The ego coasts (current acceleration) until ``reaction_time`` and
        hard-brakes afterwards. Used to bound the ``t_n`` search.
        """
        _, v_tr = self.reaction_travel(reaction_time, speed_cap)
        return reaction_time + time_to_stop(v_tr, self.braking_decel)
