"""Closed-form ego motion during the reaction and braking windows.

The paper splits the ego's travel into ``d_e1`` (distance covered during
the reaction time ``t_r`` with acceleration unchanged) and ``d_e2``
(distance covered while hard-braking at ``a_b`` until the check time
``t_n``). Both are clamped constant-acceleration segments, built from
:func:`repro.dynamics.longitudinal.travel`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.parameters import ZhuyiParams
from repro.dynamics.longitudinal import time_to_stop, travel
from repro.errors import EstimationError


def braking_deceleration(current_accel: float, params: ZhuyiParams) -> float:
    """The paper's ``a_b = max(C3, C4 * a0)``.

    ``a0`` in the paper is the ego's current *deceleration*; a currently
    accelerating ego does not weaken its braking authority, so only the
    decelerating component scales.
    """
    current_decel = max(0.0, -current_accel)
    return max(params.c3, params.c4 * current_decel)


@dataclass(frozen=True)
class EgoMotion:
    """Ego longitudinal state at ``t0`` plus the derived braking authority.

    Attributes:
        speed: ego speed at ``t0`` (m/s).
        accel: signed ego acceleration at ``t0`` (m/s^2); held constant
            through the reaction window per the paper.
        braking_decel: hard-braking deceleration ``a_b`` (m/s^2).
    """

    speed: float
    accel: float
    braking_decel: float

    def __post_init__(self) -> None:
        if self.speed < 0.0:
            raise EstimationError(f"ego speed must be non-negative: {self.speed}")
        if self.braking_decel <= 0.0:
            raise EstimationError(
                f"braking deceleration must be positive: {self.braking_decel}"
            )

    @staticmethod
    def from_state(
        speed: float, accel: float, params: ZhuyiParams
    ) -> "EgoMotion":
        """Build from the ego's current speed/accel using the paper's a_b."""
        return EgoMotion(
            speed=speed,
            accel=accel,
            braking_decel=braking_deceleration(accel, params),
        )

    def reaction_travel(
        self, reaction_time: float, speed_cap: float | None = None
    ) -> tuple[float, float]:
        """``(d_e1, v_e(t_r))``: travel during the reaction window.

        The ego holds its current acceleration for ``reaction_time``
        seconds (speed clamped at zero and optionally at ``speed_cap``).
        """
        if reaction_time < 0.0:
            raise EstimationError(
                f"reaction time must be non-negative: {reaction_time}"
            )
        return travel(self.speed, self.accel, reaction_time, speed_cap)

    def braking_travel(
        self, speed_at_reaction: float, braking_time: float
    ) -> tuple[float, float]:
        """``(d_e2, v_en)``: travel while hard-braking for ``braking_time``."""
        if braking_time < 0.0:
            raise EstimationError(
                f"braking time must be non-negative: {braking_time}"
            )
        return travel(speed_at_reaction, -self.braking_decel, braking_time)

    def total_travel(
        self,
        reaction_time: float,
        check_time: float,
        speed_cap: float | None = None,
    ) -> tuple[float, float]:
        """``(d_e1 + d_e2, v_en)`` for a check at ``check_time >= t_r``."""
        if check_time < reaction_time:
            raise EstimationError(
                f"check time {check_time} precedes reaction time {reaction_time}"
            )
        d_e1, v_tr = self.reaction_travel(reaction_time, speed_cap)
        d_e2, v_en = self.braking_travel(v_tr, check_time - reaction_time)
        return d_e1 + d_e2, v_en

    def stop_time_after(
        self, reaction_time: float, speed_cap: float | None = None
    ) -> float:
        """Absolute time at which the ego reaches zero speed.

        The ego coasts (current acceleration) until ``reaction_time`` and
        hard-brakes afterwards. Used to bound the ``t_n`` search.
        """
        _, v_tr = self.reaction_travel(reaction_time, speed_cap)
        return reaction_time + time_to_stop(v_tr, self.braking_decel)


def ego_profile_arrays(
    ego: EgoMotion,
    reaction_time: float | np.ndarray,
    times: np.ndarray,
    speed_cap: float | None = None,
    anchors: tuple[np.ndarray, np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized ``(distance, speed)`` of the coast-then-brake profile.

    The ego holds its current acceleration until ``reaction_time``
    (speed clamped to ``[0, speed_cap]``) and hard-brakes at ``a_b``
    after — the d_e1/d_e2 split of Equations 1-2 evaluated over a whole
    time grid at once.

    ``reaction_time`` may be a scalar (one latency candidate) or an
    array broadcastable against ``times`` — e.g. an ``(L, 1)`` column of
    candidate reaction times against a ``(T,)`` master grid yields
    ``(L, T)`` profile arrays, the ego half of the batched latency
    kernel. Both the scalar latency search and the batched engine call
    this one routine, so their ego kinematics cannot drift.

    ``anchors`` optionally supplies precomputed ``(d_e1, v_tr)``
    reaction-travel values (broadcastable like ``reaction_time``) so a
    caller evaluating several grids for the same reaction times pays
    the scalar closed forms once.
    """
    times = np.asarray(times, dtype=float)
    reaction = np.asarray(reaction_time, dtype=float)
    cap = speed_cap
    v0 = ego.speed
    a0 = ego.accel
    coast = np.minimum(times, reaction)

    if a0 > 0.0:
        limit = cap if cap is not None else math.inf
        t_limit = (limit - v0) / a0 if limit > v0 else 0.0
    elif a0 < 0.0:
        limit = 0.0
        t_limit = v0 / -a0
    else:
        limit = v0
        t_limit = math.inf

    capped = np.minimum(coast, t_limit)
    coast_distance = v0 * capped + 0.5 * a0 * capped**2
    if math.isfinite(t_limit):
        coast_distance = coast_distance + limit * np.maximum(
            0.0, coast - t_limit
        )
    coast_speed = np.clip(
        v0 + a0 * coast,
        0.0,
        cap if cap is not None else math.inf,
    )

    # Braking phase (only for times past the reaction window). The
    # d_e1/v_tr anchors go through the same scalar closed form as the
    # reference search so each candidate's row is bit-identical to a
    # scalar evaluation at that reaction time.
    if anchors is not None:
        d_e1, v_tr = anchors
    elif reaction.ndim == 0:
        d_e1, v_tr = ego.reaction_travel(float(reaction), cap)
    else:
        pairs = [
            ego.reaction_travel(float(r), cap) for r in reaction.ravel()
        ]
        d_e1 = np.array([p[0] for p in pairs]).reshape(reaction.shape)
        v_tr = np.array([p[1] for p in pairs]).reshape(reaction.shape)
    a_b = ego.braking_decel
    tau = np.maximum(0.0, times - reaction)
    v_brake = np.maximum(0.0, v_tr - a_b * tau)
    d_brake = d_e1 + (v_tr**2 - v_brake**2) / (2.0 * a_b)

    braking = times > reaction
    distance = np.where(braking, d_brake, coast_distance)
    speed = np.where(braking, v_brake, coast_speed)
    return distance, speed
