"""Batched tolerable-latency kernel — the whole latency grid at once.

The scalar reference (:class:`repro.core.latency.LatencySearch`, EXACT
strategy) answers "is candidate latency ``l`` safe?" one ``(actor,
candidate)`` pair at a time: for each of the ``L`` grid latencies it
builds a fresh ``t_n`` scan grid, re-derives the ego's coast/brake
profile, re-samples the threat and scans for a feasible check time.
Offline evaluation multiplies that by every actor at every trace tick —
the dominant interpreter overhead of a campaign.

This module replaces the inner loops with one array program per tick:

* Latency candidates only shift the reaction time ``t_r``, so the whole
  family of ego distance/speed profiles is a single broadcasted
  ``(L, T)`` computation over a shared master time grid
  (:func:`repro.core.ego_profile.ego_profile_arrays`).
* Each actor's threat is sampled once over that master grid (plus the
  ``L`` reaction instants) instead of once per candidate
  (:func:`repro.core.threat.sample_grid`).
* Eq 1/2 feasibility, the strict-prefix mask and the per-candidate scan
  windows evaluate simultaneously as ``(A, L, T)`` boolean arrays for
  all actors of a tick; the largest feasible latency falls out of a
  single argmax per actor.

Exact-parity contract: results are **bit-identical** to the scalar
EXACT search — ``latency``, ``check_time`` *and* the ``iterations``
count feeding the Section 4.2 compute model. Three details make that
subtle, and each is reproduced here rather than approximated:

* The scalar scan grid for candidate ``l`` is
  ``arange(0, horizon_l + tn_step, tn_step)``; with a shared step each
  candidate's grid is a bit-exact *prefix* of the master grid, so one
  master ``arange`` plus per-candidate prefix lengths replays every
  scalar grid exactly.
* The search domain opens at ``t_n = t_r``, which need not be a grid
  multiple; the scalar search inserts it via ``union1d``. The kernel
  evaluates the ``t_r`` sample separately and merges its index
  arithmetic (insertion position, duplicate-on-grid detection) so scan
  positions — and therefore ``iterations`` — match the merged array's.
* The strict semantics kill every candidate ``t_n`` at or after the
  first distance violation anywhere in the scanned prefix; in index
  form that is "feasible iff the first candidate index precedes the
  first violation index", computed per (actor, candidate) pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.ego_profile import EgoMotion, ego_profile_arrays
from repro.core.latency import _EPS, LatencyResult
from repro.core.parameters import ZhuyiParams
from repro.core.threat import LongitudinalThreat, sample_grid

#: Sentinel index: "no such position on the merged scan grid". Half the
#: int64 range so the +1 merge shifts can never overflow it.
_NO_INDEX = np.iinfo(np.int64).max // 2

#: Per-chunk element budget for :meth:`LatencyEngine.solve_rows`. A
#: cache-locality compromise, settled by sweeping campaign workloads:
#: larger chunks amortize the per-tick ego-profile builds over more
#: rows, but once the float64 ``(R, S, T)`` temporaries outgrow the
#: last-level cache every broadcasted comparison turns memory-bound —
#: cross-trace row blocks big enough to saturate the old 8M cap ran
#: ~1.5x slower than at this setting, and halving it again loses the
#: profile amortization instead.
_ROWS_CHUNK_ELEMENTS = 2_000_000

#: Rows-per-distinct-tick density at which :meth:`LatencyEngine.solve_rows`
#: switches a wave to the tick-resident grouped kernel. Per-trace row
#: batches sit near the actor count (~2-8 rows per tick), where the
#: gathered cross-tick program wins; variant-stacked campaign blocks sit
#: at actors x variants (tens of rows per tick), where re-reading one
#: cache-hot (S, T) profile per tick beats materializing per-row copies.
_GROUPED_MIN_ROWS_PER_TICK = 16


def _first_true(mask: np.ndarray) -> np.ndarray:
    """Index of the first True along the last axis (``_NO_INDEX`` if none)."""
    return np.where(mask.any(axis=-1), mask.argmax(axis=-1), _NO_INDEX)


def _reaction_anchors(
    ego: EgoMotion, reactions: np.ndarray, cap: float | None
) -> tuple[np.ndarray, np.ndarray]:
    """``(d_e1, v_tr)`` per candidate, via the scalar closed forms."""
    pairs = [ego.reaction_travel(float(r), cap) for r in reactions]
    return (
        np.array([p[0] for p in pairs]),
        np.array([p[1] for p in pairs]),
    )


@dataclass(frozen=True)
class _TickGrid:
    """Per-(ego, l0) precomputation shared by every actor of a tick.

    Everything here depends only on the ego state and the current
    processing latency — never on an actor — so one grid serves a whole
    tick's actor batch. Only the cheap scalar bookkeeping is eager; the
    ``(L, T)`` ego profile family is materialized per candidate slice
    inside :meth:`LatencyEngine._solve_slice`, so a tick whose actors
    all resolve at ``l_max`` never pays for the other L-1 rows.
    """

    latencies: np.ndarray  #: (L,) candidate latencies, descending
    reactions: np.ndarray  #: (L,) reaction time t_r per candidate
    times: np.ndarray  #: (T,) master scan grid (candidate grids are prefixes)
    lengths: np.ndarray  #: (L,) per-candidate prefix length on the master grid
    insert_at: np.ndarray  #: (L,) sorted position of t_r within the prefix
    inserted: np.ndarray  #: (L,) bool: t_r occupies its own merged slot
    sizes: np.ndarray  #: (L,) merged scan size (length + inserted)


@dataclass(frozen=True)
class TraceGrid:
    """Trace-level candidate/time bookkeeping for every tick at once.

    The latency candidates and their reaction times depend only on the
    Zhuyi constants and ``l0`` — never on the ego — so they are shared
    by the whole trace; the per-tick quantities (scan horizons, prefix
    lengths, ``t_r`` insertions) vectorize over ticks. ``times`` is one
    trace-wide master grid: every tick's scan grid is a bit-exact
    prefix of it, so per-tick arrays never need rebuilding.
    """

    latencies: np.ndarray  #: (L,) candidate latencies, descending
    reactions: np.ndarray  #: (L,) reaction time t_r per candidate
    times: np.ndarray  #: (T,) trace-wide master scan grid
    insert_at: np.ndarray  #: (L,) sorted position of t_r on the master grid
    lengths: np.ndarray  #: (N, L) per-tick candidate prefix lengths
    inserted: np.ndarray  #: (N, L) bool: t_r occupies its own merged slot
    sizes: np.ndarray  #: (N, L) merged scan size (length + inserted)

    def tick(self, n: int) -> _TickGrid:
        """The single-tick view — drives the per-tick wave machinery."""
        return _TickGrid(
            latencies=self.latencies,
            reactions=self.reactions,
            times=self.times,
            lengths=self.lengths[n],
            insert_at=self.insert_at,
            inserted=self.inserted[n],
            sizes=self.sizes[n],
        )


@dataclass
class LatencyEngine:
    """Batched per-tick tolerable-latency solver.

    Drop-in equivalent of the scalar EXACT :class:`LatencySearch` —
    same :class:`LatencyResult`, bit-identical values — evaluated as
    one vectorized program over the full latency grid, and over every
    actor of a tick at once via :meth:`solve_batch`.

    Attributes:
        params: the Zhuyi constants.
        strict: require the distance constraint on the whole scanned
            prefix up to ``t_n`` (the scalar search's default).
    """

    params: ZhuyiParams = field(default_factory=ZhuyiParams)
    strict: bool = True

    def solve(
        self, ego: EgoMotion, threat: LongitudinalThreat, l0: float
    ) -> LatencyResult:
        """One actor — :meth:`solve_batch` of a singleton."""
        return self.solve_batch(ego, [threat], l0)[0]

    def solve_batch(
        self,
        ego: EgoMotion,
        threats: Sequence[LongitudinalThreat],
        l0: float,
    ) -> list[LatencyResult]:
        """Solve every actor of a tick against the full latency grid.

        Args:
            ego: the ego's longitudinal state at the tick.
            threats: one threat view per actor (any mix of threat
                types); the ego-side arrays are computed once and
                shared.
            l0: current processing latency (enters ``alpha``).

        Returns:
            One :class:`LatencyResult` per threat, in input order.
        """
        if not threats:
            return []
        grid = self._tick_grid(ego, l0)

        # One flattened sample per actor covers both the master grid
        # and the L reaction instants.
        all_times = np.concatenate([grid.times, grid.reactions])
        sampled = [sample_grid(threat, all_times) for threat in threats]
        gaps = np.stack([g for g, _ in sampled])  # (A, T + L)
        aspeeds = np.stack([s for _, s in sampled])
        return self._solve_tick(grid, ego, gaps, aspeeds)

    @staticmethod
    def _waves(n_latencies: int) -> list[tuple[int, int]]:
        """Doubling partition of the candidate grid: (0,1), (1,3), ...

        The descending grid is solved lazily in these waves: the l_max
        candidate alone first — most actors of a tick are benign and
        resolve right there, and eagerly evaluating the other L-1
        candidates for them would cost more than the scalar search's
        early exit — then geometrically growing slices for the
        survivors. The waves partition the grid (no row evaluates
        twice), so an actor whose answer sits at depth k pays at most
        ~2k rows and an unavoidable collision pays exactly L, while the
        scalar loop grinds k (or L) full scans one at a time.
        """
        waves = []
        lo, width = 0, 1
        while lo < n_latencies:
            waves.append((lo, min(lo + width, n_latencies)))
            lo += width
            width *= 2
        return waves

    def _solve_tick(
        self,
        grid: _TickGrid,
        ego: EgoMotion,
        gaps: np.ndarray,
        aspeeds: np.ndarray,
    ) -> list[LatencyResult]:
        """Wave loop over one tick's actor rows (arrays ``(R, T + L)``).

        Iterations accumulate every merged grid scanned before the hit,
        exactly like the scalar loop.
        """
        n_times = grid.times.size
        gaps_m, gaps_r = gaps[:, :n_times], gaps[:, n_times:]
        va_m, va_r = aspeeds[:, :n_times], aspeeds[:, n_times:]
        miss_prefix = np.concatenate([[0], np.cumsum(grid.sizes)])
        results: list[LatencyResult | None] = [None] * gaps.shape[0]
        active = np.arange(gaps.shape[0])
        for lo, hi in self._waves(grid.latencies.size):
            if active.size == 0:
                break
            found, hit, check_times, scanned = self._solve_slice(
                grid,
                lo,
                hi,
                ego,
                gaps_m[active],
                va_m[active],
                gaps_r[active, lo:hi],
                va_r[active, lo:hi],
            )
            for k in np.flatnonzero(found):
                row = int(active[k])
                h = lo + int(hit[k])
                results[row] = LatencyResult(
                    latency=float(grid.latencies[h]),
                    check_time=float(check_times[k]),
                    iterations=int(miss_prefix[h] + scanned[k]),
                )
            active = active[~found]
        for row in active:
            results[int(row)] = LatencyResult(
                latency=None,
                check_time=None,
                iterations=int(miss_prefix[-1]),
            )
        return results

    # ------------------------------------------------------------------
    # trace-level batching (the "ticks" axis)
    # ------------------------------------------------------------------

    def trace_grid(
        self, ego_motions: Sequence[EgoMotion], l0: float
    ) -> TraceGrid:
        """Candidate/time bookkeeping for every tick of a trace at once.

        The reactions are tick-independent; the per-tick horizons (and
        the prefix lengths / ``t_r`` insertions they induce) vectorize
        over ticks with the same closed forms the scalar path evaluates
        one call at a time, so :meth:`TraceGrid.tick` views are
        bit-identical to per-tick :meth:`_tick_grid` builds.

        Cross-trace stacking: ``ego_motions`` may concatenate the ticks
        of *many* traces (sharing ``l0``) along the tick axis — the
        campaign super-cell path does exactly that. Every per-tick
        quantity above is a pure function of that tick's ego state, and
        the master ``times`` grid only grows a longer tail (``arange``
        values are ``i * step`` regardless of the stop), so each tick's
        prefix — and hence every :meth:`solve_rows` answer — is
        bit-identical whether its trace was gridded alone or stacked.
        """
        params = self.params
        cap = params.ego_speed_cap
        step = params.tn_step
        latency_list = params.latency_grid()
        reactions = np.array(
            [
                latency + params.confirmation_delay(latency, l0)
                for latency in latency_list
            ]
        )

        if cap is None:
            # stop_time_after(r) = r + v_tr / a_b, with v_tr evaluated
            # by the very same branches travel() takes in the uncapped
            # case — including deciding "stopped during the reaction
            # window" by the time-to-zero division, so even knife-edge
            # ticks land on the same side as the scalar call.
            v0 = np.array([ego.speed for ego in ego_motions])
            a0 = np.array([ego.accel for ego in ego_motions])
            a_b = np.array([ego.braking_decel for ego in ego_motions])
            decelerating = a0 < 0.0
            with np.errstate(over="ignore"):
                # The division overflows to inf for subnormal
                # decelerations; inf means "never stops in-window",
                # exactly what the scalar branch concludes.
                time_to_zero = np.where(
                    decelerating, v0 / np.where(decelerating, -a0, 1.0), np.inf
                )
            stopped = time_to_zero[:, None] <= reactions[None, :]
            v_tr = np.where(
                stopped, 0.0, v0[:, None] + a0[:, None] * reactions[None, :]
            )
            stops = reactions[None, :] + v_tr / a_b[:, None]
            horizons = stops + params.horizon_margin
        else:
            # A speed cap brings travel()'s cap branches into play; the
            # capped closed form matches them except within one ulp of
            # the cap-crossing time, so stay on the scalar calls.
            horizons = np.array(
                [
                    [
                        ego.stop_time_after(float(r), cap)
                        + params.horizon_margin
                        for r in reactions
                    ]
                    for ego in ego_motions
                ]
            )

        lengths = np.ceil((horizons + step) / step).astype(np.int64)
        times = np.arange(0.0, float(horizons.max()) + step, step)
        insert_at = np.searchsorted(times, reactions)
        on_grid = times[np.minimum(insert_at, times.size - 1)] == reactions
        inserted = (reactions[None, :] <= horizons) & ~on_grid[None, :]
        return TraceGrid(
            latencies=np.array(latency_list),
            reactions=reactions,
            times=times,
            insert_at=insert_at.astype(np.int64),
            lengths=lengths,
            inserted=inserted,
            sizes=lengths + inserted,
        )

    def solve_rows(
        self,
        grid: TraceGrid,
        tick_indices: np.ndarray,
        ego_motions: Sequence[EgoMotion],
        gaps: np.ndarray,
        aspeeds: np.ndarray,
        constraints: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> list[LatencyResult]:
        """Solve a batch of (tick, actor) rows spanning many ticks.

        Each row pairs a tick index with that actor's threat samples
        over ``concatenate([grid.times, grid.reactions])`` (shape
        ``(R, T + L)``). The l_max candidate — where most rows of most
        workloads resolve — is evaluated for every row in one
        cross-tick array program; only the survivors fall back to the
        per-tick wave machinery, sharing the already-sampled rows.
        Rows need not be unique per (tick, actor): the online replay
        feeds one row per (tick, actor, prediction hypothesis), each
        solved independently against its tick's ego profile — and the
        cross-trace campaign path feeds one row per (trace, tick,
        actor, parameter variant), with ``tick_indices`` offset into a
        stacked multi-trace :meth:`trace_grid`.

        Args:
            grid: the :meth:`trace_grid` for these ticks.
            tick_indices: (R,) tick index of each row.
            ego_motions: per-tick ego states (trace-aligned).
            gaps / aspeeds: (R, T + L) threat samples per row.
            constraints: optional per-row ``(c1, c2)`` arrays of shape
                ``(R,)``, overriding ``params.c1``/``params.c2`` — the
                variant axis of the cross-trace campaign kernel. Every
                other constant (the latency grid, ``k``, the ego
                profile, gating) still comes from ``params``, so only
                variants differing in nothing but c1/c2 may stack.
                Per-row broadcasting multiplies each row by its own
                scalar, so a row's feasibility program is bit-identical
                to a solve under an engine carrying that row's c1/c2.

        Returns:
            One :class:`LatencyResult` per row, in input order.
        """
        tick_indices = np.asarray(tick_indices)
        n_rows = tick_indices.size
        if n_rows == 0:
            return []
        if constraints is not None:
            row_c1 = np.asarray(constraints[0], dtype=float)
            row_c2 = np.asarray(constraints[1], dtype=float)
            if row_c1.shape != (n_rows,) or row_c2.shape != (n_rows,):
                raise ValueError(
                    "per-row constraints must be (R,) arrays matching "
                    f"{n_rows} rows, got {row_c1.shape} and {row_c2.shape}"
                )
        n_times = grid.times.size
        # Per-tick cumulative merged scan sizes — the iterations charged
        # for missing every candidate before a hit.
        miss_prefix = np.concatenate(
            [
                np.zeros((grid.sizes.shape[0], 1), dtype=np.int64),
                np.cumsum(grid.sizes, axis=1),
            ],
            axis=1,
        )

        results: list[LatencyResult | None] = [None] * n_rows
        active = np.arange(n_rows)
        for lo, hi in self._waves(grid.latencies.size):
            if active.size == 0:
                break
            if active.size >= _GROUPED_MIN_ROWS_PER_TICK * np.unique(
                tick_indices[active]
            ).size:
                # Tick-dense waves — many rows per distinct tick, the
                # shape of variant-stacked campaign blocks — go through
                # the tick-resident kernel: one (S, T) profile stays
                # cache-hot while every row of its tick compares against
                # it, with no (R, S, T) gather copies at all.
                found, hit, check_times, scanned = self._solve_rows_grouped(
                    grid,
                    lo,
                    hi,
                    active,
                    tick_indices,
                    ego_motions,
                    gaps,
                    aspeeds,
                    constraints=(
                        None if constraints is None else (row_c1, row_c2)
                    ),
                )
                for k in np.flatnonzero(found):
                    row = int(active[k])
                    h = lo + int(hit[k])
                    results[row] = LatencyResult(
                        latency=float(grid.latencies[h]),
                        check_time=float(check_times[k]),
                        iterations=int(
                            miss_prefix[tick_indices[row], h] + scanned[k]
                        ),
                    )
                active = active[~found]
                continue
            # Cap each kernel call's cache working set; survivor counts
            # shrink wave over wave, so chunk counts fall off quickly.
            # The width estimate uses the survivors' longest candidate
            # scan, not the master axis, so chunks stay as large as the
            # budget allows when the time trim below bites.
            wave_cap = int(grid.lengths[tick_indices[active], lo:hi].max())
            chunk = max(
                1, int(_ROWS_CHUNK_ELEMENTS / ((hi - lo) * max(1, wave_cap)))
            )
            still: list[np.ndarray] = []
            for begin in range(0, active.size, chunk):
                rows = active[begin : begin + chunk]
                # Trim the chunk's time axis to the longest prefix any
                # of its (row, candidate) scans admits: every instant
                # past a row's ``lengths`` is masked invalid anyway, so
                # the answers are identical and the (R, S, T) program
                # never pays for the master grid's tail — which, on
                # stacked multi-trace grids, belongs to *other* traces'
                # horizons.
                t_cap = int(grid.lengths[tick_indices[rows], lo:hi].max())
                found, hit, check_times, scanned = self._solve_rows_slice(
                    grid,
                    lo,
                    hi,
                    tick_indices[rows],
                    ego_motions,
                    gaps[rows, :t_cap],
                    aspeeds[rows, :t_cap],
                    gaps[rows, n_times + lo : n_times + hi],
                    aspeeds[rows, n_times + lo : n_times + hi],
                    constraints=(
                        None
                        if constraints is None
                        else (row_c1[rows], row_c2[rows])
                    ),
                    t_cap=t_cap,
                )
                for k in np.flatnonzero(found):
                    row = int(rows[k])
                    h = lo + int(hit[k])
                    results[row] = LatencyResult(
                        latency=float(grid.latencies[h]),
                        check_time=float(check_times[k]),
                        iterations=int(
                            miss_prefix[tick_indices[row], h] + scanned[k]
                        ),
                    )
                still.append(rows[~found])
            active = np.concatenate(still) if still else active[:0]
        for row in active:
            results[int(row)] = LatencyResult(
                latency=None,
                check_time=None,
                iterations=int(miss_prefix[tick_indices[row], -1]),
            )
        return results

    def _solve_rows_grouped(
        self,
        grid: TraceGrid,
        lo: int,
        hi: int,
        rows: np.ndarray,
        tick_indices: np.ndarray,
        ego_motions: Sequence[EgoMotion],
        gaps: np.ndarray,
        aspeeds: np.ndarray,
        constraints: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Candidates ``[lo, hi)`` for tick-dense row batches.

        The tick-resident sibling of :meth:`_solve_rows_slice`: rows are
        grouped by tick and each group runs the feasibility program by
        broadcasting against its tick's own ``(S, T)`` ego profile —
        trimmed to that tick's longest candidate scan — instead of
        gathering per-row ``(R, S, T)`` profile copies. Elementwise the
        arithmetic is unchanged, so results stay bit-identical to the
        gathered path; it simply wins when many rows (actor x variant
        stacks) share each distinct tick. ``gaps``/``aspeeds`` are the
        full ``(R, T + L)`` sample arrays of :meth:`solve_rows`, indexed
        here per group; ``rows`` selects the still-active row subset.
        ``constraints`` likewise carries full-length per-row c1/c2
        arrays. Returns ``(found, hit, check_times, scanned)`` aligned
        with ``rows``.
        """
        cap = self.params.ego_speed_cap
        n_times = grid.times.size
        n_slice = hi - lo
        reactions = grid.reactions[lo:hi]
        pos = grid.insert_at[lo:hi]

        found = np.zeros(rows.size, dtype=bool)
        hit = np.zeros(rows.size, dtype=np.int64)
        check_times = np.zeros(rows.size, dtype=float)
        scanned = np.zeros(rows.size, dtype=np.int64)

        ticks = tick_indices[rows]
        order = np.argsort(ticks, kind="stable")
        sorted_ticks = ticks[order]
        starts = np.flatnonzero(
            np.concatenate(([True], sorted_ticks[1:] != sorted_ticks[:-1]))
        )
        bounds = np.append(starts, sorted_ticks.size)
        for g in range(starts.size):
            n = int(sorted_ticks[bounds[g]])
            lengths = grid.lengths[n, lo:hi]
            t_cap = int(lengths.max())
            times = grid.times[:t_cap]
            ego = ego_motions[n]
            anchors = _reaction_anchors(ego, reactions, cap)
            dist, speed = ego_profile_arrays(
                ego,
                reactions[:, None],
                times,
                cap,
                anchors=(anchors[0][:, None], anchors[1][:, None]),
            )
            dist_r, speed_r = ego_profile_arrays(
                ego, reactions, reactions, cap, anchors=anchors
            )
            # Row-independent per-tick masks: the scan window, the
            # per-candidate prefix lengths and the t_r insertion slots.
            valid = np.arange(t_cap)[None, :] < lengths[:, None]
            window = times[None, :] >= reactions[:, None] - _EPS
            wv = window & valid
            ins = grid.inserted[n, lo:hi]

            group = order[bounds[g] : bounds[g + 1]]
            # Bound the (G, S, T) workspace for pathologically wide
            # groups; ordinary campaign stacks fit in one pass.
            step = max(1, int(_ROWS_CHUNK_ELEMENTS / (n_slice * t_cap)))
            for begin in range(0, group.size, step):
                sel = group[begin : begin + step]
                r_glob = rows[sel]
                if constraints is None:
                    c1: float | np.ndarray = self.params.c1
                    c2: float | np.ndarray = self.params.c2
                    c1_r: float | np.ndarray = c1
                    c2_r: float | np.ndarray = c2
                else:
                    c1 = constraints[0][r_glob][:, None, None]
                    c2 = constraints[1][r_glob][:, None, None]
                    c1_r = constraints[0][r_glob][:, None]
                    c2_r = constraints[1][r_glob][:, None]
                gaps_m = gaps[r_glob, :t_cap][:, None, :]
                va_m = aspeeds[r_glob, :t_cap][:, None, :]
                gaps_r = gaps[r_glob, n_times + lo : n_times + hi]
                va_r = aspeeds[r_glob, n_times + lo : n_times + hi]

                d_ok = dist[None] <= c1 * gaps_m + _EPS
                v_ok = speed[None] <= c2 * va_m + _EPS
                candidate = d_ok & v_ok & wv[None]
                d_bad = ~d_ok & valid[None]

                fv_m = _first_true(d_bad)  # (G, S)
                cf_m = _first_true(candidate)
                first_violation = np.where(
                    fv_m != _NO_INDEX,
                    fv_m + (ins[None] & (fv_m >= pos[None])),
                    _NO_INDEX,
                )
                first_candidate = np.where(
                    cf_m != _NO_INDEX,
                    cf_m + (ins[None] & (cf_m >= pos[None])),
                    _NO_INDEX,
                )
                d_ok_r = dist_r[None] <= c1_r * gaps_r + _EPS
                v_ok_r = speed_r[None] <= c2_r * va_r + _EPS
                first_violation = np.minimum(
                    first_violation,
                    np.where(ins[None] & ~d_ok_r, pos[None], _NO_INDEX),
                )
                first_candidate = np.minimum(
                    first_candidate,
                    np.where(
                        ins[None] & d_ok_r & v_ok_r, pos[None], _NO_INDEX
                    ),
                )

                feasible = first_candidate < _NO_INDEX
                if self.strict:
                    feasible &= first_candidate < first_violation

                f = feasible.any(axis=-1)
                h = feasible.argmax(axis=-1)
                sub = np.arange(f.size)
                best = first_candidate[sub, h]
                ins_h = ins[h]
                pos_h = grid.insert_at[lo + h]
                from_reaction = ins_h & (best == pos_h)
                master_index = best - (ins_h & (best > pos_h))
                found[sel] = f
                hit[sel] = h
                check_times[sel] = np.where(
                    from_reaction,
                    grid.reactions[lo + h],
                    times[np.minimum(master_index, t_cap - 1)],
                )
                scanned[sel] = best + 1
        return found, hit, check_times, scanned

    def _solve_rows_slice(
        self,
        grid: TraceGrid,
        lo: int,
        hi: int,
        tick_idx: np.ndarray,
        ego_motions: Sequence[EgoMotion],
        gaps_m: np.ndarray,
        va_m: np.ndarray,
        gaps_r: np.ndarray,
        va_r: np.ndarray,
        constraints: tuple[np.ndarray, np.ndarray] | None = None,
        t_cap: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Candidates ``[lo, hi)`` for rows spanning many ticks.

        The cross-tick generalization of :meth:`_solve_slice`: ego
        profile slices are built once per distinct tick and gathered to
        rows, the feasibility program runs as one ``(R, S, T)`` batch,
        and the ``t_r``-insertion bookkeeping indexes per (row,
        candidate). ``constraints`` optionally carries per-row c1/c2
        columns (broadcast over candidates and instants) in place of
        the engine constants. ``t_cap`` trims the master time axis to
        its first ``t_cap`` instants (``gaps_m``/``va_m`` must arrive
        pre-sliced to match); it must cover every row's candidate
        lengths, in which case the trim is invisible to the results
        because all trimmed instants were ``valid``-masked anyway. Same
        returns as :meth:`_solve_slice`.
        """
        if constraints is None:
            c1: float | np.ndarray = self.params.c1
            c2: float | np.ndarray = self.params.c2
            c1_r: float | np.ndarray = c1
            c2_r: float | np.ndarray = c2
        else:
            # (R, 1, 1) columns against the (R, S, T) master program
            # and (R, 1) against the (R, S) t_r samples: each row
            # multiplies by its own scalar, exactly as a scalar c1/c2
            # would have multiplied it.
            c1 = constraints[0][:, None, None]
            c2 = constraints[1][:, None, None]
            c1_r = constraints[0][:, None]
            c2_r = constraints[1][:, None]
        cap = self.params.ego_speed_cap
        n_times = grid.times.size if t_cap is None else t_cap
        times = grid.times[:n_times]
        n_slice = hi - lo
        reactions = grid.reactions[lo:hi]

        unique_ticks, row_pos = np.unique(tick_idx, return_inverse=True)
        dist = np.empty((unique_ticks.size, n_slice, n_times))
        speed = np.empty((unique_ticks.size, n_slice, n_times))
        dist_r = np.empty((unique_ticks.size, n_slice))
        speed_r = np.empty((unique_ticks.size, n_slice))
        for i, n in enumerate(unique_ticks):
            ego = ego_motions[int(n)]
            anchors = _reaction_anchors(ego, reactions, cap)
            dist[i], speed[i] = ego_profile_arrays(
                ego,
                reactions[:, None],
                times,
                cap,
                anchors=(anchors[0][:, None], anchors[1][:, None]),
            )
            dist_r[i], speed_r[i] = ego_profile_arrays(
                ego, reactions, reactions, cap, anchors=anchors
            )

        d_ok = dist[row_pos] <= c1 * gaps_m[:, None, :] + _EPS
        v_ok = speed[row_pos] <= c2 * va_m[:, None, :] + _EPS
        window = times[None, None, :] >= reactions[None, :, None] - _EPS
        valid = (
            np.arange(n_times)[None, None, :]
            < grid.lengths[tick_idx, lo:hi][:, :, None]
        )
        candidate = d_ok & v_ok & window & valid
        d_bad = ~d_ok & valid

        ins = grid.inserted[tick_idx, lo:hi]  # (R, S)
        pos = grid.insert_at[None, lo:hi]
        fv_m = _first_true(d_bad)  # (R, S)
        cf_m = _first_true(candidate)
        first_violation = np.where(
            fv_m != _NO_INDEX, fv_m + (ins & (fv_m >= pos)), _NO_INDEX
        )
        first_candidate = np.where(
            cf_m != _NO_INDEX, cf_m + (ins & (cf_m >= pos)), _NO_INDEX
        )
        d_ok_r = dist_r[row_pos] <= c1_r * gaps_r + _EPS
        v_ok_r = speed_r[row_pos] <= c2_r * va_r + _EPS
        first_violation = np.minimum(
            first_violation, np.where(ins & ~d_ok_r, pos, _NO_INDEX)
        )
        first_candidate = np.minimum(
            first_candidate, np.where(ins & d_ok_r & v_ok_r, pos, _NO_INDEX)
        )

        feasible = first_candidate < _NO_INDEX
        if self.strict:
            feasible &= first_candidate < first_violation

        found = feasible.any(axis=-1)
        hit = feasible.argmax(axis=-1)
        rows = np.arange(feasible.shape[0])
        best = first_candidate[rows, hit]
        ins_h = ins[rows, hit]
        pos_h = grid.insert_at[lo + hit]
        from_reaction = ins_h & (best == pos_h)
        master_index = best - (ins_h & (best > pos_h))
        check_times = np.where(
            from_reaction,
            grid.reactions[lo + hit],
            times[np.minimum(master_index, n_times - 1)],
        )
        return found, hit, check_times, best + 1

    def _solve_slice(
        self,
        grid: _TickGrid,
        lo: int,
        hi: int,
        ego: EgoMotion,
        gaps_m: np.ndarray,
        va_m: np.ndarray,
        gaps_r: np.ndarray,
        va_r: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Feasibility of candidates ``[lo, hi)`` for a batch of actors.

        Returns per-actor arrays ``(found, hit, check_time, scanned)``:
        whether some candidate in the slice is feasible, the first
        feasible slice-local candidate index, its check time, and how
        many merged grid points that candidate's scan consumed.
        """
        c1, c2 = self.params.c1, self.params.c2
        cap = self.params.ego_speed_cap
        n_times = grid.times.size

        # The slice's ego profile family, materialized on demand; the
        # scalar reaction-travel anchors are computed once and shared
        # between the grid rows and the t_r point evaluation.
        reactions = grid.reactions[lo:hi]
        anchors = _reaction_anchors(ego, reactions, cap)
        ego_distance, ego_speed = ego_profile_arrays(
            ego,
            reactions[:, None],
            grid.times,
            cap,
            anchors=(anchors[0][:, None], anchors[1][:, None]),
        )
        ego_distance_r, ego_speed_r = ego_profile_arrays(
            ego, reactions, reactions, cap, anchors=anchors
        )
        window = grid.times[None, :] >= reactions[:, None] - _EPS
        valid = (
            np.arange(n_times)[None, :] < grid.lengths[lo:hi, None]
        )

        # Eq 1/2 feasibility for every (actor, candidate, instant).
        d_ok = ego_distance[None] <= c1 * gaps_m[:, None, :] + _EPS
        v_ok = ego_speed[None] <= c2 * va_m[:, None, :] + _EPS
        candidate = d_ok & v_ok & window[None] & valid[None]
        d_bad = ~d_ok & valid[None]

        # First indices on the master grid, then mapped onto the merged
        # (t_r-inserted) grid the scalar search scans.
        ins = grid.inserted[None, lo:hi]
        pos = grid.insert_at[None, lo:hi]
        fv_m = _first_true(d_bad)  # (A, hi - lo)
        cf_m = _first_true(candidate)
        first_violation = np.where(
            fv_m != _NO_INDEX, fv_m + (ins & (fv_m >= pos)), _NO_INDEX
        )
        first_candidate = np.where(
            cf_m != _NO_INDEX, cf_m + (ins & (cf_m >= pos)), _NO_INDEX
        )

        # The t_r sample itself (t_n = t_r is always inside the window).
        d_ok_r = ego_distance_r[None] <= c1 * gaps_r + _EPS
        v_ok_r = ego_speed_r[None] <= c2 * va_r + _EPS
        first_violation = np.minimum(
            first_violation, np.where(ins & ~d_ok_r, pos, _NO_INDEX)
        )
        first_candidate = np.minimum(
            first_candidate, np.where(ins & d_ok_r & v_ok_r, pos, _NO_INDEX)
        )

        feasible = first_candidate < _NO_INDEX
        if self.strict:
            # Strict prefix: every merged index at or past the first
            # distance violation is masked out, so only a candidate
            # strictly before it survives.
            feasible &= first_candidate < first_violation

        found = feasible.any(axis=-1)
        hit = feasible.argmax(axis=-1)
        rows = np.arange(feasible.shape[0])
        best = first_candidate[rows, hit]

        # Check times: merged index ``pos`` is the inserted t_r when an
        # insertion happened (master indices then map around it).
        ins_h = grid.inserted[lo + hit]
        pos_h = grid.insert_at[lo + hit]
        from_reaction = ins_h & (best == pos_h)
        master_index = best - (ins_h & (best > pos_h))
        check_times = np.where(
            from_reaction,
            grid.reactions[lo + hit],
            grid.times[np.minimum(master_index, n_times - 1)],
        )
        return found, hit, check_times, best + 1

    # ------------------------------------------------------------------
    # per-tick precomputation
    # ------------------------------------------------------------------

    def _tick_grid(self, ego: EgoMotion, l0: float) -> _TickGrid:
        """One tick's candidate/time bookkeeping.

        A single-tick :meth:`trace_grid` — one derivation of the
        parity-critical grid arithmetic, not two that could drift.
        """
        return self.trace_grid([ego], l0).tick(0)
