"""Turning actor motion into the longitudinal quantities of Equations 1-2.

For a candidate check time ``t_n`` the Zhuyi constraints need two numbers:
``s_n`` — the distance between the ego at ``t0`` and the actor at ``t_n``
— and ``v_an`` — the actor's speed at ``t_n``. A *threat* is anything that
can answer those two queries over time.

Two implementations are provided: :class:`FixedGapThreat` (constant gap
and actor speed — the Figure 8 sensitivity sweep fixes ``s_n`` exactly
this way) and :class:`TrajectoryThreat` (gap and speed read off a
predicted or recorded actor trajectory).

:class:`ThreatAssessor` adds the paper's "considers the possibility of a
collision": actors whose predicted motion never enters the ego's lane
corridor within the horizon — or that stay behind the ego — cannot be hit
by a forward-driving ego and are not threats at all (their tolerable
latency is ``l_max``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.parameters import ZhuyiParams
from repro.dynamics.state import StateTrajectory, VehicleSpec, VehicleState
from repro.errors import EstimationError
from repro.geometry.vec import Vec2
from repro.road.track import Road


@runtime_checkable
class LongitudinalThreat(Protocol):
    """The per-actor inputs of Equations 1-2 as functions of time.

    Time is relative: ``t = 0`` is the estimation instant ``t0``.
    """

    def gap_at(self, t: float) -> float:
        """``s_n`` at ``t``: allowed ego travel before reaching the actor.

        Bumper-to-bumper (vehicle half-lengths already subtracted),
        clamped at zero.
        """
        ...

    def actor_speed_at(self, t: float) -> float:
        """``v_an`` at ``t``: the actor's speed (m/s)."""
        ...

    def sample(self, times: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized ``(s_n, v_an)`` over an array of relative times."""
        ...


@dataclass(frozen=True)
class FixedGapThreat:
    """A threat with constant gap and constant actor speed.

    This is the configuration of the paper's sensitivity study (Section
    4.3): "We sweep v_e0 and v_an by fixing s_n".
    """

    gap: float
    actor_speed: float

    def __post_init__(self) -> None:
        if self.gap < 0.0:
            raise EstimationError(f"gap must be non-negative, got {self.gap}")
        if self.actor_speed < 0.0:
            raise EstimationError(
                f"actor speed must be non-negative, got {self.actor_speed}"
            )

    def gap_at(self, t: float) -> float:
        return self.gap

    def actor_speed_at(self, t: float) -> float:
        return self.actor_speed

    def sample(self, times: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        times = np.asarray(times, dtype=float)
        return (
            np.full_like(times, self.gap),
            np.full_like(times, self.actor_speed),
        )


@dataclass(frozen=True)
class CorridorSpec:
    """The ego's lane corridor, for masking out-of-corridor instants.

    A collision with a braking, lane-keeping ego is only possible while
    the actor laterally overlaps the ego's corridor; at other instants
    the distance constraint is vacuous (``s_n = inf``).
    """

    road: Road | None
    ego_frame_origin: "VehicleState"
    ego_lateral: float
    overlap_width: float

    def lateral_offsets(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Lateral path offset of many world points (vectorized).

        Straight centerlines (and the no-road ego-heading fallback) use
        pure array arithmetic; other centerline shapes fall back to
        per-point projection.
        """
        import math

        from repro.road.lane import StraightCenterline

        if self.road is None:
            frame = self.ego_frame_origin.frame()
            dx = xs - frame.origin.x
            dy = ys - frame.origin.y
            sin_h, cos_h = math.sin(frame.heading), math.cos(frame.heading)
            return -sin_h * dx + cos_h * dy
        centerline = self.road.centerline
        if isinstance(centerline, StraightCenterline):
            dx = xs - centerline.start.x
            dy = ys - centerline.start.y
            sin_h = math.sin(centerline.heading)
            cos_h = math.cos(centerline.heading)
            return -sin_h * dx + cos_h * dy
        return np.array(
            [
                self.road.to_frenet(Vec2(float(x), float(y))).d
                for x, y in zip(xs, ys)
            ]
        )

    def in_corridor(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Boolean mask of points inside the ego's corridor."""
        offsets = self.lateral_offsets(xs, ys)
        return np.abs(offsets - self.ego_lateral) <= self.overlap_width


class TrajectoryThreat:
    """Threat quantities read off an actor trajectory.

    ``s_n(t)`` is the Euclidean distance from the *ego position at t0* to
    the *actor position at t0 + t*, minus both vehicles' half-lengths
    (bumper-to-bumper), clamped at zero — exactly the paper's "distance
    between the ego at time t0 and actor at t_n". Queries beyond the
    trajectory's last sample coast the actor at its final velocity (a
    frozen position with a non-zero speed would be a physically
    impossible ghost that spuriously caps the distance budget).

    With a :class:`CorridorSpec`, instants where the actor is laterally
    clear of the ego's corridor report an infinite gap — the ego cannot
    collide with an actor that is not in its path at that moment, so
    the distance constraint must not bind there (this matters for the
    strict prefix check against cut-in/cut-out trajectories).
    """

    def __init__(
        self,
        ego_state: VehicleState,
        ego_spec: VehicleSpec,
        actor_trajectory: StateTrajectory,
        actor_spec: VehicleSpec,
        t0: float = 0.0,
        corridor: CorridorSpec | None = None,
    ):
        self._ego_position = ego_state.position
        self._trajectory = actor_trajectory
        self._t0 = t0
        self._half_lengths = (ego_spec.length + actor_spec.length) / 2.0
        self._corridor = corridor
        self._mask_step = 0.01
        self._mask: np.ndarray | None = None

    @property
    def prediction_end(self) -> float:
        """Relative time at which real prediction data runs out."""
        return max(0.0, self._trajectory.end_time - self._t0)

    def gap_at(self, t: float) -> float:
        gaps, _ = self.sample(np.array([t]))
        return float(gaps[0])

    def actor_speed_at(self, t: float) -> float:
        return self._trajectory.extrapolated_state_at(self._t0 + t).speed

    def sample(self, times: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        times = np.asarray(times, dtype=float)
        xs, ys, speeds = self._trajectory.sample_extrapolated(self._t0 + times)
        distances = np.hypot(
            xs - self._ego_position.x, ys - self._ego_position.y
        )
        gaps = np.maximum(0.0, distances - self._half_lengths)
        if self._corridor is not None:
            gaps = np.where(self._corridor_mask(times), gaps, np.inf)
        return gaps, speeds

    #: Span of the precomputed corridor mask (relative seconds). Queries
    #: beyond it clamp to the final mask value.
    _MASK_SPAN = 25.0

    def _corridor_mask(self, times: np.ndarray) -> np.ndarray:
        """In-corridor mask at the queried times (cached master grid).

        The mask is evaluated once on a dense grid and then looked up by
        nearest sample — the lateral geometry is smooth at the 10 ms
        scale, and this keeps repeated per-latency scans cheap even on
        curved roads where projection is per-point.
        """
        if self._mask is None:
            grid = np.arange(0.0, self._MASK_SPAN, self._mask_step)
            xs, ys, _ = self._trajectory.sample_extrapolated(self._t0 + grid)
            self._mask = self._corridor.in_corridor(xs, ys)
        indices = np.clip(
            np.rint(times / self._mask_step).astype(int),
            0,
            len(self._mask) - 1,
        )
        return self._mask[indices]


@dataclass(frozen=True)
class ThreatAssessor:
    """Decides whether an actor is a collision threat to the ego.

    The decision samples the actor's predicted motion over the horizon in
    road Frenet coordinates (falling back to the ego's heading frame when
    no road is given) and requires that

    * the actor is not behind the ego's rear bumper at ``t0`` (a braking
      ego cannot collide with traffic approaching from behind — that
      actor's own safety envelope is responsible, as in RSS), and
    * at some sampled time the actor laterally overlaps the ego's
      corridor (half-widths + margin) while *fully ahead* of the ego —
      an abeam actor drifting sideways into the ego is a side-swipe no
      processing rate can brake away from, and again the merger's
      responsibility under RSS.

    Actors failing these can only be struck if the ego leaves its lane,
    which the paper's hard-braking safety procedure never does.
    """

    params: ZhuyiParams
    road: Road | None = None
    gate_step: float = 0.1

    def assess(
        self,
        ego_state: VehicleState,
        ego_spec: VehicleSpec,
        actor_trajectory: StateTrajectory,
        actor_spec: VehicleSpec,
        t0: float = 0.0,
    ) -> TrajectoryThreat | None:
        """The actor's threat view, or ``None`` if it cannot collide."""
        if self.params.gate_lateral and not self._could_collide(
            ego_state, ego_spec, actor_trajectory, actor_spec, t0
        ):
            return None
        corridor = None
        if self.params.gate_lateral:
            _, ego_d = self._path_coordinates(ego_state, ego_state)
            corridor = CorridorSpec(
                road=self.road,
                ego_frame_origin=ego_state,
                ego_lateral=ego_d,
                overlap_width=(
                    (ego_spec.width + actor_spec.width) / 2.0
                    + self.params.lateral_margin
                ),
            )
        return TrajectoryThreat(
            ego_state=ego_state,
            ego_spec=ego_spec,
            actor_trajectory=actor_trajectory,
            actor_spec=actor_spec,
            t0=t0,
            corridor=corridor,
        )

    def _path_coordinates(self, state: VehicleState, ego_state: VehicleState):
        """(station, lateral offset) of ``state`` along the ego's path."""
        if self.road is not None:
            frenet = self.road.to_frenet(state.position)
            return frenet.s, frenet.d
        # No road: treat the ego's current heading as a straight path.
        frame = ego_state.frame()
        local = frame.to_local(state.position)
        return local.x, local.y

    def _could_collide(
        self,
        ego_state: VehicleState,
        ego_spec: VehicleSpec,
        actor_trajectory: StateTrajectory,
        actor_spec: VehicleSpec,
        t0: float,
    ) -> bool:
        ego_s, ego_d = self._path_coordinates(ego_state, ego_state)
        overlap_width = (
            (ego_spec.width + actor_spec.width) / 2.0 + self.params.lateral_margin
        )
        half_lengths = (ego_spec.length + actor_spec.length) / 2.0
        rear_bumper = ego_s - half_lengths

        actor_now = actor_trajectory.extrapolated_state_at(t0)
        actor_s_now, _ = self._path_coordinates(actor_now, ego_state)
        if actor_s_now < rear_bumper:
            return False

        horizon = min(
            self.params.horizon,
            max(actor_trajectory.end_time - t0, 0.0) + self.gate_step,
        )
        t = 0.0
        while t <= horizon + 1e-9:
            actor = actor_trajectory.extrapolated_state_at(t0 + t)
            actor_s, actor_d = self._path_coordinates(actor, ego_state)
            laterally_overlapping = abs(actor_d - ego_d) <= overlap_width
            fully_ahead = actor_s >= ego_s + half_lengths
            if laterally_overlapping and fully_ahead:
                return True
            t += self.gate_step
        return False
