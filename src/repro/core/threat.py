"""Turning actor motion into the longitudinal quantities of Equations 1-2.

For a candidate check time ``t_n`` the Zhuyi constraints need two numbers:
``s_n`` — the distance between the ego at ``t0`` and the actor at ``t_n``
— and ``v_an`` — the actor's speed at ``t_n``. A *threat* is anything that
can answer those two queries over time.

Two implementations are provided: :class:`FixedGapThreat` (constant gap
and actor speed — the Figure 8 sensitivity sweep fixes ``s_n`` exactly
this way) and :class:`TrajectoryThreat` (gap and speed read off a
predicted or recorded actor trajectory).

:class:`ThreatAssessor` adds the paper's "considers the possibility of a
collision": actors whose predicted motion never enters the ego's lane
corridor within the horizon — or that stay behind the ego — cannot be hit
by a forward-driving ego and are not threats at all (their tolerable
latency is ``l_max``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.parameters import ZhuyiParams
from repro.dynamics.state import (
    RolloutArrays,
    StateTrajectory,
    VehicleSpec,
    VehicleState,
)
from repro.errors import EstimationError
from repro.geometry.vec import Vec2
from repro.road.track import Road


@runtime_checkable
class LongitudinalThreat(Protocol):
    """The per-actor inputs of Equations 1-2 as functions of time.

    Time is relative: ``t = 0`` is the estimation instant ``t0``.
    """

    def gap_at(self, t: float) -> float:
        """``s_n`` at ``t``: allowed ego travel before reaching the actor.

        Bumper-to-bumper (vehicle half-lengths already subtracted),
        clamped at zero.
        """
        ...

    def actor_speed_at(self, t: float) -> float:
        """``v_an`` at ``t``: the actor's speed (m/s)."""
        ...

    def sample(self, times: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized ``(s_n, v_an)`` over an array of relative times."""
        ...


def sample_grid(
    threat: LongitudinalThreat, times: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(s_n, v_an)`` over a time grid of any shape.

    Threats only promise 1-D :meth:`~LongitudinalThreat.sample`; this is
    the batch sampling entry point shared by the scalar search and the
    batched engine — one flattened interpolation per threat per call,
    reshaped back to the query grid. Because the per-element arithmetic
    is identical to a sequence of 1-D samples, both paths see
    bit-identical threat quantities.
    """
    times = np.asarray(times, dtype=float)
    gaps, speeds = threat.sample(times.ravel())
    return gaps.reshape(times.shape), speeds.reshape(times.shape)


@dataclass(frozen=True)
class FixedGapThreat:
    """A threat with constant gap and constant actor speed.

    This is the configuration of the paper's sensitivity study (Section
    4.3): "We sweep v_e0 and v_an by fixing s_n".
    """

    gap: float
    actor_speed: float

    def __post_init__(self) -> None:
        if self.gap < 0.0:
            raise EstimationError(f"gap must be non-negative, got {self.gap}")
        if self.actor_speed < 0.0:
            raise EstimationError(
                f"actor speed must be non-negative, got {self.actor_speed}"
            )

    def gap_at(self, t: float) -> float:
        return self.gap

    def actor_speed_at(self, t: float) -> float:
        return self.actor_speed

    def sample(self, times: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        times = np.asarray(times, dtype=float)
        return (
            np.full_like(times, self.gap),
            np.full_like(times, self.actor_speed),
        )


@dataclass(frozen=True)
class CorridorSpec:
    """The ego's lane corridor, for masking out-of-corridor instants.

    A collision with a braking, lane-keeping ego is only possible while
    the actor laterally overlaps the ego's corridor; at other instants
    the distance constraint is vacuous (``s_n = inf``).
    """

    road: Road | None
    ego_frame_origin: "VehicleState"
    ego_lateral: float
    overlap_width: float

    def lateral_offsets(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Lateral path offset of many world points (vectorized).

        Straight centerlines (and the no-road ego-heading fallback) use
        pure array arithmetic; other centerline shapes batch through
        :meth:`repro.road.track.Road.to_frenet_batch`.
        """
        from repro.road.lane import StraightCenterline

        if self.road is None:
            frame = self.ego_frame_origin.frame()
            dx = xs - frame.origin.x
            dy = ys - frame.origin.y
            sin_h, cos_h = math.sin(frame.heading), math.cos(frame.heading)
            return -sin_h * dx + cos_h * dy
        centerline = self.road.centerline
        if isinstance(centerline, StraightCenterline):
            dx = xs - centerline.start.x
            dy = ys - centerline.start.y
            sin_h = math.sin(centerline.heading)
            cos_h = math.cos(centerline.heading)
            return -sin_h * dx + cos_h * dy
        _, lateral = self.road.to_frenet_batch(xs, ys)
        return lateral

    def in_corridor(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Boolean mask of points inside the ego's corridor."""
        offsets = self.lateral_offsets(xs, ys)
        return np.abs(offsets - self.ego_lateral) <= self.overlap_width


#: Resolution / span of the precomputed corridor mask (relative
#: seconds). Shared by the per-tick threat and the trace-batched
#: sampler so the two quantize lateral geometry identically.
_MASK_STEP = 0.01
_MASK_SPAN = 25.0


class TrajectoryThreat:
    """Threat quantities read off an actor trajectory.

    ``s_n(t)`` is the Euclidean distance from the *ego position at t0* to
    the *actor position at t0 + t*, minus both vehicles' half-lengths
    (bumper-to-bumper), clamped at zero — exactly the paper's "distance
    between the ego at time t0 and actor at t_n". Queries beyond the
    trajectory's last sample coast the actor at its final velocity (a
    frozen position with a non-zero speed would be a physically
    impossible ghost that spuriously caps the distance budget).

    With a :class:`CorridorSpec`, instants where the actor is laterally
    clear of the ego's corridor report an infinite gap — the ego cannot
    collide with an actor that is not in its path at that moment, so
    the distance constraint must not bind there (this matters for the
    strict prefix check against cut-in/cut-out trajectories).
    """

    def __init__(
        self,
        ego_state: VehicleState,
        ego_spec: VehicleSpec,
        actor_trajectory: StateTrajectory,
        actor_spec: VehicleSpec,
        t0: float = 0.0,
        corridor: CorridorSpec | None = None,
    ):
        self._ego_position = ego_state.position
        self._trajectory = actor_trajectory
        self._t0 = t0
        self._half_lengths = (ego_spec.length + actor_spec.length) / 2.0
        self._corridor = corridor
        self._mask_step = _MASK_STEP
        self._mask: np.ndarray | None = None

    @property
    def prediction_end(self) -> float:
        """Relative time at which real prediction data runs out."""
        return max(0.0, self._trajectory.end_time - self._t0)

    def gap_at(self, t: float) -> float:
        gaps, _ = self.sample(np.array([t]))
        return float(gaps[0])

    def actor_speed_at(self, t: float) -> float:
        return self._trajectory.extrapolated_state_at(self._t0 + t).speed

    def sample(self, times: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        times = np.asarray(times, dtype=float)
        xs, ys, speeds = self._trajectory.sample_extrapolated(self._t0 + times)
        distances = np.hypot(
            xs - self._ego_position.x, ys - self._ego_position.y
        )
        gaps = np.maximum(0.0, distances - self._half_lengths)
        if self._corridor is not None:
            gaps = np.where(self._corridor_mask(times), gaps, np.inf)
        return gaps, speeds

    def _corridor_mask(self, times: np.ndarray) -> np.ndarray:
        """In-corridor mask at the queried times (cached master grid).

        Quantization contract: the mask is evaluated exactly once, on
        the fixed master grid ``0, 10 ms, 20 ms, ... < 25 s`` of
        relative times, and *every* query — on-grid or off-grid — is
        answered by the nearest grid sample (``round(t / 10 ms)``,
        half-to-even, clamped to the grid ends; negative and beyond-span
        queries snap to the first/last sample). Off-grid queries never
        trigger a re-evaluation, and two query times closer than 5 ms to
        the same grid point always agree. The lateral geometry is smooth
        at the 10 ms scale, so the snap keeps repeated per-latency scans
        cheap even on curved roads where projection is per-point; the
        trace-batched sampler (:meth:`ThreatAssessor.sample_threats_trace`)
        applies the same quantization so both backends mask identically.
        """
        if self._mask is None:
            grid = np.arange(0.0, _MASK_SPAN, self._mask_step)
            xs, ys, _ = self._trajectory.sample_extrapolated(self._t0 + grid)
            self._mask = self._corridor.in_corridor(xs, ys)
        indices = np.clip(
            np.rint(times / self._mask_step).astype(int),
            0,
            len(self._mask) - 1,
        )
        return self._mask[indices]


@dataclass(frozen=True)
class EgoPathRows:
    """Ego-side row arrays shared by every actor of a trace.

    Everything the row-batched gate and sampler need from the ego —
    world positions and path (Frenet) coordinates per tick — depends
    only on the ego states and the road, never on an actor or on the
    Zhuyi constants. Build once per trace with
    :meth:`ThreatAssessor.ego_path_rows` and pass to every
    :meth:`~ThreatAssessor.could_collide_trace` /
    :meth:`~ThreatAssessor.sample_threats_trace` call for that trace —
    the cross-actor (and, in the campaign super-cell path,
    cross-variant) cache of the ego-side arrays. Values are exactly
    what each call would have derived itself.

    Attributes:
        xs / ys: per-tick ego world coordinates.
        s / d: per-tick ego path coordinates — road Frenet station and
            lateral when a road is present, zeros in the no-road
            per-tick-frame fallback (where each tick's gate works in
            that tick's own ego frame and the ego sits at its origin).
    """

    xs: np.ndarray
    ys: np.ndarray
    s: np.ndarray
    d: np.ndarray


@dataclass(frozen=True)
class ThreatAssessor:
    """Decides whether an actor is a collision threat to the ego.

    The decision samples the actor's predicted motion over the horizon in
    road Frenet coordinates (falling back to the ego's heading frame when
    no road is given) and requires that

    * the actor is not behind the ego's rear bumper at ``t0`` (a braking
      ego cannot collide with traffic approaching from behind — that
      actor's own safety envelope is responsible, as in RSS), and
    * at some sampled time the actor laterally overlaps the ego's
      corridor (half-widths + margin) while *fully ahead* of the ego —
      an abeam actor drifting sideways into the ego is a side-swipe no
      processing rate can brake away from, and again the merger's
      responsibility under RSS.

    Actors failing these can only be struck if the ego leaves its lane,
    which the paper's hard-braking safety procedure never does.
    """

    params: ZhuyiParams
    road: Road | None = None
    gate_step: float = 0.1

    def assess(
        self,
        ego_state: VehicleState,
        ego_spec: VehicleSpec,
        actor_trajectory: StateTrajectory,
        actor_spec: VehicleSpec,
        t0: float = 0.0,
    ) -> TrajectoryThreat | None:
        """The actor's threat view, or ``None`` if it cannot collide."""
        if self.params.gate_lateral and not self._could_collide(
            ego_state, ego_spec, actor_trajectory, actor_spec, t0
        ):
            return None
        return self.build_threat(
            ego_state, ego_spec, actor_trajectory, actor_spec, t0
        )

    def build_threat(
        self,
        ego_state: VehicleState,
        ego_spec: VehicleSpec,
        actor_trajectory: StateTrajectory,
        actor_spec: VehicleSpec,
        t0: float = 0.0,
    ) -> TrajectoryThreat:
        """The actor's threat view, collision gate already decided.

        Callers that precomputed the gate — e.g. the offline evaluator's
        :meth:`could_collide_trace` table — build threats directly;
        :meth:`assess` is the gate-then-build convenience.
        """
        corridor = None
        if self.params.gate_lateral:
            _, ego_d = self._path_coordinates(ego_state, ego_state)
            corridor = CorridorSpec(
                road=self.road,
                ego_frame_origin=ego_state,
                ego_lateral=ego_d,
                overlap_width=(
                    (ego_spec.width + actor_spec.width) / 2.0
                    + self.params.lateral_margin
                ),
            )
        return TrajectoryThreat(
            ego_state=ego_state,
            ego_spec=ego_spec,
            actor_trajectory=actor_trajectory,
            actor_spec=actor_spec,
            t0=t0,
            corridor=corridor,
        )

    def _path_coordinates(self, state: VehicleState, ego_state: VehicleState):
        """(station, lateral offset) of ``state`` along the ego's path."""
        if self.road is not None:
            frenet = self.road.to_frenet(state.position)
            return frenet.s, frenet.d
        # No road: treat the ego's current heading as a straight path.
        frame = ego_state.frame()
        local = frame.to_local(state.position)
        return local.x, local.y

    def _path_coordinates_batch(
        self, xs: np.ndarray, ys: np.ndarray, ego_state: VehicleState
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`_path_coordinates` over many world points."""
        if self.road is not None:
            return self.road.to_frenet_batch(xs, ys)
        frame = ego_state.frame()
        dx = xs - frame.origin.x
        dy = ys - frame.origin.y
        cos_h = math.cos(frame.heading)
        sin_h = math.sin(frame.heading)
        return cos_h * dx + sin_h * dy, -sin_h * dx + cos_h * dy

    def _could_collide(
        self,
        ego_state: VehicleState,
        ego_spec: VehicleSpec,
        actor_trajectory: StateTrajectory,
        actor_spec: VehicleSpec,
        t0: float,
    ) -> bool:
        ego_s, ego_d = self._path_coordinates(ego_state, ego_state)
        overlap_width = (
            (ego_spec.width + actor_spec.width) / 2.0 + self.params.lateral_margin
        )
        half_lengths = (ego_spec.length + actor_spec.length) / 2.0
        rear_bumper = ego_s - half_lengths

        horizon = min(
            self.params.horizon,
            max(actor_trajectory.end_time - t0, 0.0) + self.gate_step,
        )
        # The gate instants accumulate like the reference scalar loop
        # did (t += step, not a closed-form grid), then project in one
        # batched interpolation + Frenet conversion: this gate runs for
        # every actor at every tick, and per-instant Python projection
        # was the evaluator's second-largest interpreter cost.
        gate_times = []
        t = 0.0
        while t <= horizon + 1e-9:
            gate_times.append(t0 + t)
            # reprolint: disable=DET003 -- the accumulated gate grid IS
            # the pinned scalar-reference contract: the batched kernels
            # reproduce these exact instants bit-for-bit (corridor-mask
            # quantization tests); a closed-form grid would shift the
            # last bits and break every curved golden.
            t += self.gate_step
        xs, ys, _ = actor_trajectory.sample_extrapolated(np.array(gate_times))
        stations, laterals = self._path_coordinates_batch(xs, ys, ego_state)

        if stations[0] < rear_bumper:
            return False
        laterally_overlapping = np.abs(laterals - ego_d) <= overlap_width
        fully_ahead = stations >= ego_s + half_lengths
        return bool(np.any(laterally_overlapping & fully_ahead))

    def ego_path_rows(self, ego_states) -> EgoPathRows:
        """The :class:`EgoPathRows` for a trace's tick axis.

        One batched Frenet conversion (or the no-road zeros) serving
        every per-actor gate and sampler call on these ticks — the
        same arrays those calls derive on their own when no cache is
        passed.
        """
        xs = np.array([state.position.x for state in ego_states])
        ys = np.array([state.position.y for state in ego_states])
        if self.road is not None:
            s, d = self.road.to_frenet_batch(xs, ys)
        else:
            s = np.zeros(xs.shape)
            d = np.zeros(xs.shape)
        return EgoPathRows(xs=xs, ys=ys, s=s, d=d)

    def could_collide_trace(
        self,
        ego_states,
        ego_spec: VehicleSpec,
        actor_trajectory: StateTrajectory,
        actor_spec: VehicleSpec,
        t0s: np.ndarray,
        ego_rows: EgoPathRows | None = None,
    ) -> np.ndarray:
        """Vectorized collision gate over every tick of a trace.

        One interpolation and one Frenet conversion answer
        :meth:`assess`'s gate question for all estimation instants at
        once — element-for-element the same arithmetic as the per-tick
        gate, so the verdicts are identical; only the per-tick
        interpreter overhead (the offline evaluator's second-largest
        cost) disappears. With ``gate_lateral`` off this is all-True,
        mirroring :meth:`assess`.

        Args:
            ego_states: the ego state at each tick (``t0s``-aligned).
            ego_spec / actor_trajectory / actor_spec: as in
                :meth:`assess`.
            t0s: the estimation instants.
            ego_rows: optional precomputed :meth:`ego_path_rows` for
                these ticks (the cross-actor ego-side cache).

        Returns:
            Boolean array: whether the actor could collide at each tick.
        """
        t0s = np.asarray(t0s, dtype=float)
        return self._gate_rows(
            ego_states,
            ego_spec,
            actor_trajectory.sample_extrapolated,
            actor_trajectory.end_time,
            actor_spec,
            t0s,
            ego_rows=ego_rows,
        )

    def could_collide_futures(
        self,
        ego_states,
        ego_spec: VehicleSpec,
        futures: RolloutArrays,
        actor_spec: VehicleSpec,
        t0s: np.ndarray,
    ) -> np.ndarray:
        """:meth:`could_collide_trace` for *predicted* per-tick futures.

        Where the trace gate shares one recorded trajectory across all
        ticks, the replay path predicts a fresh future per tick: row
        ``n`` of ``futures`` is the actor's hypothesized rollout as of
        tick ``n``, so the horizons come from each row's own final knot
        and the interpolation runs against per-row knot grids. The
        gate arithmetic is the shared row kernel either way, so a
        replay tick is gated identically whether the future was
        materialized as a ``StateTrajectory`` or stayed in array form.

        Args:
            ego_states: the ego state at each tick (``t0s``-aligned).
            ego_spec / actor_spec: as in :meth:`assess`.
            futures: one predicted rollout per tick
                (:class:`repro.dynamics.state.RolloutArrays`).
            t0s: the estimation instants, aligned with ``futures`` rows.

        Returns:
            Boolean array: whether the actor could collide at each tick.
        """
        t0s = np.asarray(t0s, dtype=float)
        return self._gate_rows(
            ego_states,
            ego_spec,
            futures.sample_extrapolated,
            futures.times[:, -1],
            actor_spec,
            t0s,
        )

    def sample_threat_futures(
        self,
        ego_states,
        ego_spec: VehicleSpec,
        futures: RolloutArrays,
        actor_spec: VehicleSpec,
        t0s: np.ndarray,
        rel_times: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`sample_threats_trace` for *predicted* per-tick futures.

        One batched interpolation answers every (tick, instant) threat
        query against each tick's own predicted rollout — the same
        shared row kernel as the trace sampler, so the values equal a
        per-tick :class:`TrajectoryThreat` build-and-sample bit for bit
        (Euclidean gap from the tick's ego position, half-lengths
        subtracted, the 10 ms corridor-mask quantization). Requires
        road geometry when lateral gating is on, like the trace
        sampler.

        Args:
            ego_states: ego state at each queried tick.
            ego_spec / actor_spec: as in :meth:`assess`.
            futures: one predicted rollout per queried tick.
            t0s: the queried estimation instants (row-aligned).
            rel_times: scan instants relative to each tick.

        Returns:
            ``(s_n, v_an)`` arrays of shape ``(len(t0s), len(rel_times))``.
        """
        return self._sample_rows(
            ego_states,
            ego_spec,
            futures.sample_extrapolated,
            actor_spec,
            t0s,
            rel_times,
        )

    def _gate_rows(
        self,
        ego_states,
        ego_spec: VehicleSpec,
        sampler,
        end_times,
        actor_spec: VehicleSpec,
        t0s: np.ndarray,
        ego_rows: EgoPathRows | None = None,
    ) -> np.ndarray:
        """The collision gate over (tick,) rows — the shared kernel.

        ``sampler`` maps a ``(rows, instants)`` absolute-time query
        grid to ``(xs, ys, speeds)`` arrays (a recorded trajectory's
        ``sample_extrapolated`` broadcast over every row, or a
        :class:`RolloutArrays` batch interpolating each row's own
        knots); ``end_times`` is the prediction end per row (scalar or
        array). Element for element this is the per-tick
        :meth:`assess` gate: accumulated gate instants, one batched
        interpolation + Frenet conversion, the same behind/overlap
        verdicts — one derivation serving both the offline trace gate
        and the replay futures gate, so the two cannot drift.
        """
        if not self.params.gate_lateral:
            return np.ones(t0s.shape, dtype=bool)
        # Per-tick ego path coordinates. With a road these are absolute
        # Frenet coordinates; without one, each tick's gate works in
        # that tick's ego heading frame — where the ego itself sits at
        # the origin, exactly as the scalar fallback computes it.
        if ego_rows is None:
            ego_rows = self.ego_path_rows(ego_states)
        ego_s, ego_d = ego_rows.s, ego_rows.d
        overlap_width = (
            (ego_spec.width + actor_spec.width) / 2.0 + self.params.lateral_margin
        )
        half_lengths = (ego_spec.length + actor_spec.length) / 2.0

        horizons = np.minimum(
            self.params.horizon,
            np.maximum(end_times - t0s, 0.0) + self.gate_step,
        )
        # The accumulated gate instants (t += step), shared by every
        # tick; each tick masks the prefix its horizon admits — the
        # same values and the same stop condition as the scalar loop.
        gate_rel = []
        t = 0.0
        while t <= float(horizons.max()) + 1e-9:
            gate_rel.append(t)
            # reprolint: disable=DET003 -- shared accumulated gate grid,
            # deliberately identical to could_collide's scalar loop
            # above (same values, same stop condition); see that
            # pragma's justification.
            t += self.gate_step
        gate_rel = np.array(gate_rel)
        in_horizon = gate_rel[None, :] <= horizons[:, None] + 1e-9

        queries = t0s[:, None] + gate_rel[None, :]
        xs, ys, _ = sampler(queries)
        if self.road is not None:
            stations, laterals = self.road.to_frenet_batch(xs, ys)
        else:
            stations = np.empty(queries.shape)
            laterals = np.empty(queries.shape)
            for n, state in enumerate(ego_states):
                stations[n], laterals[n] = self._path_coordinates_batch(
                    xs[n], ys[n], state
                )

        overlapping = np.abs(laterals - ego_d[:, None]) <= overlap_width
        ahead = stations >= (ego_s + half_lengths)[:, None]
        could = np.any(overlapping & ahead & in_horizon, axis=1)
        behind = stations[:, 0] < ego_s - half_lengths
        return could & ~behind

    def _sample_rows(
        self,
        ego_states,
        ego_spec: VehicleSpec,
        sampler,
        actor_spec: VehicleSpec,
        t0s: np.ndarray,
        rel_times: np.ndarray,
        ego_rows: EgoPathRows | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Threat quantities over (tick, instant) rows — the shared kernel.

        ``sampler`` as in :meth:`_gate_rows`. Element for element this
        is a per-tick :class:`TrajectoryThreat` build-and-sample —
        including the 10 ms corridor-mask quantization, whose instants
        ride the same interpolation pass as the threat scan (one
        ``sampler`` call per batch).
        """
        t0s = np.asarray(t0s, dtype=float)
        rel_times = np.asarray(rel_times, dtype=float)
        if self.params.gate_lateral and self.road is None:
            raise EstimationError(
                "row-batched threat sampling needs road geometry "
                "when lateral gating is on"
            )
        half_lengths = (ego_spec.length + actor_spec.length) / 2.0
        n_rel = rel_times.size
        queries = t0s[:, None] + rel_times[None, :]
        if self.params.gate_lateral:
            # The corridor mask on the same 10 ms-quantized instants
            # the per-tick threat samples, for all ticks at once.
            grid = np.arange(0.0, _MASK_SPAN, _MASK_STEP)
            indices = np.clip(
                np.rint(rel_times / _MASK_STEP).astype(int),
                0,
                grid.size - 1,
            )
            mask_queries = t0s[:, None] + grid[indices][None, :]
            queries = np.concatenate([queries, mask_queries], axis=1)
        xs, ys, speeds = sampler(queries)
        if ego_rows is None:
            ego_rows = self.ego_path_rows(ego_states)
        ego_xs, ego_ys = ego_rows.xs, ego_rows.ys
        distances = np.hypot(
            xs[:, :n_rel] - ego_xs[:, None], ys[:, :n_rel] - ego_ys[:, None]
        )
        gaps = np.maximum(0.0, distances - half_lengths)
        speeds = speeds[:, :n_rel]
        if self.params.gate_lateral:
            mask_xs = xs[:, n_rel:]
            mask_ys = ys[:, n_rel:]
            # The road branch of CorridorSpec.lateral_offsets ignores
            # the per-tick frame fields; one spec serves every tick.
            corridor = CorridorSpec(
                road=self.road,
                ego_frame_origin=ego_states[0],
                ego_lateral=0.0,
                overlap_width=0.0,
            )
            offsets = corridor.lateral_offsets(mask_xs, mask_ys)
            # Per-tick ego laterals batch through the exact Frenet
            # kernel: to_frenet_batch is bit-identical to the scalar
            # to_frenet build_threat calls (the road/lane.py contract),
            # so a corridor-edge tick lands on the same side in both
            # backends without a per-tick scalar fallback.
            ego_lateral = ego_rows.d
            overlap_width = (
                (ego_spec.width + actor_spec.width) / 2.0
                + self.params.lateral_margin
            )
            in_corridor = (
                np.abs(offsets - ego_lateral[:, None]) <= overlap_width
            )
            gaps = np.where(in_corridor, gaps, np.inf)
        return gaps, np.ascontiguousarray(speeds)

    def sample_threats_trace(
        self,
        ego_states,
        ego_spec: VehicleSpec,
        actor_trajectory: StateTrajectory,
        actor_spec: VehicleSpec,
        t0s: np.ndarray,
        rel_times: np.ndarray,
        ego_rows: EgoPathRows | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`TrajectoryThreat.sample` across many ticks.

        One interpolation answers every (tick, instant) threat query an
        evaluation pass needs for this actor — element-for-element the
        same arithmetic as building a per-tick :class:`TrajectoryThreat`
        and sampling it (including the 10 ms corridor-mask
        quantization), so the values are identical and only the
        per-tick interpreter overhead disappears. Requires road
        geometry when lateral gating is on (the no-road corridor works
        in per-tick ego frames; those callers keep the per-tick path).

        Args:
            ego_states: ego state at each queried tick.
            ego_spec / actor_trajectory / actor_spec: as in
                :meth:`assess`.
            t0s: the queried estimation instants (``ego_states``-aligned).
            rel_times: scan instants relative to each tick.
            ego_rows: optional precomputed :meth:`ego_path_rows` for
                these ticks (the cross-actor ego-side cache).

        Returns:
            ``(s_n, v_an)`` arrays of shape ``(len(t0s), len(rel_times))``.
        """
        return self._sample_rows(
            ego_states,
            ego_spec,
            actor_trajectory.sample_extrapolated,
            actor_spec,
            t0s,
            rel_times,
            ego_rows=ego_rows,
        )
